//! The effect-analysis lint binary.
//!
//! Runs the full analysis — undeclared-effect lint, footprint sanitizer,
//! determinism sanitizer, and pairwise commutativity classification — over
//! all six bundled applications, prints each app's conflict matrix, and
//! exits non-zero when any violation is found (so `scripts/check.sh` can
//! gate on it).
//!
//! `--shard-plan` additionally derives each app's [`guesstimate_core::ShardPlan`]
//! from the validated footprints (interference graph → union-find
//! partition → routing keys), validates it with the static sanitizer, a
//! run-it-twice determinism check, and the witness-backed escape check,
//! and prints the plan; any sanitizer problem or witnessed shard escape is
//! fatal.
//!
//! `--json PATH` writes the machine-readable archive
//! ([`guesstimate_analysis::report_to_json`], schema v3; with
//! `--shard-plan` the per-app `shard_plan` objects are included): CI
//! stores it as a build artifact, and the model checker's `--matrix` flag
//! loads the validated commute matrix from it without re-running this
//! validator.

use guesstimate_analysis::harness::analyze_all_apps;
use guesstimate_analysis::shard::format_shard_plan;
use guesstimate_analysis::{report_to_json, report_to_json_with_plans};
use guesstimate_core::ShardPlan;

fn main() {
    let mut json_out: Option<String> = None;
    let mut shard_plan = false;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => match argv.next() {
                Some(p) => json_out = Some(p),
                None => {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                }
            },
            "--shard-plan" => shard_plan = true,
            other => {
                eprintln!(
                    "unknown argument `{other}` (usage: analyze [--shard-plan] [--json PATH])"
                );
                std::process::exit(2);
            }
        }
    }

    let analyses = analyze_all_apps();

    println!("operation effect analysis — conflict matrices (C commute, X conflict, ? unknown)\n");
    let mut violations = 0usize;
    for a in &analyses {
        let r = &a.report;
        println!("{}", r.format_matrix());
        let m = r.commute_matrix();
        let universal = r.universal_commuters();
        println!(
            "  pairs: {} · validated always-commute: {} · violations: {} · warnings: {}",
            r.pairs.len(),
            m.len(),
            r.violations.len(),
            r.warnings.len()
        );
        // Methods eligible for the runtime's hybrid async commit path.
        if universal.is_empty() {
            println!("  universal commuters: (none)\n");
        } else {
            println!("  universal commuters: {}\n", universal.join(", "));
        }
        violations += r.violations.len();
        for v in &r.violations {
            eprintln!("  {v}");
        }
        // Dead-footprint advisories: sound over-approximations worth
        // tightening, never fatal.
        for w in &r.warnings {
            println!("  warning: {w}");
        }
    }

    let mut plan: Option<ShardPlan> = None;
    let mut shard_problems = 0usize;
    if shard_plan {
        let mut combined = ShardPlan::new();
        let problems = &mut shard_problems;
        for a in &analyses {
            let tp = a.derive_shard_plan();
            // Stability: a second derivation must agree exactly (the same
            // invariant `scripts/check.sh` rechecks at the byte level).
            if a.derive_shard_plan() != tp {
                eprintln!(
                    "  shard plan for {} is not stable across two derivations",
                    a.report.type_name
                );
                *problems += 1;
            }
            for p in a.sanitize_shard_plan(&tp) {
                eprintln!("  shard sanitizer: {p}");
                *problems += 1;
            }
            for e in a.witness_check_shard_plan(&tp) {
                eprintln!("  shard escape: {e}");
                *problems += 1;
            }
            combined.types.insert(a.report.type_name.clone(), tp);
        }
        println!("{}", format_shard_plan(&combined));
        let (local, cross) = combined
            .types
            .values()
            .flat_map(|tp| tp.routes.values())
            .fold((0usize, 0usize), |(l, c), r| match r {
                guesstimate_core::Routing::Local { .. } => (l + 1, c),
                guesstimate_core::Routing::CrossShard => (l, c + 1),
            });
        if shard_problems == 0 {
            println!(
                "shard plans clean: {} components across {} apps, {local} local / {cross} cross-shard routes, zero witnessed escapes\n",
                combined.types.values().map(|t| t.components.len()).sum::<usize>(),
                combined.types.len(),
            );
        }
        plan = Some(combined);
    }

    if let Some(path) = &json_out {
        // Archive even on failure: the violations are exactly what a CI
        // artifact should preserve for the post-mortem.
        let reports: Vec<_> = analyses.iter().map(|a| a.report.clone()).collect();
        let doc = match &plan {
            Some(p) => report_to_json_with_plans(&reports, Some(p)),
            None => report_to_json(&reports),
        };
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote JSON archive to {path}");
    }
    if shard_problems > 0 {
        eprintln!("shard-plan validation FAILED: {shard_problems} problem(s)");
        std::process::exit(1);
    }
    if violations > 0 {
        eprintln!("effect analysis FAILED: {violations} violation(s)");
        std::process::exit(1);
    }
    println!("effect analysis clean: zero footprint or determinism violations across 6 apps");
}
