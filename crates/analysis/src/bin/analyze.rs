//! The effect-analysis lint binary.
//!
//! Runs the full analysis — undeclared-effect lint, footprint sanitizer,
//! determinism sanitizer, and pairwise commutativity classification — over
//! all six bundled applications, prints each app's conflict matrix, and
//! exits non-zero when any violation is found (so `scripts/check.sh` can
//! gate on it).
//!
//! `--json PATH` additionally writes the machine-readable archive
//! ([`guesstimate_analysis::report_to_json`], schema v1): CI stores it as
//! a build artifact, and the model checker's `--matrix` flag loads the
//! validated commute matrix from it without re-running this validator.

use guesstimate_analysis::{
    analyze_app, method_spaces_from_suite, report_to_json, AppReport, MethodSpace,
};
use guesstimate_core::{
    args, execute, MachineId, ObjectId, ObjectStore, OpRegistry, SharedOp, Value,
};
use guesstimate_spec::CaseSpace;

/// Case cap per method (sanitizers) and per pair (commutation check).
const MAX_CASES: usize = 4_000;

fn scratch() -> ObjectId {
    ObjectId::new(MachineId::new(0), 0)
}

/// Builds representative states by executing an op sequence through the
/// registry, snapshotting after every step (the bench crate's idiom).
fn states_by_ops(reg: &OpRegistry, type_name: &str, seq: &[SharedOp]) -> Vec<Value> {
    let o = scratch();
    let mut store = ObjectStore::new();
    store.insert(o, reg.construct(type_name).expect("registered"));
    let mut out = vec![store.get(o).expect("present").snapshot()];
    for op in seq {
        let _ = execute(op, &mut store, reg);
        out.push(store.get(o).expect("present").snapshot());
    }
    out
}

fn analyze_sudoku() -> AppReport {
    use guesstimate_apps::sudoku;
    let mut reg = OpRegistry::new();
    sudoku::register(&mut reg);
    let mut states = sudoku::sampled_states(6, 0xA11CE).states;
    states.push(guesstimate_core::GState::snapshot(&sudoku::example_puzzle()));
    let spaces = method_spaces_from_suite(&sudoku::spec_suite());
    analyze_app(
        &reg,
        "Sudoku",
        &spaces,
        &CaseSpace::sampled(states, MAX_CASES),
    )
}

fn analyze_event_planner() -> AppReport {
    use guesstimate_apps::event_planner::{self as ep, ops};
    let mut reg = OpRegistry::new();
    ep::register(&mut reg);
    let o = scratch();
    let states = states_by_ops(
        &reg,
        "EventPlanner",
        &[
            ops::register_user(o, "ann", "pw"),
            ops::register_user(o, "bob", "pw"),
            ops::create_event(o, "party", 1),
            ops::create_event(o, "dinner", 2),
            ops::sign_in(o, "ann", "pw"),
            ops::join(o, "ann", "party"),
            ops::join(o, "bob", "dinner"),
            ops::leave(o, "ann", "party"),
        ],
    );
    let mut spaces = method_spaces_from_suite(&ep::spec_suite());
    // The suite has no sign_out spec; give it the sign_in user space.
    spaces.push(MethodSpace {
        method: "sign_out".to_owned(),
        args: ["ann", "bob", "ghost", ""]
            .iter()
            .map(|u| args![*u])
            .collect(),
        args_exhaustive: false,
    });
    analyze_app(
        &reg,
        "EventPlanner",
        &spaces,
        &CaseSpace::sampled(states, MAX_CASES),
    )
}

fn analyze_message_board() -> AppReport {
    use guesstimate_apps::message_board::{self as mb, ops};
    let mut reg = OpRegistry::new();
    mb::register(&mut reg);
    let o = scratch();
    let states = states_by_ops(
        &reg,
        "MessageBoard",
        &[
            ops::create_topic(o, "general"),
            ops::post(o, "general", "ann", "hi"),
            ops::create_topic(o, "random"),
            ops::post(o, "general", "bob", "yo"),
        ],
    );
    let spaces = method_spaces_from_suite(&mb::spec_suite());
    analyze_app(
        &reg,
        "MessageBoard",
        &spaces,
        &CaseSpace::sampled(states, MAX_CASES),
    )
}

fn analyze_carpool() -> AppReport {
    use guesstimate_apps::carpool::{self as cp, ops};
    let mut reg = OpRegistry::new();
    cp::register(&mut reg);
    let o = scratch();
    let states = states_by_ops(
        &reg,
        "CarPool",
        &[
            ops::add_vehicle(o, "v1", 1, "party"),
            ops::add_vehicle(o, "v2", 2, "party"),
            ops::board(o, "ann", "v1"),
            ops::board(o, "bob", "v2"),
            ops::disembark(o, "ann", "v1"),
        ],
    );
    let spaces = method_spaces_from_suite(&cp::spec_suite());
    analyze_app(
        &reg,
        "CarPool",
        &spaces,
        &CaseSpace::sampled(states, MAX_CASES),
    )
}

fn analyze_auction() -> AppReport {
    use guesstimate_apps::auction::{self as au, ops};
    let mut reg = OpRegistry::new();
    au::register(&mut reg);
    let o = scratch();
    let states = states_by_ops(
        &reg,
        "Auction",
        &[
            ops::list_item(o, "lamp", "seller", 10, 5),
            ops::bid(o, "lamp", "ann", 10),
            ops::list_item(o, "sofa", "bob", 0, 1),
            ops::close(o, "sofa", "bob"),
        ],
    );
    let spaces = method_spaces_from_suite(&au::spec_suite());
    analyze_app(
        &reg,
        "Auction",
        &spaces,
        &CaseSpace::sampled(states, MAX_CASES),
    )
}

fn analyze_microblog() -> AppReport {
    use guesstimate_apps::microblog::{self as micro, ops};
    let mut reg = OpRegistry::new();
    micro::register(&mut reg);
    let o = scratch();
    let states = states_by_ops(
        &reg,
        "MicroBlog",
        &[
            ops::register(o, "ann"),
            ops::register(o, "bob"),
            ops::follow(o, "ann", "bob"),
            ops::post(o, "bob", "x"),
            ops::unfollow(o, "ann", "bob"),
        ],
    );
    let mut spaces = method_spaces_from_suite(&micro::spec_suite());
    // The suite has no unfollow spec; reuse follow's handle pairs.
    let handles = ["ann", "bob", "ghost", ""];
    let mut unfollow_args = Vec::new();
    for f in handles {
        for g in handles {
            unfollow_args.push(args![f, g]);
        }
    }
    spaces.push(MethodSpace {
        method: "unfollow".to_owned(),
        args: unfollow_args,
        args_exhaustive: true,
    });
    analyze_app(
        &reg,
        "MicroBlog",
        &spaces,
        &CaseSpace::sampled(states, MAX_CASES),
    )
}

fn main() {
    let mut json_out: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--json" => match argv.next() {
                Some(p) => json_out = Some(p),
                None => {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}` (usage: analyze [--json PATH])");
                std::process::exit(2);
            }
        }
    }

    let reports = [
        analyze_sudoku(),
        analyze_event_planner(),
        analyze_message_board(),
        analyze_carpool(),
        analyze_auction(),
        analyze_microblog(),
    ];

    println!("operation effect analysis — conflict matrices (C commute, X conflict, ? unknown)\n");
    let mut violations = 0usize;
    for r in &reports {
        println!("{}", r.format_matrix());
        let m = r.commute_matrix();
        let universal = r.universal_commuters();
        println!(
            "  pairs: {} · validated always-commute: {} · violations: {} · warnings: {}",
            r.pairs.len(),
            m.len(),
            r.violations.len(),
            r.warnings.len()
        );
        // Methods eligible for the runtime's hybrid async commit path.
        if universal.is_empty() {
            println!("  universal commuters: (none)\n");
        } else {
            println!("  universal commuters: {}\n", universal.join(", "));
        }
        violations += r.violations.len();
        for v in &r.violations {
            eprintln!("  {v}");
        }
        // Dead-footprint advisories: sound over-approximations worth
        // tightening, never fatal.
        for w in &r.warnings {
            println!("  warning: {w}");
        }
    }
    if let Some(path) = &json_out {
        // Archive even on failure: the violations are exactly what a CI
        // artifact should preserve for the post-mortem.
        if let Err(e) = std::fs::write(path, report_to_json(&reports)) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote JSON archive to {path}");
    }
    if violations > 0 {
        eprintln!("effect analysis FAILED: {violations} violation(s)");
        std::process::exit(1);
    }
    println!("effect analysis clean: zero footprint or determinism violations across 6 apps");
}
