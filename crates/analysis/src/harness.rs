//! The six-app analysis harness: registries, state samples, and argument
//! spaces for every bundled application, packaged so the `analyze` binary,
//! the bench crate's shard-balance summaries, and tests all drive the
//! identical configuration.

use guesstimate_core::{
    args, execute, MachineId, ObjectId, ObjectStore, OpRegistry, ShardPlan, SharedOp, TypePlan,
    Value,
};
use guesstimate_spec::CaseSpace;

use crate::shard::{derive_type_plan, sanitize_type_plan, witness_check_type_plan};
use crate::{analyze_app, method_spaces_from_suite, AppReport, MethodSpace};

/// Case cap per method (sanitizers) and per pair (commutation check).
pub const MAX_CASES: usize = 4_000;

/// Everything one app's analysis run consumed and produced — enough to
/// derive and validate its shard plan without re-running the pass.
#[derive(Debug)]
pub struct AppAnalysis {
    /// The registry with the app's type and methods registered.
    pub registry: OpRegistry,
    /// The analyzed argument spaces.
    pub spaces: Vec<MethodSpace>,
    /// The state enumeration and case cap.
    pub case_space: CaseSpace,
    /// The analysis report.
    pub report: AppReport,
}

impl AppAnalysis {
    /// Derives the app's shard plan from its report (see
    /// [`crate::shard::derive_type_plan`]).
    pub fn derive_shard_plan(&self) -> TypePlan {
        derive_type_plan(
            &self.registry,
            &self.report.type_name,
            &self.spaces,
            &self.report,
        )
    }

    /// Runs the static plan sanitizer (see
    /// [`crate::shard::sanitize_type_plan`]).
    pub fn sanitize_shard_plan(&self, plan: &TypePlan) -> Vec<String> {
        sanitize_type_plan(&self.registry, &self.report.type_name, plan)
    }

    /// Runs the witness-backed shard escape check (see
    /// [`crate::shard::witness_check_type_plan`]).
    pub fn witness_check_shard_plan(&self, plan: &TypePlan) -> Vec<String> {
        witness_check_type_plan(
            &self.registry,
            &self.report.type_name,
            plan,
            &self.spaces,
            &self.case_space,
        )
    }

    /// Routes every enumerated argument case of every analyzed method
    /// through `plan` and tallies operations per shard — the raw material
    /// of the bench crate's shard-balance summary (shard count, per-shard
    /// op share, cross-shard fraction). Labels are
    /// [`guesstimate_core::ShardId`] renderings (`"cross"` for cross-shard
    /// routes), sorted.
    pub fn shard_balance(&self, plan: &TypePlan) -> Vec<(String, u64)> {
        let mut full = ShardPlan::new();
        full.types
            .insert(self.report.type_name.clone(), plan.clone());
        let mut counts: std::collections::BTreeMap<String, u64> = Default::default();
        for space in &self.spaces {
            for case in &space.args {
                let shard = full.route_primitive(&self.report.type_name, &space.method, case);
                *counts.entry(shard.to_string()).or_insert(0) += 1;
            }
        }
        counts.into_iter().collect()
    }
}

fn scratch() -> ObjectId {
    ObjectId::new(MachineId::new(0), 0)
}

/// Builds representative states by executing an op sequence through the
/// registry, snapshotting after every step (the bench crate's idiom).
fn states_by_ops(reg: &OpRegistry, type_name: &str, seq: &[SharedOp]) -> Vec<Value> {
    let o = scratch();
    let mut store = ObjectStore::new();
    store.insert(o, reg.construct(type_name).expect("registered"));
    let mut out = vec![store.get(o).expect("present").snapshot()];
    for op in seq {
        let _ = execute(op, &mut store, reg);
        out.push(store.get(o).expect("present").snapshot());
    }
    out
}

fn run(
    registry: OpRegistry,
    type_name: &str,
    spaces: Vec<MethodSpace>,
    states: Vec<Value>,
) -> AppAnalysis {
    let case_space = CaseSpace::sampled(states, MAX_CASES);
    let report = analyze_app(&registry, type_name, &spaces, &case_space);
    AppAnalysis {
        registry,
        spaces,
        case_space,
        report,
    }
}

/// Analyzes the Sudoku app.
pub fn analyze_sudoku() -> AppAnalysis {
    use guesstimate_apps::sudoku;
    let mut reg = OpRegistry::new();
    sudoku::register(&mut reg);
    let mut states = sudoku::sampled_states(6, 0xA11CE).states;
    states.push(guesstimate_core::GState::snapshot(&sudoku::example_puzzle()));
    let spaces = method_spaces_from_suite(&sudoku::spec_suite());
    run(reg, "Sudoku", spaces, states)
}

/// Analyzes the event-planner app.
pub fn analyze_event_planner() -> AppAnalysis {
    use guesstimate_apps::event_planner::{self as ep, ops};
    let mut reg = OpRegistry::new();
    ep::register(&mut reg);
    let o = scratch();
    let states = states_by_ops(
        &reg,
        "EventPlanner",
        &[
            ops::register_user(o, "ann", "pw"),
            ops::register_user(o, "bob", "pw"),
            ops::create_event(o, "party", 1),
            ops::create_event(o, "dinner", 2),
            ops::sign_in(o, "ann", "pw"),
            ops::join(o, "ann", "party"),
            ops::join(o, "bob", "dinner"),
            ops::leave(o, "ann", "party"),
        ],
    );
    let mut spaces = method_spaces_from_suite(&ep::spec_suite());
    // The suite has no sign_out spec; give it the sign_in user space.
    spaces.push(MethodSpace {
        method: "sign_out".to_owned(),
        args: ["ann", "bob", "ghost", ""]
            .iter()
            .map(|u| args![*u])
            .collect(),
        args_exhaustive: false,
    });
    run(reg, "EventPlanner", spaces, states)
}

/// Analyzes the message-board app.
pub fn analyze_message_board() -> AppAnalysis {
    use guesstimate_apps::message_board::{self as mb, ops};
    let mut reg = OpRegistry::new();
    mb::register(&mut reg);
    let o = scratch();
    let states = states_by_ops(
        &reg,
        "MessageBoard",
        &[
            ops::create_topic(o, "general"),
            ops::post(o, "general", "ann", "hi"),
            ops::create_topic(o, "random"),
            ops::post(o, "general", "bob", "yo"),
        ],
    );
    let spaces = method_spaces_from_suite(&mb::spec_suite());
    run(reg, "MessageBoard", spaces, states)
}

/// Analyzes the car-pool app.
pub fn analyze_carpool() -> AppAnalysis {
    use guesstimate_apps::carpool::{self as cp, ops};
    let mut reg = OpRegistry::new();
    cp::register(&mut reg);
    let o = scratch();
    let states = states_by_ops(
        &reg,
        "CarPool",
        &[
            ops::add_vehicle(o, "v1", 1, "party"),
            ops::add_vehicle(o, "v2", 2, "party"),
            ops::board(o, "ann", "v1"),
            ops::board(o, "bob", "v2"),
            ops::disembark(o, "ann", "v1"),
        ],
    );
    let spaces = method_spaces_from_suite(&cp::spec_suite());
    run(reg, "CarPool", spaces, states)
}

/// Analyzes the auction app.
pub fn analyze_auction() -> AppAnalysis {
    use guesstimate_apps::auction::{self as au, ops};
    let mut reg = OpRegistry::new();
    au::register(&mut reg);
    let o = scratch();
    let states = states_by_ops(
        &reg,
        "Auction",
        &[
            ops::list_item(o, "lamp", "seller", 10, 5),
            ops::bid(o, "lamp", "ann", 10),
            ops::list_item(o, "sofa", "bob", 0, 1),
            ops::close(o, "sofa", "bob"),
        ],
    );
    let spaces = method_spaces_from_suite(&au::spec_suite());
    run(reg, "Auction", spaces, states)
}

/// Analyzes the micro-blog app.
pub fn analyze_microblog() -> AppAnalysis {
    use guesstimate_apps::microblog::{self as micro, ops};
    let mut reg = OpRegistry::new();
    micro::register(&mut reg);
    let o = scratch();
    let states = states_by_ops(
        &reg,
        "MicroBlog",
        &[
            ops::register(o, "ann"),
            ops::register(o, "bob"),
            ops::follow(o, "ann", "bob"),
            ops::post(o, "bob", "x"),
            ops::unfollow(o, "ann", "bob"),
        ],
    );
    let mut spaces = method_spaces_from_suite(&micro::spec_suite());
    // The suite has no unfollow spec; reuse follow's handle pairs.
    let handles = ["ann", "bob", "ghost", ""];
    let mut unfollow_args = Vec::new();
    for f in handles {
        for g in handles {
            unfollow_args.push(args![f, g]);
        }
    }
    spaces.push(MethodSpace {
        method: "unfollow".to_owned(),
        args: unfollow_args,
        args_exhaustive: true,
    });
    run(reg, "MicroBlog", spaces, states)
}

/// Analyzes all six bundled apps, in the canonical order.
pub fn analyze_all_apps() -> Vec<AppAnalysis> {
    vec![
        analyze_sudoku(),
        analyze_event_planner(),
        analyze_message_board(),
        analyze_carpool(),
        analyze_auction(),
        analyze_microblog(),
    ]
}
