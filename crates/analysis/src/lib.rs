//! # guesstimate-analysis
//!
//! Static effect analysis over registered shared-operation methods.
//!
//! GUESSTIMATE's cost model hangs on re-execution: every remote commit
//! rebuilds the guesstimated state `sg = [P](sc)` by replaying the whole
//! pending queue. Knowing which operations *commute* is the lever that
//! removes that cost (Shapiro & Preguiça's commutative replicated data
//! types), and bounded exploration is how such claims are checked
//! mechanically (Boucheneb & Imine). This crate provides both halves:
//!
//! * a **footprint-based static commutativity judgment** — two invocations
//!   commute when their declared [`guesstimate_core::Footprint`]s are disjoint (no write/write
//!   and no read/write overlap);
//! * a **bounded-exhaustive semantic validator** that reuses the
//!   `spec::verifier` [`CaseSpace`] machinery to check `s1;s2 ≡ s2;s1` over
//!   enumerated states, classifying each method pair
//!   [`Classification::Commute`] / [`Classification::Conflict`] /
//!   [`Classification::Unknown`];
//! * a **footprint sanitizer** refuting any declared effect whose write set
//!   under-approximates observed snapshot diffs, plus an undeclared-effect
//!   lint;
//! * an **access-witness sanitizer** driving the same argument domains
//!   through [`guesstimate_core::execute_witnessed`] and refuting any
//!   declared footprint the *observed reads or writes* escape
//!   ([`ViolationKind::UndeclaredRead`] / [`ViolationKind::UndeclaredWrite`])
//!   — closing the classic soundness hole where a method silently reads a
//!   path outside its declaration and gets misclassified as commuting —
//!   plus **dead-footprint warnings** for declared paths never observed
//!   touched across the sampled domain (see `docs/ANALYSIS.md` §Soundness);
//! * a **determinism sanitizer** executing each method twice from identical
//!   snapshots — divergence would silently break replica convergence;
//! * the `analyze` binary printing the per-app conflict matrix and all
//!   violations (non-zero exit on any violation, so it can gate CI).
//!
//! The validated output feeds the runtime's commute-aware replay skipping
//! (see `docs/ANALYSIS.md`).

#![deny(missing_docs)]

pub mod harness;
pub use guesstimate_core::json;
pub mod shard;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use guesstimate_core::{
    containment_escapes, execute, execute_witnessed, paths_overlap, AccessKind, ArgView,
    CommuteMatrix, EffectSpec, MachineId, ObjectId, ObjectStore, OpRegistry, ProbeReads, SharedOp,
    Value,
};
use guesstimate_spec::{CaseSpace, SpecSuite};

pub use guesstimate_core::snapshot_diff;

/// The commutativity classification of one method pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Proven to commute: either a complete enumeration found no
    /// counterexample, or every enumerated argument pair had disjoint
    /// (and sanitizer-clean) declared footprints.
    Commute,
    /// A concrete counterexample was found: some state and argument pair
    /// where `s1;s2` and `s2;s1` disagree on the final snapshot or on the
    /// operations' results.
    Conflict,
    /// No counterexample, but the enumeration was incomplete and the
    /// static judgment could not prove disjointness for every argument
    /// pair. The runtime must fall back to argument-precise footprints.
    Unknown,
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Classification::Commute => "Commute",
            Classification::Conflict => "Conflict",
            Classification::Unknown => "Unknown",
        })
    }
}

/// The kind of a lint violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A registered method has no declared [`guesstimate_core::EffectSpec`].
    UndeclaredEffect,
    /// A registered method was given no argument space to analyze over.
    UnanalyzedMethod,
    /// An observed snapshot change is not covered by the declared write
    /// set — the footprint under-approximates and every consumer of it
    /// (including the runtime's replay skipping) would be unsound.
    FootprintUnderApproximation,
    /// Executing the method twice from identical snapshots diverged.
    Nondeterminism,
    /// The access witness observed a *read* of a path the declared
    /// footprint covers with neither its read nor its write set: some
    /// state outside the declaration observably influences the method's
    /// behavior, so every footprint-based commutation judgment about it
    /// is unsound. Detected by perturbation probing
    /// ([`guesstimate_core::execute_witnessed`]).
    UndeclaredRead,
    /// The access witness observed a *write* escaping the declared write
    /// set. Overlaps [`ViolationKind::FootprintUnderApproximation`] in
    /// spirit, but the witness samples the case product with a stride, so
    /// it can reach state/argument corners the sequential write sanitizer
    /// stops short of.
    UndeclaredWrite,
    /// The static judgment says every enumerated argument pair is disjoint,
    /// yet the semantic validator found a commutation counterexample: the
    /// declared footprints are wrong in a way the write-diff check alone
    /// cannot see. Historically this was the only net that could snag an
    /// undeclared read; the witness sanitizer now refutes those directly
    /// ([`ViolationKind::UndeclaredRead`]), leaving this check as a
    /// backstop for dependences no perturbation surfaced.
    StaticSemanticDisagreement,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::UndeclaredEffect => "undeclared-effect",
            ViolationKind::UnanalyzedMethod => "unanalyzed-method",
            ViolationKind::FootprintUnderApproximation => "footprint-under-approximation",
            ViolationKind::Nondeterminism => "nondeterminism",
            ViolationKind::UndeclaredRead => "undeclared-read",
            ViolationKind::UndeclaredWrite => "undeclared-write",
            ViolationKind::StaticSemanticDisagreement => "static-semantic-disagreement",
        })
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct AnalysisViolation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The object type.
    pub type_name: String,
    /// The offending method (or method pair, rendered `a;b`).
    pub method: String,
    /// Human-readable details (counterexample state/arguments).
    pub detail: String,
}

impl fmt::Display for AnalysisViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}::{} — {}",
            self.kind, self.type_name, self.method, self.detail
        )
    }
}

/// The argument space of one method, for sanitizing and pairing.
///
/// Usually derived from the app's [`SpecSuite`] via
/// [`method_spaces_from_suite`]; methods the suite omits get explicit
/// spaces from the caller.
#[derive(Debug, Clone)]
pub struct MethodSpace {
    /// Registered method name.
    pub method: String,
    /// Argument vectors to enumerate.
    pub args: Vec<Vec<Value>>,
    /// True if `args` covers all relevant argument vectors (up to
    /// symmetry); required for a `Commute`-by-enumeration verdict.
    pub args_exhaustive: bool,
}

/// Extracts one [`MethodSpace`] per method of a spec suite.
pub fn method_spaces_from_suite(suite: &SpecSuite) -> Vec<MethodSpace> {
    suite
        .methods
        .iter()
        .map(|m| MethodSpace {
            method: m.method.clone(),
            args: m.arg_space.clone(),
            args_exhaustive: m.args_exhaustive,
        })
        .collect()
}

/// The classification of one (unordered) method pair.
#[derive(Debug, Clone)]
pub struct PairReport {
    /// First method (lexicographically ≤ `b`).
    pub a: String,
    /// Second method.
    pub b: String,
    /// The verdict.
    pub classification: Classification,
    /// Cases (state × args × args) evaluated.
    pub cases: usize,
    /// True if every enumerated argument pair had disjoint declared
    /// footprints (the static judgment).
    pub static_commute: bool,
    /// A rendered counterexample, when conflicting.
    pub counterexample: Option<String>,
}

/// The analysis output for one application type.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// The object type analyzed.
    pub type_name: String,
    /// Methods covered, sorted.
    pub methods: Vec<String>,
    /// One entry per unordered method pair (including the diagonal).
    pub pairs: Vec<PairReport>,
    /// All lint violations.
    pub violations: Vec<AnalysisViolation>,
    /// Non-fatal advisories — currently dead-footprint warnings: declared
    /// paths the access witness never observed touched across the sampled
    /// state × argument domain. Over-approximation is sound (declaring too
    /// much only costs commutation opportunities), so these never affect
    /// [`AppReport::is_clean`] or the `analyze` exit code; they point at
    /// specs worth tightening.
    pub warnings: Vec<String>,
}

impl AppReport {
    /// True if the app passed the lint (no violations of any kind).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The classification of a method pair (order-insensitive).
    pub fn classification(&self, m1: &str, m2: &str) -> Option<Classification> {
        let (a, b) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        self.pairs
            .iter()
            .find(|p| p.a == a && p.b == b)
            .map(|p| p.classification)
    }

    /// Extracts the validated always-commute pairs as a [`CommuteMatrix`]
    /// for the runtime's fast path.
    pub fn commute_matrix(&self) -> CommuteMatrix {
        let mut m = CommuteMatrix::new();
        for p in &self.pairs {
            if p.classification == Classification::Commute {
                m.insert(&self.type_name, &p.a, &p.b);
            }
        }
        m
    }

    /// The type's *universal commuters*: methods classified `Commute`
    /// against **every** method of the type, the diagonal pair included,
    /// that also declare an `EffectSpec` (no undeclared-effect violation).
    ///
    /// These are exactly the methods the runtime's hybrid async commit
    /// path (`MachineConfig::async_commit`) may commit without a round:
    /// commuting with anything that can ever interleave — in both final
    /// state and results — makes arrival-order application
    /// observationally equivalent to the total order. Mirrors
    /// `guesstimate_runtime::commute::universal_commuters`, computed here
    /// from the analysis verdicts instead of a validated matrix.
    pub fn universal_commuters(&self) -> Vec<String> {
        self.methods
            .iter()
            .filter(|m| {
                !self
                    .violations
                    .iter()
                    .any(|v| v.kind == ViolationKind::UndeclaredEffect && &v.method == *m)
            })
            .filter(|m| {
                self.methods
                    .iter()
                    .all(|o| self.classification(m, o) == Some(Classification::Commute))
            })
            .cloned()
            .collect()
    }

    /// Renders the conflict matrix as an aligned text grid: `C` commute,
    /// `X` conflict, `?` unknown.
    pub fn format_matrix(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let w = self
            .methods
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(6)
            .max(6);
        let _ = write!(out, "{:<w$}", self.type_name, w = w + 1);
        for m in &self.methods {
            let _ = write!(out, " {m:>w$}", w = w.min(m.len().max(4)));
        }
        let _ = writeln!(out);
        for m1 in &self.methods {
            let _ = write!(out, "{m1:<w$}", w = w + 1);
            for m2 in &self.methods {
                let sym = match self.classification(m1, m2) {
                    Some(Classification::Commute) => 'C',
                    Some(Classification::Conflict) => 'X',
                    Some(Classification::Unknown) => '?',
                    None => '-',
                };
                let _ = write!(out, " {sym:>w$}", w = w.min(m2.len().max(4)));
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn scratch_id() -> ObjectId {
    ObjectId::new(MachineId::new(u32::MAX), u64::MAX)
}

/// Restores `state` into a fresh object and executes `ops` in order.
/// Returns each op's success flag and the final snapshot, or `None` when
/// the state does not restore into this type.
fn run_seq(
    registry: &OpRegistry,
    type_name: &str,
    state: &Value,
    ops: &[(&str, &[Value])],
) -> Option<(Vec<bool>, Value)> {
    let id = scratch_id();
    let mut obj = registry.construct(type_name).ok()?;
    if obj.restore(state).is_err() {
        return None;
    }
    let mut store = ObjectStore::new();
    store.insert(id, obj);
    let mut results = Vec::with_capacity(ops.len());
    for (method, args) in ops {
        let op = SharedOp::primitive(id, *method, args.to_vec());
        results.push(execute(&op, &mut store, registry).ok()?.is_success());
    }
    Some((results, store.get(id)?.snapshot()))
}

fn render_case(state: &Value, a1: &[Value], a2: &[Value]) -> String {
    let mut s = format!("state={state:?} args1={a1:?} args2={a2:?}");
    if s.len() > 240 {
        s.truncate(240);
        s.push('…');
    }
    s
}

/// Per-method case cap for the access-witness sanitizer.
///
/// Witnessed execution re-runs the method once per perturbation candidate
/// of every pre-state path ([`guesstimate_core::ProbeReads::All`]), so a
/// case costs two to three orders of magnitude more than the plain
/// write-diff sanitizer's. The witness loop therefore samples the
/// state × argument product with a stride instead of walking its prefix —
/// same total budget, spread across the whole domain.
const WITNESS_CASE_CAP: usize = 192;

/// Drives each (still-sanitized) method's sampled case domain through
/// [`guesstimate_core::execute_witnessed`] and returns the witness
/// violations, the dead-footprint warnings, and the set of refuted
/// methods.
fn witness_sanitize(
    registry: &OpRegistry,
    type_name: &str,
    spaces: &[MethodSpace],
    space: &CaseSpace,
    sanitized: &BTreeSet<&str>,
) -> (Vec<AnalysisViolation>, Vec<String>, BTreeSet<String>) {
    let mut violations = Vec::new();
    let mut warnings = Vec::new();
    let mut refuted: BTreeSet<String> = BTreeSet::new();
    let id = scratch_id();
    for ms in spaces {
        // Methods already refuted (or lacking a declared effect) are not
        // worth the probing cost; their verdicts are already poisoned.
        if !sanitized.contains(ms.method.as_str()) {
            continue;
        }
        let Some(effect) = registry.effect_of(type_name, &ms.method) else {
            continue;
        };
        let total = space.states.len() * ms.args.len();
        if total == 0 {
            continue;
        }
        let cap = space.max_cases.clamp(1, WITNESS_CASE_CAP);
        let stride = total.div_ceil(cap);
        let mut declared_union: BTreeSet<String> = BTreeSet::new();
        let mut observed_union: BTreeSet<String> = BTreeSet::new();
        let mut sampled = 0usize;
        let mut escaped = false;
        'method: for (case_idx, (state, argv)) in space
            .states
            .iter()
            .flat_map(|s| ms.args.iter().map(move |a| (s, a)))
            .enumerate()
        {
            if case_idx % stride != 0 {
                continue;
            }
            let Ok(mut obj) = registry.construct(type_name) else {
                break;
            };
            if obj.restore(state).is_err() {
                continue;
            }
            let mut store = ObjectStore::new();
            store.insert(id, obj);
            let op = SharedOp::primitive(id, ms.method.as_str(), argv.clone());
            let Ok((_, witness)) = execute_witnessed(&op, &mut store, registry, ProbeReads::All)
            else {
                continue;
            };
            sampled += 1;
            let fp = effect.footprint(ArgView::new(argv));
            declared_union.extend(fp.reads.iter().cloned());
            declared_union.extend(fp.writes.iter().cloned());
            for w in witness.values() {
                observed_union.extend(w.reads.iter().cloned());
                observed_union.extend(w.writes.iter().cloned());
            }
            let declared = BTreeMap::from([(id, fp)]);
            if let Some(e) = containment_escapes(&witness, &declared).first() {
                let fp = &declared[&id];
                violations.push(AnalysisViolation {
                    kind: match e.kind {
                        AccessKind::Read => ViolationKind::UndeclaredRead,
                        AccessKind::Write => ViolationKind::UndeclaredWrite,
                    },
                    type_name: type_name.to_owned(),
                    method: ms.method.clone(),
                    detail: format!(
                        "witness observed {e}; declared reads {:?} writes {:?} ({})",
                        fp.reads,
                        fp.writes,
                        render_case(state, argv, &[])
                    ),
                });
                refuted.insert(ms.method.clone());
                escaped = true;
                break 'method;
            }
        }
        // Dead-footprint advisory: a declared path no sampled case ever
        // touched. Computed over the same sampled cases as the observed
        // union, so a path declared only for arguments the stride skipped
        // is not reported.
        if !escaped && sampled > 0 {
            let dead: Vec<&String> = declared_union
                .iter()
                .filter(|d| !observed_union.iter().any(|o| paths_overlap(d, o)))
                .collect();
            if !dead.is_empty() {
                let mut listed: Vec<String> =
                    dead.iter().take(8).map(|d| format!("{d:?}")).collect();
                if dead.len() > listed.len() {
                    listed.push(format!("… {} more", dead.len() - listed.len()));
                }
                warnings.push(format!(
                    "{type_name}::{} declares {} never observed touched across {sampled} sampled cases — consider tightening the footprint",
                    ms.method,
                    listed.join(", "),
                ));
            }
        }
    }
    (violations, warnings, refuted)
}

/// Runs the full analysis for one application type.
///
/// `spaces` must cover every registered method of `type_name` (missing
/// methods produce an [`ViolationKind::UnanalyzedMethod`] violation);
/// `space` supplies the state enumeration and the per-method case cap
/// (`max_cases` also caps each pair's `state × args × args` product).
pub fn analyze_app(
    registry: &OpRegistry,
    type_name: &str,
    spaces: &[MethodSpace],
    space: &CaseSpace,
) -> AppReport {
    let mut violations = Vec::new();

    // --- coverage lints -------------------------------------------------
    for m in registry.methods_without_effects(type_name) {
        violations.push(AnalysisViolation {
            kind: ViolationKind::UndeclaredEffect,
            type_name: type_name.to_owned(),
            method: m.to_owned(),
            detail: "registered without an EffectSpec".to_owned(),
        });
    }
    let methods: Vec<String> = registry
        .methods_of(type_name)
        .into_iter()
        .map(str::to_owned)
        .collect();
    for m in &methods {
        if !spaces.iter().any(|s| &s.method == m) {
            violations.push(AnalysisViolation {
                kind: ViolationKind::UnanalyzedMethod,
                type_name: type_name.to_owned(),
                method: m.clone(),
                detail: "no argument space supplied for analysis".to_owned(),
            });
        }
    }

    // Sort the method spaces so every downstream list — violations, pairs,
    // the rendered matrix — is deterministic regardless of caller order.
    let mut sorted_spaces = spaces.to_vec();
    sorted_spaces.sort_by(|x, y| x.method.cmp(&y.method));
    let spaces = &sorted_spaces[..];

    // --- sanitizers: determinism + footprint writes ---------------------
    // Methods whose declared footprints survive the sanitizer; only these
    // may be promoted to Commute by the static judgment.
    let mut sanitized: BTreeSet<&str> = BTreeSet::new();
    for ms in spaces {
        let mut clean = registry.effect_of(type_name, &ms.method).is_some();
        let mut cases = 0usize;
        'outer: for state in &space.states {
            for argv in &ms.args {
                if cases >= space.max_cases {
                    break 'outer;
                }
                let Some((r1, post1)) = run_seq(registry, type_name, state, &[(&ms.method, argv)])
                else {
                    continue;
                };
                cases += 1;
                // Determinism: identical snapshot, identical outcome.
                let rerun = run_seq(registry, type_name, state, &[(&ms.method, argv)]);
                if rerun.as_ref().map(|(r, p)| (r, p)) != Some((&r1, &post1)) {
                    clean = false;
                    violations.push(AnalysisViolation {
                        kind: ViolationKind::Nondeterminism,
                        type_name: type_name.to_owned(),
                        method: ms.method.clone(),
                        detail: render_case(state, argv, &[]),
                    });
                    break 'outer;
                }
                // Footprint: every observed write covered by the declaration.
                if let Some(effect) = registry.effect_of(type_name, &ms.method) {
                    let fp = effect.footprint(ArgView::new(argv));
                    for path in snapshot_diff(state, &post1) {
                        if !fp.writes_cover(&path) {
                            clean = false;
                            violations.push(AnalysisViolation {
                                kind: ViolationKind::FootprintUnderApproximation,
                                type_name: type_name.to_owned(),
                                method: ms.method.clone(),
                                detail: format!(
                                    "observed write at {path:?} not in declared writes {:?} ({})",
                                    fp.writes,
                                    render_case(state, argv, &[])
                                ),
                            });
                            break 'outer;
                        }
                    }
                }
            }
        }
        if clean {
            sanitized.insert(&ms.method);
        }
    }

    // --- access-witness sanitizer ----------------------------------------
    let (witness_violations, warnings, refuted) =
        witness_sanitize(registry, type_name, spaces, space, &sanitized);
    violations.extend(witness_violations);
    for m in &refuted {
        sanitized.remove(m.as_str());
    }

    // --- pairwise commutativity -----------------------------------------
    let mut pairs = Vec::new();
    for (i, ms1) in spaces.iter().enumerate() {
        for ms2 in spaces.iter().skip(i) {
            let (a, b) = if ms1.method <= ms2.method {
                (ms1, ms2)
            } else {
                (ms2, ms1)
            };
            let fx1 = registry.effect_of(type_name, &a.method);
            let fx2 = registry.effect_of(type_name, &b.method);
            // Static judgment: disjoint declared footprints for EVERY
            // argument pair. This scans the full (uncapped) argument
            // product — it is pure footprint evaluation, no execution —
            // and requires both spaces to be exhaustive, since the verdict
            // generalizes to arbitrary runtime arguments.
            let static_commute = match (fx1, fx2) {
                (Some(f1), Some(f2)) if a.args_exhaustive && b.args_exhaustive => {
                    a.args.iter().all(|a1| {
                        let fp1 = f1.footprint(ArgView::new(a1));
                        b.args
                            .iter()
                            .all(|a2| fp1.disjoint(&f2.footprint(ArgView::new(a2))))
                    })
                }
                _ => false,
            }
            // Diagonal pairs may instead carry a declared `self_commuting`
            // claim (e.g. blind counters: the write overlaps itself, but
            // addition is order-insensitive). The claim is accepted only
            // with exhaustive argument coverage, and the dynamic sweep
            // below refutes a false one the same way it refutes an
            // under-declared footprint.
            || (a.method == b.method
                && a.args_exhaustive
                && fx1.is_some_and(EffectSpec::is_self_commuting));
            let mut counterexample = None;
            let mut cases = 0usize;
            let mut truncated = false;
            'pair: for state in &space.states {
                for a1 in &a.args {
                    for a2 in &b.args {
                        if cases >= space.max_cases {
                            truncated = true;
                            break 'pair;
                        }
                        let ab = run_seq(
                            registry,
                            type_name,
                            state,
                            &[(&a.method, a1), (&b.method, a2)],
                        );
                        let ba = run_seq(
                            registry,
                            type_name,
                            state,
                            &[(&b.method, a2), (&a.method, a1)],
                        );
                        cases += 1;
                        let (Some((rab, sab)), Some((rba, sba))) = (ab, ba) else {
                            continue;
                        };
                        // s1;s2 ≡ s2;s1: same final snapshot AND each op
                        // reports the same result in both orders.
                        if sab != sba || rab[0] != rba[1] || rab[1] != rba[0] {
                            counterexample = Some(render_case(state, a1, a2));
                            break 'pair;
                        }
                    }
                }
            }
            let complete =
                space.states_exhaustive && a.args_exhaustive && b.args_exhaustive && !truncated;
            let static_ok = static_commute
                && sanitized.contains(a.method.as_str())
                && sanitized.contains(b.method.as_str());
            let classification = if counterexample.is_some() {
                if static_ok {
                    // A semantic counterexample under a static "disjoint"
                    // verdict means the declaration is wrong in a way that
                    // slipped past both the write-diff sanitizer and the
                    // witness probes — a dependence no perturbation
                    // surfaced. Rare since the witness sanitizer refutes
                    // undeclared reads directly, but kept as a backstop.
                    violations.push(AnalysisViolation {
                        kind: ViolationKind::StaticSemanticDisagreement,
                        type_name: type_name.to_owned(),
                        method: format!("{};{}", a.method, b.method),
                        detail: counterexample.clone().unwrap_or_default(),
                    });
                }
                Classification::Conflict
            } else if refuted.contains(a.method.as_str()) || refuted.contains(b.method.as_str()) {
                // A witness-refuted footprint poisons every judgment about
                // the method: the enumeration sweep only exercises the
                // states it was given, and a method caught accessing
                // outside its declaration is exactly the kind whose
                // conflicts hide in states the sweep missed. Force the
                // pair conservative, excluding the method from the matrix
                // (and hence from the hybrid path's universal commuters).
                Classification::Conflict
            } else if complete || static_ok {
                Classification::Commute
            } else {
                Classification::Unknown
            };
            pairs.push(PairReport {
                a: a.method.clone(),
                b: b.method.clone(),
                classification,
                cases,
                static_commute,
                counterexample,
            });
        }
    }

    // Belt and braces on top of the space sort: the report's pair list is
    // ordered by (a, b) no matter how the loop above evolves.
    pairs.sort_by(|x: &PairReport, y: &PairReport| (&x.a, &x.b).cmp(&(&y.a, &y.b)));

    AppReport {
        type_name: type_name.to_owned(),
        methods,
        pairs,
        violations,
        warnings,
    }
}

/// Renders a full analysis run as the archivable JSON document (schema
/// version 2):
///
/// ```json
/// {"version": 2, "apps": [{"type": ..., "methods": [...], "clean": true,
///   "pairs": [{"a", "b", "classification", "cases", "static_commute",
///   "counterexample"}, ...], "violations": [...], "warnings": [...]}]}
/// ```
///
/// Version 2 extended version 1 with the per-app `warnings` list (the
/// witness sanitizer's dead-footprint advisories) and the two witness
/// violation kinds in `violations[].kind`; version 3 adds the optional
/// per-app `shard_plan` object ([`report_to_json_with_plans`]). Everything
/// earlier versions carried is unchanged, so readers of any accepted
/// version interoperate.
///
/// CI archives this file per run; [`matrices_from_json`] reads it back
/// into a [`CommuteMatrix`] so downstream tools (the model checker, the
/// runtime's replay skipping) reuse the validated verdicts without
/// re-running the bounded-exhaustive validator, and
/// [`shard_plans_from_json`] recovers the
/// [`guesstimate_core::ShardPlan`] for the runtime's router.
pub fn report_to_json(reports: &[AppReport]) -> String {
    report_to_json_with_plans(reports, None)
}

/// [`report_to_json`] with an optional shard plan: each app whose type the
/// plan covers gains a `"shard_plan"` field. Prefix patterns render via
/// [`guesstimate_core::PathPattern::render`], which percent-escapes `/`
/// (and pattern metacharacters) inside literal segments so a rendered
/// prefix always splits unambiguously.
pub fn report_to_json_with_plans(
    reports: &[AppReport],
    plans: Option<&guesstimate_core::ShardPlan>,
) -> String {
    use guesstimate_core::Routing;
    use json::Json;
    use std::collections::BTreeMap;
    let apps: Vec<Json> = reports
        .iter()
        .map(|r| {
            let mut app = BTreeMap::new();
            if let Some(tp) = plans.and_then(|p| p.types.get(&r.type_name)) {
                let components: Vec<Json> = tp
                    .components
                    .iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let mut m = BTreeMap::new();
                        m.insert("id".to_owned(), Json::Num(i as f64));
                        m.insert("keyed".to_owned(), Json::Bool(c.keyed));
                        m.insert(
                            "prefixes".to_owned(),
                            Json::List(c.prefixes.iter().map(|p| Json::Str(p.render())).collect()),
                        );
                        Json::Map(m)
                    })
                    .collect();
                let routes: BTreeMap<String, Json> = tp
                    .routes
                    .iter()
                    .map(|(method, route)| {
                        let mut m = BTreeMap::new();
                        match route {
                            Routing::Local { component, key_arg } => {
                                m.insert("kind".to_owned(), Json::Str("local".to_owned()));
                                m.insert("component".to_owned(), Json::Num(f64::from(*component)));
                                m.insert(
                                    "key_arg".to_owned(),
                                    match key_arg {
                                        Some(i) => Json::Num(*i as f64),
                                        None => Json::Null,
                                    },
                                );
                            }
                            Routing::CrossShard => {
                                m.insert("kind".to_owned(), Json::Str("cross".to_owned()));
                            }
                        }
                        (method.clone(), Json::Map(m))
                    })
                    .collect();
                let mut sp = BTreeMap::new();
                sp.insert("components".to_owned(), Json::List(components));
                sp.insert("routes".to_owned(), Json::Map(routes));
                app.insert("shard_plan".to_owned(), Json::Map(sp));
            }
            app.insert("type".to_owned(), Json::Str(r.type_name.clone()));
            app.insert(
                "methods".to_owned(),
                Json::List(r.methods.iter().cloned().map(Json::Str).collect()),
            );
            app.insert("clean".to_owned(), Json::Bool(r.is_clean()));
            app.insert(
                "universal_commuters".to_owned(),
                Json::List(r.universal_commuters().into_iter().map(Json::Str).collect()),
            );
            app.insert(
                "pairs".to_owned(),
                Json::List(
                    r.pairs
                        .iter()
                        .map(|p| {
                            let mut m = BTreeMap::new();
                            m.insert("a".to_owned(), Json::Str(p.a.clone()));
                            m.insert("b".to_owned(), Json::Str(p.b.clone()));
                            m.insert(
                                "classification".to_owned(),
                                Json::Str(p.classification.to_string()),
                            );
                            m.insert("cases".to_owned(), Json::Num(p.cases as f64));
                            m.insert("static_commute".to_owned(), Json::Bool(p.static_commute));
                            m.insert(
                                "counterexample".to_owned(),
                                match &p.counterexample {
                                    Some(c) => Json::Str(c.clone()),
                                    None => Json::Null,
                                },
                            );
                            Json::Map(m)
                        })
                        .collect(),
                ),
            );
            app.insert(
                "violations".to_owned(),
                Json::List(
                    r.violations
                        .iter()
                        .map(|v| {
                            let mut m = BTreeMap::new();
                            m.insert("kind".to_owned(), Json::Str(v.kind.to_string()));
                            m.insert("method".to_owned(), Json::Str(v.method.clone()));
                            m.insert("detail".to_owned(), Json::Str(v.detail.clone()));
                            Json::Map(m)
                        })
                        .collect(),
                ),
            );
            app.insert(
                "warnings".to_owned(),
                Json::List(r.warnings.iter().cloned().map(Json::Str).collect()),
            );
            Json::Map(app)
        })
        .collect();
    let mut doc = BTreeMap::new();
    doc.insert("version".to_owned(), Json::Num(3.0));
    doc.insert("apps".to_owned(), Json::List(apps));
    Json::Map(doc).to_string()
}

/// Reads an archive written by [`report_to_json`] back into the combined
/// [`CommuteMatrix`] over all apps (the union of every app's validated
/// always-commute pairs).
///
/// # Errors
///
/// Returns a description of the first syntactic or shape problem; an
/// archive recording any `Conflict`-free schema but zero apps yields an
/// empty matrix, not an error.
pub fn matrices_from_json(text: &str) -> Result<CommuteMatrix, String> {
    use json::Json;
    let doc = Json::parse(text)?;
    // Accept every schema version whose `pairs` shape is unchanged:
    // versions 2 and 3 only added fields this reader ignores.
    match doc.get("version").and_then(Json::as_u64) {
        Some(1..=3) => {}
        Some(v) => return Err(format!("unsupported archive version {v}")),
        None => return Err("missing `version`".to_owned()),
    }
    let apps = doc
        .get("apps")
        .and_then(Json::as_list)
        .ok_or("missing `apps` array")?;
    let mut matrix = CommuteMatrix::new();
    for app in apps {
        let ty = app
            .get("type")
            .and_then(Json::as_str)
            .ok_or("app missing `type`")?;
        let pairs = app
            .get("pairs")
            .and_then(Json::as_list)
            .ok_or("app missing `pairs`")?;
        for p in pairs {
            let (Some(a), Some(b), Some(c)) = (
                p.get("a").and_then(Json::as_str),
                p.get("b").and_then(Json::as_str),
                p.get("classification").and_then(Json::as_str),
            ) else {
                return Err("pair missing a/b/classification".to_owned());
            };
            if c == "Commute" {
                matrix.insert(ty, a, b);
            }
        }
    }
    Ok(matrix)
}

/// Reads the per-app `shard_plan` objects of a schema-v3 archive back into
/// a combined [`guesstimate_core::ShardPlan`]. Now a thin wrapper over
/// [`guesstimate_core::ShardPlan::from_json_archive`], which moved to the
/// core crate so the runtime can load plans without depending on the
/// analyzer.
///
/// # Errors
///
/// Returns a description of the first syntactic or shape problem (see
/// [`guesstimate_core::ShardPlan::from_json_archive`]).
pub fn shard_plans_from_json(text: &str) -> Result<guesstimate_core::ShardPlan, String> {
    guesstimate_core::ShardPlan::from_json_archive(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::{args, EffectSpec, Footprint, GState, RestoreError};

    /// Two independent cells plus an append-only log.
    #[derive(Clone, Default)]
    struct Cells {
        a: i64,
        b: i64,
        log: Vec<i64>,
    }

    impl GState for Cells {
        const TYPE_NAME: &'static str = "Cells";
        fn snapshot(&self) -> Value {
            Value::map([
                ("a", Value::from(self.a)),
                ("b", Value::from(self.b)),
                ("log", self.log.iter().map(|&x| Value::from(x)).collect()),
            ])
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            let shape = || RestoreError::shape("cells");
            self.a = v.field("a").and_then(Value::as_i64).ok_or_else(shape)?;
            self.b = v.field("b").and_then(Value::as_i64).ok_or_else(shape)?;
            self.log = v
                .field("log")
                .and_then(Value::as_list)
                .ok_or_else(shape)?
                .iter()
                .map(|x| x.as_i64().ok_or_else(shape))
                .collect::<Result<_, _>>()?;
            Ok(())
        }
    }

    fn cell_effect(key: &'static str) -> EffectSpec {
        EffectSpec::new(move |_| Footprint::new().reads([key]).writes([key]))
    }

    fn registry() -> OpRegistry {
        let mut r = OpRegistry::new();
        r.register_type::<Cells>();
        r.register_with_effects::<Cells>("set_a", cell_effect("a"), |s, a| {
            let Some(v) = a.i64(0) else { return false };
            s.a = v;
            true
        });
        r.register_with_effects::<Cells>("set_b", cell_effect("b"), |s, a| {
            let Some(v) = a.i64(0) else { return false };
            s.b = v;
            true
        });
        r.register_with_effects::<Cells>(
            "append",
            EffectSpec::new(|_| Footprint::new().reads(["log"]).writes(["log"])),
            |s, a| {
                let Some(v) = a.i64(0) else { return false };
                s.log.push(v);
                true
            },
        );
        // BUG for the sanitizer: declares `a` but also writes `b`.
        r.register_with_effects::<Cells>("sneaky", cell_effect("a"), |s, a| {
            let Some(v) = a.i64(0) else { return false };
            s.a = v;
            s.b = v;
            true
        });
        // BUG for the witness sanitizer: writes exactly what it declares,
        // but silently *reads* `b` — invisible to the write-diff check.
        r.register_with_effects::<Cells>("copy_b_to_a", cell_effect("a"), |s, _| {
            s.a = s.b;
            true
        });
        r
    }

    fn states() -> Vec<Value> {
        let mut one = Cells {
            a: 1,
            ..Cells::default()
        };
        one.log.push(7);
        vec![GState::snapshot(&Cells::default()), GState::snapshot(&one)]
    }

    fn spc(method: &str) -> MethodSpace {
        MethodSpace {
            method: method.to_owned(),
            args: vec![args![1], args![2]],
            // Small-scope abstraction: the cell setters ignore which value
            // is stored, so two representatives cover the space.
            args_exhaustive: true,
        }
    }

    #[test]
    fn diff_reports_leaf_and_structural_changes() {
        let mut x = Cells::default();
        let pre = GState::snapshot(&x);
        x.a = 5;
        x.log.push(1);
        let d = snapshot_diff(&pre, &GState::snapshot(&x));
        assert_eq!(d, vec!["a".to_owned(), "log".to_owned()]);
        assert!(snapshot_diff(&pre, &pre).is_empty());
        // Equal-length lists diff per index.
        let l1: Value = [1, 2].iter().map(|&x| Value::from(x)).collect();
        let l2: Value = [1, 3].iter().map(|&x| Value::from(x)).collect();
        assert_eq!(snapshot_diff(&l1, &l2), vec!["1".to_owned()]);
        // Type mismatch at the root reports the root.
        assert_eq!(snapshot_diff(&Value::from(1), &l2), vec![String::new()]);
    }

    #[test]
    fn disjoint_footprints_classify_as_commute() {
        let report = analyze_app(
            &registry(),
            "Cells",
            &[spc("set_a"), spc("set_b"), spc("append")],
            &CaseSpace::sampled(states(), 10_000),
        );
        assert_eq!(
            report.classification("set_a", "set_b"),
            Some(Classification::Commute),
            "statically disjoint"
        );
        assert_eq!(
            report.classification("set_a", "append"),
            Some(Classification::Commute)
        );
        // sneaky is registered but unanalyzed → violation, not a crash.
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::UnanalyzedMethod && v.method == "sneaky"));
    }

    #[test]
    fn json_archive_roundtrips_to_the_same_matrix() {
        let report = analyze_app(
            &registry(),
            "Cells",
            &[spc("set_a"), spc("set_b"), spc("append")],
            &CaseSpace::sampled(states(), 10_000),
        );
        let direct = report.commute_matrix();
        let text = report_to_json(std::slice::from_ref(&report));
        let restored = matrices_from_json(&text).expect("archive parses");
        assert_eq!(restored.len(), direct.len());
        for m1 in &report.methods {
            for m2 in &report.methods {
                assert_eq!(
                    restored.commutes("Cells", m1, m2),
                    direct.commutes("Cells", m1, m2),
                    "{m1};{m2}"
                );
            }
        }
        // Violations and verdicts are preserved verbatim.
        let doc = json::Json::parse(&text).unwrap();
        let app = &doc.get("apps").unwrap().as_list().unwrap()[0];
        assert_eq!(app.get("clean").unwrap().as_bool(), Some(false));
        assert!(!app.get("violations").unwrap().as_list().unwrap().is_empty());
    }

    #[test]
    fn matrices_from_json_rejects_bad_archives() {
        assert!(matrices_from_json("{").is_err());
        assert!(matrices_from_json("{\"apps\": []}").is_err(), "no version");
        // An unknown future version fails with a *named* error, not a panic.
        let err = matrices_from_json("{\"version\": 4, \"apps\": []}").unwrap_err();
        assert!(err.contains("unsupported archive version 4"), "{err}");
        let err = shard_plans_from_json("{\"version\": 4, \"apps\": []}").unwrap_err();
        assert!(err.contains("unsupported archive version 4"), "{err}");
        // All shipped schema versions are accepted: v1 archives predate
        // the witness fields, v2 archives carry them, v3 adds shard plans.
        for v in [1, 2, 3] {
            let empty = matrices_from_json(&format!("{{\"version\": {v}, \"apps\": []}}")).unwrap();
            assert!(empty.is_empty());
        }
    }

    /// Version-negotiation fixtures: a minimal archive of each shipped
    /// schema version loads into the same commute matrix.
    #[test]
    fn matrices_from_json_loads_v1_v2_v3_fixtures() {
        let v1 = r#"{"version": 1, "apps": [{"type": "Cells", "pairs": [
            {"a": "set_a", "b": "set_b", "classification": "Commute"}]}]}"#;
        let v2 = r#"{"version": 2, "apps": [{"type": "Cells", "warnings": [], "pairs": [
            {"a": "set_a", "b": "set_b", "classification": "Commute",
             "cases": 4, "static_commute": true, "counterexample": null}]}]}"#;
        let v3 = r#"{"version": 3, "apps": [{"type": "Cells", "warnings": [], "pairs": [
            {"a": "set_a", "b": "set_b", "classification": "Commute",
             "cases": 4, "static_commute": true, "counterexample": null}],
            "shard_plan": {"components": [{"id": 0, "keyed": false, "prefixes": ["a"]}],
                           "routes": {"set_a": {"kind": "local", "component": 0, "key_arg": null},
                                      "set_b": {"kind": "cross"}}}}]}"#;
        for text in [v1, v2, v3] {
            let m = matrices_from_json(text).unwrap();
            assert!(m.commutes("Cells", "set_a", "set_b"), "fixture: {text}");
        }
        // Only the v3 fixture carries a plan; earlier versions load empty.
        assert!(shard_plans_from_json(v1).unwrap().types.is_empty());
        assert!(shard_plans_from_json(v2).unwrap().types.is_empty());
        let plan = shard_plans_from_json(v3).unwrap();
        let tp = &plan.types["Cells"];
        assert_eq!(tp.components.len(), 1);
        assert!(!tp.components[0].keyed);
        assert_eq!(
            tp.routes["set_a"],
            guesstimate_core::Routing::Local {
                component: 0,
                key_arg: None
            }
        );
        assert_eq!(tp.routes["set_b"], guesstimate_core::Routing::CrossShard);
    }

    /// A derived plan round-trips through the v3 archive exactly.
    #[test]
    fn shard_plan_roundtrips_through_v3_json() {
        let r = registry();
        let spaces = [spc("set_a"), spc("set_b"), spc("append"), spc("sneaky")];
        let space = CaseSpace::sampled(states(), 1_000);
        let report = analyze_app(&r, "Cells", &spaces, &space);
        let tp = shard::derive_type_plan(&r, "Cells", &spaces, &report);
        assert_eq!(
            shard::derive_type_plan(&r, "Cells", &spaces, &report),
            tp,
            "derivation is deterministic"
        );
        let mut plan = guesstimate_core::ShardPlan::new();
        plan.types.insert("Cells".to_owned(), tp);
        let text = report_to_json_with_plans(std::slice::from_ref(&report), Some(&plan));
        let reread = shard_plans_from_json(&text).unwrap();
        assert_eq!(reread, plan);
    }

    #[test]
    fn self_pairs_detect_order_sensitivity() {
        let report = analyze_app(
            &registry(),
            "Cells",
            &[spc("set_a"), spc("append")],
            &CaseSpace::sampled(states(), 10_000),
        );
        // set_a(1); set_a(2) leaves a=2 vs a=1 — conflict on the diagonal.
        assert_eq!(
            report.classification("set_a", "set_a"),
            Some(Classification::Conflict)
        );
        // append(1); append(2) orders the log differently.
        assert_eq!(
            report.classification("append", "append"),
            Some(Classification::Conflict)
        );
    }

    #[test]
    fn footprint_sanitizer_refutes_underdeclared_writes() {
        let report = analyze_app(
            &registry(),
            "Cells",
            &[spc("set_a"), spc("set_b"), spc("append"), spc("sneaky")],
            &CaseSpace::sampled(states(), 10_000),
        );
        assert!(report.violations.iter().any(|v| {
            v.kind == ViolationKind::FootprintUnderApproximation && v.method == "sneaky"
        }));
        // sneaky's static "disjointness" with set_b must NOT yield Commute:
        // its footprint failed the sanitizer.
        assert_ne!(
            report.classification("set_b", "sneaky"),
            Some(Classification::Commute)
        );
    }

    #[test]
    fn witness_sanitizer_refutes_undeclared_reads() {
        let report = analyze_app(
            &registry(),
            "Cells",
            &[spc("set_a"), spc("set_b"), spc("copy_b_to_a")],
            &CaseSpace::sampled(states(), 10_000),
        );
        assert!(
            report.violations.iter().any(|v| {
                v.kind == ViolationKind::UndeclaredRead
                    && v.method == "copy_b_to_a"
                    && v.detail.contains("`b`")
            }),
            "violations: {:?}",
            report.violations
        );
        // Without the witness, set_b × copy_b_to_a would pass as Commute —
        // declared footprints {b} and {a} are disjoint and the write
        // sanitizer sees nothing wrong. The refutation must force it (and
        // every other pair of the method) to Conflict.
        assert_eq!(
            report.classification("set_b", "copy_b_to_a"),
            Some(Classification::Conflict)
        );
        assert_eq!(
            report.classification("set_a", "copy_b_to_a"),
            Some(Classification::Conflict)
        );
        assert!(!report
            .universal_commuters()
            .contains(&"copy_b_to_a".to_owned()));
        // The honest pair is untouched by the refutation.
        assert_eq!(
            report.classification("set_a", "set_b"),
            Some(Classification::Commute)
        );
    }

    #[test]
    fn dead_footprints_warn_without_failing_the_lint() {
        let mut r = OpRegistry::new();
        r.register_type::<Cells>();
        // Over-declared: claims to read `b`, never does.
        r.register_with_effects::<Cells>(
            "bump_a",
            EffectSpec::new(|_| Footprint::new().reads(["a", "b"]).writes(["a"])),
            |s, _| {
                s.a += 1;
                true
            },
        );
        let report = analyze_app(
            &r,
            "Cells",
            &[spc("bump_a")],
            &CaseSpace::sampled(states(), 10_000),
        );
        assert!(report.is_clean(), "over-approximation is sound");
        assert!(
            report
                .warnings
                .iter()
                .any(|w| w.contains("bump_a") && w.contains("\"b\"")),
            "warnings: {:?}",
            report.warnings
        );
        // The advisory reaches the archive too.
        let text = report_to_json(std::slice::from_ref(&report));
        let doc = json::Json::parse(&text).unwrap();
        assert_eq!(doc.get("version").and_then(json::Json::as_u64), Some(3));
        let app = &doc.get("apps").unwrap().as_list().unwrap()[0];
        assert!(!app.get("warnings").unwrap().as_list().unwrap().is_empty());
    }

    #[test]
    fn undeclared_effects_are_linted() {
        let mut r = registry();
        r.register_method::<Cells>("mystery", |_, _| true);
        let report = analyze_app(
            &r,
            "Cells",
            &[spc("set_a"), spc("set_b"), spc("append"), spc("sneaky")],
            &CaseSpace::sampled(states(), 1_000),
        );
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::UndeclaredEffect && v.method == "mystery"));
        assert!(!report.is_clean());
    }

    #[test]
    fn nondeterminism_is_detected() {
        use std::sync::atomic::{AtomicI64, Ordering};
        use std::sync::Arc;
        let mut r = OpRegistry::new();
        r.register_type::<Cells>();
        let counter = Arc::new(AtomicI64::new(0));
        r.register_with_effects::<Cells>("flaky", cell_effect("a"), move |s, _| {
            s.a = counter.fetch_add(1, Ordering::Relaxed);
            true
        });
        let report = analyze_app(
            &r,
            "Cells",
            &[spc("flaky")],
            &CaseSpace::sampled(states(), 1_000),
        );
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::Nondeterminism && v.method == "flaky"));
    }

    #[test]
    fn complete_enumeration_proves_commute_without_effects() {
        let mut r = OpRegistry::new();
        r.register_type::<Cells>();
        // No EffectSpec at all: only exhaustive enumeration can prove it.
        r.register_method::<Cells>("bump_a", |s, _| {
            s.a += 1;
            true
        });
        let spaces = [MethodSpace {
            method: "bump_a".to_owned(),
            args: vec![args![]],
            args_exhaustive: true,
        }];
        let report = analyze_app(&r, "Cells", &spaces, &CaseSpace::exhaustive(states()));
        assert_eq!(
            report.classification("bump_a", "bump_a"),
            Some(Classification::Commute),
            "increments commute; proven by complete enumeration"
        );
        // Still linted for the missing declaration.
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::UndeclaredEffect));
    }

    #[test]
    fn commute_matrix_extraction_and_formatting() {
        let report = analyze_app(
            &registry(),
            "Cells",
            &[spc("set_a"), spc("set_b"), spc("append"), spc("sneaky")],
            &CaseSpace::sampled(states(), 10_000),
        );
        let m = report.commute_matrix();
        assert!(m.commutes("Cells", "set_a", "set_b"));
        assert!(!m.commutes("Cells", "set_a", "set_a"));
        let grid = report.format_matrix();
        assert!(grid.contains("Cells"));
        assert!(grid.contains("set_a"));
        assert!(grid.contains('C') && grid.contains('X'));
    }
}
