//! Shard-partition analysis: from validated footprints to a [`ShardPlan`].
//!
//! The pass abstracts each method's concrete footprints (evaluated over its
//! analyzed argument space) into symbolic [`PathPattern`]s — path segments
//! equal to the rendering of an argument become [`Seg::Key`] candidates, and
//! argument-independent variation generalizes to [`Seg::Any`] — then builds
//! the **interference graph**: nodes are the patterns, and edges connect
//! patterns that any single method, any symbolically overlapping pattern
//! pair, or any `Conflict`-classified method pair can touch together. Its
//! connected components (union-find) are the shards.
//!
//! A component is **keyed** when every pattern binds exactly one key segment
//! and no two patterns (including a pattern against itself) can overlap
//! under distinct key values — then the runtime may split it per key, and
//! each touching method routes `Local(component, key_arg)`. Methods that
//! read [`guesstimate_core::ROOT`], lack a validated footprint, or span
//! components are `CrossShard` and require global coordination.
//!
//! Three independent validators back the construction: a static sanitizer
//! ([`sanitize_type_plan`]), a witness-backed escape check reusing the
//! bounded-exhaustive executor ([`witness_check_type_plan`]), and the
//! runtime's `paranoid_checks` containment assertion (see
//! `guesstimate-runtime`) exercised by the model checker's `ShardEscape`
//! oracle.

use std::collections::{BTreeMap, BTreeSet};

use guesstimate_core::paths::{PathPattern, Seg};
use guesstimate_core::shard::{key_render, ComponentPlan, Routing, ShardPlan, TypePlan};
use guesstimate_core::{
    execute_witnessed, ArgView, ObjectStore, OpRegistry, ProbeReads, SharedOp, ROOT,
};
use guesstimate_spec::CaseSpace;

use crate::{AppReport, Classification, MethodSpace};

/// The symbolic footprint abstraction of one method.
#[derive(Debug, Clone, Default)]
struct MethodAbstract {
    /// Patterns the method can touch (empty iff `cross` or footprint-free).
    patterns: BTreeSet<PathPattern>,
    /// True if the method must coordinate globally: it reads [`ROOT`], its
    /// pattern abstraction is unstable beyond repair, or its footprint was
    /// refuted by the sanitizers.
    cross: bool,
}

/// Abstracts one concrete footprint path against the argument vector:
/// each segment equal to the rendering of some argument becomes that
/// argument's [`Seg::Key`] (lowest index wins), everything else stays
/// literal.
fn patternize(path: &str, argv: &[guesstimate_core::Value]) -> PathPattern {
    let rendered: Vec<Option<String>> = argv.iter().map(key_render).collect();
    let segs =
        path.split('/').map(
            |seg| match rendered.iter().position(|r| r.as_deref() == Some(seg)) {
                Some(i) => Seg::Key(i),
                None => Seg::Lit(seg.to_owned()),
            },
        );
    PathPattern::new(segs)
}

/// The unification group of a pattern: length plus leading segment. Only
/// patterns in the same group are generalized together, so a computed map
/// index (`grid/13`, `grid/40`, …) widens to `grid/*` without dragging a
/// sibling family (`fixed/…`) into the same wildcard.
fn group_key(p: &PathPattern) -> (usize, Seg) {
    (
        p.segs().len(),
        p.segs().first().cloned().unwrap_or(Seg::Any),
    )
}

/// Position-wise generalization of a non-empty pattern group: segments all
/// members agree on survive, disagreeing positions widen to [`Seg::Any`].
fn unify(group: &[&PathPattern]) -> PathPattern {
    let len = group[0].segs().len();
    let segs = (0..len).map(|i| {
        let first = &group[0].segs()[i];
        if group.iter().all(|p| &p.segs()[i] == first) {
            first.clone()
        } else {
            Seg::Any
        }
    });
    PathPattern::new(segs)
}

/// Computes the symbolic abstraction of one method over its argument space.
fn abstract_method(registry: &OpRegistry, type_name: &str, ms: &MethodSpace) -> MethodAbstract {
    let Some(effect) = registry.effect_of(type_name, &ms.method) else {
        return MethodAbstract {
            cross: true,
            ..MethodAbstract::default()
        };
    };
    // Per-argument-tuple pattern sets; tuples with empty footprints (the
    // specs' malformed-argument convention) contribute nothing.
    let mut tuple_sets: Vec<BTreeSet<PathPattern>> = Vec::new();
    for argv in &ms.args {
        let fp = effect.footprint(ArgView::new(argv));
        let mut set = BTreeSet::new();
        for path in fp.reads.iter().chain(fp.writes.iter()) {
            if path == ROOT {
                // Whole-snapshot access cannot be attributed to a shard.
                return MethodAbstract {
                    cross: true,
                    ..MethodAbstract::default()
                };
            }
            set.insert(patternize(path, argv));
        }
        if !set.is_empty() {
            tuple_sets.push(set);
        }
    }
    let Some(first) = tuple_sets.first() else {
        return MethodAbstract::default(); // footprint-free
    };
    if tuple_sets.iter().all(|s| s == first) {
        return MethodAbstract {
            patterns: first.clone(),
            cross: false,
        };
    }
    // Unstable abstraction (argument-computed segments): generalize per
    // unification group — but only if every tuple exhibits the *same*
    // groups. A method whose group set itself depends on the arguments
    // (e.g. a leading segment computed from them) has no finite prefix
    // abstraction and goes cross-shard.
    let groups_of =
        |s: &BTreeSet<PathPattern>| -> BTreeSet<(usize, Seg)> { s.iter().map(group_key).collect() };
    let first_groups = groups_of(first);
    if !tuple_sets.iter().all(|s| groups_of(s) == first_groups) {
        return MethodAbstract {
            cross: true,
            ..MethodAbstract::default()
        };
    }
    let mut by_group: BTreeMap<(usize, Seg), Vec<&PathPattern>> = BTreeMap::new();
    for p in tuple_sets.iter().flatten() {
        by_group.entry(group_key(p)).or_default().push(p);
    }
    let patterns: BTreeSet<PathPattern> = by_group.values().map(|g| unify(g)).collect();
    // A widened leading segment would mean "any top-level entry" — that is
    // ROOT in disguise, not a prefix.
    if patterns
        .iter()
        .any(|p| matches!(p.segs().first(), None | Some(Seg::Any)))
    {
        return MethodAbstract {
            cross: true,
            ..MethodAbstract::default()
        };
    }
    MethodAbstract {
        patterns,
        cross: false,
    }
}

/// A plain union-find over pattern indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// The set of methods whose footprints the analysis refuted (any violation
/// naming the method, alone or as part of a pair).
fn refuted_methods(report: &AppReport) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for v in &report.violations {
        for m in v.method.split(';') {
            out.insert(m.to_owned());
        }
    }
    out
}

/// Derives the shard plan for one analyzed type.
///
/// `spaces` and `report` must come from the same [`crate::analyze_app`]
/// run: the report's `Conflict` classifications become interference edges,
/// and its violations force the offending methods cross-shard (a refuted
/// footprint proves nothing about locality).
///
/// The construction is deterministic: components are ordered by their
/// smallest pattern rendering, prefixes sorted within each component, and
/// routes keyed by method name.
pub fn derive_type_plan(
    registry: &OpRegistry,
    type_name: &str,
    spaces: &[MethodSpace],
    report: &AppReport,
) -> TypePlan {
    let refuted = refuted_methods(report);
    // Abstract every method with a validated footprint.
    let mut abstracts: BTreeMap<&str, MethodAbstract> = BTreeMap::new();
    for ms in spaces {
        let mut ab = if refuted.contains(&ms.method) {
            MethodAbstract {
                cross: true,
                ..MethodAbstract::default()
            }
        } else {
            abstract_method(registry, type_name, ms)
        };
        if ab.cross {
            ab.patterns.clear();
        }
        abstracts.insert(ms.method.as_str(), ab);
    }

    // Interference-graph nodes: the deduplicated patterns, in order.
    let nodes: Vec<PathPattern> = abstracts
        .values()
        .flat_map(|a| a.patterns.iter().cloned())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let index: BTreeMap<&PathPattern, usize> =
        nodes.iter().enumerate().map(|(i, p)| (p, i)).collect();
    let mut uf = UnionFind::new(nodes.len());

    // Edge source 1: patterns one method touches together.
    for ab in abstracts.values() {
        let idxs: Vec<usize> = ab.patterns.iter().map(|p| index[p]).collect();
        for w in idxs.windows(2) {
            uf.union(w[0], w[1]);
        }
    }
    // Edge source 2: symbolic overlap (conservative interference).
    for (i, p) in nodes.iter().enumerate() {
        for (j, q) in nodes.iter().enumerate().skip(i + 1) {
            if p.overlaps(q) {
                uf.union(i, j);
            }
        }
    }
    // Edge source 3: Conflict-classified pairs must stay orderable by one
    // synchronizer, so their pattern families merge.
    for pair in &report.pairs {
        if pair.classification != Classification::Conflict {
            continue;
        }
        let (Some(a), Some(b)) = (
            abstracts.get(pair.a.as_str()),
            abstracts.get(pair.b.as_str()),
        ) else {
            continue;
        };
        if let (Some(pa), Some(pb)) = (a.patterns.first(), b.patterns.first()) {
            uf.union(index[pa], index[pb]);
        }
    }

    // Components, ordered by smallest member pattern (node order is the
    // pattern order, and union-find roots are minimal member indices, so
    // the root order is already the deterministic component order).
    let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..nodes.len() {
        let root = uf.find(i);
        members.entry(root).or_default().push(i);
    }
    let root_component: BTreeMap<usize, u32> = members
        .keys()
        .enumerate()
        .map(|(c, root)| (*root, c as u32))
        .collect();
    let comp_of_node: Vec<u32> = (0..nodes.len())
        .map(|i| root_component[&uf.find(i)])
        .collect();
    // Every pattern of one method lands in one component (edge source 1),
    // so the first pattern identifies the method's component.
    let comp_of_method = |ab: &MethodAbstract| -> Option<u32> {
        ab.patterns.first().map(|p| comp_of_node[index[p]])
    };

    // Per-method key-argument candidate (for the keyed check and routing):
    // every pattern must bind exactly one key segment, all naming the same
    // argument index.
    let method_key_arg = |ab: &MethodAbstract| -> Option<usize> {
        let mut idxs = BTreeSet::new();
        for p in &ab.patterns {
            let ka = p.key_args();
            if ka.len() != 1 {
                return None; // unkeyed or ambiguous pattern
            }
            idxs.extend(ka);
        }
        (idxs.len() == 1).then(|| idxs.into_iter().next().unwrap())
    };

    let mut components = Vec::new();
    for (c, member_idxs) in members.values().enumerate() {
        let prefixes: Vec<PathPattern> = member_idxs.iter().map(|&i| nodes[i].clone()).collect();
        // Keyed iff every pattern binds exactly one key segment, no pair
        // (including self-pairs) can overlap under distinct keys, and every
        // touching method names a single consistent key argument.
        let keyed = prefixes
            .iter()
            .all(|p| p.key_args().len() == 1 && !p.has_wildcard())
            && prefixes.iter().enumerate().all(|(i, p)| {
                prefixes[i..]
                    .iter()
                    .all(|q| !p.overlaps_under_distinct_keys(q))
            })
            && abstracts
                .values()
                .all(|ab| comp_of_method(ab) != Some(c as u32) || method_key_arg(ab).is_some());
        components.push(ComponentPlan { prefixes, keyed });
    }

    // Routing table over every registered method.
    let mut routes = BTreeMap::new();
    for method in registry.methods_of(type_name) {
        let route = match abstracts.get(method) {
            Some(ab) if !ab.cross && !ab.patterns.is_empty() => {
                let comp = comp_of_method(ab).expect("non-empty patterns");
                let key_arg = if components[comp as usize].keyed {
                    method_key_arg(ab)
                } else {
                    None
                };
                Routing::Local {
                    component: comp,
                    key_arg,
                }
            }
            // Footprint-free, refuted, unstable, or unanalyzed: global.
            _ => Routing::CrossShard,
        };
        routes.insert(method.to_owned(), route);
    }

    TypePlan { components, routes }
}

/// Statically sanitizes a derived plan. Returns human-readable problems;
/// empty means clean. Independent of [`derive_type_plan`]'s bookkeeping —
/// it rechecks the invariants from the plan alone:
///
/// * every registered method has a route, every route's component exists;
/// * no two components share symbolically overlapping prefixes;
/// * keyed components survive the distinct-key disjointness check, and
///   their routes carry a key argument (unkeyed routes carry none).
pub fn sanitize_type_plan(registry: &OpRegistry, type_name: &str, plan: &TypePlan) -> Vec<String> {
    let mut problems = Vec::new();
    for method in registry.methods_of(type_name) {
        match plan.routes.get(method) {
            None => problems.push(format!("{type_name}::{method} has no route")),
            Some(Routing::CrossShard) => {}
            Some(Routing::Local { component, key_arg }) => {
                match plan.components.get(*component as usize) {
                    None => problems.push(format!(
                        "{type_name}::{method} routes to missing component {component}"
                    )),
                    Some(c) if c.keyed && key_arg.is_none() => problems.push(format!(
                        "{type_name}::{method} routes to keyed component {component} without a key argument"
                    )),
                    Some(c) if !c.keyed && key_arg.is_some() => problems.push(format!(
                        "{type_name}::{method} routes to unkeyed component {component} with a key argument"
                    )),
                    Some(_) => {}
                }
            }
        }
    }
    for (i, a) in plan.components.iter().enumerate() {
        if a.prefixes.is_empty() {
            problems.push(format!("{type_name} component {i} is empty"));
        }
        let mut sorted = a.prefixes.clone();
        sorted.sort();
        sorted.dedup();
        if sorted != a.prefixes {
            problems.push(format!(
                "{type_name} component {i} prefixes are not sorted/deduplicated"
            ));
        }
        for (j, b) in plan.components.iter().enumerate().skip(i + 1) {
            for p in &a.prefixes {
                for q in &b.prefixes {
                    if p.overlaps(q) {
                        problems.push(format!(
                            "{type_name} components {i} and {j} share overlapping prefixes `{p}` and `{q}`"
                        ));
                    }
                }
            }
        }
        if a.keyed {
            for (pi, p) in a.prefixes.iter().enumerate() {
                if p.key_args().len() != 1 || p.has_wildcard() {
                    problems.push(format!(
                        "{type_name} component {i} is keyed but prefix `{p}` does not bind exactly one key"
                    ));
                }
                for q in &a.prefixes[pi..] {
                    if p.overlaps_under_distinct_keys(q) {
                        problems.push(format!(
                            "{type_name} component {i} is keyed but `{p}` and `{q}` overlap under distinct keys"
                        ));
                    }
                }
            }
        }
    }
    problems
}

/// Per-method case cap for the witness-backed shard check (same budget
/// rationale as the footprint witness sanitizer).
const SHARD_WITNESS_CAP: usize = 128;

/// Witness-backed validation: drives every `Local`-routed method's sampled
/// case domain through the bounded-exhaustive executor and checks that no
/// *observed* access (read or write, including perturbation-probed reads)
/// leaves the routed shard. Returns escape descriptions; escapes are fatal
/// in `analyze` and CI.
pub fn witness_check_type_plan(
    registry: &OpRegistry,
    type_name: &str,
    plan: &TypePlan,
    spaces: &[MethodSpace],
    space: &CaseSpace,
) -> Vec<String> {
    let mut escapes = Vec::new();
    let id = crate::scratch_id();
    for ms in spaces {
        let Some(Routing::Local { component, key_arg }) = plan.routes.get(&ms.method) else {
            continue; // CrossShard may touch anything
        };
        let Some(comp) = plan.components.get(*component as usize) else {
            escapes.push(format!(
                "{type_name}::{} routes to missing component {component}",
                ms.method
            ));
            continue;
        };
        let total = space.states.len() * ms.args.len();
        if total == 0 {
            continue;
        }
        let stride = total.div_ceil(space.max_cases.clamp(1, SHARD_WITNESS_CAP));
        'method: for (case_idx, (state, argv)) in space
            .states
            .iter()
            .flat_map(|s| ms.args.iter().map(move |a| (s, a)))
            .enumerate()
        {
            if case_idx % stride != 0 {
                continue;
            }
            let key = match key_arg {
                None => None,
                Some(i) => match argv.get(*i).and_then(key_render) {
                    Some(k) => Some(k),
                    None => continue, // malformed args route Cross at runtime
                },
            };
            let Ok(mut obj) = registry.construct(type_name) else {
                break;
            };
            if obj.restore(state).is_err() {
                continue;
            }
            let mut store = ObjectStore::new();
            store.insert(id, obj);
            let op = SharedOp::primitive(id, ms.method.as_str(), argv.clone());
            let Ok((_, witness)) = execute_witnessed(&op, &mut store, registry, ProbeReads::All)
            else {
                continue;
            };
            for w in witness.values() {
                for path in w.reads.iter().chain(w.writes.iter()) {
                    if !comp.allows(path, key.as_deref()) {
                        escapes.push(format!(
                            "{type_name}::{} witnessed access to `{path}` outside shard component {component}{} (args {argv:?})",
                            ms.method,
                            key.as_deref()
                                .map(|k| format!(" key `{k}`"))
                                .unwrap_or_default(),
                        ));
                        continue 'method;
                    }
                }
            }
        }
    }
    escapes
}

/// Renders a full [`ShardPlan`] as the human-readable `--shard-plan` text.
pub fn format_shard_plan(plan: &ShardPlan) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (type_name, tp) in &plan.types {
        let _ = writeln!(out, "shard plan — {type_name}");
        for (i, c) in tp.components.iter().enumerate() {
            let kind = if c.keyed { "keyed" } else { "unkeyed" };
            let prefixes: Vec<String> = c.prefixes.iter().map(PathPattern::render).collect();
            let _ = writeln!(out, "  component {i} [{kind}]: {}", prefixes.join(", "));
        }
        for (m, r) in &tp.routes {
            match r {
                Routing::Local {
                    component,
                    key_arg: Some(k),
                } => {
                    let _ = writeln!(out, "  {m} -> local(component {component}, key arg{k})");
                }
                Routing::Local {
                    component,
                    key_arg: None,
                } => {
                    let _ = writeln!(out, "  {m} -> local(component {component})");
                }
                Routing::CrossShard => {
                    let _ = writeln!(out, "  {m} -> cross-shard");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::{args, Value};

    fn pat(s: &str) -> PathPattern {
        PathPattern::parse(s).unwrap()
    }

    #[test]
    fn patternize_binds_lowest_matching_argument() {
        let argv = args!["general", "ann"];
        assert_eq!(patternize("topics/general", &argv), pat("topics/{0}"));
        assert_eq!(patternize("topics/ann", &argv), pat("topics/{1}"));
        assert_eq!(patternize("topics/other", &argv), pat("topics/other"));
        let argv2 = args!["x", "x"];
        assert_eq!(patternize("x", &argv2), pat("{0}"));
    }

    #[test]
    fn unify_widens_disagreeing_positions() {
        let a = pat("grid/13");
        let b = pat("grid/40");
        assert_eq!(unify(&[&a, &b]), pat("grid/*"));
        let c = pat("grid/13");
        assert_eq!(unify(&[&a, &c]), pat("grid/13"));
    }

    #[test]
    fn union_find_components_are_minimal_roots() {
        let mut uf = UnionFind::new(5);
        uf.union(3, 1);
        uf.union(4, 3);
        assert_eq!(uf.find(4), 1);
        assert_eq!(uf.find(0), 0);
        assert_eq!(uf.find(2), 2);
    }

    #[test]
    fn key_render_is_what_patternize_matches() {
        // Integer arguments key integer-rendered segments (auction prices
        // never appear as segments, but sudoku-style coordinates could).
        let argv = vec![Value::from(7i64)];
        assert_eq!(patternize("cells/7", &argv), pat("cells/{0}"));
    }
}
