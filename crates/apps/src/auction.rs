//! The auction application (§6).
//!
//! Sellers list items with a reserve price and a minimum increment; bidders
//! raise the best bid; the seller closes the auction. Bidding is the
//! archetypal conflicting operation under GUESSTIMATE: two bidders can both
//! see their bid succeed on their guesstimated state, and the commit order
//! picks the one that stands — the loser's completion routine fires with
//! `false` so the UI can prompt for a higher bid.

use std::collections::BTreeMap;

use guesstimate_core::{
    args, EffectSpec, Footprint, GState, ObjectId, OpRegistry, RestoreError, SharedOp, Value,
};
use guesstimate_spec::{ConformanceLog, MethodContract, MethodSpec, SpecSuite};

/// One listed item.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct Item {
    seller: String,
    reserve: i64,
    increment: i64,
    best: Option<(String, i64)>,
    open: bool,
}

/// The shared auction state.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Auction {
    items: BTreeMap<String, Item>,
}

impl Auction {
    /// A fresh, empty auction house.
    pub fn new() -> Self {
        Auction::default()
    }

    /// Listed item names, in order.
    pub fn item_names(&self) -> Vec<String> {
        self.items.keys().cloned().collect()
    }

    /// True if the item exists and is open for bids.
    pub fn is_open(&self, item: &str) -> bool {
        self.items.get(item).is_some_and(|i| i.open)
    }

    /// The current best `(bidder, amount)` on `item`.
    pub fn best_bid(&self, item: &str) -> Option<(String, i64)> {
        self.items.get(item).and_then(|i| i.best.clone())
    }

    /// The winner of a **closed** item, if any bid met the reserve.
    pub fn winner(&self, item: &str) -> Option<(String, i64)> {
        self.items
            .get(item)
            .filter(|i| !i.open)
            .and_then(|i| i.best.clone())
    }

    /// The minimum acceptable next bid on `item`, if it is open.
    pub fn min_next_bid(&self, item: &str) -> Option<i64> {
        self.items
            .get(item)
            .filter(|i| i.open)
            .map(|i| match &i.best {
                Some((_, amt)) => amt + i.increment,
                None => i.reserve,
            })
    }

    fn list_item(&mut self, name: &str, seller: &str, reserve: i64, increment: i64) -> bool {
        if name.is_empty()
            || seller.is_empty()
            || reserve < 0
            || increment <= 0
            || self.items.contains_key(name)
        {
            return false;
        }
        self.items.insert(
            name.to_owned(),
            Item {
                seller: seller.to_owned(),
                reserve,
                increment,
                best: None,
                open: true,
            },
        );
        true
    }

    fn bid(&mut self, item: &str, bidder: &str, amount: i64) -> bool {
        if bidder.is_empty() {
            return false;
        }
        let Some(it) = self.items.get_mut(item) else {
            return false;
        };
        if !it.open || it.seller == bidder {
            return false;
        }
        let min = match &it.best {
            Some((_, best)) => best + it.increment,
            None => it.reserve,
        };
        if amount < min {
            return false;
        }
        it.best = Some((bidder.to_owned(), amount));
        true
    }

    fn close(&mut self, item: &str, seller: &str) -> bool {
        match self.items.get_mut(item) {
            Some(it) if it.open && it.seller == seller => {
                it.open = false;
                true
            }
            _ => false,
        }
    }
}

impl GState for Auction {
    const TYPE_NAME: &'static str = "Auction";

    fn snapshot(&self) -> Value {
        Value::map(self.items.iter().map(|(n, i)| {
            let best = match &i.best {
                Some((b, amt)) => Value::from(vec![Value::from(b.clone()), Value::from(*amt)]),
                None => Value::Unit,
            };
            (
                n.clone(),
                Value::map([
                    ("seller", Value::from(i.seller.clone())),
                    ("reserve", Value::from(i.reserve)),
                    ("increment", Value::from(i.increment)),
                    ("best", best),
                    ("open", Value::from(i.open)),
                ]),
            )
        }))
    }

    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let shape = || RestoreError::shape("auction snapshot");
        self.items.clear();
        for (name, it) in v.as_map().ok_or_else(shape)? {
            let best = match it.field("best").ok_or_else(shape)? {
                Value::Unit => None,
                Value::List(l) if l.len() == 2 => Some((
                    l[0].as_str().ok_or_else(shape)?.to_owned(),
                    l[1].as_i64().ok_or_else(shape)?,
                )),
                _ => return Err(shape()),
            };
            self.items.insert(
                name.clone(),
                Item {
                    seller: it
                        .field("seller")
                        .and_then(Value::as_str)
                        .ok_or_else(shape)?
                        .to_owned(),
                    reserve: it
                        .field("reserve")
                        .and_then(Value::as_i64)
                        .ok_or_else(shape)?,
                    increment: it
                        .field("increment")
                        .and_then(Value::as_i64)
                        .ok_or_else(shape)?,
                    best,
                    open: it
                        .field("open")
                        .and_then(Value::as_bool)
                        .ok_or_else(shape)?,
                },
            );
        }
        Ok(())
    }
}

/// Typed operation constructors.
pub mod ops {
    use super::*;

    /// List an item with a reserve price and minimum increment.
    pub fn list_item(
        obj: ObjectId,
        name: &str,
        seller: &str,
        reserve: i64,
        increment: i64,
    ) -> SharedOp {
        SharedOp::primitive(obj, "list_item", args![name, seller, reserve, increment])
    }

    /// Place a bid.
    pub fn bid(obj: ObjectId, item: &str, bidder: &str, amount: i64) -> SharedOp {
        SharedOp::primitive(obj, "bid", args![item, bidder, amount])
    }

    /// Close an auction (seller only).
    pub fn close(obj: ObjectId, item: &str, seller: &str) -> SharedOp {
        SharedOp::primitive(obj, "close", args![item, seller])
    }

    /// A limit bid ladder: try `amount`, else `amount + step`, …, up to
    /// `limit` — an OrElse pattern that survives losing a race by one
    /// increment. Returns `None` when `amount > limit`.
    pub fn bid_up_to(
        obj: ObjectId,
        item: &str,
        bidder: &str,
        amount: i64,
        step: i64,
        limit: i64,
    ) -> Option<SharedOp> {
        let mut rungs = Vec::new();
        let mut a = amount;
        while a <= limit {
            rungs.push(bid(obj, item, bidder, a));
            a += step.max(1);
        }
        SharedOp::first_of(rungs)
    }
}

fn apply_list(s: &mut Auction, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(n), Some(seller), Some(r), Some(i)) = (a.str(0), a.str(1), a.i64(2), a.i64(3)) else {
        return false;
    };
    s.list_item(n, seller, r, i)
}

fn apply_bid(s: &mut Auction, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(item), Some(bidder), Some(amount)) = (a.str(0), a.str(1), a.i64(2)) else {
        return false;
    };
    s.bid(item, bidder, amount)
}

fn apply_close(s: &mut Auction, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(item), Some(seller)) = (a.str(0), a.str(1)) else {
        return false;
    };
    s.close(item, seller)
}

fn list_item_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(n), Some(seller), Some(r), Some(i)) = (a.str(0), a.str(1), a.i64(2), a.i64(3))
        else {
            return Footprint::new();
        };
        if n.is_empty() || seller.is_empty() || r < 0 || i <= 0 {
            return Footprint::new();
        }
        // The snapshot is a map keyed directly by item name.
        Footprint::new().reads([n]).writes([n])
    })
}

fn bid_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(item), Some(bidder), Some(_)) = (a.str(0), a.str(1), a.i64(2)) else {
            return Footprint::new();
        };
        if bidder.is_empty() {
            return Footprint::new();
        }
        Footprint::new()
            .reads([item.to_owned()])
            .writes([format!("{item}/best")])
    })
}

fn close_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(item), Some(_)) = (a.str(0), a.str(1)) else {
            return Footprint::new();
        };
        Footprint::new()
            .reads([item.to_owned()])
            .writes([format!("{item}/open")])
    })
}

/// Registers the auction type and operations.
pub fn register(registry: &mut OpRegistry) {
    registry.register_type::<Auction>();
    registry.register_with_effects::<Auction>("list_item", list_item_effect(), apply_list);
    registry.register_with_effects::<Auction>("bid", bid_effect(), apply_bid);
    registry.register_with_effects::<Auction>("close", close_effect(), apply_close);
}

fn invariant(v: &Value) -> bool {
    let Some(items) = v.as_map() else {
        return false;
    };
    items.values().all(|it| {
        let (Some(reserve), Some(increment), Some(seller)) = (
            it.field("reserve").and_then(Value::as_i64),
            it.field("increment").and_then(Value::as_i64),
            it.field("seller").and_then(Value::as_str),
        ) else {
            return false;
        };
        if increment <= 0 || reserve < 0 || seller.is_empty() {
            return false;
        }
        match it.field("best") {
            Some(Value::Unit) | None => true,
            Some(Value::List(l)) if l.len() == 2 => {
                // Best bid meets the reserve and never comes from the seller.
                l[1].as_i64().is_some_and(|amt| amt >= reserve)
                    && l[0].as_str().is_some_and(|b| b != seller)
            }
            _ => false,
        }
    })
}

/// Registers with runtime conformance checking.
pub fn register_checked(registry: &mut OpRegistry, log: &ConformanceLog) {
    registry.register_type::<Auction>();
    let inv = MethodContract::new().with_invariant(invariant);
    guesstimate_spec::register_checked::<Auction>(
        registry,
        "list_item",
        inv.clone(),
        log,
        apply_list,
    );
    guesstimate_spec::register_checked::<Auction>(
        registry,
        "bid",
        inv.clone().with_post(|pre, post, a| {
            // φ_bid: on success our bid stands and strictly improves on the
            // previous best.
            let (Some(item), Some(bidder), Some(amount)) = (
                a.first().and_then(Value::as_str),
                a.get(1).and_then(Value::as_str),
                a.get(2).and_then(Value::as_i64),
            ) else {
                return false;
            };
            let best_after = post
                .as_map()
                .and_then(|m| m.get(item))
                .and_then(|i| i.field("best"))
                .and_then(Value::as_list);
            let prev = pre
                .as_map()
                .and_then(|m| m.get(item))
                .and_then(|i| i.field("best"))
                .and_then(Value::as_list)
                .and_then(|l| l.get(1).and_then(Value::as_i64));
            best_after.is_some_and(|l| {
                l.first().and_then(Value::as_str) == Some(bidder)
                    && l.get(1).and_then(Value::as_i64) == Some(amount)
                    && prev.is_none_or(|p| amount > p)
            })
        }),
        log,
        apply_bid,
    );
    guesstimate_spec::register_checked::<Auction>(registry, "close", inv, log, apply_close);
}

/// Specification suite for the verifier table.
pub fn spec_suite() -> SpecSuite {
    use guesstimate_spec::Assertion;

    let mut bid_args = Vec::new();
    for bidder in ["ann", "bob", "seller", ""] {
        for amount in [-5i64, 0, 5, 10, 15, 100] {
            bid_args.push(args!["lamp", bidder, amount]);
        }
    }
    let best_amount = |v: &Value, item: &str| -> Option<i64> {
        v.as_map()?
            .get(item)?
            .field("best")?
            .as_list()?
            .get(1)?
            .as_i64()
    };
    let bid = MethodSpec::new(
        "bid",
        MethodContract::new()
            .with_assertion("bid-strictly-improves", move |c| {
                let Some(item) = c.args.first().and_then(Value::as_str) else {
                    return false;
                };
                let before = best_amount(&c.pre, item);
                let after = best_amount(&c.post, item);
                !c.result
                    || match (before, after) {
                        (Some(b), Some(a)) => a > b,
                        (None, Some(_)) => true,
                        _ => false,
                    }
            })
            .with_assertion("closed-items-are-frozen", |c| {
                let Some(item) = c.args.first().and_then(Value::as_str) else {
                    return false;
                };
                let open = c
                    .pre
                    .as_map()
                    .and_then(|m| m.get(item))
                    .and_then(|i| i.field("open"))
                    .and_then(Value::as_bool);
                open != Some(false) || c.pre == c.post
            })
            .with_assertion("bid-frames-other-items", |c| {
                let Some(item) = c.args.first().and_then(Value::as_str) else {
                    return false;
                };
                let (Some(mp), Some(mq)) = (c.pre.as_map(), c.post.as_map()) else {
                    return false;
                };
                mp.len() == mq.len() && mp.iter().all(|(k, v)| k == item || mq.get(k) == Some(v))
            }),
    )
    .with_args(bid_args, false);

    let close = MethodSpec::new(
        "close",
        MethodContract::new()
            .with_post(|_pre, post, a| {
                let Some(item) = a.first().and_then(Value::as_str) else {
                    return false;
                };
                post.as_map()
                    .and_then(|m| m.get(item))
                    .and_then(|i| i.field("open"))
                    .and_then(Value::as_bool)
                    == Some(false)
            })
            .with_assertion("close-preserves-best-bid", |c| {
                let Some(item) = c.args.first().and_then(Value::as_str) else {
                    return false;
                };
                let best = |v: &Value| {
                    v.as_map()
                        .and_then(|m| m.get(item))
                        .and_then(|i| i.field("best").cloned())
                };
                best(&c.pre) == best(&c.post)
            }),
    )
    .with_args(
        vec![
            args!["lamp", "seller"],
            args!["lamp", "ann"],
            args!["ghost", "seller"],
        ],
        false,
    );

    let list_item = MethodSpec::new(
        "list_item",
        MethodContract::new()
            .with_assertion_obj(
                Assertion::new("negative-reserve-fails", |c| {
                    c.args.get(2).and_then(Value::as_i64).is_none_or(|r| r >= 0)
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_assertion_obj(
                Assertion::new("nonpositive-increment-fails", |c| {
                    c.args.get(3).and_then(Value::as_i64).is_none_or(|i| i > 0)
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_post(|_pre, post, a| {
                let Some(name) = a.first().and_then(Value::as_str) else {
                    return false;
                };
                post.as_map()
                    .and_then(|m| m.get(name))
                    .and_then(|i| i.field("open"))
                    .and_then(Value::as_bool)
                    == Some(true)
            }),
    )
    // Small-scope abstraction over the numeric guards.
    .with_args(
        vec![
            args!["chair", "seller", 10, 1],
            args!["chair", "seller", -1, 1],
            args!["chair", "seller", 0, 1],
            args!["chair", "seller", 10, 0],
            args!["chair", "seller", 10, -1],
            args!["lamp", "seller", 10, 1],
        ],
        true,
    );

    SpecSuite::new("Auction")
        .with_invariant("reserve-increment-seller", invariant)
        .with_method(bid)
        .with_method(close)
        .with_method(list_item)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn house() -> Auction {
        let mut a = Auction::new();
        assert!(a.list_item("lamp", "seller", 10, 5));
        a
    }

    #[test]
    fn listing_validates() {
        let mut a = house();
        assert!(!a.list_item("lamp", "x", 1, 1), "duplicate");
        assert!(!a.list_item("", "x", 1, 1));
        assert!(!a.list_item("y", "", 1, 1));
        assert!(!a.list_item("y", "x", -1, 1));
        assert!(!a.list_item("y", "x", 1, 0));
        assert_eq!(a.item_names(), vec!["lamp"]);
        assert!(a.is_open("lamp"));
    }

    #[test]
    fn bids_respect_reserve_and_increment() {
        let mut a = house();
        assert_eq!(a.min_next_bid("lamp"), Some(10));
        assert!(!a.bid("lamp", "ann", 9), "below reserve");
        assert!(a.bid("lamp", "ann", 10));
        assert_eq!(a.min_next_bid("lamp"), Some(15));
        assert!(!a.bid("lamp", "bob", 14), "below increment");
        assert!(a.bid("lamp", "bob", 15));
        assert_eq!(a.best_bid("lamp"), Some(("bob".into(), 15)));
    }

    #[test]
    fn seller_cannot_bid_and_close_is_seller_only() {
        let mut a = house();
        assert!(!a.bid("lamp", "seller", 100));
        assert!(!a.close("lamp", "ann"));
        assert!(a.bid("lamp", "ann", 10));
        assert!(a.close("lamp", "seller"));
        assert!(!a.close("lamp", "seller"), "already closed");
        assert!(!a.bid("lamp", "bob", 100), "closed");
        assert_eq!(a.winner("lamp"), Some(("ann".into(), 10)));
    }

    #[test]
    fn winner_is_none_while_open_or_without_bids() {
        let mut a = house();
        assert_eq!(a.winner("lamp"), None, "still open");
        a.close("lamp", "seller");
        assert_eq!(a.winner("lamp"), None, "no bids met the reserve");
        assert_eq!(a.min_next_bid("lamp"), None, "closed");
    }

    #[test]
    fn bid_rejects_unknown_item_and_anonymous() {
        let mut a = house();
        assert!(!a.bid("ghost", "ann", 100));
        assert!(!a.bid("lamp", "", 100));
    }

    #[test]
    fn bid_ladder_survives_a_lost_race() {
        use guesstimate_core::{execute, MachineId, ObjectStore};
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(house()));
        // bob already bid 10; ann's ladder 10,15,20 falls through to 15.
        execute(&ops::bid(obj, "lamp", "bob", 10), &mut store, &reg).unwrap();
        let ladder = ops::bid_up_to(obj, "lamp", "ann", 10, 5, 20).unwrap();
        assert!(execute(&ladder, &mut store, &reg).unwrap().is_success());
        assert_eq!(
            store.get_as::<Auction>(obj).unwrap().best_bid("lamp"),
            Some(("ann".into(), 15))
        );
        assert!(ops::bid_up_to(obj, "lamp", "ann", 30, 5, 20).is_none());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut a = house();
        a.bid("lamp", "ann", 12);
        a.list_item("sofa", "bob", 0, 1);
        a.close("sofa", "bob");
        let mut b = Auction::new();
        GState::restore(&mut b, &GState::snapshot(&a)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invariant_checks() {
        let mut a = house();
        a.bid("lamp", "ann", 12);
        assert!(invariant(&GState::snapshot(&a)));
        assert!(!invariant(&Value::Unit));
    }

    #[test]
    fn checked_registration_is_clean() {
        use guesstimate_core::{execute, MachineId, ObjectStore};
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        let log = ConformanceLog::new();
        register_checked(&mut reg, &log);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(house()));
        for op in [
            ops::bid(obj, "lamp", "ann", 10),
            ops::bid(obj, "lamp", "bob", 12), // fails: below increment
            ops::bid(obj, "lamp", "bob", 15),
            ops::close(obj, "lamp", "seller"),
            ops::list_item(obj, "sofa", "bob", 5, 1),
        ] {
            let _ = execute(&op, &mut store, &reg).unwrap();
        }
        assert!(log.is_empty(), "{:?}", log.violations());
    }

    #[test]
    fn spec_suite_verifies_cleanly() {
        use guesstimate_spec::{verify_suite, CaseSpace};
        let suite = spec_suite();
        assert!(suite.assertion_count() >= 13);
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut a = house();
        a.bid("lamp", "ann", 12);
        let mut closed = a.clone();
        closed.close("lamp", "seller");
        let states = vec![
            GState::snapshot(&Auction::new()),
            GState::snapshot(&house()),
            GState::snapshot(&a),
            GState::snapshot(&closed),
        ];
        let report = verify_suite(&reg, &suite, &CaseSpace::sampled(states, 100_000));
        assert_eq!(report.refuted(), 0);
        assert!(report.verified() >= 2, "SI guards verify");
    }
}
