//! The car-pool application (§5 "Specifications" of the paper).
//!
//! Vehicles drive to events and have a bounded number of seats. The paper's
//! example operation is `GetRide(Event e)`, which "searches through various
//! ride sharing options to get a ride for the user"; its specification
//! φ_GetRide "is satisfied if the user gets a ride on *some* vehicle".
//! That flexibility matters under GUESSTIMATE: the ride obtained on the
//! guesstimated state (say vehicle v3) may be full by commit time, and the
//! operation still conforms as long as *some* vehicle carried the user.
//!
//! Here `GetRide` is built exactly as §5 suggests: an **OrElse** chain over
//! the per-vehicle `board` operation ([`ops::get_ride`]), whose composite
//! specification is checked by [`MethodContract`]-level tests and the
//! integration suite.

use std::collections::{BTreeMap, BTreeSet};

use guesstimate_core::{
    args, EffectSpec, Footprint, GState, ObjectId, OpRegistry, RestoreError, SharedOp, Value, ROOT,
};
use guesstimate_spec::{ConformanceLog, MethodContract, MethodSpec, SpecSuite};

/// A vehicle driving to one event.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct Vehicle {
    seats: u32,
    event: String,
    riders: BTreeSet<String>,
}

/// The shared car-pool state.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CarPool {
    vehicles: BTreeMap<String, Vehicle>,
}

impl CarPool {
    /// A fresh, empty pool.
    pub fn new() -> Self {
        CarPool::default()
    }

    /// Vehicle names, in order.
    pub fn vehicle_names(&self) -> Vec<String> {
        self.vehicles.keys().cloned().collect()
    }

    /// Names of vehicles driving to `event`, in order.
    pub fn vehicles_to(&self, event: &str) -> Vec<String> {
        self.vehicles
            .iter()
            .filter(|(_, v)| v.event == event)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Free seats on `vehicle`, if it exists.
    pub fn free_seats(&self, vehicle: &str) -> Option<u32> {
        self.vehicles
            .get(vehicle)
            .map(|v| v.seats - v.riders.len() as u32)
    }

    /// True if `user` has a ride to `event` on some vehicle — the paper's
    /// φ_GetRide predicate.
    pub fn has_ride(&self, user: &str, event: &str) -> bool {
        self.vehicles
            .values()
            .any(|v| v.event == event && v.riders.contains(user))
    }

    /// The vehicle currently carrying `user` to `event`, if any.
    pub fn ride_of(&self, user: &str, event: &str) -> Option<String> {
        self.vehicles
            .iter()
            .find(|(_, v)| v.event == event && v.riders.contains(user))
            .map(|(n, _)| n.clone())
    }

    fn add_vehicle(&mut self, name: &str, seats: i64, event: &str) -> bool {
        if name.is_empty() || event.is_empty() || seats <= 0 || self.vehicles.contains_key(name) {
            return false;
        }
        self.vehicles.insert(
            name.to_owned(),
            Vehicle {
                seats: seats as u32,
                event: event.to_owned(),
                riders: BTreeSet::new(),
            },
        );
        true
    }

    /// Board a specific vehicle: fails if the vehicle is unknown or full,
    /// or if the user already has a ride to the same event.
    fn board(&mut self, user: &str, vehicle: &str) -> bool {
        if user.is_empty() {
            return false;
        }
        let Some(event) = self.vehicles.get(vehicle).map(|v| v.event.clone()) else {
            return false;
        };
        if self.has_ride(user, &event) {
            return false;
        }
        let v = self.vehicles.get_mut(vehicle).expect("checked above");
        if v.riders.len() as u32 >= v.seats {
            return false;
        }
        v.riders.insert(user.to_owned())
    }

    fn disembark(&mut self, user: &str, vehicle: &str) -> bool {
        self.vehicles
            .get_mut(vehicle)
            .is_some_and(|v| v.riders.remove(user))
    }
}

impl GState for CarPool {
    const TYPE_NAME: &'static str = "CarPool";

    fn snapshot(&self) -> Value {
        Value::map(self.vehicles.iter().map(|(n, v)| {
            (
                n.clone(),
                Value::map([
                    ("seats", Value::from(i64::from(v.seats))),
                    ("event", Value::from(v.event.clone())),
                    (
                        "riders",
                        v.riders.iter().map(|r| Value::from(r.clone())).collect(),
                    ),
                ]),
            )
        }))
    }

    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let shape = || RestoreError::shape("car-pool snapshot");
        self.vehicles.clear();
        for (name, veh) in v.as_map().ok_or_else(shape)? {
            let riders = veh
                .field("riders")
                .and_then(Value::as_list)
                .ok_or_else(shape)?
                .iter()
                .map(|r| r.as_str().map(str::to_owned).ok_or_else(shape))
                .collect::<Result<BTreeSet<_>, _>>()?;
            self.vehicles.insert(
                name.clone(),
                Vehicle {
                    seats: veh
                        .field("seats")
                        .and_then(Value::as_i64)
                        .ok_or_else(shape)? as u32,
                    event: veh
                        .field("event")
                        .and_then(Value::as_str)
                        .ok_or_else(shape)?
                        .to_owned(),
                    riders,
                },
            );
        }
        Ok(())
    }
}

/// Typed operation constructors, including the §5 `GetRide` pattern.
pub mod ops {
    use super::*;

    /// Add a vehicle driving to an event.
    pub fn add_vehicle(obj: ObjectId, name: &str, seats: u32, event: &str) -> SharedOp {
        SharedOp::primitive(obj, "add_vehicle", args![name, i64::from(seats), event])
    }

    /// Board a specific vehicle.
    pub fn board(obj: ObjectId, user: &str, vehicle: &str) -> SharedOp {
        SharedOp::primitive(obj, "board", args![user, vehicle])
    }

    /// Leave a vehicle.
    pub fn disembark(obj: ObjectId, user: &str, vehicle: &str) -> SharedOp {
        SharedOp::primitive(obj, "disembark", args![user, vehicle])
    }

    /// The paper's `GetRide(e)`: try every vehicle driving to `event` (as
    /// listed in the given guesstimated snapshot of the pool), in order,
    /// via OrElse. Conforms to φ_GetRide = "user has some ride to event".
    ///
    /// Returns `None` when no vehicle drives to `event` (the operation
    /// would be guaranteed to fail).
    pub fn get_ride(pool: &CarPool, obj: ObjectId, user: &str, event: &str) -> Option<SharedOp> {
        SharedOp::first_of(
            pool.vehicles_to(event)
                .iter()
                .map(|v| board(obj, user, v))
                .collect(),
        )
    }
}

fn apply_add(s: &mut CarPool, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(n), Some(seats), Some(e)) = (a.str(0), a.i64(1), a.str(2)) else {
        return false;
    };
    s.add_vehicle(n, seats, e)
}

fn apply_board(s: &mut CarPool, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(u), Some(v)) = (a.str(0), a.str(1)) else {
        return false;
    };
    s.board(u, v)
}

fn apply_disembark(s: &mut CarPool, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(u), Some(v)) = (a.str(0), a.str(1)) else {
        return false;
    };
    s.disembark(u, v)
}

fn add_vehicle_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(n), Some(seats), Some(e)) = (a.str(0), a.i64(1), a.str(2)) else {
            return Footprint::new();
        };
        if n.is_empty() || e.is_empty() || seats <= 0 {
            return Footprint::new();
        }
        // The snapshot is a map keyed directly by vehicle name.
        Footprint::new().reads([n]).writes([n])
    })
}

fn board_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(u), Some(v)) = (a.str(0), a.str(1)) else {
            return Footprint::new();
        };
        if u.is_empty() {
            return Footprint::new();
        }
        // `has_ride` scans every vehicle for an existing ride to the same
        // event, so the read set is the whole snapshot.
        Footprint::new()
            .reads([ROOT])
            .writes([format!("{v}/riders")])
    })
}

fn disembark_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(_), Some(v)) = (a.str(0), a.str(1)) else {
            return Footprint::new();
        };
        // The vehicle lookup observably depends on `v` *existing* (the
        // access witness refutes a riders-only read set via its map-entry
        // removal probe), and reading `v` covers `v/riders` too.
        Footprint::new()
            .reads([v.to_owned()])
            .writes([format!("{v}/riders")])
    })
}

/// Registers the car-pool type and operations.
pub fn register(registry: &mut OpRegistry) {
    registry.register_type::<CarPool>();
    registry.register_with_effects::<CarPool>("add_vehicle", add_vehicle_effect(), apply_add);
    registry.register_with_effects::<CarPool>("board", board_effect(), apply_board);
    registry.register_with_effects::<CarPool>("disembark", disembark_effect(), apply_disembark);
}

fn invariant(v: &Value) -> bool {
    let Some(vehicles) = v.as_map() else {
        return false;
    };
    // No vehicle over capacity; no user riding two vehicles to one event.
    let mut rides: BTreeSet<(String, String)> = BTreeSet::new();
    for veh in vehicles.values() {
        let (Some(seats), Some(event), Some(riders)) = (
            veh.field("seats").and_then(Value::as_i64),
            veh.field("event").and_then(Value::as_str),
            veh.field("riders").and_then(Value::as_list),
        ) else {
            return false;
        };
        if riders.len() as i64 > seats {
            return false;
        }
        for r in riders {
            let Some(user) = r.as_str() else { return false };
            if !rides.insert((user.to_owned(), event.to_owned())) {
                return false; // two rides to the same event
            }
        }
    }
    true
}

/// Registers with runtime conformance checking.
pub fn register_checked(registry: &mut OpRegistry, log: &ConformanceLog) {
    registry.register_type::<CarPool>();
    let inv = MethodContract::new().with_invariant(invariant);
    guesstimate_spec::register_checked::<CarPool>(
        registry,
        "add_vehicle",
        inv.clone(),
        log,
        apply_add,
    );
    guesstimate_spec::register_checked::<CarPool>(
        registry,
        "board",
        inv.clone().with_post(|_pre, post, a| {
            // On success the user rides the named vehicle.
            let (Some(user), Some(vehicle)) = (
                a.first().and_then(Value::as_str),
                a.get(1).and_then(Value::as_str),
            ) else {
                return false;
            };
            post.as_map()
                .and_then(|m| m.get(vehicle))
                .and_then(|v| v.field("riders"))
                .and_then(Value::as_list)
                .is_some_and(|rs| rs.iter().any(|r| r.as_str() == Some(user)))
        }),
        log,
        apply_board,
    );
    guesstimate_spec::register_checked::<CarPool>(registry, "disembark", inv, log, apply_disembark);
}

/// Specification suite for the verifier table.
pub fn spec_suite() -> SpecSuite {
    use guesstimate_spec::{Assertion, ExecCase};

    let users = ["ann", "bob", ""];
    let vehicles = ["v1", "v2", "ghost"];
    let mut board_args = Vec::new();
    for u in users {
        for v in vehicles {
            board_args.push(args![u, v]);
        }
    }
    fn frames_other_vehicles(c: &ExecCase) -> bool {
        let Some(target) = c.args.get(1).and_then(Value::as_str) else {
            return false;
        };
        let (Some(mp), Some(mq)) = (c.pre.as_map(), c.post.as_map()) else {
            return false;
        };
        mp.len() == mq.len() && mp.iter().all(|(k, v)| k == target || mq.get(k) == Some(v))
    }
    let board = MethodSpec::new(
        "board",
        MethodContract::new()
            .with_post(|_pre, post, a| {
                let (Some(u), Some(v)) = (
                    a.first().and_then(Value::as_str),
                    a.get(1).and_then(Value::as_str),
                ) else {
                    return false;
                };
                post.as_map()
                    .and_then(|m| m.get(v))
                    .and_then(|veh| veh.field("riders"))
                    .and_then(Value::as_list)
                    .is_some_and(|rs| rs.iter().any(|r| r.as_str() == Some(u)))
            })
            .with_assertion("board-frames-other-vehicles", frames_other_vehicles)
            .with_assertion("board-never-changes-seats-or-event", |c| {
                let meta = |v: &Value| -> Vec<Value> {
                    v.as_map()
                        .map(|m| {
                            m.values()
                                .flat_map(|veh| {
                                    [veh.field("seats").cloned(), veh.field("event").cloned()]
                                })
                                .flatten()
                                .collect()
                        })
                        .unwrap_or_default()
                };
                meta(&c.pre) == meta(&c.post)
            }),
    )
    .with_args(board_args.clone(), false);

    let disembark = MethodSpec::new(
        "disembark",
        MethodContract::new()
            .with_post(|_pre, post, a| {
                let (Some(u), Some(v)) = (
                    a.first().and_then(Value::as_str),
                    a.get(1).and_then(Value::as_str),
                ) else {
                    return false;
                };
                !post
                    .as_map()
                    .and_then(|m| m.get(v))
                    .and_then(|veh| veh.field("riders"))
                    .and_then(Value::as_list)
                    .is_some_and(|rs| rs.iter().any(|r| r.as_str() == Some(u)))
            })
            .with_assertion("disembark-frames-other-vehicles", frames_other_vehicles),
    )
    .with_args(board_args, false);

    let add_vehicle = MethodSpec::new(
        "add_vehicle",
        MethodContract::new()
            .with_assertion_obj(
                Assertion::new("nonpositive-seats-fail", |c| {
                    c.args.get(1).and_then(Value::as_i64).is_none_or(|n| n > 0)
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_assertion_obj(
                Assertion::new("empty-names-fail", |c| {
                    (c.args.first().and_then(Value::as_str) != Some("")
                        && c.args.get(2).and_then(Value::as_str) != Some(""))
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_post(|_pre, post, a| {
                let Some(name) = a.first().and_then(Value::as_str) else {
                    return false;
                };
                post.as_map().is_some_and(|m| m.contains_key(name))
            }),
    )
    .with_args(
        vec![
            args!["v9", 2, "party"],
            args!["v9", 0, "party"],
            args!["v9", -1, "party"],
            args!["", 2, "party"],
            args!["v9", 2, ""],
            args!["v1", 2, "party"],
        ],
        true,
    );

    SpecSuite::new("CarPool")
        .with_invariant("seats-and-single-ride", invariant)
        .with_method(board)
        .with_method(disembark)
        .with_method(add_vehicle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::{execute, MachineId, ObjectStore};

    fn pool() -> CarPool {
        let mut p = CarPool::new();
        assert!(p.add_vehicle("v1", 1, "party"));
        assert!(p.add_vehicle("v2", 2, "party"));
        assert!(p.add_vehicle("v3", 1, "dinner"));
        p
    }

    #[test]
    fn add_vehicle_validates() {
        let mut p = pool();
        assert!(!p.add_vehicle("v1", 3, "x"), "duplicate");
        assert!(!p.add_vehicle("", 3, "x"));
        assert!(!p.add_vehicle("v9", 0, "x"), "no seats");
        assert!(!p.add_vehicle("v9", 2, ""), "no event");
        assert_eq!(p.vehicle_names().len(), 3);
        assert_eq!(p.vehicles_to("party"), vec!["v1", "v2"]);
    }

    #[test]
    fn board_respects_capacity_and_single_ride() {
        let mut p = pool();
        assert!(p.board("ann", "v1"));
        assert!(!p.board("bob", "v1"), "v1 full");
        assert!(!p.board("ann", "v2"), "ann already rides to party");
        assert!(p.board("ann", "v3"), "different event is fine");
        assert_eq!(p.free_seats("v1"), Some(0));
        assert_eq!(p.ride_of("ann", "party"), Some("v1".into()));
        assert!(p.has_ride("ann", "dinner"));
        assert!(!p.board("", "v2"));
        assert!(!p.board("x", "ghost"));
    }

    #[test]
    fn disembark_semantics() {
        let mut p = pool();
        p.board("ann", "v1");
        assert!(!p.disembark("bob", "v1"));
        assert!(p.disembark("ann", "v1"));
        assert!(!p.has_ride("ann", "party"));
        assert!(p.board("bob", "v1"), "seat freed");
    }

    #[test]
    fn get_ride_falls_through_to_any_vehicle() {
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(pool()));
        // Fill v1 so ann's ride comes from v2.
        execute(&ops::board(obj, "bob", "v1"), &mut store, &reg).unwrap();
        let ride = {
            let p = store.get_as::<CarPool>(obj).unwrap();
            ops::get_ride(p, obj, "ann", "party").unwrap()
        };
        assert!(execute(&ride, &mut store, &reg).unwrap().is_success());
        let p = store.get_as::<CarPool>(obj).unwrap();
        // φ_GetRide: ann has SOME ride to the party.
        assert!(p.has_ride("ann", "party"));
        assert_eq!(p.ride_of("ann", "party"), Some("v2".into()));
    }

    #[test]
    fn get_ride_fails_when_everything_is_full() {
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(pool()));
        for (u, v) in [("a", "v1"), ("b", "v2"), ("c", "v2")] {
            assert!(execute(&ops::board(obj, u, v), &mut store, &reg)
                .unwrap()
                .is_success());
        }
        let ride = {
            let p = store.get_as::<CarPool>(obj).unwrap();
            ops::get_ride(p, obj, "ann", "party").unwrap()
        };
        assert!(!execute(&ride, &mut store, &reg).unwrap().is_success());
        assert!(!store
            .get_as::<CarPool>(obj)
            .unwrap()
            .has_ride("ann", "party"));
    }

    #[test]
    fn get_ride_returns_none_without_vehicles() {
        let obj = ObjectId::new(MachineId::new(0), 0);
        let p = CarPool::new();
        assert!(ops::get_ride(&p, obj, "ann", "party").is_none());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut p = pool();
        p.board("ann", "v1");
        let mut q = CarPool::new();
        GState::restore(&mut q, &GState::snapshot(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn invariant_on_valid_and_invalid() {
        let mut p = pool();
        p.board("ann", "v1");
        assert!(invariant(&GState::snapshot(&p)));
        assert!(!invariant(&Value::Unit));
    }

    #[test]
    fn checked_registration_is_clean() {
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        let log = ConformanceLog::new();
        register_checked(&mut reg, &log);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(pool()));
        execute(&ops::board(obj, "ann", "v1"), &mut store, &reg).unwrap();
        execute(&ops::board(obj, "bob", "v1"), &mut store, &reg).unwrap(); // full
        execute(&ops::disembark(obj, "ann", "v1"), &mut store, &reg).unwrap();
        execute(&ops::add_vehicle(obj, "v9", 2, "gala"), &mut store, &reg).unwrap();
        assert!(log.is_empty(), "{:?}", log.violations());
    }

    #[test]
    fn spec_suite_verifies_cleanly() {
        use guesstimate_spec::{verify_suite, CaseSpace};
        let suite = spec_suite();
        assert!(suite.assertion_count() >= 13);
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut p = pool();
        p.board("ann", "v1");
        let states = vec![
            GState::snapshot(&CarPool::new()),
            GState::snapshot(&pool()),
            GState::snapshot(&p),
        ];
        let report = verify_suite(&reg, &suite, &CaseSpace::sampled(states, 100_000));
        assert_eq!(report.refuted(), 0);
        assert!(report.verified() >= 2);
    }
}
