//! The event-planning application (§5/§6 of the paper).
//!
//! Users register and sign in (both implemented as *blocking* operations in
//! the paper, Figure 4 — see `guesstimate_runtime::issue_blocking`), create
//! events with capacities, and join/leave events subject to two
//! preconditions: the event must have a vacancy, and the user must be under
//! the per-user quota. The paper uses this app to motivate:
//!
//! * **OrElse** — "Users can choose to join one among many events";
//! * **Atomic** — "a user chooses to go to a party only if she also gets a
//!   ride", and the swap pattern "she might want to leave some other event
//!   (eventb) and join eventa ... she wants to retain eventb unless she can
//!   join eventa for sure" ([`ops::swap_events`]).

use std::collections::{BTreeMap, BTreeSet};

use guesstimate_core::{
    args, EffectSpec, Footprint, GState, ObjectId, OpRegistry, RestoreError, SharedOp, Value,
};
use guesstimate_spec::{ConformanceLog, MethodContract, MethodSpec, SpecSuite};

/// A registered user.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct UserRec {
    password: String,
    signed_in: bool,
}

/// An event with bounded capacity.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct EventRec {
    capacity: u32,
    attendees: BTreeSet<String>,
}

/// The shared event-planner state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventPlanner {
    users: BTreeMap<String, UserRec>,
    events: BTreeMap<String, EventRec>,
    quota: u32,
}

impl Default for EventPlanner {
    fn default() -> Self {
        EventPlanner {
            users: BTreeMap::new(),
            events: BTreeMap::new(),
            quota: 3,
        }
    }
}

impl EventPlanner {
    /// A fresh planner with the given per-user event quota.
    pub fn with_quota(quota: u32) -> Self {
        EventPlanner {
            quota,
            ..EventPlanner::default()
        }
    }

    /// The per-user quota.
    pub fn quota(&self) -> u32 {
        self.quota
    }

    /// True if `user` is registered.
    pub fn has_user(&self, user: &str) -> bool {
        self.users.contains_key(user)
    }

    /// True if `user` is currently signed in.
    pub fn is_signed_in(&self, user: &str) -> bool {
        self.users.get(user).is_some_and(|u| u.signed_in)
    }

    /// The capacity of `event`, if it exists.
    pub fn capacity(&self, event: &str) -> Option<u32> {
        self.events.get(event).map(|e| e.capacity)
    }

    /// Remaining vacancies of `event`, if it exists.
    pub fn vacancies(&self, event: &str) -> Option<u32> {
        self.events
            .get(event)
            .map(|e| e.capacity - e.attendees.len() as u32)
    }

    /// True if `user` attends `event`.
    pub fn is_attending(&self, user: &str, event: &str) -> bool {
        self.events
            .get(event)
            .is_some_and(|e| e.attendees.contains(user))
    }

    /// Events `user` has joined, in order.
    pub fn joined_events(&self, user: &str) -> Vec<String> {
        self.events
            .iter()
            .filter(|(_, e)| e.attendees.contains(user))
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// All event names.
    pub fn event_names(&self) -> Vec<String> {
        self.events.keys().cloned().collect()
    }

    fn joined_count(&self, user: &str) -> u32 {
        self.events
            .values()
            .filter(|e| e.attendees.contains(user))
            .count() as u32
    }

    // --- shared operations (plain Rust methods) ---

    fn register_user(&mut self, name: &str, password: &str) -> bool {
        if name.is_empty() || self.users.contains_key(name) {
            return false;
        }
        self.users.insert(
            name.to_owned(),
            UserRec {
                password: password.to_owned(),
                signed_in: false,
            },
        );
        true
    }

    fn sign_in(&mut self, name: &str, password: &str) -> bool {
        match self.users.get_mut(name) {
            Some(u) if u.password == password && !u.signed_in => {
                u.signed_in = true;
                true
            }
            _ => false,
        }
    }

    fn sign_out(&mut self, name: &str) -> bool {
        match self.users.get_mut(name) {
            Some(u) if u.signed_in => {
                u.signed_in = false;
                true
            }
            _ => false,
        }
    }

    fn create_event(&mut self, name: &str, capacity: i64) -> bool {
        if name.is_empty() || capacity <= 0 || self.events.contains_key(name) {
            return false;
        }
        self.events.insert(
            name.to_owned(),
            EventRec {
                capacity: capacity as u32,
                attendees: BTreeSet::new(),
            },
        );
        true
    }

    fn join(&mut self, user: &str, event: &str) -> bool {
        if !self.users.contains_key(user) {
            return false;
        }
        if self.joined_count(user) >= self.quota {
            return false;
        }
        match self.events.get_mut(event) {
            Some(e) if (e.attendees.len() as u32) < e.capacity => {
                e.attendees.insert(user.to_owned())
            }
            _ => false,
        }
    }

    fn leave(&mut self, user: &str, event: &str) -> bool {
        self.events
            .get_mut(event)
            .is_some_and(|e| e.attendees.remove(user))
    }
}

impl GState for EventPlanner {
    const TYPE_NAME: &'static str = "EventPlanner";

    fn snapshot(&self) -> Value {
        let users = Value::map(self.users.iter().map(|(n, u)| {
            (
                n.clone(),
                Value::map([
                    ("password", Value::from(u.password.clone())),
                    ("signed_in", Value::from(u.signed_in)),
                ]),
            )
        }));
        let events = Value::map(self.events.iter().map(|(n, e)| {
            (
                n.clone(),
                Value::map([
                    ("capacity", Value::from(i64::from(e.capacity))),
                    (
                        "attendees",
                        e.attendees.iter().map(|a| Value::from(a.clone())).collect(),
                    ),
                ]),
            )
        }));
        Value::map([
            ("quota", Value::from(i64::from(self.quota))),
            ("users", users),
            ("events", events),
        ])
    }

    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let shape = || RestoreError::shape("event-planner snapshot");
        self.quota = v.field("quota").and_then(Value::as_i64).ok_or_else(shape)? as u32;
        self.users.clear();
        for (name, u) in v.field("users").and_then(Value::as_map).ok_or_else(shape)? {
            self.users.insert(
                name.clone(),
                UserRec {
                    password: u
                        .field("password")
                        .and_then(Value::as_str)
                        .ok_or_else(shape)?
                        .to_owned(),
                    signed_in: u
                        .field("signed_in")
                        .and_then(Value::as_bool)
                        .ok_or_else(shape)?,
                },
            );
        }
        self.events.clear();
        for (name, e) in v
            .field("events")
            .and_then(Value::as_map)
            .ok_or_else(shape)?
        {
            let attendees = e
                .field("attendees")
                .and_then(Value::as_list)
                .ok_or_else(shape)?
                .iter()
                .map(|a| a.as_str().map(str::to_owned).ok_or_else(shape))
                .collect::<Result<BTreeSet<_>, _>>()?;
            self.events.insert(
                name.clone(),
                EventRec {
                    capacity: e
                        .field("capacity")
                        .and_then(Value::as_i64)
                        .ok_or_else(shape)? as u32,
                    attendees,
                },
            );
        }
        Ok(())
    }
}

/// Typed constructors for the shared operations and the paper's composite
/// design patterns.
pub mod ops {
    use super::*;

    /// Register a new user (used with blocking issue, Figure 4).
    pub fn register_user(obj: ObjectId, name: &str, password: &str) -> SharedOp {
        SharedOp::primitive(obj, "register_user", args![name, password])
    }

    /// Sign a user in (blocking in the paper: a user may be signed in on
    /// only one machine at a time).
    pub fn sign_in(obj: ObjectId, name: &str, password: &str) -> SharedOp {
        SharedOp::primitive(obj, "sign_in", args![name, password])
    }

    /// Sign a user out.
    pub fn sign_out(obj: ObjectId, name: &str) -> SharedOp {
        SharedOp::primitive(obj, "sign_out", args![name])
    }

    /// Create an event with a capacity.
    pub fn create_event(obj: ObjectId, name: &str, capacity: u32) -> SharedOp {
        SharedOp::primitive(obj, "create_event", args![name, i64::from(capacity)])
    }

    /// Join an event.
    pub fn join(obj: ObjectId, user: &str, event: &str) -> SharedOp {
        SharedOp::primitive(obj, "join", args![user, event])
    }

    /// Leave an event.
    pub fn leave(obj: ObjectId, user: &str, event: &str) -> SharedOp {
        SharedOp::primitive(obj, "leave", args![user, event])
    }

    /// §5 OrElse pattern: join the first joinable event of `events`.
    ///
    /// Returns `None` for an empty list.
    pub fn join_one_of(obj: ObjectId, user: &str, events: &[&str]) -> Option<SharedOp> {
        SharedOp::first_of(events.iter().map(|e| join(obj, user, e)).collect())
    }

    /// §5 Atomic pattern: sign up for both events or neither.
    pub fn join_both(obj: ObjectId, user: &str, a: &str, b: &str) -> SharedOp {
        SharedOp::atomic(vec![join(obj, user, a), join(obj, user, b)])
    }

    /// §6 Atomic value-dependency pattern: leave `give_up` and join
    /// `important`, keeping `give_up` unless the join is sure to succeed.
    pub fn swap_events(obj: ObjectId, user: &str, give_up: &str, important: &str) -> SharedOp {
        SharedOp::atomic(vec![leave(obj, user, give_up), join(obj, user, important)])
    }
}

macro_rules! apply2 {
    ($m:ident) => {
        |s: &mut EventPlanner, a: guesstimate_core::ArgView<'_>| {
            let (Some(x), Some(y)) = (a.str(0), a.str(1)) else {
                return false;
            };
            s.$m(x, y)
        }
    };
}

/// Effect of a method whose footprint is one user record.
fn user_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let Some(n) = a.str(0) else {
            return Footprint::new();
        };
        if n.is_empty() {
            return Footprint::new();
        }
        let key = format!("users/{n}");
        Footprint::new().reads([key.clone()]).writes([key])
    })
}

fn create_event_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(n), Some(c)) = (a.str(0), a.i64(1)) else {
            return Footprint::new();
        };
        if n.is_empty() || c <= 0 {
            return Footprint::new();
        }
        let key = format!("events/{n}");
        Footprint::new().reads([key.clone()]).writes([key])
    })
}

fn join_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(u), Some(e)) = (a.str(0), a.str(1)) else {
            return Footprint::new();
        };
        // The quota check scans the attendee sets of *every* event, so the
        // read set covers the whole `events` subtree.
        Footprint::new()
            .reads([format!("users/{u}"), "events".to_owned()])
            .writes([format!("events/{e}/attendees")])
    })
}

fn leave_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(_), Some(e)) = (a.str(0), a.str(1)) else {
            return Footprint::new();
        };
        Footprint::new()
            .reads([format!("events/{e}")])
            .writes([format!("events/{e}/attendees")])
    })
}

/// Registers the event-planner type and operations.
pub fn register(registry: &mut OpRegistry) {
    registry.register_type::<EventPlanner>();
    registry.register_with_effects::<EventPlanner>(
        "register_user",
        user_effect(),
        apply2!(register_user),
    );
    registry.register_with_effects::<EventPlanner>("sign_in", user_effect(), apply2!(sign_in));
    registry.register_with_effects::<EventPlanner>("sign_out", user_effect(), |s, a| {
        let Some(n) = a.str(0) else { return false };
        s.sign_out(n)
    });
    registry.register_with_effects::<EventPlanner>(
        "create_event",
        create_event_effect(),
        |s, a| {
            let (Some(n), Some(c)) = (a.str(0), a.i64(1)) else {
                return false;
            };
            s.create_event(n, c)
        },
    );
    registry.register_with_effects::<EventPlanner>("join", join_effect(), apply2!(join));
    registry.register_with_effects::<EventPlanner>("leave", leave_effect(), apply2!(leave));
}

fn invariant(v: &Value) -> bool {
    let Some(events) = v.field("events").and_then(Value::as_map) else {
        return false;
    };
    let Some(users) = v.field("users").and_then(Value::as_map) else {
        return false;
    };
    let Some(quota) = v.field("quota").and_then(Value::as_i64) else {
        return false;
    };
    let mut per_user: BTreeMap<&str, i64> = BTreeMap::new();
    for e in events.values() {
        let (Some(cap), Some(att)) = (
            e.field("capacity").and_then(Value::as_i64),
            e.field("attendees").and_then(Value::as_list),
        ) else {
            return false;
        };
        if att.len() as i64 > cap {
            return false; // over capacity
        }
        for a in att {
            let Some(name) = a.as_str() else { return false };
            if !users.contains_key(name) {
                return false; // attendee is not a registered user
            }
            *per_user.entry(name).or_insert(0) += 1;
        }
    }
    per_user.values().all(|&n| n <= quota)
}

/// Registers with runtime conformance checking.
pub fn register_checked(registry: &mut OpRegistry, log: &ConformanceLog) {
    registry.register_type::<EventPlanner>();
    let inv = MethodContract::new().with_invariant(invariant);
    guesstimate_spec::register_checked::<EventPlanner>(
        registry,
        "register_user",
        inv.clone(),
        log,
        apply2!(register_user),
    );
    guesstimate_spec::register_checked::<EventPlanner>(
        registry,
        "sign_in",
        inv.clone(),
        log,
        apply2!(sign_in),
    );
    guesstimate_spec::register_checked::<EventPlanner>(
        registry,
        "sign_out",
        inv.clone(),
        log,
        |s, a| {
            let Some(n) = a.str(0) else { return false };
            s.sign_out(n)
        },
    );
    guesstimate_spec::register_checked::<EventPlanner>(
        registry,
        "create_event",
        inv.clone(),
        log,
        |s, a| {
            let (Some(n), Some(c)) = (a.str(0), a.i64(1)) else {
                return false;
            };
            s.create_event(n, c)
        },
    );
    guesstimate_spec::register_checked::<EventPlanner>(
        registry,
        "join",
        inv.clone().with_post(|_pre, post, a| {
            // φ_join: the user now attends the event (capacity/quota are
            // covered by the invariant).
            let (Some(user), Some(event)) = (
                a.first().and_then(Value::as_str),
                a.get(1).and_then(Value::as_str),
            ) else {
                return false;
            };
            post.field("events")
                .and_then(Value::as_map)
                .and_then(|m| m.get(event))
                .and_then(|e| e.field("attendees"))
                .and_then(Value::as_list)
                .is_some_and(|att| att.iter().any(|x| x.as_str() == Some(user)))
        }),
        log,
        apply2!(join),
    );
    guesstimate_spec::register_checked::<EventPlanner>(registry, "leave", inv, log, apply2!(leave));
}

/// The specification suite for the verifier's table.
///
/// Beyond the universal frame/invariant assertions, the suite carries
/// domain assertions in the §5 style: membership effects, per-event
/// framing, and state-independent argument guards (small-scope abstracted:
/// one representative non-empty string stands for all).
pub fn spec_suite() -> SpecSuite {
    use guesstimate_spec::{Assertion, ExecCase};

    let users = ["ann", "bob", "ghost", ""];
    let events = ["party", "dinner", "nothing", ""];
    let mut two_arg = Vec::new();
    for u in users {
        for e in events {
            two_arg.push(args![u, e]);
        }
    }

    // Shared helpers over snapshots.
    fn event_of<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
        v.field("events")
            .and_then(Value::as_map)
            .and_then(|m| m.get(name))
    }
    fn attends(v: &Value, user: &str, event: &str) -> bool {
        event_of(v, event)
            .and_then(|e| e.field("attendees"))
            .and_then(Value::as_list)
            .is_some_and(|l| l.iter().any(|a| a.as_str() == Some(user)))
    }
    fn other_events_unchanged(c: &ExecCase) -> bool {
        let Some(target) = c.args.get(1).and_then(Value::as_str) else {
            return false;
        };
        let (Some(ep), Some(eq)) = (
            c.pre.field("events").and_then(Value::as_map),
            c.post.field("events").and_then(Value::as_map),
        ) else {
            return false;
        };
        ep.len() == eq.len() && ep.iter().all(|(k, v)| k == target || eq.get(k) == Some(v))
    }

    let join = MethodSpec::new(
        "join",
        MethodContract::new()
            .with_post(|_pre, post, a| {
                let (Some(u), Some(e)) = (
                    a.first().and_then(Value::as_str),
                    a.get(1).and_then(Value::as_str),
                ) else {
                    return false;
                };
                attends(post, u, e)
            })
            .with_assertion("join-frames-other-events", other_events_unchanged)
            .with_assertion("join-never-touches-users", |c| {
                c.pre.field("users") == c.post.field("users")
            })
            .with_assertion("join-adds-at-most-one", |c| {
                let count = |v: &Value| -> usize {
                    v.field("events")
                        .and_then(Value::as_map)
                        .map(|m| {
                            m.values()
                                .filter_map(|e| e.field("attendees").and_then(Value::as_list))
                                .map(<[Value]>::len)
                                .sum()
                        })
                        .unwrap_or(0)
                };
                count(&c.post) <= count(&c.pre) + 1
            }),
    )
    .with_args(two_arg.clone(), false);

    let leave = MethodSpec::new(
        "leave",
        MethodContract::new()
            .with_post(|_pre, post, a| {
                let (Some(u), Some(e)) = (
                    a.first().and_then(Value::as_str),
                    a.get(1).and_then(Value::as_str),
                ) else {
                    return false;
                };
                !attends(post, u, e)
            })
            .with_assertion("leave-frames-other-events", other_events_unchanged)
            .with_assertion("leave-never-touches-users", |c| {
                c.pre.field("users") == c.post.field("users")
            }),
    )
    .with_args(two_arg.clone(), false);

    let sign_in = MethodSpec::new(
        "sign_in",
        MethodContract::new()
            .with_post(|_pre, post, a| {
                let Some(u) = a.first().and_then(Value::as_str) else {
                    return false;
                };
                post.field("users")
                    .and_then(Value::as_map)
                    .and_then(|m| m.get(u))
                    .and_then(|r| r.field("signed_in"))
                    .and_then(Value::as_bool)
                    == Some(true)
            })
            .with_assertion("sign-in-never-changes-passwords", |c| {
                let pw = |v: &Value| -> Vec<Value> {
                    v.field("users")
                        .and_then(Value::as_map)
                        .map(|m| {
                            m.values()
                                .filter_map(|u| u.field("password").cloned())
                                .collect()
                        })
                        .unwrap_or_default()
                };
                pw(&c.pre) == pw(&c.post)
            })
            .with_assertion("sign-in-never-touches-events", |c| {
                c.pre.field("events") == c.post.field("events")
            }),
    )
    .with_args(
        vec![
            args!["ann", "pw"],
            args!["ann", "wrong"],
            args!["ghost", "pw"],
        ],
        false,
    );

    let register = MethodSpec::new(
        "register_user",
        MethodContract::new()
            .with_post(|pre, post, a| {
                let Some(u) = a.first().and_then(Value::as_str) else {
                    return false;
                };
                let had = pre
                    .field("users")
                    .and_then(Value::as_map)
                    .is_some_and(|m| m.contains_key(u));
                let has = post
                    .field("users")
                    .and_then(Value::as_map)
                    .is_some_and(|m| m.contains_key(u));
                !had && has
            })
            .with_assertion_obj(
                Assertion::new("empty-username-fails", |c| {
                    c.args.first().and_then(Value::as_str) != Some("")
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            ),
    )
    // Small-scope abstraction: "" and one representative name cover the
    // guard's argument space.
    .with_args(
        vec![args!["", "pw"], args!["newbie", "pw"], args!["ann", "pw"]],
        true,
    );

    let create_event = MethodSpec::new(
        "create_event",
        MethodContract::new()
            .with_assertion_obj(
                Assertion::new("nonpositive-capacity-fails", |c| {
                    c.args.get(1).and_then(Value::as_i64).is_none_or(|n| n > 0)
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_assertion_obj(
                Assertion::new("empty-event-name-fails", |c| {
                    c.args.first().and_then(Value::as_str) != Some("")
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            ),
    )
    .with_args(
        vec![
            args!["x", 2],
            args!["x", 0],
            args!["x", -1],
            args!["", 1],
            args!["party", 3],
        ],
        true,
    );

    SpecSuite::new("EventPlanner")
        .with_invariant("capacity-and-quota", invariant)
        .with_method(join)
        .with_method(leave)
        .with_method(sign_in)
        .with_method(register)
        .with_method(create_event)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> EventPlanner {
        let mut p = EventPlanner::with_quota(2);
        assert!(p.register_user("ann", "pw"));
        assert!(p.register_user("bob", "pw"));
        assert!(p.create_event("party", 1));
        assert!(p.create_event("dinner", 2));
        assert!(p.create_event("hike", 2));
        p
    }

    #[test]
    fn registration_rejects_duplicates_and_empty() {
        let mut p = EventPlanner::default();
        assert!(p.register_user("ann", "pw"));
        assert!(!p.register_user("ann", "other"), "duplicate username");
        assert!(!p.register_user("", "pw"));
        assert!(p.has_user("ann"));
        assert!(!p.has_user("bob"));
    }

    #[test]
    fn sign_in_checks_password_and_single_session() {
        let mut p = planner();
        assert!(!p.sign_in("ann", "wrong"));
        assert!(p.sign_in("ann", "pw"));
        assert!(p.is_signed_in("ann"));
        assert!(!p.sign_in("ann", "pw"), "already signed in elsewhere");
        assert!(p.sign_out("ann"));
        assert!(!p.sign_out("ann"), "not signed in");
        assert!(p.sign_in("ann", "pw"));
    }

    #[test]
    fn join_respects_capacity() {
        let mut p = planner();
        assert!(p.join("ann", "party"));
        assert!(!p.join("bob", "party"), "capacity 1");
        assert_eq!(p.vacancies("party"), Some(0));
        assert!(p.is_attending("ann", "party"));
        assert!(!p.is_attending("bob", "party"));
        assert_eq!(p.capacity("party"), Some(1));
    }

    #[test]
    fn join_respects_quota() {
        let mut p = planner();
        assert!(p.join("ann", "party"));
        assert!(p.join("ann", "dinner"));
        assert!(!p.join("ann", "hike"), "quota 2 reached");
        assert!(p.leave("ann", "party"));
        assert!(p.join("ann", "hike"), "leaving frees quota");
        assert_eq!(p.joined_events("ann"), vec!["dinner", "hike"]);
        assert_eq!(p.quota(), 2);
    }

    #[test]
    fn join_requires_registered_user_and_existing_event() {
        let mut p = planner();
        assert!(!p.join("ghost", "party"));
        assert!(!p.join("ann", "nothing"));
        assert!(p.join("ann", "party"));
        assert!(!p.join("ann", "party"), "double join fails");
    }

    #[test]
    fn leave_semantics() {
        let mut p = planner();
        assert!(!p.leave("ann", "party"), "not attending");
        p.join("ann", "party");
        assert!(p.leave("ann", "party"));
        assert!(!p.is_attending("ann", "party"));
        assert_eq!(p.event_names().len(), 3);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut p = planner();
        p.join("ann", "party");
        p.sign_in("bob", "pw");
        let mut q = EventPlanner::default();
        GState::restore(&mut q, &GState::snapshot(&p)).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn restore_rejects_malformed() {
        let mut p = EventPlanner::default();
        assert!(GState::restore(&mut p, &Value::from(1)).is_err());
    }

    #[test]
    fn invariant_holds_on_valid_states() {
        let mut p = planner();
        p.join("ann", "party");
        assert!(invariant(&GState::snapshot(&p)));
        assert!(!invariant(&Value::Unit));
    }

    #[test]
    fn or_else_join_one_of_prefers_first_available() {
        use guesstimate_core::{execute, MachineId, ObjectStore};
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(planner()));
        // Fill the party so the OrElse falls through to dinner.
        execute(&ops::join(obj, "bob", "party"), &mut store, &reg).unwrap();
        let op = ops::join_one_of(obj, "ann", &["party", "dinner"]).unwrap();
        assert!(execute(&op, &mut store, &reg).unwrap().is_success());
        let p = store.get_as::<EventPlanner>(obj).unwrap();
        assert!(!p.is_attending("ann", "party"));
        assert!(p.is_attending("ann", "dinner"));
        assert!(ops::join_one_of(obj, "ann", &[]).is_none());
    }

    #[test]
    fn atomic_swap_retains_old_event_on_failure() {
        use guesstimate_core::{execute, MachineId, ObjectStore};
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(planner()));
        execute(&ops::join(obj, "ann", "dinner"), &mut store, &reg).unwrap();
        execute(&ops::join(obj, "bob", "party"), &mut store, &reg).unwrap();
        // party is now full: the swap must fail atomically, retaining dinner.
        let swap = ops::swap_events(obj, "ann", "dinner", "party");
        assert!(!execute(&swap, &mut store, &reg).unwrap().is_success());
        let p = store.get_as::<EventPlanner>(obj).unwrap();
        assert!(p.is_attending("ann", "dinner"), "dinner retained");
        assert!(!p.is_attending("ann", "party"));
    }

    #[test]
    fn join_both_is_all_or_nothing() {
        use guesstimate_core::{execute, MachineId, ObjectStore};
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(planner()));
        execute(&ops::join(obj, "bob", "party"), &mut store, &reg).unwrap();
        let both = ops::join_both(obj, "ann", "dinner", "party");
        assert!(!execute(&both, &mut store, &reg).unwrap().is_success());
        let p = store.get_as::<EventPlanner>(obj).unwrap();
        assert!(!p.is_attending("ann", "dinner"), "dinner join rolled back");
    }

    #[test]
    fn checked_registration_is_clean() {
        use guesstimate_core::{execute, MachineId, ObjectStore};
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        let log = ConformanceLog::new();
        register_checked(&mut reg, &log);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(planner()));
        for op in [
            ops::join(obj, "ann", "party"),
            ops::join(obj, "bob", "party"), // fails: full
            ops::leave(obj, "ann", "party"),
            ops::sign_in(obj, "ann", "pw"),
            ops::sign_out(obj, "ann"),
            ops::register_user(obj, "cid", "pw"),
            ops::create_event(obj, "gala", 5),
        ] {
            let _ = execute(&op, &mut store, &reg).unwrap();
        }
        assert!(log.is_empty(), "{:?}", log.violations());
    }

    #[test]
    fn spec_suite_builds_and_verifies_cleanly() {
        use guesstimate_spec::{verify_suite, CaseSpace};
        let suite = spec_suite();
        assert_eq!(suite.type_name, "EventPlanner");
        assert!(suite.assertion_count() >= 18);
        // Verify against a few reachable states: no refutations, and the
        // state-independent guards (exhaustive arg spaces) verify.
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut p = planner();
        p.join("ann", "party");
        p.sign_in("bob", "pw");
        let states = vec![
            GState::snapshot(&EventPlanner::default()),
            GState::snapshot(&planner()),
            GState::snapshot(&p),
        ];
        let report = verify_suite(&reg, &suite, &CaseSpace::sampled(states, 100_000));
        assert_eq!(
            report.refuted(),
            0,
            "{:?}",
            report
                .assertions
                .iter()
                .filter(|a| a.verdict == guesstimate_spec::Verdict::Refuted)
                .map(|a| (&a.method, &a.name))
                .collect::<Vec<_>>()
        );
        assert!(
            report.verified() >= 3,
            "SI guards verified: {}",
            report.verified()
        );
    }
}
