//! # guesstimate-apps
//!
//! The six collaborative applications the GUESSTIMATE paper builds (§6),
//! reimplemented on the Rust runtime:
//!
//! 1. [`sudoku`] — a multi-player collaborative Sudoku puzzle (the paper's
//!    running example and the §7 measurement workload).
//! 2. [`event_planner`] — event planning with capacities, per-user quotas,
//!    blocking sign-in/registration, `Atomic` and `OrElse` patterns.
//! 3. [`message_board`] — a topic/post message board.
//! 4. [`carpool`] — a car-pool system with `GetRide` built as an `OrElse`
//!    chain over vehicles (the §5 specification example: φ_GetRide = "the
//!    user has *some* ride", whichever vehicle ends up providing it).
//! 5. [`auction`] — an auction with reserve prices and bid increments.
//! 6. [`microblog`] — a small twitter-like application.
//!
//! Each module provides the shared-object type (a [`guesstimate_core::GState`]),
//! a `register` function installing its operations into an
//! [`guesstimate_core::OpRegistry`] (plus a `register_checked` variant that
//! wraps every operation with runtime conformance checking), typed
//! operation constructors in an `ops` submodule, and — following the
//! paper's §5 discipline — a [`guesstimate_spec::SpecSuite`] so the
//! Boogie-analog verifier can classify the application's assertions.
//!
//! `register_all` installs all six applications into one registry, as the
//! examples and the benchmark harness do.

#![warn(missing_docs)]

pub mod auction;
pub mod carpool;
pub mod event_planner;
pub mod message_board;
pub mod microblog;
pub mod sudoku;

use guesstimate_core::OpRegistry;
use guesstimate_spec::ConformanceLog;

/// Registers every application's types and operations.
pub fn register_all(registry: &mut OpRegistry) {
    sudoku::register(registry);
    event_planner::register(registry);
    message_board::register(registry);
    carpool::register(registry);
    auction::register(registry);
    microblog::register(registry);
}

/// Registers every application with runtime conformance checking into `log`.
pub fn register_all_checked(registry: &mut OpRegistry, log: &ConformanceLog) {
    sudoku::register_checked(registry, log);
    event_planner::register_checked(registry, log);
    message_board::register_checked(registry, log);
    carpool::register_checked(registry, log);
    auction::register_checked(registry, log);
    microblog::register_checked(registry, log);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_all_installs_every_type() {
        let mut r = OpRegistry::new();
        register_all(&mut r);
        for t in [
            "Sudoku",
            "EventPlanner",
            "MessageBoard",
            "CarPool",
            "Auction",
            "MicroBlog",
        ] {
            assert!(r.has_type(t), "{t} missing");
        }
    }

    #[test]
    fn register_all_checked_installs_every_type() {
        let mut r = OpRegistry::new();
        let log = ConformanceLog::new();
        register_all_checked(&mut r, &log);
        assert!(r.has_type("Sudoku"));
        assert!(r.has_method("Auction", "bid"));
        assert!(log.is_empty());
    }
}
