//! The message-board application (§6).
//!
//! Topics hold an append-only list of posts. The interesting property under
//! GUESSTIMATE is ordering: two users posting concurrently both see their
//! own post first on their guesstimated state, and the commit order decides
//! the final, globally agreed order — no post is ever lost, so posts rarely
//! conflict (`post` only fails on a missing topic).

use std::collections::BTreeMap;

use guesstimate_core::{
    args, EffectSpec, Footprint, GState, ObjectId, OpRegistry, RestoreError, SharedOp, Value,
};
use guesstimate_spec::{ConformanceLog, MethodContract, MethodSpec, SpecSuite};

/// One post.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Post {
    /// Author name.
    pub author: String,
    /// Body text.
    pub text: String,
}

/// The shared message-board state.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MessageBoard {
    topics: BTreeMap<String, Vec<Post>>,
}

impl MessageBoard {
    /// A fresh, empty board.
    pub fn new() -> Self {
        MessageBoard::default()
    }

    /// All topic names, in order.
    pub fn topics(&self) -> Vec<String> {
        self.topics.keys().cloned().collect()
    }

    /// The posts of a topic, oldest first.
    pub fn posts(&self, topic: &str) -> Option<&[Post]> {
        self.topics.get(topic).map(Vec::as_slice)
    }

    /// Total number of posts across all topics.
    pub fn post_count(&self) -> usize {
        self.topics.values().map(Vec::len).sum()
    }

    fn create_topic(&mut self, name: &str) -> bool {
        if name.is_empty() || self.topics.contains_key(name) {
            return false;
        }
        self.topics.insert(name.to_owned(), Vec::new());
        true
    }

    fn post(&mut self, topic: &str, author: &str, text: &str) -> bool {
        if author.is_empty() {
            return false;
        }
        match self.topics.get_mut(topic) {
            Some(posts) => {
                posts.push(Post {
                    author: author.to_owned(),
                    text: text.to_owned(),
                });
                true
            }
            None => false,
        }
    }
}

impl GState for MessageBoard {
    const TYPE_NAME: &'static str = "MessageBoard";

    fn snapshot(&self) -> Value {
        Value::map(self.topics.iter().map(|(name, posts)| {
            (
                name.clone(),
                posts
                    .iter()
                    .map(|p| {
                        Value::map([
                            ("author", Value::from(p.author.clone())),
                            ("text", Value::from(p.text.clone())),
                        ])
                    })
                    .collect(),
            )
        }))
    }

    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let shape = || RestoreError::shape("message-board snapshot");
        self.topics.clear();
        for (name, posts) in v.as_map().ok_or_else(shape)? {
            let posts = posts
                .as_list()
                .ok_or_else(shape)?
                .iter()
                .map(|p| {
                    Ok(Post {
                        author: p
                            .field("author")
                            .and_then(Value::as_str)
                            .ok_or_else(shape)?
                            .to_owned(),
                        text: p
                            .field("text")
                            .and_then(Value::as_str)
                            .ok_or_else(shape)?
                            .to_owned(),
                    })
                })
                .collect::<Result<Vec<_>, RestoreError>>()?;
            self.topics.insert(name.clone(), posts);
        }
        Ok(())
    }
}

/// Typed operation constructors.
pub mod ops {
    use super::*;

    /// Create a topic (fails on duplicates).
    pub fn create_topic(obj: ObjectId, name: &str) -> SharedOp {
        SharedOp::primitive(obj, "create_topic", args![name])
    }

    /// Append a post to a topic.
    pub fn post(obj: ObjectId, topic: &str, author: &str, text: &str) -> SharedOp {
        SharedOp::primitive(obj, "post", args![topic, author, text])
    }
}

fn apply_create(s: &mut MessageBoard, a: guesstimate_core::ArgView<'_>) -> bool {
    let Some(n) = a.str(0) else { return false };
    s.create_topic(n)
}

fn apply_post(s: &mut MessageBoard, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(t), Some(au), Some(x)) = (a.str(0), a.str(1), a.str(2)) else {
        return false;
    };
    s.post(t, au, x)
}

fn create_topic_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let Some(n) = a.str(0) else {
            return Footprint::new();
        };
        if n.is_empty() {
            return Footprint::new();
        }
        // The snapshot is a map keyed directly by topic name.
        Footprint::new().reads([n]).writes([n])
    })
}

fn post_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(t), Some(au)) = (a.str(0), a.str(1)) else {
            return Footprint::new();
        };
        if au.is_empty() {
            return Footprint::new();
        }
        // Appends to the topic's post list: the list content depends on the
        // existing posts, so the whole topic key is both read and written —
        // two posts to the *same* topic deliberately conflict (order-visible).
        Footprint::new().reads([t]).writes([t])
    })
}

/// Registers the message-board type and operations.
pub fn register(registry: &mut OpRegistry) {
    registry.register_type::<MessageBoard>();
    registry.register_with_effects::<MessageBoard>(
        "create_topic",
        create_topic_effect(),
        apply_create,
    );
    registry.register_with_effects::<MessageBoard>("post", post_effect(), apply_post);
}

fn post_contract() -> MethodContract {
    MethodContract::new().with_post(|pre, post, a| {
        // φ_post: the topic's post list grew by exactly one — ours, at the
        // end — and no other topic changed.
        let (Some(topic), Some(author)) = (
            a.first().and_then(Value::as_str),
            a.get(1).and_then(Value::as_str),
        ) else {
            return false;
        };
        let (Some(mp), Some(mq)) = (pre.as_map(), post.as_map()) else {
            return false;
        };
        let (Some(before), Some(after)) = (
            mp.get(topic).and_then(Value::as_list),
            mq.get(topic).and_then(Value::as_list),
        ) else {
            return false;
        };
        after.len() == before.len() + 1
            && after[..before.len()] == *before
            && after
                .last()
                .and_then(|p| p.field("author"))
                .and_then(Value::as_str)
                == Some(author)
            && mp.iter().all(|(k, v)| k == topic || mq.get(k) == Some(v))
    })
}

/// Registers with runtime conformance checking.
pub fn register_checked(registry: &mut OpRegistry, log: &ConformanceLog) {
    registry.register_type::<MessageBoard>();
    guesstimate_spec::register_checked::<MessageBoard>(
        registry,
        "create_topic",
        MethodContract::new().with_post(|pre, post, a| {
            let Some(name) = a.first().and_then(Value::as_str) else {
                return false;
            };
            pre.as_map().is_some_and(|m| !m.contains_key(name))
                && post.as_map().is_some_and(|m| {
                    m.get(name)
                        .and_then(Value::as_list)
                        .is_some_and(|l| l.is_empty())
                })
        }),
        log,
        apply_create,
    );
    guesstimate_spec::register_checked::<MessageBoard>(
        registry,
        "post",
        post_contract(),
        log,
        apply_post,
    );
}

/// Specification suite for the verifier table.
pub fn spec_suite() -> SpecSuite {
    use guesstimate_spec::Assertion;

    let create = MethodSpec::new(
        "create_topic",
        MethodContract::new()
            .with_assertion_obj(
                Assertion::new("empty-topic-name-fails", |c| {
                    c.args.first().and_then(Value::as_str) != Some("")
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_assertion("topics-never-disappear", |c| {
                let (Some(mp), Some(mq)) = (c.pre.as_map(), c.post.as_map()) else {
                    return false;
                };
                mp.keys().all(|k| mq.contains_key(k))
            }),
    )
    // Small-scope abstraction: "" vs one representative non-empty name.
    .with_args(vec![args!["general"], args![""]], true);

    let post = MethodSpec::new(
        "post",
        post_contract()
            .with_assertion_obj(
                Assertion::new("anonymous-post-fails", |c| {
                    c.args.get(1).and_then(Value::as_str) != Some("")
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_assertion("posts-are-append-only", |c| {
                let (Some(mp), Some(mq)) = (c.pre.as_map(), c.post.as_map()) else {
                    return false;
                };
                mp.iter().all(
                    |(k, v)| match (v.as_list(), mq.get(k).and_then(Value::as_list)) {
                        (Some(before), Some(after)) => {
                            after.len() >= before.len() && after[..before.len()] == *before
                        }
                        _ => false,
                    },
                )
            }),
    )
    .with_args(
        vec![
            args!["general", "ann", "hi"],
            args!["missing", "ann", "hi"],
            args!["general", "", "hi"],
            args!["general", "ann", ""],
        ],
        false,
    );

    SpecSuite::new("MessageBoard")
        .with_method(create)
        .with_method(post)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topics_are_unique_and_nonempty() {
        let mut b = MessageBoard::new();
        assert!(b.create_topic("general"));
        assert!(!b.create_topic("general"));
        assert!(!b.create_topic(""));
        assert_eq!(b.topics(), vec!["general"]);
    }

    #[test]
    fn posts_append_in_order() {
        let mut b = MessageBoard::new();
        b.create_topic("general");
        assert!(b.post("general", "ann", "first"));
        assert!(b.post("general", "bob", "second"));
        let posts = b.posts("general").unwrap();
        assert_eq!(posts.len(), 2);
        assert_eq!(posts[0].author, "ann");
        assert_eq!(posts[1].text, "second");
        assert_eq!(b.post_count(), 2);
    }

    #[test]
    fn post_fails_on_missing_topic_or_anonymous() {
        let mut b = MessageBoard::new();
        assert!(!b.post("nope", "ann", "x"));
        b.create_topic("general");
        assert!(!b.post("general", "", "x"));
        assert_eq!(b.post_count(), 0);
        assert!(b.posts("nope").is_none());
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut b = MessageBoard::new();
        b.create_topic("general");
        b.post("general", "ann", "hello");
        let mut c = MessageBoard::new();
        GState::restore(&mut c, &GState::snapshot(&b)).unwrap();
        assert_eq!(b, c);
    }

    #[test]
    fn restore_rejects_malformed() {
        let mut b = MessageBoard::new();
        assert!(GState::restore(&mut b, &Value::from(1)).is_err());
    }

    #[test]
    fn checked_registration_is_clean() {
        use guesstimate_core::{execute, MachineId, ObjectStore};
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        let log = ConformanceLog::new();
        register_checked(&mut reg, &log);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(MessageBoard::new()));
        execute(&ops::create_topic(obj, "general"), &mut store, &reg).unwrap();
        execute(&ops::post(obj, "general", "ann", "hi"), &mut store, &reg).unwrap();
        execute(&ops::post(obj, "missing", "ann", "hi"), &mut store, &reg).unwrap();
        assert!(log.is_empty(), "{:?}", log.violations());
    }

    #[test]
    fn spec_suite_verifies_cleanly() {
        use guesstimate_spec::{verify_suite, CaseSpace};
        let suite = spec_suite();
        assert!(suite.assertion_count() >= 7);
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut b = MessageBoard::new();
        b.create_topic("general");
        let mut b2 = b.clone();
        b2.post("general", "ann", "hello");
        let states = vec![
            GState::snapshot(&MessageBoard::new()),
            GState::snapshot(&b),
            GState::snapshot(&b2),
        ];
        let report = verify_suite(&reg, &suite, &CaseSpace::sampled(states, 100_000));
        assert_eq!(report.refuted(), 0);
        assert!(report.verified() >= 1);
    }
}
