//! The message-board application (§6).
//!
//! Topics hold an append-only list of posts. The interesting property under
//! GUESSTIMATE is ordering: two users posting concurrently both see their
//! own post first on their guesstimated state, and the commit order decides
//! the final, globally agreed order — no post is ever lost, so posts rarely
//! conflict (`post` only fails on a missing topic).
//!
//! `like` is the board's *blind counter*: it bumps a per-key tally without
//! reading topics, posts, or even whether the key exists. By construction it
//! commutes — in state and result — with every method including itself, so
//! the effect analysis classifies it a **universal commuter** and the
//! runtime's hybrid async commit path (`MachineConfig::async_commit`) may
//! commit it without waiting for a synchronization round.

use std::collections::BTreeMap;

use guesstimate_core::{
    args, EffectSpec, Footprint, GState, ObjectId, OpRegistry, RestoreError, SharedOp, Value,
};
use guesstimate_spec::{ConformanceLog, MethodContract, MethodSpec, SpecSuite};

/// One post.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Post {
    /// Author name.
    pub author: String,
    /// Body text.
    pub text: String,
}

/// The shared message-board state.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MessageBoard {
    topics: BTreeMap<String, Vec<Post>>,
    /// Blind like tallies, keyed by an arbitrary client-chosen string
    /// (conventionally `topic` or `topic/seq`). Deliberately *not*
    /// referentially checked against topics: any existence precondition
    /// would order `like` against `create_topic` and destroy the
    /// universal commutation the hybrid path relies on.
    likes: BTreeMap<String, u64>,
}

impl MessageBoard {
    /// A fresh, empty board.
    pub fn new() -> Self {
        MessageBoard::default()
    }

    /// All topic names, in order.
    pub fn topics(&self) -> Vec<String> {
        self.topics.keys().cloned().collect()
    }

    /// The posts of a topic, oldest first.
    pub fn posts(&self, topic: &str) -> Option<&[Post]> {
        self.topics.get(topic).map(Vec::as_slice)
    }

    /// Total number of posts across all topics.
    pub fn post_count(&self) -> usize {
        self.topics.values().map(Vec::len).sum()
    }

    fn create_topic(&mut self, name: &str) -> bool {
        if name.is_empty() || self.topics.contains_key(name) {
            return false;
        }
        self.topics.insert(name.to_owned(), Vec::new());
        true
    }

    /// The like tally for a key (0 when never liked).
    pub fn likes(&self, key: &str) -> u64 {
        self.likes.get(key).copied().unwrap_or(0)
    }

    /// Total likes across all keys.
    pub fn like_count(&self) -> u64 {
        self.likes.values().sum()
    }

    fn like(&mut self, key: &str) -> bool {
        if key.is_empty() {
            return false;
        }
        *self.likes.entry(key.to_owned()).or_insert(0) += 1;
        true
    }

    fn post(&mut self, topic: &str, author: &str, text: &str) -> bool {
        if author.is_empty() {
            return false;
        }
        match self.topics.get_mut(topic) {
            Some(posts) => {
                posts.push(Post {
                    author: author.to_owned(),
                    text: text.to_owned(),
                });
                true
            }
            None => false,
        }
    }
}

impl GState for MessageBoard {
    const TYPE_NAME: &'static str = "MessageBoard";

    fn snapshot(&self) -> Value {
        let topics = Value::map(self.topics.iter().map(|(name, posts)| {
            (
                name.clone(),
                posts
                    .iter()
                    .map(|p| {
                        Value::map([
                            ("author", Value::from(p.author.clone())),
                            ("text", Value::from(p.text.clone())),
                        ])
                    })
                    .collect(),
            )
        }));
        let likes = Value::map(
            self.likes
                .iter()
                .map(|(k, n)| (k.clone(), Value::from(*n as i64))),
        );
        Value::map([("topics", topics), ("likes", likes)])
    }

    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let shape = || RestoreError::shape("message-board snapshot");
        self.topics.clear();
        for (name, posts) in v
            .field("topics")
            .and_then(Value::as_map)
            .ok_or_else(shape)?
        {
            let posts = posts
                .as_list()
                .ok_or_else(shape)?
                .iter()
                .map(|p| {
                    Ok(Post {
                        author: p
                            .field("author")
                            .and_then(Value::as_str)
                            .ok_or_else(shape)?
                            .to_owned(),
                        text: p
                            .field("text")
                            .and_then(Value::as_str)
                            .ok_or_else(shape)?
                            .to_owned(),
                    })
                })
                .collect::<Result<Vec<_>, RestoreError>>()?;
            self.topics.insert(name.clone(), posts);
        }
        self.likes.clear();
        for (k, n) in v.field("likes").and_then(Value::as_map).ok_or_else(shape)? {
            let n = n.as_i64().ok_or_else(shape)?;
            self.likes.insert(k.clone(), n as u64);
        }
        Ok(())
    }
}

/// Typed operation constructors.
pub mod ops {
    use super::*;

    /// Create a topic (fails on duplicates).
    pub fn create_topic(obj: ObjectId, name: &str) -> SharedOp {
        SharedOp::primitive(obj, "create_topic", args![name])
    }

    /// Append a post to a topic.
    pub fn post(obj: ObjectId, topic: &str, author: &str, text: &str) -> SharedOp {
        SharedOp::primitive(obj, "post", args![topic, author, text])
    }

    /// Blindly bump the like tally for a key.
    pub fn like(obj: ObjectId, key: &str) -> SharedOp {
        SharedOp::primitive(obj, "like", args![key])
    }
}

fn apply_create(s: &mut MessageBoard, a: guesstimate_core::ArgView<'_>) -> bool {
    let Some(n) = a.str(0) else { return false };
    s.create_topic(n)
}

fn apply_like(s: &mut MessageBoard, a: guesstimate_core::ArgView<'_>) -> bool {
    let Some(k) = a.str(0) else { return false };
    s.like(k)
}

fn apply_post(s: &mut MessageBoard, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(t), Some(au), Some(x)) = (a.str(0), a.str(1), a.str(2)) else {
        return false;
    };
    s.post(t, au, x)
}

fn create_topic_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let Some(n) = a.str(0) else {
            return Footprint::new();
        };
        if n.is_empty() {
            return Footprint::new();
        }
        let key = format!("topics/{n}");
        Footprint::new().reads([key.clone()]).writes([key])
    })
}

fn post_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(t), Some(au)) = (a.str(0), a.str(1)) else {
            return Footprint::new();
        };
        if au.is_empty() {
            return Footprint::new();
        }
        // Appends to the topic's post list: the list content depends on the
        // existing posts, so the whole topic key is both read and written —
        // two posts to the *same* topic deliberately conflict (order-visible).
        let key = format!("topics/{t}");
        Footprint::new().reads([key.clone()]).writes([key])
    })
}

fn like_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let Some(k) = a.str(0) else {
            return Footprint::new();
        };
        if k.is_empty() {
            return Footprint::new();
        }
        // The increment reads the old tally; still commutes with itself
        // because addition does.
        let key = format!("likes/{k}");
        Footprint::new().reads([key.clone()]).writes([key])
    })
    .self_commuting()
}

/// Registers the message-board type and operations.
pub fn register(registry: &mut OpRegistry) {
    registry.register_type::<MessageBoard>();
    registry.register_with_effects::<MessageBoard>(
        "create_topic",
        create_topic_effect(),
        apply_create,
    );
    registry.register_with_effects::<MessageBoard>("post", post_effect(), apply_post);
    registry.register_with_effects::<MessageBoard>("like", like_effect(), apply_like);
}

fn post_contract() -> MethodContract {
    MethodContract::new().with_post(|pre, post, a| {
        // φ_post: the topic's post list grew by exactly one — ours, at the
        // end — and no other topic changed.
        let (Some(topic), Some(author)) = (
            a.first().and_then(Value::as_str),
            a.get(1).and_then(Value::as_str),
        ) else {
            return false;
        };
        let (Some(mp), Some(mq)) = (
            pre.field("topics").and_then(Value::as_map),
            post.field("topics").and_then(Value::as_map),
        ) else {
            return false;
        };
        let (Some(before), Some(after)) = (
            mp.get(topic).and_then(Value::as_list),
            mq.get(topic).and_then(Value::as_list),
        ) else {
            return false;
        };
        after.len() == before.len() + 1
            && after[..before.len()] == *before
            && after
                .last()
                .and_then(|p| p.field("author"))
                .and_then(Value::as_str)
                == Some(author)
            && mp.iter().all(|(k, v)| k == topic || mq.get(k) == Some(v))
    })
}

/// Registers with runtime conformance checking.
pub fn register_checked(registry: &mut OpRegistry, log: &ConformanceLog) {
    registry.register_type::<MessageBoard>();
    guesstimate_spec::register_checked::<MessageBoard>(
        registry,
        "create_topic",
        MethodContract::new().with_post(|pre, post, a| {
            let Some(name) = a.first().and_then(Value::as_str) else {
                return false;
            };
            pre.field("topics")
                .and_then(Value::as_map)
                .is_some_and(|m| !m.contains_key(name))
                && post
                    .field("topics")
                    .and_then(Value::as_map)
                    .is_some_and(|m| {
                        m.get(name)
                            .and_then(Value::as_list)
                            .is_some_and(|l| l.is_empty())
                    })
        }),
        log,
        apply_create,
    );
    guesstimate_spec::register_checked::<MessageBoard>(
        registry,
        "post",
        post_contract(),
        log,
        apply_post,
    );
    guesstimate_spec::register_checked::<MessageBoard>(
        registry,
        "like",
        like_contract(),
        log,
        apply_like,
    );
}

fn like_contract() -> MethodContract {
    MethodContract::new().with_post(|pre, post, a| {
        // φ_post: exactly this key's tally grew by one; topics untouched.
        let Some(key) = a.first().and_then(Value::as_str) else {
            return false;
        };
        let tally = |v: &Value| {
            v.field("likes")
                .and_then(Value::as_map)
                .and_then(|m| m.get(key))
                .and_then(Value::as_i64)
                .unwrap_or(0)
        };
        tally(post) == tally(pre) + 1 && pre.field("topics") == post.field("topics")
    })
}

/// Specification suite for the verifier table.
pub fn spec_suite() -> SpecSuite {
    use guesstimate_spec::Assertion;

    let create = MethodSpec::new(
        "create_topic",
        MethodContract::new()
            .with_assertion_obj(
                Assertion::new("empty-topic-name-fails", |c| {
                    c.args.first().and_then(Value::as_str) != Some("")
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_assertion("topics-never-disappear", |c| {
                let (Some(mp), Some(mq)) = (
                    c.pre.field("topics").and_then(Value::as_map),
                    c.post.field("topics").and_then(Value::as_map),
                ) else {
                    return false;
                };
                mp.keys().all(|k| mq.contains_key(k))
            }),
    )
    // Small-scope abstraction: "" vs one representative non-empty name.
    .with_args(vec![args!["general"], args![""]], true);

    let post = MethodSpec::new(
        "post",
        post_contract()
            .with_assertion_obj(
                Assertion::new("anonymous-post-fails", |c| {
                    c.args.get(1).and_then(Value::as_str) != Some("")
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_assertion("posts-are-append-only", |c| {
                let (Some(mp), Some(mq)) = (
                    c.pre.field("topics").and_then(Value::as_map),
                    c.post.field("topics").and_then(Value::as_map),
                ) else {
                    return false;
                };
                mp.iter().all(
                    |(k, v)| match (v.as_list(), mq.get(k).and_then(Value::as_list)) {
                        (Some(before), Some(after)) => {
                            after.len() >= before.len() && after[..before.len()] == *before
                        }
                        _ => false,
                    },
                )
            }),
    )
    // Small-scope abstraction: present vs missing topic, anonymous author,
    // empty body — the footprint depends only on the topic name, so these
    // representatives generalize.
    .with_args(
        vec![
            args!["general", "ann", "hi"],
            args!["missing", "ann", "hi"],
            args!["general", "", "hi"],
            args!["general", "ann", ""],
        ],
        true,
    );

    let like = MethodSpec::new(
        "like",
        like_contract()
            .with_assertion_obj(
                Assertion::new("empty-key-fails", |c| {
                    c.args.first().and_then(Value::as_str) != Some("")
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_assertion("likes-are-blind", |c| {
                // Succeeds whether or not the key names a real topic: an
                // existence check would order `like` after `create_topic`.
                c.args.first().and_then(Value::as_str) == Some("") || c.result
            }),
    )
    // Small-scope abstraction: a key with a topic, one without, and "".
    .with_args(vec![args!["general"], args!["missing"], args![""]], true);

    SpecSuite::new("MessageBoard")
        .with_method(create)
        .with_method(post)
        .with_method(like)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topics_are_unique_and_nonempty() {
        let mut b = MessageBoard::new();
        assert!(b.create_topic("general"));
        assert!(!b.create_topic("general"));
        assert!(!b.create_topic(""));
        assert_eq!(b.topics(), vec!["general"]);
    }

    #[test]
    fn posts_append_in_order() {
        let mut b = MessageBoard::new();
        b.create_topic("general");
        assert!(b.post("general", "ann", "first"));
        assert!(b.post("general", "bob", "second"));
        let posts = b.posts("general").unwrap();
        assert_eq!(posts.len(), 2);
        assert_eq!(posts[0].author, "ann");
        assert_eq!(posts[1].text, "second");
        assert_eq!(b.post_count(), 2);
    }

    #[test]
    fn post_fails_on_missing_topic_or_anonymous() {
        let mut b = MessageBoard::new();
        assert!(!b.post("nope", "ann", "x"));
        b.create_topic("general");
        assert!(!b.post("general", "", "x"));
        assert_eq!(b.post_count(), 0);
        assert!(b.posts("nope").is_none());
    }

    #[test]
    fn likes_are_blind_and_additive() {
        let mut b = MessageBoard::new();
        assert!(b.like("general"), "no topic needed");
        assert!(b.like("general"));
        assert!(b.like("general/0"));
        assert!(!b.like(""));
        assert_eq!(b.likes("general"), 2);
        assert_eq!(b.likes("nope"), 0);
        assert_eq!(b.like_count(), 3);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut b = MessageBoard::new();
        b.create_topic("general");
        b.post("general", "ann", "hello");
        b.like("general");
        let mut c = MessageBoard::new();
        GState::restore(&mut c, &GState::snapshot(&b)).unwrap();
        assert_eq!(b, c);
    }

    #[test]
    fn restore_rejects_malformed() {
        let mut b = MessageBoard::new();
        assert!(GState::restore(&mut b, &Value::from(1)).is_err());
    }

    #[test]
    fn checked_registration_is_clean() {
        use guesstimate_core::{execute, MachineId, ObjectStore};
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        let log = ConformanceLog::new();
        register_checked(&mut reg, &log);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(MessageBoard::new()));
        execute(&ops::create_topic(obj, "general"), &mut store, &reg).unwrap();
        execute(&ops::post(obj, "general", "ann", "hi"), &mut store, &reg).unwrap();
        execute(&ops::post(obj, "missing", "ann", "hi"), &mut store, &reg).unwrap();
        execute(&ops::like(obj, "general"), &mut store, &reg).unwrap();
        execute(&ops::like(obj, "phantom"), &mut store, &reg).unwrap();
        assert!(log.is_empty(), "{:?}", log.violations());
    }

    #[test]
    fn spec_suite_verifies_cleanly() {
        use guesstimate_spec::{verify_suite, CaseSpace};
        let suite = spec_suite();
        assert!(suite.assertion_count() >= 10);
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut b = MessageBoard::new();
        b.create_topic("general");
        let mut b2 = b.clone();
        b2.post("general", "ann", "hello");
        b2.like("general");
        let states = vec![
            GState::snapshot(&MessageBoard::new()),
            GState::snapshot(&b),
            GState::snapshot(&b2),
        ];
        let report = verify_suite(&reg, &suite, &CaseSpace::sampled(states, 100_000));
        assert_eq!(report.refuted(), 0);
        assert!(report.verified() >= 1);
    }
}
