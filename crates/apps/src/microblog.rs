//! The small twitter-like application (§6).
//!
//! Users register, follow each other and post short messages; a timeline is
//! a *local read* over the guesstimated state (posts by the user and
//! everyone they follow, newest first). Posting is conflict-free by design
//! — like the message board, only membership operations (duplicate
//! registration, redundant follow) can fail.
//!
//! `heart` is the blind applause counter: it bumps a per-handle tally
//! without consulting users, follows, or posts, so it commutes — in state
//! and result — with every method including itself. The effect analysis
//! classifies it a **universal commuter**, making it eligible for the
//! runtime's hybrid async commit path (`MachineConfig::async_commit`).

use std::collections::{BTreeMap, BTreeSet};

use guesstimate_core::{
    args, EffectSpec, Footprint, GState, ObjectId, OpRegistry, RestoreError, SharedOp, Value,
};
use guesstimate_spec::{ConformanceLog, MethodContract, MethodSpec, SpecSuite};

/// One post, tagged with its global commit sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlogPost {
    /// Author handle.
    pub author: String,
    /// Body text.
    pub text: String,
    /// Position in the global post order.
    pub seq: u64,
}

/// The shared microblog state.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MicroBlog {
    users: BTreeSet<String>,
    follows: BTreeMap<String, BTreeSet<String>>,
    posts: Vec<BlogPost>,
    /// Blind heart tallies per handle. Deliberately outside the
    /// referential-integrity invariant: hearts may land before the handle
    /// registers (or never does) — any existence precondition would order
    /// `heart` against `register` and break its universal commutation.
    hearts: BTreeMap<String, u64>,
}

impl MicroBlog {
    /// A fresh, empty service.
    pub fn new() -> Self {
        MicroBlog::default()
    }

    /// True if `user` is registered.
    pub fn has_user(&self, user: &str) -> bool {
        self.users.contains(user)
    }

    /// Number of registered users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// All posts, oldest first.
    pub fn posts(&self) -> &[BlogPost] {
        &self.posts
    }

    /// True if `follower` follows `followee`.
    pub fn follows(&self, follower: &str, followee: &str) -> bool {
        self.follows
            .get(follower)
            .is_some_and(|s| s.contains(followee))
    }

    /// The timeline of `user`: own posts plus posts by followees, newest
    /// first. A local read (§2's `BeginRead`/`EndRead` pattern).
    pub fn timeline(&self, user: &str) -> Vec<&BlogPost> {
        let empty = BTreeSet::new();
        let followed = self.follows.get(user).unwrap_or(&empty);
        let mut out: Vec<&BlogPost> = self
            .posts
            .iter()
            .filter(|p| p.author == user || followed.contains(&p.author))
            .collect();
        out.reverse();
        out
    }

    /// The heart tally for a handle (0 when never hearted).
    pub fn hearts(&self, handle: &str) -> u64 {
        self.hearts.get(handle).copied().unwrap_or(0)
    }

    /// Total hearts across all handles.
    pub fn heart_count(&self) -> u64 {
        self.hearts.values().sum()
    }

    fn heart(&mut self, handle: &str) -> bool {
        if handle.is_empty() {
            return false;
        }
        *self.hearts.entry(handle.to_owned()).or_insert(0) += 1;
        true
    }

    fn register(&mut self, user: &str) -> bool {
        if user.is_empty() {
            return false;
        }
        self.users.insert(user.to_owned())
    }

    fn post(&mut self, author: &str, text: &str) -> bool {
        if !self.users.contains(author) || text.is_empty() {
            return false;
        }
        let seq = self.posts.len() as u64;
        self.posts.push(BlogPost {
            author: author.to_owned(),
            text: text.to_owned(),
            seq,
        });
        true
    }

    fn follow(&mut self, follower: &str, followee: &str) -> bool {
        if follower == followee || !self.users.contains(follower) || !self.users.contains(followee)
        {
            return false;
        }
        self.follows
            .entry(follower.to_owned())
            .or_default()
            .insert(followee.to_owned())
    }

    fn unfollow(&mut self, follower: &str, followee: &str) -> bool {
        self.follows
            .get_mut(follower)
            .is_some_and(|s| s.remove(followee))
    }
}

impl GState for MicroBlog {
    const TYPE_NAME: &'static str = "MicroBlog";

    fn snapshot(&self) -> Value {
        let users: Value = self.users.iter().map(|u| Value::from(u.clone())).collect();
        let follows = Value::map(self.follows.iter().map(|(f, set)| {
            (
                f.clone(),
                set.iter().map(|x| Value::from(x.clone())).collect(),
            )
        }));
        let posts: Value = self
            .posts
            .iter()
            .map(|p| {
                Value::map([
                    ("author", Value::from(p.author.clone())),
                    ("text", Value::from(p.text.clone())),
                    ("seq", Value::from(p.seq as i64)),
                ])
            })
            .collect();
        let hearts = Value::map(
            self.hearts
                .iter()
                .map(|(h, n)| (h.clone(), Value::from(*n as i64))),
        );
        Value::map([
            ("users", users),
            ("follows", follows),
            ("posts", posts),
            ("hearts", hearts),
        ])
    }

    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let shape = || RestoreError::shape("microblog snapshot");
        self.users = v
            .field("users")
            .and_then(Value::as_list)
            .ok_or_else(shape)?
            .iter()
            .map(|u| u.as_str().map(str::to_owned).ok_or_else(shape))
            .collect::<Result<_, _>>()?;
        self.follows.clear();
        for (f, set) in v
            .field("follows")
            .and_then(Value::as_map)
            .ok_or_else(shape)?
        {
            let set = set
                .as_list()
                .ok_or_else(shape)?
                .iter()
                .map(|x| x.as_str().map(str::to_owned).ok_or_else(shape))
                .collect::<Result<_, _>>()?;
            self.follows.insert(f.clone(), set);
        }
        self.posts = v
            .field("posts")
            .and_then(Value::as_list)
            .ok_or_else(shape)?
            .iter()
            .map(|p| {
                Ok(BlogPost {
                    author: p
                        .field("author")
                        .and_then(Value::as_str)
                        .ok_or_else(shape)?
                        .to_owned(),
                    text: p
                        .field("text")
                        .and_then(Value::as_str)
                        .ok_or_else(shape)?
                        .to_owned(),
                    seq: p.field("seq").and_then(Value::as_i64).ok_or_else(shape)? as u64,
                })
            })
            .collect::<Result<_, RestoreError>>()?;
        self.hearts.clear();
        for (h, n) in v
            .field("hearts")
            .and_then(Value::as_map)
            .ok_or_else(shape)?
        {
            let n = n.as_i64().ok_or_else(shape)?;
            self.hearts.insert(h.clone(), n as u64);
        }
        Ok(())
    }
}

/// Typed operation constructors.
pub mod ops {
    use super::*;

    /// Register a handle (blocking in spirit, like the event planner's).
    pub fn register(obj: ObjectId, user: &str) -> SharedOp {
        SharedOp::primitive(obj, "register", args![user])
    }

    /// Publish a post.
    pub fn post(obj: ObjectId, author: &str, text: &str) -> SharedOp {
        SharedOp::primitive(obj, "post", args![author, text])
    }

    /// Follow another user.
    pub fn follow(obj: ObjectId, follower: &str, followee: &str) -> SharedOp {
        SharedOp::primitive(obj, "follow", args![follower, followee])
    }

    /// Unfollow.
    pub fn unfollow(obj: ObjectId, follower: &str, followee: &str) -> SharedOp {
        SharedOp::primitive(obj, "unfollow", args![follower, followee])
    }

    /// Blindly applaud a handle.
    pub fn heart(obj: ObjectId, handle: &str) -> SharedOp {
        SharedOp::primitive(obj, "heart", args![handle])
    }
}

fn apply_register(s: &mut MicroBlog, a: guesstimate_core::ArgView<'_>) -> bool {
    let Some(u) = a.str(0) else { return false };
    s.register(u)
}

fn apply_post(s: &mut MicroBlog, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(au), Some(t)) = (a.str(0), a.str(1)) else {
        return false;
    };
    s.post(au, t)
}

fn apply_follow(s: &mut MicroBlog, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(f), Some(g)) = (a.str(0), a.str(1)) else {
        return false;
    };
    s.follow(f, g)
}

fn apply_unfollow(s: &mut MicroBlog, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(f), Some(g)) = (a.str(0), a.str(1)) else {
        return false;
    };
    s.unfollow(f, g)
}

fn apply_heart(s: &mut MicroBlog, a: guesstimate_core::ArgView<'_>) -> bool {
    let Some(h) = a.str(0) else { return false };
    s.heart(h)
}

fn register_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let Some(u) = a.str(0) else {
            return Footprint::new();
        };
        if u.is_empty() {
            return Footprint::new();
        }
        // `users` is one sorted list in the snapshot; inserting shifts it.
        Footprint::new().reads(["users"]).writes(["users"])
    })
}

fn post_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(_), Some(_)) = (a.str(0), a.str(1)) else {
            return Footprint::new();
        };
        // Reads the registration set and the current post count (seq);
        // appends to the global post list, so posts self-conflict.
        Footprint::new().reads(["users", "posts"]).writes(["posts"])
    })
}

fn follow_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(f), Some(_)) = (a.str(0), a.str(1)) else {
            return Footprint::new();
        };
        let key = format!("follows/{f}");
        Footprint::new()
            .reads(["users".to_owned(), key.clone()])
            .writes([key])
    })
}

fn unfollow_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(f), Some(_)) = (a.str(0), a.str(1)) else {
            return Footprint::new();
        };
        let key = format!("follows/{f}");
        Footprint::new().reads([key.clone()]).writes([key])
    })
}

fn heart_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let Some(h) = a.str(0) else {
            return Footprint::new();
        };
        if h.is_empty() {
            return Footprint::new();
        }
        // Reads the old tally, writes the new one; commutes with itself
        // because addition does.
        let key = format!("hearts/{h}");
        Footprint::new().reads([key.clone()]).writes([key])
    })
    .self_commuting()
}

/// Registers the microblog type and operations.
pub fn register(registry: &mut OpRegistry) {
    registry.register_type::<MicroBlog>();
    registry.register_with_effects::<MicroBlog>("register", register_effect(), apply_register);
    registry.register_with_effects::<MicroBlog>("post", post_effect(), apply_post);
    registry.register_with_effects::<MicroBlog>("follow", follow_effect(), apply_follow);
    registry.register_with_effects::<MicroBlog>("unfollow", unfollow_effect(), apply_unfollow);
    registry.register_with_effects::<MicroBlog>("heart", heart_effect(), apply_heart);
}

fn invariant(v: &Value) -> bool {
    let (Some(users), Some(follows), Some(posts)) = (
        v.field("users").and_then(Value::as_list),
        v.field("follows").and_then(Value::as_map),
        v.field("posts").and_then(Value::as_list),
    ) else {
        return false;
    };
    let user_set: BTreeSet<&str> = users.iter().filter_map(Value::as_str).collect();
    // Every author and follow edge refers to registered users; no self
    // follows; post seq numbers are dense.
    posts.iter().enumerate().all(|(i, p)| {
        p.field("author")
            .and_then(Value::as_str)
            .is_some_and(|a| user_set.contains(a))
            && p.field("seq").and_then(Value::as_i64) == Some(i as i64)
    }) && follows.iter().all(|(f, set)| {
        user_set.contains(f.as_str())
            && set.as_list().is_some_and(|l| {
                l.iter().all(|x| {
                    x.as_str()
                        .is_some_and(|x| user_set.contains(x) && x != f.as_str())
                })
            })
    })
}

/// Registers with runtime conformance checking.
pub fn register_checked(registry: &mut OpRegistry, log: &ConformanceLog) {
    registry.register_type::<MicroBlog>();
    let inv = MethodContract::new().with_invariant(invariant);
    guesstimate_spec::register_checked::<MicroBlog>(
        registry,
        "register",
        inv.clone(),
        log,
        apply_register,
    );
    guesstimate_spec::register_checked::<MicroBlog>(
        registry,
        "post",
        inv.clone().with_post(|pre, post, _| {
            let (Some(b), Some(a)) = (
                pre.field("posts").and_then(Value::as_list),
                post.field("posts").and_then(Value::as_list),
            ) else {
                return false;
            };
            a.len() == b.len() + 1 && a[..b.len()] == *b
        }),
        log,
        apply_post,
    );
    guesstimate_spec::register_checked::<MicroBlog>(
        registry,
        "follow",
        inv.clone(),
        log,
        apply_follow,
    );
    guesstimate_spec::register_checked::<MicroBlog>(registry, "unfollow", inv, log, apply_unfollow);
    guesstimate_spec::register_checked::<MicroBlog>(
        registry,
        "heart",
        heart_contract(),
        log,
        apply_heart,
    );
}

fn heart_contract() -> MethodContract {
    MethodContract::new().with_post(|pre, post, a| {
        // φ_post: exactly this handle's tally grew by one; the checked
        // service state (users, follows, posts) is untouched. The handle
        // need not be registered — hearts are blind by design.
        let Some(h) = a.first().and_then(Value::as_str) else {
            return false;
        };
        let tally = |v: &Value| {
            v.field("hearts")
                .and_then(Value::as_map)
                .and_then(|m| m.get(h))
                .and_then(Value::as_i64)
                .unwrap_or(0)
        };
        tally(post) == tally(pre) + 1
            && pre.field("users") == post.field("users")
            && pre.field("follows") == post.field("follows")
            && pre.field("posts") == post.field("posts")
    })
}

/// Specification suite for the verifier table.
pub fn spec_suite() -> SpecSuite {
    use guesstimate_spec::Assertion;

    let handles = ["ann", "bob", "ghost", ""];
    let mut follow_args = Vec::new();
    for f in handles {
        for g in handles {
            follow_args.push(args![f, g]);
        }
    }
    let register = MethodSpec::new(
        "register",
        MethodContract::new()
            .with_assertion_obj(
                Assertion::new("empty-handle-fails", |c| {
                    c.args.first().and_then(Value::as_str) != Some("")
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_assertion("users-never-disappear", |c| {
                let users = |v: &Value| -> Vec<Value> {
                    v.field("users")
                        .and_then(Value::as_list)
                        .map(<[Value]>::to_vec)
                        .unwrap_or_default()
                };
                let before = users(&c.pre);
                let after = users(&c.post);
                before.iter().all(|u| after.contains(u))
            }),
    )
    .with_args(handles.iter().map(|h| args![*h]).collect(), true);

    let post = MethodSpec::new(
        "post",
        MethodContract::new()
            .with_post(|pre, post, a| {
                let Some(author) = a.first().and_then(Value::as_str) else {
                    return false;
                };
                let posts = |v: &Value| {
                    v.field("posts")
                        .and_then(Value::as_list)
                        .map(<[Value]>::len)
                };
                posts(post) == posts(pre).map(|n| n + 1)
                    && post
                        .field("posts")
                        .and_then(Value::as_list)
                        .and_then(|l| l.last())
                        .and_then(|p| p.field("author"))
                        .and_then(Value::as_str)
                        == Some(author)
            })
            .with_assertion("seq-numbers-stay-dense", |c| {
                c.post
                    .field("posts")
                    .and_then(Value::as_list)
                    .is_some_and(|l| {
                        l.iter()
                            .enumerate()
                            .all(|(i, p)| p.field("seq").and_then(Value::as_i64) == Some(i as i64))
                    })
            })
            .with_assertion("posting-never-touches-follows", |c| {
                c.pre.field("follows") == c.post.field("follows")
            }),
    )
    // Small-scope abstraction: registered vs unregistered author, empty
    // body, empty handle — the footprint is argument-independent, so these
    // representatives generalize.
    .with_args(
        vec![
            args!["ann", "hi"],
            args!["ghost", "hi"],
            args!["ann", ""],
            args!["", "hi"],
        ],
        true,
    );

    let follow = MethodSpec::new(
        "follow",
        MethodContract::new()
            .with_post(|_pre, post, a| {
                let (Some(f), Some(g)) = (
                    a.first().and_then(Value::as_str),
                    a.get(1).and_then(Value::as_str),
                ) else {
                    return false;
                };
                post.field("follows")
                    .and_then(Value::as_map)
                    .and_then(|m| m.get(f))
                    .and_then(Value::as_list)
                    .is_some_and(|l| l.iter().any(|x| x.as_str() == Some(g)))
            })
            .with_assertion("self-follow-always-fails", |c| {
                let f = c.args.first().and_then(Value::as_str);
                let g = c.args.get(1).and_then(Value::as_str);
                f != g || (!c.result && c.pre == c.post)
            })
            .with_assertion("follow-never-touches-posts", |c| {
                c.pre.field("posts") == c.post.field("posts")
            }),
    )
    // Small-scope abstraction: all pairings of two registered handles, an
    // unregistered one, and "" — the footprint depends only on the follower.
    .with_args(follow_args, true);

    let heart = MethodSpec::new(
        "heart",
        heart_contract()
            .with_assertion_obj(
                Assertion::new("empty-handle-fails", |c| {
                    c.args.first().and_then(Value::as_str) != Some("")
                        || (!c.result && c.pre == c.post)
                })
                .assume_state_independent(),
            )
            .with_assertion("hearts-are-blind", |c| {
                // Applauding an unregistered handle still succeeds: an
                // existence check would order `heart` after `register`.
                c.args.first().and_then(Value::as_str) == Some("") || c.result
            }),
    )
    .with_args(handles.iter().map(|h| args![*h]).collect(), true);

    SpecSuite::new("MicroBlog")
        .with_invariant("referential-integrity", invariant)
        .with_method(register)
        .with_method(post)
        .with_method(follow)
        .with_method(heart)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blog() -> MicroBlog {
        let mut b = MicroBlog::new();
        assert!(b.register("ann"));
        assert!(b.register("bob"));
        assert!(b.register("cid"));
        b
    }

    #[test]
    fn register_semantics() {
        let mut b = blog();
        assert!(!b.register("ann"), "duplicate");
        assert!(!b.register(""));
        assert_eq!(b.user_count(), 3);
        assert!(b.has_user("cid"));
        assert!(!b.has_user("dan"));
    }

    #[test]
    fn posting_requires_registration_and_text() {
        let mut b = blog();
        assert!(b.post("ann", "hello"));
        assert!(!b.post("ghost", "hi"));
        assert!(!b.post("ann", ""));
        assert_eq!(b.posts().len(), 1);
        assert_eq!(b.posts()[0].seq, 0);
    }

    #[test]
    fn follow_and_unfollow() {
        let mut b = blog();
        assert!(b.follow("ann", "bob"));
        assert!(!b.follow("ann", "bob"), "already following");
        assert!(!b.follow("ann", "ann"), "no self-follow");
        assert!(!b.follow("ann", "ghost"));
        assert!(!b.follow("ghost", "ann"));
        assert!(b.follows("ann", "bob"));
        assert!(b.unfollow("ann", "bob"));
        assert!(!b.unfollow("ann", "bob"));
        assert!(!b.follows("ann", "bob"));
    }

    #[test]
    fn timeline_filters_and_orders_newest_first() {
        let mut b = blog();
        b.follow("ann", "bob");
        b.post("ann", "a1");
        b.post("bob", "b1");
        b.post("cid", "c1");
        b.post("ann", "a2");
        let tl: Vec<&str> = b.timeline("ann").iter().map(|p| p.text.as_str()).collect();
        assert_eq!(tl, vec!["a2", "b1", "a1"], "cid filtered, newest first");
        assert!(b.timeline("ghost").is_empty());
    }

    #[test]
    fn hearts_are_blind_and_additive() {
        let mut b = MicroBlog::new();
        assert!(b.heart("ann"), "no registration needed");
        assert!(b.heart("ann"));
        assert!(b.heart("ghost"));
        assert!(!b.heart(""));
        assert_eq!(b.hearts("ann"), 2);
        assert_eq!(b.hearts("bob"), 0);
        assert_eq!(b.heart_count(), 3);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut b = blog();
        b.follow("ann", "bob");
        b.post("bob", "x");
        b.heart("bob");
        let mut c = MicroBlog::new();
        GState::restore(&mut c, &GState::snapshot(&b)).unwrap();
        assert_eq!(b, c);
    }

    #[test]
    fn invariant_checks() {
        let mut b = blog();
        b.follow("ann", "bob");
        b.post("ann", "x");
        assert!(invariant(&GState::snapshot(&b)));
        assert!(!invariant(&Value::Unit));
    }

    #[test]
    fn checked_registration_is_clean() {
        use guesstimate_core::{execute, MachineId, ObjectStore};
        let obj = ObjectId::new(MachineId::new(0), 0);
        let mut reg = OpRegistry::new();
        let log = ConformanceLog::new();
        register_checked(&mut reg, &log);
        let mut store = ObjectStore::new();
        store.insert(obj, Box::new(blog()));
        for op in [
            ops::post(obj, "ann", "hello"),
            ops::follow(obj, "bob", "ann"),
            ops::post(obj, "ghost", "nope"), // fails
            ops::unfollow(obj, "bob", "ann"),
            ops::register(obj, "dan"),
            ops::heart(obj, "ann"),
            ops::heart(obj, "nobody"),
        ] {
            let _ = execute(&op, &mut store, &reg).unwrap();
        }
        assert!(log.is_empty(), "{:?}", log.violations());
    }

    #[test]
    fn spec_suite_verifies_cleanly() {
        use guesstimate_spec::{verify_suite, CaseSpace};
        let suite = spec_suite();
        assert!(suite.assertion_count() >= 17);
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut b = blog();
        b.follow("ann", "bob");
        b.post("bob", "x");
        b.heart("bob");
        let states = vec![
            GState::snapshot(&MicroBlog::new()),
            GState::snapshot(&blog()),
            GState::snapshot(&b),
        ];
        let report = verify_suite(&reg, &suite, &CaseSpace::sampled(states, 100_000));
        assert_eq!(report.refuted(), 0);
        assert!(report.verified() >= 1);
    }
}
