//! The multi-player collaborative Sudoku puzzle (§2 of the paper).
//!
//! The shared object is a 9×9 grid; the single shared operation is
//! `Update(r, c, v)` (1-based indices, values 1–9), which succeeds iff the
//! indices are in range, the cell is not a pre-populated *given*, and
//! placing `v` violates none of the three Sudoku constraints (row, column,
//! 3×3 sub-square). A `clear(r, c)` operation is provided as a natural
//! extension (erasing a tentative entry).
//!
//! Per the paper's UI (Figure 2), an issuing player paints the square
//! YELLOW optimistically and repaints on completion — GREEN on commit
//! success, RED on a conflict. `examples/sudoku.rs` reproduces exactly that
//! flow.

use guesstimate_core::{
    args, EffectSpec, Footprint, GState, ObjectId, OpRegistry, RestoreError, SharedOp, Value,
};
use guesstimate_spec::{
    Assertion, CaseSpace, ConformanceLog, MethodContract, MethodSpec, SpecSuite,
};

/// The shared Sudoku board.
///
/// Cells hold 0 (empty) or 1–9; `fixed` marks the pre-populated givens,
/// which operations may never modify.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Sudoku {
    grid: [[u8; 9]; 9],
    fixed: [[bool; 9]; 9],
}

impl Sudoku {
    /// An empty board.
    pub fn new() -> Self {
        Sudoku::default()
    }

    /// A board pre-populated with `givens` (1-based `(row, col, value)`).
    ///
    /// # Panics
    ///
    /// Panics if a given is out of range or violates the Sudoku
    /// constraints — puzzle construction is programmer input.
    pub fn with_givens(givens: &[(u8, u8, u8)]) -> Self {
        let mut s = Sudoku::new();
        for &(r, c, v) in givens {
            assert!(
                (1..=9).contains(&r) && (1..=9).contains(&c) && (1..=9).contains(&v),
                "given out of range: ({r},{c},{v})"
            );
            let (ri, ci) = (r as usize - 1, c as usize - 1);
            assert!(
                s.placement_ok(ri, ci, v),
                "given violates constraints: ({r},{c},{v})"
            );
            s.grid[ri][ci] = v;
            s.fixed[ri][ci] = true;
        }
        s
    }

    /// The value at 1-based `(r, c)`: 0 when empty.
    ///
    /// Returns `None` when out of range.
    pub fn cell(&self, r: u8, c: u8) -> Option<u8> {
        if (1..=9).contains(&r) && (1..=9).contains(&c) {
            Some(self.grid[r as usize - 1][c as usize - 1])
        } else {
            None
        }
    }

    /// True if 1-based `(r, c)` is a pre-populated given.
    pub fn is_given(&self, r: u8, c: u8) -> bool {
        (1..=9).contains(&r) && (1..=9).contains(&c) && self.fixed[r as usize - 1][c as usize - 1]
    }

    /// Number of empty cells.
    pub fn empty_count(&self) -> usize {
        self.grid.iter().flatten().filter(|&&v| v == 0).count()
    }

    /// True when every cell is filled (and, by the invariant, solved).
    pub fn is_complete(&self) -> bool {
        self.empty_count() == 0
    }

    /// True if the whole grid satisfies the three Sudoku constraints
    /// (ignoring empty cells) — the object invariant.
    pub fn valid(&self) -> bool {
        (0..27).all(|u| {
            let mut seen = [false; 10];
            unit_cells(u).iter().all(|&(r, c)| {
                let v = self.grid[r][c] as usize;
                if v == 0 {
                    true
                } else if seen[v] {
                    false
                } else {
                    seen[v] = true;
                    true
                }
            })
        })
    }

    /// The paper's `Check`: true if writing `v` at 0-based `(r, c)` keeps
    /// all constraints satisfied.
    fn placement_ok(&self, r: usize, c: usize, v: u8) -> bool {
        for i in 0..9 {
            if i != c && self.grid[r][i] == v {
                return false;
            }
            if i != r && self.grid[i][c] == v {
                return false;
            }
        }
        let (br, bc) = (r / 3 * 3, c / 3 * 3);
        for i in br..br + 3 {
            for j in bc..bc + 3 {
                if (i, j) != (r, c) && self.grid[i][j] == v {
                    return false;
                }
            }
        }
        true
    }

    /// The paper's `Update` (1-based): writes `v` at `(r, c)` if legal.
    pub fn update(&mut self, r: i64, c: i64, v: i64) -> bool {
        if !(1..=9).contains(&r) || !(1..=9).contains(&c) || !(1..=9).contains(&v) {
            return false;
        }
        let (ri, ci, v) = (r as usize - 1, c as usize - 1, v as u8);
        if self.fixed[ri][ci] || !self.placement_ok(ri, ci, v) {
            return false;
        }
        self.grid[ri][ci] = v;
        true
    }

    /// Erases a non-given cell (1-based). Fails on range errors, givens and
    /// already-empty cells.
    pub fn clear(&mut self, r: i64, c: i64) -> bool {
        if !(1..=9).contains(&r) || !(1..=9).contains(&c) {
            return false;
        }
        let (ri, ci) = (r as usize - 1, c as usize - 1);
        if self.fixed[ri][ci] || self.grid[ri][ci] == 0 {
            return false;
        }
        self.grid[ri][ci] = 0;
        true
    }

    /// Writes a cell with **no** constraint checking (1-based).
    ///
    /// A testing hook: lets test suites build deliberately buggy operation
    /// variants (like the off-by-one the paper caught with Spec#) without
    /// access to private fields. Never registered as a shared operation.
    ///
    /// # Panics
    ///
    /// Panics if `r`, `c` or `v` is out of range.
    pub fn set_cell_unchecked(&mut self, r: u8, c: u8, v: u8) {
        assert!(
            (1..=9).contains(&r) && (1..=9).contains(&c) && v <= 9,
            "set_cell_unchecked out of range: ({r},{c},{v})"
        );
        self.grid[r as usize - 1][c as usize - 1] = v;
    }

    /// All currently legal moves `(r, c, v)` (1-based) — used by the
    /// workload generator to simulate players.
    pub fn candidate_moves(&self) -> Vec<(u8, u8, u8)> {
        let mut out = Vec::new();
        for r in 0..9 {
            for c in 0..9 {
                if self.grid[r][c] != 0 {
                    continue;
                }
                for v in 1..=9u8 {
                    if self.placement_ok(r, c, v) {
                        out.push((r as u8 + 1, c as u8 + 1, v));
                    }
                }
            }
        }
        out
    }
}

/// 0-based cells of constraint unit `u` (0–8 rows, 9–17 columns, 18–26 boxes).
fn unit_cells(u: usize) -> [(usize, usize); 9] {
    let mut cells = [(0usize, 0usize); 9];
    match u {
        0..=8 => {
            for (c, cell) in cells.iter_mut().enumerate() {
                *cell = (u, c);
            }
        }
        9..=17 => {
            for (r, cell) in cells.iter_mut().enumerate() {
                *cell = (r, u - 9);
            }
        }
        _ => {
            let b = u - 18;
            let (br, bc) = (b / 3 * 3, b % 3 * 3);
            for (i, cell) in cells.iter_mut().enumerate() {
                *cell = (br + i / 3, bc + i % 3);
            }
        }
    }
    cells
}

/// Human-readable name of constraint unit `u`.
fn unit_name(u: usize) -> String {
    match u {
        0..=8 => format!("row-{}", u + 1),
        9..=17 => format!("col-{}", u - 8),
        _ => format!("box-{}", u - 17),
    }
}

impl GState for Sudoku {
    const TYPE_NAME: &'static str = "Sudoku";

    fn snapshot(&self) -> Value {
        let grid: Vec<Value> = self
            .grid
            .iter()
            .flatten()
            .map(|&v| Value::from(i64::from(v)))
            .collect();
        let fixed: Vec<Value> = self
            .fixed
            .iter()
            .flatten()
            .map(|&b| Value::from(b))
            .collect();
        Value::map([("grid", Value::from(grid)), ("fixed", Value::from(fixed))])
    }

    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let grid = v
            .field("grid")
            .and_then(Value::as_list)
            .ok_or_else(|| RestoreError::shape("map with 81-int grid"))?;
        let fixed = v
            .field("fixed")
            .and_then(Value::as_list)
            .ok_or_else(|| RestoreError::shape("map with 81-bool fixed"))?;
        if grid.len() != 81 || fixed.len() != 81 {
            return Err(RestoreError::shape("81-element grid and fixed lists"));
        }
        for (i, gv) in grid.iter().enumerate() {
            let n = gv
                .as_i64()
                .filter(|n| (0..=9).contains(n))
                .ok_or_else(|| RestoreError::shape("cell in 0..=9"))?;
            self.grid[i / 9][i % 9] = n as u8;
        }
        for (i, fv) in fixed.iter().enumerate() {
            self.fixed[i / 9][i % 9] = fv
                .as_bool()
                .ok_or_else(|| RestoreError::shape("fixed cell bool"))?;
        }
        Ok(())
    }
}

/// Typed constructors for the shared operations.
pub mod ops {
    use super::*;

    /// `Update(r, c, v)` (1-based, as in the paper).
    pub fn update(board: ObjectId, r: u8, c: u8, v: u8) -> SharedOp {
        SharedOp::primitive(
            board,
            "update",
            args![i64::from(r), i64::from(c), i64::from(v)],
        )
    }

    /// `clear(r, c)` (1-based).
    pub fn clear(board: ObjectId, r: u8, c: u8) -> SharedOp {
        SharedOp::primitive(board, "clear", args![i64::from(r), i64::from(c)])
    }
}

fn apply_update(s: &mut Sudoku, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(r), Some(c), Some(v)) = (a.i64(0), a.i64(1), a.i64(2)) else {
        return false;
    };
    s.update(r, c, v)
}

fn apply_clear(s: &mut Sudoku, a: guesstimate_core::ArgView<'_>) -> bool {
    let (Some(r), Some(c)) = (a.i64(0), a.i64(1)) else {
        return false;
    };
    s.clear(r, c)
}

/// Effect of `update(r, c, v)`: writes the target cell; reads the target's
/// `fixed` flag and every cell of the target's row, column and 3×3 box (the
/// constraint check). Out-of-range arguments touch no state at all.
fn update_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(r), Some(c), Some(v)) = (a.i64(0), a.i64(1), a.i64(2)) else {
            return Footprint::new();
        };
        if !(1..=9).contains(&r) || !(1..=9).contains(&c) || !(1..=9).contains(&v) {
            return Footprint::new();
        }
        let (ri, ci) = (r as usize - 1, c as usize - 1);
        let idx = ri * 9 + ci;
        let mut reads = vec![format!("fixed/{idx}")];
        for i in 0..9 {
            reads.push(format!("grid/{}", ri * 9 + i));
            reads.push(format!("grid/{}", i * 9 + ci));
        }
        let (br, bc) = (ri / 3 * 3, ci / 3 * 3);
        for i in br..br + 3 {
            for j in bc..bc + 3 {
                reads.push(format!("grid/{}", i * 9 + j));
            }
        }
        Footprint::new()
            .reads(reads)
            .writes([format!("grid/{idx}")])
    })
}

/// Effect of `clear(r, c)`: reads and writes only the target cell (plus its
/// `fixed` flag).
fn clear_effect() -> EffectSpec {
    EffectSpec::new(|a| {
        let (Some(r), Some(c)) = (a.i64(0), a.i64(1)) else {
            return Footprint::new();
        };
        if !(1..=9).contains(&r) || !(1..=9).contains(&c) {
            return Footprint::new();
        }
        let idx = (r as usize - 1) * 9 + (c as usize - 1);
        Footprint::new()
            .reads([format!("grid/{idx}"), format!("fixed/{idx}")])
            .writes([format!("grid/{idx}")])
    })
}

/// Registers the Sudoku type and operations (with declared effects).
pub fn register(registry: &mut OpRegistry) {
    registry.register_type::<Sudoku>();
    registry.register_with_effects::<Sudoku>("update", update_effect(), apply_update);
    registry.register_with_effects::<Sudoku>("clear", clear_effect(), apply_clear);
}

/// Registers with runtime conformance checking (§5 "Specifications").
pub fn register_checked(registry: &mut OpRegistry, log: &ConformanceLog) {
    registry.register_type::<Sudoku>();
    guesstimate_spec::register_checked::<Sudoku>(
        registry,
        "update",
        update_contract(),
        log,
        apply_update,
    );
    guesstimate_spec::register_checked::<Sudoku>(
        registry,
        "clear",
        clear_contract(),
        log,
        apply_clear,
    );
}

/// Decodes the `grid` list of a snapshot.
fn snap_grid(v: &Value) -> Option<Vec<i64>> {
    let g = v.field("grid")?.as_list()?;
    g.iter().map(Value::as_i64).collect()
}

fn snapshot_valid(v: &Value) -> bool {
    let Some(grid) = snap_grid(v) else {
        return false;
    };
    (0..27).all(|u| {
        let mut seen = [false; 10];
        unit_cells(u).iter().all(|&(r, c)| {
            let n = grid[r * 9 + c];
            if n == 0 {
                true
            } else if !(1..=9).contains(&n) || seen[n as usize] {
                false
            } else {
                seen[n as usize] = true;
                true
            }
        })
    })
}

/// The `update` contract: φ_update = "the target cell now holds v; every
/// other cell (and the givens mask) is unchanged".
fn update_contract() -> MethodContract {
    MethodContract::new()
        .with_post(|pre, post, a| {
            let (Some(gp), Some(gq)) = (snap_grid(pre), snap_grid(post)) else {
                return false;
            };
            let (Some(r), Some(c), Some(v)) = (
                a.first().and_then(Value::as_i64),
                a.get(1).and_then(Value::as_i64),
                a.get(2).and_then(Value::as_i64),
            ) else {
                return false;
            };
            if !(1..=9).contains(&r) || !(1..=9).contains(&c) {
                return false; // success with bad indices is itself a bug
            }
            let target = (r as usize - 1) * 9 + (c as usize - 1);
            gq[target] == v
                && gp
                    .iter()
                    .zip(gq.iter())
                    .enumerate()
                    .all(|(i, (a, b))| i == target || a == b)
                && pre.field("fixed") == post.field("fixed")
        })
        .with_invariant(snapshot_valid)
}

/// The `clear` contract: the target cell is now 0, everything else intact.
fn clear_contract() -> MethodContract {
    MethodContract::new()
        .with_post(|pre, post, a| {
            let (Some(gp), Some(gq)) = (snap_grid(pre), snap_grid(post)) else {
                return false;
            };
            let (Some(r), Some(c)) = (
                a.first().and_then(Value::as_i64),
                a.get(1).and_then(Value::as_i64),
            ) else {
                return false;
            };
            if !(1..=9).contains(&r) || !(1..=9).contains(&c) {
                return false;
            }
            let target = (r as usize - 1) * 9 + (c as usize - 1);
            gq[target] == 0
                && gp
                    .iter()
                    .zip(gq.iter())
                    .enumerate()
                    .all(|(i, (a, b))| i == target || a == b)
                && pre.field("fixed") == post.field("fixed")
        })
        .with_invariant(snapshot_valid)
}

/// Bounds-guard assertion (state-independent): out-of-range arguments must
/// make the operation fail and leave the state unchanged.
fn bounds_guard(name: &str, idx: usize, lo: i64, hi: i64) -> Assertion {
    let (name, idx) = (name.to_owned(), idx);
    Assertion::new(name, move |case| {
        let in_range = case
            .args
            .get(idx)
            .and_then(Value::as_i64)
            .is_some_and(|n| (lo..=hi).contains(&n));
        in_range || (!case.result && case.pre == case.post)
    })
    .assume_state_independent()
}

/// Builds the full Sudoku specification suite — the assertion population
/// the Boogie-analog verifier classifies (the paper reports 323 assertions
/// for its Spec# Sudoku: 271 statically verified, 52 runtime checks).
///
/// Per method we generate:
/// * the universal frame assertion and the contract's post/invariant;
/// * 3 (update) / 2 (clear) state-independent bounds guards;
/// * 27 per-unit no-duplicate assertions (row/col/box × 9);
/// * 81 per-cell frame assertions ("cell (i,j) is untouched unless it is
///   the operation's target").
pub fn spec_suite() -> SpecSuite {
    let mut update = MethodSpec::new("update", update_contract());
    let mut clear = MethodSpec::new("clear", clear_contract());

    // Argument spaces: all 1-based in-range combinations plus the boundary
    // probes 0 and 10 (small-scope abstraction of "any out-of-range value").
    let probe: Vec<i64> = (0..=10).collect();
    let mut upd_args = Vec::new();
    for &r in &probe {
        for &c in &probe {
            for &v in &probe {
                upd_args.push(args![r, c, v]);
            }
        }
    }
    update = update.with_args(upd_args, true);
    let mut clr_args = Vec::new();
    for &r in &probe {
        for &c in &probe {
            clr_args.push(args![r, c]);
        }
    }
    clear = clear.with_args(clr_args, true);

    // Bounds guards (state-independent).
    update.contract = update
        .contract
        .with_assertion_obj(bounds_guard("guard-row-in-1..9", 0, 1, 9))
        .with_assertion_obj(bounds_guard("guard-col-in-1..9", 1, 1, 9))
        .with_assertion_obj(bounds_guard("guard-val-in-1..9", 2, 1, 9));
    clear.contract = clear
        .contract
        .with_assertion_obj(bounds_guard("guard-row-in-1..9", 0, 1, 9))
        .with_assertion_obj(bounds_guard("guard-col-in-1..9", 1, 1, 9));

    // Per-unit no-duplicate assertions (27 per method).
    for method in [&mut update, &mut clear] {
        for u in 0..27 {
            let name = format!("nodup-{}", unit_name(u));
            method.contract = std::mem::take(&mut method.contract).with_assertion(
                name,
                move |case: &guesstimate_spec::ExecCase| {
                    let Some(grid) = snap_grid(&case.post) else {
                        return false;
                    };
                    let mut seen = [false; 10];
                    unit_cells(u).iter().all(|&(r, c)| {
                        let n = grid[r * 9 + c];
                        if n == 0 {
                            true
                        } else if seen[n as usize] {
                            false
                        } else {
                            seen[n as usize] = true;
                            true
                        }
                    })
                },
            );
        }
    }

    // Per-cell frame assertions (81 per method). Which cell an operation
    // may touch is determined by its *arguments* alone (the implementation
    // never writes any other index), so — like Boogie discharging a
    // heap-independent path condition — these are marked state-independent
    // and verify from the complete argument enumeration.
    for method in [&mut update, &mut clear] {
        for cell in 0..81usize {
            let name = format!("frame-cell-{}-{}", cell / 9 + 1, cell % 9 + 1);
            let assertion = Assertion::new(name, move |case: &guesstimate_spec::ExecCase| {
                let (Some(gp), Some(gq)) = (snap_grid(&case.pre), snap_grid(&case.post)) else {
                    return false;
                };
                let target = match (
                    case.args.first().and_then(Value::as_i64),
                    case.args.get(1).and_then(Value::as_i64),
                ) {
                    (Some(r), Some(c)) if (1..=9).contains(&r) && (1..=9).contains(&c) => {
                        Some((r as usize - 1) * 9 + (c as usize - 1))
                    }
                    _ => None,
                };
                Some(cell) == target || gp[cell] == gq[cell]
            })
            .assume_state_independent();
            method.contract = std::mem::take(&mut method.contract).with_assertion_obj(assertion);
        }
    }

    SpecSuite::new("Sudoku")
        .with_invariant("constraints-hold", snapshot_valid)
        .with_method(update)
        .with_method(clear)
}

/// A state space for the verifier: `n` boards reached by playing random
/// legal moves from the standard example puzzle (sampled, not exhaustive —
/// the real state space is astronomically large, which is exactly why the
/// state-dependent assertions classify as runtime checks).
pub fn sampled_states(n: usize, seed: u64) -> CaseSpace {
    // Deterministic xorshift so the spec table is reproducible without
    // pulling a RNG dependency into the apps crate.
    let mut x = seed | 1;
    let mut next = move |m: usize| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x as usize) % m
    };
    let mut states = Vec::with_capacity(n);
    let mut board = example_puzzle();
    states.push(GState::snapshot(&board));
    while states.len() < n {
        let moves = board.candidate_moves();
        if moves.is_empty() {
            board = example_puzzle();
            continue;
        }
        let (r, c, v) = moves[next(moves.len())];
        board.update(i64::from(r), i64::from(c), i64::from(v));
        states.push(GState::snapshot(&board));
    }
    CaseSpace::sampled(states, usize::MAX)
}

/// The paper's running example needs *an* instance; this is a standard
/// 30-given puzzle.
pub fn example_puzzle() -> Sudoku {
    Sudoku::with_givens(&[
        (1, 1, 5),
        (1, 2, 3),
        (1, 5, 7),
        (2, 1, 6),
        (2, 4, 1),
        (2, 5, 9),
        (2, 6, 5),
        (3, 2, 9),
        (3, 3, 8),
        (3, 8, 6),
        (4, 1, 8),
        (4, 5, 6),
        (4, 9, 3),
        (5, 1, 4),
        (5, 4, 8),
        (5, 6, 3),
        (5, 9, 1),
        (6, 1, 7),
        (6, 5, 2),
        (6, 9, 6),
        (7, 2, 6),
        (7, 7, 2),
        (7, 8, 8),
        (8, 4, 4),
        (8, 5, 1),
        (8, 6, 9),
        (8, 9, 5),
        (9, 5, 8),
        (9, 8, 7),
        (9, 9, 9),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::{execute, MachineId, ObjectStore};
    use guesstimate_spec::{verify_suite, Verdict};

    fn board_id() -> ObjectId {
        ObjectId::new(MachineId::new(0), 0)
    }

    fn store_with(s: Sudoku) -> (ObjectStore, OpRegistry) {
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let mut store = ObjectStore::new();
        store.insert(board_id(), Box::new(s));
        (store, reg)
    }

    #[test]
    fn update_respects_row_col_box_constraints() {
        let mut s = Sudoku::new();
        assert!(s.update(1, 1, 5));
        assert!(!s.update(1, 9, 5), "row duplicate");
        assert!(!s.update(9, 1, 5), "column duplicate");
        assert!(!s.update(2, 2, 5), "box duplicate");
        assert!(s.update(2, 4, 5), "same value, different units");
        assert!(s.valid());
    }

    #[test]
    fn update_rejects_out_of_range() {
        let mut s = Sudoku::new();
        for bad in [
            (0, 1, 1),
            (10, 1, 1),
            (1, 0, 1),
            (1, 10, 1),
            (1, 1, 0),
            (1, 1, 10),
            (-1, 1, 1),
        ] {
            assert!(!s.update(bad.0, bad.1, bad.2), "{bad:?}");
        }
        assert_eq!(s.empty_count(), 81);
    }

    #[test]
    fn update_rejects_givens_and_allows_overwrite_of_guesses() {
        let mut s = Sudoku::with_givens(&[(1, 1, 5)]);
        assert!(s.is_given(1, 1));
        assert!(!s.update(1, 1, 6), "cannot overwrite a given");
        assert!(s.update(2, 2, 6));
        assert!(s.update(2, 2, 7), "tentative guesses can be overwritten");
        assert_eq!(s.cell(2, 2), Some(7));
    }

    #[test]
    fn clear_semantics() {
        let mut s = Sudoku::with_givens(&[(1, 1, 5)]);
        s.update(2, 2, 3);
        assert!(!s.clear(1, 1), "cannot clear a given");
        assert!(!s.clear(3, 3), "cannot clear an empty cell");
        assert!(!s.clear(0, 3), "bounds");
        assert!(s.clear(2, 2));
        assert_eq!(s.cell(2, 2), Some(0));
    }

    #[test]
    #[should_panic(expected = "violates constraints")]
    fn with_givens_rejects_invalid_puzzle() {
        Sudoku::with_givens(&[(1, 1, 5), (1, 2, 5)]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let s = example_puzzle();
        let mut t = Sudoku::new();
        GState::restore(&mut t, &GState::snapshot(&s)).unwrap();
        assert_eq!(s, t);
    }

    #[test]
    fn restore_rejects_malformed() {
        let mut s = Sudoku::new();
        assert!(GState::restore(&mut s, &Value::from(1)).is_err());
        assert!(GState::restore(
            &mut s,
            &Value::map([
                ("grid", Value::from(vec![Value::from(1)])),
                ("fixed", Value::from(vec![Value::from(true)]))
            ])
        )
        .is_err());
    }

    #[test]
    fn registered_ops_execute() {
        let (mut store, reg) = store_with(Sudoku::new());
        let ok = execute(&ops::update(board_id(), 1, 1, 5), &mut store, &reg).unwrap();
        assert!(ok.is_success());
        let dup = execute(&ops::update(board_id(), 1, 2, 5), &mut store, &reg).unwrap();
        assert!(!dup.is_success());
        let cl = execute(&ops::clear(board_id(), 1, 1), &mut store, &reg).unwrap();
        assert!(cl.is_success());
    }

    #[test]
    fn candidate_moves_shrink_as_board_fills() {
        let mut s = Sudoku::new();
        let m0 = s.candidate_moves().len();
        assert_eq!(m0, 81 * 9);
        s.update(1, 1, 5);
        assert!(s.candidate_moves().len() < m0);
        assert!(!s.is_complete());
    }

    #[test]
    fn example_puzzle_is_valid_with_30_givens() {
        let s = example_puzzle();
        assert!(s.valid());
        assert_eq!(81 - s.empty_count(), 30);
    }

    #[test]
    fn checked_registration_is_clean_on_correct_impl() {
        let mut reg = OpRegistry::new();
        let log = ConformanceLog::new();
        register_checked(&mut reg, &log);
        let mut store = ObjectStore::new();
        store.insert(board_id(), Box::new(example_puzzle()));
        for (r, c, v) in [(1u8, 3u8, 4u8), (1, 4, 6), (3, 1, 1), (1, 3, 2)] {
            let _ = execute(&ops::update(board_id(), r, c, v), &mut store, &reg).unwrap();
        }
        let _ = execute(&ops::clear(board_id(), 1, 3), &mut store, &reg).unwrap();
        assert!(log.is_empty(), "{:?}", log.violations());
    }

    #[test]
    fn conformance_catches_off_by_one_bug() {
        // The paper: "the Sudoku grid row check had an off by one error in
        // array indexing which was caught with the aid of Spec#". Reproduce:
        // a buggy update that checks columns 2..9 only.
        let mut reg = OpRegistry::new();
        reg.register_type::<Sudoku>();
        let log = ConformanceLog::new();
        guesstimate_spec::register_checked::<Sudoku>(
            &mut reg,
            "update",
            update_contract(),
            &log,
            |s, a| {
                let (Some(r), Some(c), Some(v)) = (a.i64(0), a.i64(1), a.i64(2)) else {
                    return false;
                };
                if !(1..=9).contains(&r) || !(1..=9).contains(&c) || !(1..=9).contains(&v) {
                    return false;
                }
                let (ri, ci, v8) = (r as usize - 1, c as usize - 1, v as u8);
                // BUG: starts the row scan at 1 instead of 0.
                let row_dup = (1..9).any(|i| i != ci && s.grid[ri][i] == v8);
                if row_dup {
                    return false;
                }
                s.grid[ri][ci] = v8;
                true
            },
        );
        let mut store = ObjectStore::new();
        store.insert(board_id(), Box::new(Sudoku::new()));
        // Put 5 at (1,1) then at (1,9): the buggy row check misses column 1.
        execute(&ops::update(board_id(), 1, 1, 5), &mut store, &reg).unwrap();
        execute(&ops::update(board_id(), 1, 9, 5), &mut store, &reg).unwrap();
        assert!(
            !log.is_empty(),
            "the invariant runtime check catches the off-by-one"
        );
    }

    #[test]
    fn spec_suite_counts() {
        let suite = spec_suite();
        // update: frame+post+inv + 3 guards + 27 nodup + 81 cells = 114
        // clear:  frame+post+inv + 2 guards + 27 nodup + 81 cells = 113
        assert_eq!(suite.assertion_count(), 227);
    }

    #[test]
    fn verifier_classifies_sudoku_suite() {
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let suite = spec_suite();
        // Small sampled space to keep the test fast; the bench binary runs
        // the full table.
        let mut space = sampled_states(3, 42);
        space.max_cases = 1_500;
        let report = verify_suite(&reg, &suite, &space);
        assert_eq!(report.total(), 227);
        assert_eq!(report.refuted(), 0, "correct implementation");
        // `update`'s case budget is truncated (1331 args x 3 states), so
        // none of its assertions can be Verified; `clear` (121 args x 3)
        // fits, so its state-independent assertions (2 guards + 81
        // per-cell frames) verify.
        assert_eq!(report.verified(), 83);
        assert_eq!(report.runtime_checks(), 144);
    }

    #[test]
    fn verifier_verifies_guards_with_full_arg_space() {
        let mut reg = OpRegistry::new();
        register(&mut reg);
        let suite = spec_suite();
        let space = sampled_states(2, 7); // no case cap
        let report = verify_suite(&reg, &suite, &space);
        assert_eq!(report.refuted(), 0);
        // All state-independent assertions verify over the complete
        // argument enumeration: 3+2 bounds guards and 81+81 per-cell frame
        // assertions — the majority, as in the paper (271 of 323).
        assert_eq!(report.verified(), 167);
        assert_eq!(report.runtime_checks(), 60);
        for a in report
            .assertions
            .iter()
            .filter(|a| a.verdict == Verdict::Verified)
        {
            assert!(
                a.name.starts_with("guard-") || a.name.starts_with("frame-cell-"),
                "{}",
                a.name
            );
        }
    }
}
