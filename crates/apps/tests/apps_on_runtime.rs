//! Each application exercised over the real distributed runtime: the §6
//! "Experience" scenarios, asserted rather than narrated.

use guesstimate_apps::{auction, carpool, event_planner, message_board, microblog, sudoku};
use guesstimate_core::{MachineId, OpRegistry};
use guesstimate_net::{LatencyModel, NetConfig, SimNet, SimTime};
use guesstimate_runtime::{run_until_cohort, sim_cluster, Machine, MachineConfig};

fn cluster(n: u32, seed: u64) -> SimNet<Machine> {
    let mut registry = OpRegistry::new();
    guesstimate_apps::register_all(&mut registry);
    sim_cluster(
        n,
        registry,
        MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_millis(800)),
        NetConfig::lan(seed).with_latency(LatencyModel::constant_ms(10)),
    )
}

fn settle(net: &mut SimNet<Machine>, secs: u64) {
    let t = net.now() + SimTime::from_secs(secs);
    net.run_until(t);
}

fn assert_converged(net: &SimNet<Machine>, n: u32) {
    let digests: Vec<u64> = (0..n)
        .map(|i| net.actor(MachineId::new(i)).unwrap().committed_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "{digests:?}");
}

#[test]
fn sudoku_two_players_racing_for_one_cell() {
    let mut net = cluster(2, 101);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(sudoku::Sudoku::new());
    settle(&mut net, 2);
    // Both want cell (5,5): m0 writes 3, m1 writes 7, in the same round.
    net.call(MachineId::new(0), |m, _| {
        assert!(m.issue(sudoku::ops::update(board, 5, 5, 3)).unwrap());
    });
    net.call(MachineId::new(1), |m, _| {
        assert!(m.issue(sudoku::ops::update(board, 5, 5, 7)).unwrap());
    });
    settle(&mut net, 3);
    assert_converged(&net, 2);
    // The paper's Update overwrites tentative (non-given) cells, so both
    // writes commit and the one that lands later in the global order wins —
    // which of the two that is depends on how the issues straddled the
    // round boundary. No conflict either way, and everyone agrees.
    let m0 = net.actor(MachineId::new(0)).unwrap();
    let winner = m0
        .read::<sudoku::Sudoku, _>(board, |s| s.cell(5, 5))
        .unwrap()
        .unwrap();
    assert!(
        winner == 3 || winner == 7,
        "one of the writes stands: {winner}"
    );
    assert_eq!(
        net.actor(MachineId::new(1))
            .unwrap()
            .read::<sudoku::Sudoku, _>(board, |s| s.cell(5, 5)),
        Some(Some(winner))
    );
    // But a *constraint* race does conflict: same value in one row.
    net.call(MachineId::new(0), |m, _| {
        assert!(m.issue(sudoku::ops::update(board, 1, 1, 9)).unwrap());
    });
    net.call(MachineId::new(1), |m, _| {
        assert!(m.issue(sudoku::ops::update(board, 1, 9, 9)).unwrap());
    });
    settle(&mut net, 3);
    assert_converged(&net, 2);
    let conflicts: u64 = (0..2)
        .map(|i| net.actor(MachineId::new(i)).unwrap().stats().conflicts)
        .sum();
    assert_eq!(conflicts, 1, "one of the two 9s lost");
}

#[test]
fn event_planner_quota_and_capacity_races_resolve_consistently() {
    let n = 4;
    let mut net = cluster(n, 103);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let planner = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(event_planner::EventPlanner::with_quota(1));
    settle(&mut net, 2);
    net.call(MachineId::new(0), |m, _| {
        for u in ["ann", "bob", "cid", "dee"] {
            m.issue(event_planner::ops::register_user(planner, u, "pw"))
                .unwrap();
        }
        m.issue(event_planner::ops::create_event(planner, "gala", 2))
            .unwrap();
        m.issue(event_planner::ops::create_event(planner, "brunch", 4))
            .unwrap();
    });
    settle(&mut net, 2);
    // All four race for the 2-capacity gala; the OrElse falls back to brunch.
    for (i, u) in ["ann", "bob", "cid", "dee"].iter().enumerate() {
        let user = u.to_string();
        net.schedule_call(
            net.now() + SimTime::from_millis(5 * i as u64),
            MachineId::new(i as u32),
            move |m: &mut Machine, _| {
                let op =
                    event_planner::ops::join_one_of(planner, &user, &["gala", "brunch"]).unwrap();
                assert!(m.issue(op).unwrap());
            },
        );
    }
    settle(&mut net, 4);
    assert_converged(&net, n);
    let m0 = net.actor(MachineId::new(0)).unwrap();
    m0.read::<event_planner::EventPlanner, _>(planner, |p| {
        assert_eq!(p.vacancies("gala"), Some(0), "gala filled");
        assert_eq!(p.vacancies("brunch"), Some(2), "losers landed in brunch");
        for u in ["ann", "bob", "cid", "dee"] {
            assert_eq!(
                p.joined_events(u).len(),
                1,
                "{u} attends exactly one (quota 1)"
            );
        }
    })
    .unwrap();
}

#[test]
fn auction_distributed_bidding_war_has_a_single_winner() {
    let n = 3;
    let mut net = cluster(n, 107);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let house = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(auction::Auction::new());
    settle(&mut net, 2);
    net.call(MachineId::new(0), |m, _| {
        m.issue(auction::ops::list_item(house, "lamp", "seller", 10, 5))
            .unwrap();
    });
    settle(&mut net, 2);
    // Bidders on m1/m2 escalate with ladders over several rounds.
    for round in 0..6u64 {
        for (i, bidder) in [(1u32, "ann"), (2, "bob")] {
            let b = bidder.to_string();
            net.schedule_call(
                net.now() + SimTime::from_millis(300 * round + 50 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    let min = m
                        .read::<auction::Auction, _>(house, |a| a.min_next_bid("lamp"))
                        .flatten()
                        .unwrap_or(10);
                    if min <= 60 {
                        let _ = m
                            .issue(auction::ops::bid_up_to(house, "lamp", &b, min, 5, 60).unwrap());
                    }
                },
            );
        }
    }
    settle(&mut net, 4);
    net.call(MachineId::new(0), |m, _| {
        assert!(m
            .issue(auction::ops::close(house, "lamp", "seller"))
            .unwrap());
    });
    settle(&mut net, 2);
    assert_converged(&net, n);
    let m0 = net.actor(MachineId::new(0)).unwrap();
    let winner = m0
        .read::<auction::Auction, _>(house, |a| a.winner("lamp"))
        .unwrap();
    let (who, amount) = winner.expect("someone won");
    assert!(who == "ann" || who == "bob");
    assert!((10..=65).contains(&amount));
    assert!(
        !m0.read::<auction::Auction, _>(house, |a| a.is_open("lamp"))
            .unwrap(),
        "closed everywhere"
    );
}

#[test]
fn carpool_get_ride_reroutes_under_distributed_contention() {
    let n = 4;
    let mut net = cluster(n, 109);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let pool = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(carpool::CarPool::new());
    settle(&mut net, 2);
    net.call(MachineId::new(0), |m, _| {
        m.issue(carpool::ops::add_vehicle(pool, "v1", 1, "party"))
            .unwrap();
        m.issue(carpool::ops::add_vehicle(pool, "v2", 1, "party"))
            .unwrap();
        m.issue(carpool::ops::add_vehicle(pool, "v3", 2, "party"))
            .unwrap();
    });
    settle(&mut net, 2);
    // Four riders, four seats total, everyone asks for a ride at once.
    for (i, u) in ["ann", "bob", "cid", "dee"].iter().enumerate() {
        let user = u.to_string();
        net.schedule_call(
            net.now() + SimTime::from_millis(3 * i as u64),
            MachineId::new(i as u32),
            move |m: &mut Machine, _| {
                let ride = m
                    .read::<carpool::CarPool, _>(pool, |p| {
                        carpool::ops::get_ride(p, pool, &user, "party")
                    })
                    .flatten()
                    .unwrap();
                assert!(m.issue(ride).unwrap(), "optimistically seated");
            },
        );
    }
    settle(&mut net, 4);
    assert_converged(&net, n);
    let m0 = net.actor(MachineId::new(0)).unwrap();
    m0.read::<carpool::CarPool, _>(pool, |p| {
        // φ_GetRide for everyone: seats exactly matched riders.
        for u in ["ann", "bob", "cid", "dee"] {
            assert!(p.has_ride(u, "party"), "{u} has some ride");
        }
        for v in ["v1", "v2", "v3"] {
            assert_eq!(p.free_seats(v), Some(0));
        }
    })
    .unwrap();
}

#[test]
fn message_board_preserves_every_concurrent_post_in_agreed_order() {
    let n = 3;
    let mut net = cluster(n, 113);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(message_board::MessageBoard::new());
    settle(&mut net, 2);
    net.call(MachineId::new(0), |m, _| {
        assert!(m
            .issue(message_board::ops::create_topic(board, "chat"))
            .unwrap());
    });
    settle(&mut net, 2);
    for k in 0..10u64 {
        for i in 0..n {
            let author = format!("user{i}");
            let text = format!("msg {k}");
            net.schedule_call(
                net.now() + SimTime::from_millis(90 * k + 7 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    assert!(m
                        .issue(message_board::ops::post(board, "chat", &author, &text))
                        .unwrap());
                },
            );
        }
    }
    settle(&mut net, 5);
    assert_converged(&net, n);
    // All 30 posts survive; order identical everywhere (implied by digest),
    // and per-author subsequences respect issue order (ops from one machine
    // commit in issue order — OpId sequence).
    let m0 = net.actor(MachineId::new(0)).unwrap();
    m0.read::<message_board::MessageBoard, _>(board, |b| {
        let posts = b.posts("chat").unwrap();
        assert_eq!(posts.len(), 30, "no post lost");
        for i in 0..n {
            let author = format!("user{i}");
            let mine: Vec<&str> = posts
                .iter()
                .filter(|p| p.author == author)
                .map(|p| p.text.as_str())
                .collect();
            let expected: Vec<String> = (0..10).map(|k| format!("msg {k}")).collect();
            assert_eq!(mine, expected, "{author}'s posts in issue order");
        }
    })
    .unwrap();
}

#[test]
fn microblog_follow_graph_and_timelines_replicate() {
    let n = 3;
    let mut net = cluster(n, 127);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
    let blog = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(microblog::MicroBlog::new());
    settle(&mut net, 2);
    for (i, u) in ["ann", "bob", "cid"].iter().enumerate() {
        let user = u.to_string();
        net.call(MachineId::new(i as u32), move |m, _| {
            assert!(m.issue(microblog::ops::register(blog, &user)).unwrap());
        });
    }
    settle(&mut net, 2);
    net.call(MachineId::new(0), |m, _| {
        assert!(m.issue(microblog::ops::follow(blog, "ann", "bob")).unwrap());
    });
    net.call(MachineId::new(2), |m, _| {
        assert!(m
            .issue(microblog::ops::post(blog, "cid", "cid speaking"))
            .unwrap());
    });
    net.call(MachineId::new(1), |m, _| {
        assert!(m
            .issue(microblog::ops::post(blog, "bob", "bob here"))
            .unwrap());
    });
    settle(&mut net, 3);
    assert_converged(&net, n);
    // Ann's timeline on every machine: only bob's post.
    for i in 0..n {
        let m = net.actor(MachineId::new(i)).unwrap();
        m.read::<microblog::MicroBlog, _>(blog, |b| {
            let tl: Vec<&str> = b.timeline("ann").iter().map(|p| p.text.as_str()).collect();
            assert_eq!(tl, vec!["bob here"], "machine {i}");
        })
        .unwrap();
    }
}
