//! # guesstimate-baselines
//!
//! The two ends of the consistency–performance spectrum that §1 of the
//! paper positions GUESSTIMATE between, built on the same mesh substrate so
//! the benchmark harness can compare them head-to-head:
//!
//! * [`one_copy`] — **one-copy serializability**: every operation is routed
//!   through a central sequencer and becomes visible only when its commit
//!   is applied, on every machine, in one global order. "One copy
//!   serializability is the best form of consistency we can hope for.
//!   However, this programming model is inherently slow" — operations block
//!   for at least a network round trip before the user sees any effect.
//! * [`local_only`] — **replicated execution**: each machine applies its
//!   operations to its own replica immediately and never synchronizes —
//!   "very high performance, but there is no consistency between the states
//!   of the various machines". The module exposes divergence metrics so the
//!   benches can quantify exactly that inconsistency.

#![warn(missing_docs)]

pub mod local_only;
pub mod one_copy;
