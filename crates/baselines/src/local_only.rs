//! Replicated execution without synchronization: the other extreme.
//!
//! Every machine applies its operations to its own replica immediately and
//! never talks to anyone. Latency is zero and throughput is unbounded —
//! and the replicas drift apart immediately. [`divergence`] quantifies the
//! drift so the benches can show what GUESSTIMATE's synchronization buys.

use std::collections::BTreeSet;
use std::sync::Arc;

use guesstimate_core::{execute, GState, MachineId, ObjectId, ObjectStore, OpRegistry, SharedOp};
use guesstimate_net::{Actor, Channel, Ctx, SimNet};

/// A machine that never synchronizes.
pub struct LocalOnlyMachine {
    id: MachineId,
    registry: Arc<OpRegistry>,
    store: ObjectStore,
    next_obj: u64,
    ops_applied: u64,
}

impl std::fmt::Debug for LocalOnlyMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalOnlyMachine")
            .field("id", &self.id)
            .field("ops", &self.ops_applied)
            .finish()
    }
}

impl LocalOnlyMachine {
    /// Creates a machine.
    pub fn new(id: MachineId, registry: Arc<OpRegistry>) -> Self {
        LocalOnlyMachine {
            id,
            registry,
            store: ObjectStore::new(),
            next_obj: 0,
            ops_applied: 0,
        }
    }

    /// Creates an object — locally, instantly, invisibly to everyone else.
    pub fn create_instance<T: GState>(&mut self, init: T) -> ObjectId {
        let object = ObjectId::new(self.id, self.next_obj);
        self.next_obj += 1;
        self.store.insert(object, Box::new(init));
        object
    }

    /// Pre-installs an object under a fixed id (so every machine can start
    /// from a common object, mimicking out-of-band distribution).
    pub fn install<T: GState>(&mut self, object: ObjectId, init: T) {
        self.store.insert(object, Box::new(init));
    }

    /// Applies an operation locally; zero latency, no propagation.
    pub fn issue(&mut self, op: SharedOp) -> bool {
        let ok = execute(&op, &mut self.store, &self.registry)
            .map(|o| o.is_success())
            .unwrap_or(false);
        self.ops_applied += 1;
        ok
    }

    /// Reads the (only) replica.
    pub fn read<T: GState, R>(&self, id: ObjectId, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.store.get_as::<T>(id).map(f)
    }

    /// Replica digest.
    pub fn digest(&self) -> u64 {
        self.store.digest()
    }

    /// Operations applied so far.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }
}

impl Actor for LocalOnlyMachine {
    type Msg = ();

    fn on_message(&mut self, _: MachineId, _: Channel, _: (), _: &mut Ctx<'_, ()>) {
        // No protocol: this baseline never communicates.
    }
}

/// Number of distinct replica states across the cluster (1 = consistent;
/// `n` = everyone disagrees).
pub fn divergence(net: &SimNet<LocalOnlyMachine>, ids: &[MachineId]) -> usize {
    let digests: BTreeSet<u64> = ids
        .iter()
        .filter_map(|&i| net.actor(i).map(LocalOnlyMachine::digest))
        .collect();
    digests.len()
}

/// Builds a local-only cluster of `n` machines.
pub fn local_only_cluster(
    n: u32,
    registry: OpRegistry,
    netcfg: guesstimate_net::NetConfig,
) -> SimNet<LocalOnlyMachine> {
    let registry = Arc::new(registry);
    let mut net = SimNet::new(netcfg);
    for i in 0..n {
        net.add_machine(
            MachineId::new(i),
            LocalOnlyMachine::new(MachineId::new(i), registry.clone()),
        );
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::{args, RestoreError, Value};
    use guesstimate_net::NetConfig;

    #[derive(Clone, Default)]
    struct Cnt(i64);
    impl GState for Cnt {
        const TYPE_NAME: &'static str = "Cnt";
        fn snapshot(&self) -> Value {
            Value::from(self.0)
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            self.0 = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
            Ok(())
        }
    }

    fn registry() -> OpRegistry {
        let mut r = OpRegistry::new();
        r.register_type::<Cnt>();
        r.register_method::<Cnt>("add", |c, a| {
            let Some(d) = a.i64(0) else { return false };
            c.0 += d;
            true
        });
        r
    }

    #[test]
    fn ops_are_instant_and_local() {
        let mut net = local_only_cluster(2, registry(), NetConfig::lan(1));
        let shared = ObjectId::new(MachineId::new(9), 0);
        for i in 0..2 {
            net.actor_mut(MachineId::new(i))
                .unwrap()
                .install(shared, Cnt(0));
        }
        let m0 = net.actor_mut(MachineId::new(0)).unwrap();
        assert!(m0.issue(SharedOp::primitive(shared, "add", args![5])));
        assert_eq!(m0.read::<Cnt, _>(shared, |c| c.0), Some(5));
        assert_eq!(m0.ops_applied(), 1);
        // Machine 1 never hears about it.
        assert_eq!(
            net.actor(MachineId::new(1))
                .unwrap()
                .read::<Cnt, _>(shared, |c| c.0),
            Some(0)
        );
    }

    #[test]
    fn divergence_grows_with_uncoordinated_updates() {
        let mut net = local_only_cluster(3, registry(), NetConfig::lan(1));
        let shared = ObjectId::new(MachineId::new(9), 0);
        let ids: Vec<MachineId> = (0..3).map(MachineId::new).collect();
        for &i in &ids {
            net.actor_mut(i).unwrap().install(shared, Cnt(0));
        }
        assert_eq!(divergence(&net, &ids), 1, "identical at start");
        for (k, &i) in ids.iter().enumerate() {
            net.actor_mut(i).unwrap().issue(SharedOp::primitive(
                shared,
                "add",
                args![k as i64 + 1],
            ));
        }
        assert_eq!(divergence(&net, &ids), 3, "everyone disagrees");
    }

    #[test]
    fn create_instance_is_private() {
        let mut net = local_only_cluster(2, registry(), NetConfig::lan(1));
        let obj = net
            .actor_mut(MachineId::new(0))
            .unwrap()
            .create_instance(Cnt(7));
        assert_eq!(
            net.actor(MachineId::new(0))
                .unwrap()
                .read::<Cnt, _>(obj, |c| c.0),
            Some(7)
        );
        assert!(net
            .actor(MachineId::new(1))
            .unwrap()
            .read::<Cnt, _>(obj, |c| c.0)
            .is_none());
    }

    #[test]
    fn unknown_ops_count_as_failures() {
        let mut net = local_only_cluster(1, registry(), NetConfig::lan(1));
        let m = net.actor_mut(MachineId::new(0)).unwrap();
        let ghost = ObjectId::new(MachineId::new(5), 5);
        assert!(!m.issue(SharedOp::primitive(ghost, "add", args![1])));
    }
}
