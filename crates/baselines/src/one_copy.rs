//! One-copy serializability over the simulated mesh.
//!
//! A fixed *sequencer* machine (id 0) assigns every submitted operation a
//! global sequence number and broadcasts the committed operation; every
//! machine (including the submitter) applies commits strictly in sequence
//! order. There is **no guesstimated state**: reads observe only committed
//! state, so an operation's effect becomes visible to its own issuer only
//! after a full round trip through the sequencer — the latency the
//! responsiveness ablation (A2) measures against GUESSTIMATE's immediate
//! local execution.
//!
//! The baseline assumes a fault-free mesh (its job is to bound the *best*
//! case of the blocking model, not to re-solve fault tolerance).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use guesstimate_core::{
    execute, CompletionFn, GState, MachineId, ObjectId, ObjectStore, OpId, OpRegistry, SharedOp,
    Value,
};
use guesstimate_net::{Actor, Channel, Ctx, SimTime};

/// An operation in flight: object creation or a shared operation.
#[derive(Debug, Clone)]
pub enum OcOp {
    /// Materialize a new object.
    Create {
        /// New object id.
        object: ObjectId,
        /// Registered type name.
        type_name: String,
        /// Initial state snapshot.
        init: Value,
    },
    /// An application operation.
    Shared(SharedOp),
}

/// Mesh messages of the baseline.
#[derive(Debug, Clone)]
pub enum OcMsg {
    /// Client → sequencer: order this operation.
    Submit {
        /// Issue identity (client, client-local seq).
        id: OpId,
        /// The operation.
        op: OcOp,
    },
    /// Sequencer → all: operation `id` is commit number `seq`.
    Commit {
        /// Global sequence number (dense from 0).
        seq: u64,
        /// Issue identity.
        id: OpId,
        /// The operation.
        op: OcOp,
    },
}

/// Per-client latency and throughput counters.
#[derive(Debug, Clone, Default)]
pub struct OcStats {
    /// Operations submitted.
    pub submitted: u64,
    /// Own operations whose commit has been applied locally.
    pub committed: u64,
    /// Operations that failed at commit (precondition false in the global
    /// order) — the one-copy model has no separate issue-time failure.
    pub failed: u64,
    /// Submit → locally-applied latency of each own operation.
    pub latencies: Vec<SimTime>,
}

impl OcStats {
    /// Mean visibility latency, if any operation completed.
    pub fn mean_latency(&self) -> Option<SimTime> {
        if self.latencies.is_empty() {
            return None;
        }
        let total: u64 = self.latencies.iter().map(|t| t.as_micros()).sum();
        Some(SimTime::from_micros(total / self.latencies.len() as u64))
    }
}

/// A machine in the one-copy system. Machine 0 is the sequencer (and also a
/// regular client).
pub struct OneCopyMachine {
    id: MachineId,
    registry: Arc<OpRegistry>,
    store: ObjectStore,
    // Sequencer state.
    next_seq: u64,
    // Client state.
    next_op: u64,
    next_obj: u64,
    applied_up_to: u64, // number of commits applied
    reorder: BTreeMap<u64, (OpId, OcOp)>,
    submit_times: HashMap<OpId, SimTime>,
    completions: HashMap<OpId, CompletionFn>,
    stats: OcStats,
}

impl std::fmt::Debug for OneCopyMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OneCopyMachine")
            .field("id", &self.id)
            .field("applied", &self.applied_up_to)
            .finish()
    }
}

/// The fixed sequencer id.
pub const SEQUENCER: MachineId = MachineId::new(0);

impl OneCopyMachine {
    /// Creates a machine; machine 0 acts as the sequencer.
    pub fn new(id: MachineId, registry: Arc<OpRegistry>) -> Self {
        OneCopyMachine {
            id,
            registry,
            store: ObjectStore::new(),
            next_seq: 0,
            next_op: 0,
            next_obj: 0,
            applied_up_to: 0,
            reorder: BTreeMap::new(),
            submit_times: HashMap::new(),
            completions: HashMap::new(),
            stats: OcStats::default(),
        }
    }

    /// This machine's id.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// The machine's counters.
    pub fn stats(&self) -> &OcStats {
        &self.stats
    }

    /// Digest of the (single, committed) replica.
    pub fn digest(&self) -> u64 {
        self.store.digest()
    }

    /// Reads committed state (the only state there is).
    pub fn read<T: GState, R>(&self, id: ObjectId, f: impl FnOnce(&T) -> R) -> Option<R> {
        self.store.get_as::<T>(id).map(f)
    }

    /// Submits an object creation; visible once the commit round-trips.
    pub fn create_instance<T: GState>(&mut self, init: T, ctx: &mut Ctx<'_, OcMsg>) -> ObjectId {
        assert!(
            self.registry.has_type(T::TYPE_NAME),
            "create_instance: type {:?} not registered",
            T::TYPE_NAME
        );
        let object = ObjectId::new(self.id, self.next_obj);
        self.next_obj += 1;
        let op = OcOp::Create {
            object,
            type_name: T::TYPE_NAME.to_owned(),
            init: GState::snapshot(&init),
        };
        self.submit(op, None, ctx);
        object
    }

    /// Submits a shared operation, with an optional completion routine that
    /// fires (with the commit-time boolean) when the commit is applied here.
    pub fn issue(
        &mut self,
        op: SharedOp,
        completion: Option<CompletionFn>,
        ctx: &mut Ctx<'_, OcMsg>,
    ) {
        self.submit(OcOp::Shared(op), completion, ctx);
    }

    fn submit(&mut self, op: OcOp, completion: Option<CompletionFn>, ctx: &mut Ctx<'_, OcMsg>) {
        let id = OpId::new(self.id, self.next_op);
        self.next_op += 1;
        self.stats.submitted += 1;
        self.submit_times.insert(id, ctx.now());
        if let Some(c) = completion {
            self.completions.insert(id, c);
        }
        if self.id == SEQUENCER {
            self.sequence(id, op, ctx);
        } else {
            ctx.send(SEQUENCER, Channel::Operations, OcMsg::Submit { id, op });
        }
    }

    /// Sequencer: assign the next global number and broadcast.
    fn sequence(&mut self, id: OpId, op: OcOp, ctx: &mut Ctx<'_, OcMsg>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        ctx.broadcast(
            Channel::Operations,
            OcMsg::Commit {
                seq,
                id,
                op: op.clone(),
            },
        );
        self.enqueue_commit(seq, id, op, ctx);
    }

    fn enqueue_commit(&mut self, seq: u64, id: OpId, op: OcOp, ctx: &mut Ctx<'_, OcMsg>) {
        self.reorder.insert(seq, (id, op));
        while let Some((id, op)) = self.reorder.remove(&self.applied_up_to) {
            self.applied_up_to += 1;
            let ok = match &op {
                OcOp::Create {
                    object,
                    type_name,
                    init,
                } => {
                    let mut obj = self
                        .registry
                        .construct(type_name)
                        .expect("type registered on all machines");
                    obj.restore(init).expect("snapshot matches type");
                    self.store.insert(*object, obj);
                    true
                }
                OcOp::Shared(op) => execute(op, &mut self.store, &self.registry)
                    .map(|o| o.is_success())
                    .unwrap_or(false),
            };
            if id.machine() == self.id {
                self.stats.committed += 1;
                if !ok {
                    self.stats.failed += 1;
                }
                if let Some(t) = self.submit_times.remove(&id) {
                    self.stats.latencies.push(ctx.now().saturating_since(t));
                }
                if let Some(c) = self.completions.remove(&id) {
                    c(ok);
                }
            }
        }
    }
}

impl Actor for OneCopyMachine {
    type Msg = OcMsg;

    fn on_message(
        &mut self,
        _from: MachineId,
        _channel: Channel,
        msg: OcMsg,
        ctx: &mut Ctx<'_, OcMsg>,
    ) {
        match msg {
            OcMsg::Submit { id, op } => {
                if self.id == SEQUENCER {
                    self.sequence(id, op, ctx);
                }
            }
            OcMsg::Commit { seq, id, op } => self.enqueue_commit(seq, id, op, ctx),
        }
    }
}

/// Builds a one-copy cluster of `n` machines (machine 0 = sequencer).
pub fn one_copy_cluster(
    n: u32,
    registry: OpRegistry,
    netcfg: guesstimate_net::NetConfig,
) -> guesstimate_net::SimNet<OneCopyMachine> {
    let registry = Arc::new(registry);
    let mut net = guesstimate_net::SimNet::new(netcfg);
    for i in 0..n {
        net.add_machine(
            MachineId::new(i),
            OneCopyMachine::new(MachineId::new(i), registry.clone()),
        );
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::{args, RestoreError};
    use guesstimate_net::{LatencyModel, NetConfig, SimNet};

    #[derive(Clone, Default)]
    struct Cnt(i64);
    impl GState for Cnt {
        const TYPE_NAME: &'static str = "Cnt";
        fn snapshot(&self) -> Value {
            Value::from(self.0)
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            self.0 = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
            Ok(())
        }
    }

    fn registry() -> OpRegistry {
        let mut r = OpRegistry::new();
        r.register_type::<Cnt>();
        r.register_method::<Cnt>("add_capped", |c, a| {
            let (Some(d), Some(cap)) = (a.i64(0), a.i64(1)) else {
                return false;
            };
            if c.0 + d > cap {
                return false;
            }
            c.0 += d;
            true
        });
        r
    }

    fn cluster(n: u32) -> SimNet<OneCopyMachine> {
        one_copy_cluster(
            n,
            registry(),
            NetConfig::lan(3).with_latency(LatencyModel::constant_ms(10)),
        )
    }

    #[test]
    fn ops_are_not_visible_before_the_round_trip() {
        let mut net = cluster(3);
        let obj = {
            let mut out = None;
            net.call(MachineId::new(1), |m, ctx| {
                out = Some(m.create_instance(Cnt(0), ctx))
            });
            out.unwrap()
        };
        // Not visible anywhere yet — not even on the creator.
        assert!(net
            .actor(MachineId::new(1))
            .unwrap()
            .read::<Cnt, _>(obj, |c| c.0)
            .is_none());
        // After the sequencer round trip (10ms there + 10ms back) it is.
        net.run_until(SimTime::from_millis(50));
        for i in 0..3 {
            assert_eq!(
                net.actor(MachineId::new(i))
                    .unwrap()
                    .read::<Cnt, _>(obj, |c| c.0),
                Some(0),
                "machine {i}"
            );
        }
    }

    #[test]
    fn global_order_resolves_conflicts_identically() {
        let mut net = cluster(4);
        let obj = {
            let mut out = None;
            net.call(MachineId::new(0), |m, ctx| {
                out = Some(m.create_instance(Cnt(0), ctx))
            });
            out.unwrap()
        };
        net.run_until(SimTime::from_millis(100));
        // All four try to claim the last 2 units.
        for i in 0..4 {
            net.schedule_call(
                SimTime::from_millis(100 + i as u64),
                MachineId::new(i),
                move |m: &mut OneCopyMachine, ctx| {
                    m.issue(
                        SharedOp::primitive(obj, "add_capped", args![1, 2]),
                        None,
                        ctx,
                    );
                },
            );
        }
        net.run_until(SimTime::from_secs(1));
        let digests: Vec<u64> = (0..4)
            .map(|i| net.actor(MachineId::new(i)).unwrap().digest())
            .collect();
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(
            net.actor(MachineId::new(0))
                .unwrap()
                .read::<Cnt, _>(obj, |c| c.0),
            Some(2)
        );
        let failed: u64 = (0..4)
            .map(|i| net.actor(MachineId::new(i)).unwrap().stats().failed)
            .sum();
        assert_eq!(failed, 2, "two losers in the global order");
    }

    #[test]
    fn latency_is_at_least_a_round_trip_for_non_sequencer() {
        let mut net = cluster(2);
        let obj = {
            let mut out = None;
            net.call(MachineId::new(0), |m, ctx| {
                out = Some(m.create_instance(Cnt(0), ctx))
            });
            out.unwrap()
        };
        net.run_until(SimTime::from_millis(100));
        net.call(MachineId::new(1), |m, ctx| {
            m.issue(
                SharedOp::primitive(obj, "add_capped", args![1, 10]),
                None,
                ctx,
            );
        });
        net.run_until(SimTime::from_secs(1));
        let stats = net.actor(MachineId::new(1)).unwrap().stats().clone();
        assert_eq!(stats.latencies.len(), 1);
        assert!(
            stats.latencies[0] >= SimTime::from_millis(20),
            "submit + commit broadcast = 2 hops at 10ms, got {}",
            stats.latencies[0]
        );
        assert!(stats.mean_latency().unwrap() >= SimTime::from_millis(20));
    }

    #[test]
    fn sequencer_self_commits_in_one_hop_broadcast() {
        let mut net = cluster(2);
        let obj = {
            let mut out = None;
            net.call(MachineId::new(0), |m, ctx| {
                out = Some(m.create_instance(Cnt(0), ctx))
            });
            out.unwrap()
        };
        // The sequencer applies its own ops immediately (seq order local).
        assert_eq!(
            net.actor(MachineId::new(0))
                .unwrap()
                .read::<Cnt, _>(obj, |c| c.0),
            Some(0)
        );
        let s = net.actor(MachineId::new(0)).unwrap().stats().clone();
        assert_eq!(s.latencies.len(), 1);
        assert_eq!(s.latencies[0], SimTime::ZERO);
    }

    #[test]
    fn out_of_order_commit_delivery_is_reapplied_in_sequence() {
        // Heavy jitter: commit broadcasts for seq k+1 routinely overtake
        // seq k; the reorder buffer must hold them until the gap fills.
        let netcfg = NetConfig::lan(9).with_latency(LatencyModel::Uniform {
            lo: SimTime::from_millis(1),
            hi: SimTime::from_millis(80),
        });
        let mut net = one_copy_cluster(3, registry(), netcfg);
        let obj = {
            let mut out = None;
            net.call(MachineId::new(0), |m, ctx| {
                out = Some(m.create_instance(Cnt(0), ctx))
            });
            out.unwrap()
        };
        net.run_until(SimTime::from_millis(300));
        // A burst of increments from every machine.
        for i in 0..3u32 {
            for k in 0..10u64 {
                net.schedule_call(
                    SimTime::from_millis(300 + 5 * k + u64::from(i)),
                    MachineId::new(i),
                    move |m: &mut OneCopyMachine, ctx| {
                        m.issue(
                            SharedOp::primitive(obj, "add_capped", args![1, 100]),
                            None,
                            ctx,
                        );
                    },
                );
            }
        }
        net.run_until(SimTime::from_secs(5));
        for i in 0..3 {
            let m = net.actor(MachineId::new(i)).unwrap();
            assert_eq!(m.read::<Cnt, _>(obj, |c| c.0), Some(30), "machine {i}");
        }
        let digests: Vec<u64> = (0..3)
            .map(|i| net.actor(MachineId::new(i)).unwrap().digest())
            .collect();
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn completion_fires_with_commit_result() {
        use std::sync::atomic::{AtomicI32, Ordering};
        let seen = Arc::new(AtomicI32::new(-1));
        let mut net = cluster(2);
        let obj = {
            let mut out = None;
            net.call(MachineId::new(0), |m, ctx| {
                out = Some(m.create_instance(Cnt(0), ctx))
            });
            out.unwrap()
        };
        net.run_until(SimTime::from_millis(100));
        let s = seen.clone();
        net.call(MachineId::new(1), |m, ctx| {
            m.issue(
                SharedOp::primitive(obj, "add_capped", args![5, 2]),
                Some(Box::new(move |b| s.store(b as i32, Ordering::SeqCst))),
                ctx,
            );
        });
        net.run_until(SimTime::from_secs(1));
        assert_eq!(seen.load(Ordering::SeqCst), 0, "failed at commit");
    }
}
