//! Criterion microbenchmarks for the mechanisms the paper's design leans on:
//!
//! * `issue` — executing an operation against the guesstimated store (the
//!   cost of the non-blocking fast path).
//! * `atomic_overhead` — the per-object copy-on-write that gives `Atomic`
//!   its all-or-nothing semantics (§4), vs the same ops un-grouped.
//! * `store_copy` — the committed → guesstimated whole-store copy performed
//!   at the end of every synchronization (§9 lists large shared state as a
//!   limitation precisely because of this copy).
//! * `snapshot_digest` — canonical snapshot + digest of a Sudoku board
//!   (convergence checking).
//! * `sim_round` — one full synchronization round of a simulated 4-machine
//!   cluster (protocol + virtual network bookkeeping).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use guesstimate_apps::sudoku::{self, Sudoku};
use guesstimate_core::{
    args, execute, GState, MachineId, ObjectId, ObjectStore, OpRegistry, SharedOp,
};
use guesstimate_net::{LatencyModel, NetConfig, SimTime};
use guesstimate_runtime::{run_until_cohort, sim_cluster, MachineConfig};

fn board_id(i: u64) -> ObjectId {
    ObjectId::new(MachineId::new(0), i)
}

fn sudoku_registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    sudoku::register(&mut r);
    r
}

fn bench_issue(c: &mut Criterion) {
    let registry = sudoku_registry();
    c.bench_function("issue/sudoku_update_on_guess", |b| {
        b.iter_batched(
            || {
                let mut store = ObjectStore::new();
                store.insert(board_id(0), Box::new(sudoku::example_puzzle()));
                store
            },
            |mut store| {
                execute(
                    &sudoku::ops::update(board_id(0), 1, 3, 4),
                    &mut store,
                    &registry,
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_atomic_overhead(c: &mut Criterion) {
    let registry = sudoku_registry();
    let plain: Vec<SharedOp> = [(1u8, 3u8, 4u8), (1, 4, 6), (3, 1, 1), (2, 2, 2)]
        .iter()
        .map(|&(r, cc, v)| sudoku::ops::update(board_id(0), r, cc, v))
        .collect();
    let atomic = SharedOp::atomic(plain.clone());
    let mk_store = || {
        let mut store = ObjectStore::new();
        store.insert(board_id(0), Box::new(sudoku::example_puzzle()));
        store
    };
    let mut g = c.benchmark_group("atomic_overhead");
    g.bench_function("plain_4_updates", |b| {
        b.iter_batched(
            mk_store,
            |mut store| {
                for op in &plain {
                    execute(op, &mut store, &registry).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("atomic_4_updates_cow", |b| {
        b.iter_batched(
            mk_store,
            |mut store| execute(&atomic, &mut store, &registry).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_store_copy(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_copy");
    for n in [1usize, 8, 64] {
        let mut src = ObjectStore::new();
        for i in 0..n {
            src.insert(board_id(i as u64), Box::new(sudoku::example_puzzle()));
        }
        let mut dst = ObjectStore::new();
        dst.copy_from(&src);
        g.bench_function(format!("sc_to_sg_{n}_boards"), |b| {
            b.iter(|| dst.copy_from(&src))
        });
    }
    g.finish();
}

fn bench_snapshot_digest(c: &mut Criterion) {
    let board = sudoku::example_puzzle();
    c.bench_function("snapshot_digest/sudoku", |b| {
        b.iter(|| guesstimate_core::value_digest(&GState::snapshot(&board)))
    });
    c.bench_function("candidate_moves/sudoku", |b| {
        b.iter(|| board.candidate_moves().len())
    });
}

fn bench_sim_round(c: &mut Criterion) {
    c.bench_function("sim_round/4_machines_one_sync", |b| {
        b.iter_batched(
            || {
                let cfg = MachineConfig::default()
                    .with_sync_period(SimTime::from_millis(50))
                    .with_stall_timeout(SimTime::from_secs(2));
                let netcfg = NetConfig::lan(7).with_latency(LatencyModel::constant_ms(5));
                let mut net = sim_cluster(4, sudoku_registry(), cfg, netcfg);
                assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));
                let board = net
                    .actor_mut(MachineId::new(0))
                    .unwrap()
                    .create_instance(sudoku::example_puzzle());
                let settle = net.now() + SimTime::from_secs(2);
                net.run_until(settle);
                for i in 0..4u32 {
                    let m = net.actor_mut(MachineId::new(i)).unwrap();
                    let mv = m
                        .read::<Sudoku, _>(board, |s| s.candidate_moves()[i as usize * 7])
                        .unwrap();
                    let _ = m.issue(SharedOp::primitive(
                        board,
                        "update",
                        args![i64::from(mv.0), i64::from(mv.1), i64::from(mv.2)],
                    ));
                }
                net
            },
            |mut net| {
                let t = net.now() + SimTime::from_millis(200);
                net.run_until(t);
                net.actor(MachineId::new(0)).unwrap().completed_len()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_issue,
    bench_atomic_overhead,
    bench_store_copy,
    bench_snapshot_digest,
    bench_sim_round
);
criterion_main!(benches);
