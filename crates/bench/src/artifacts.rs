//! Metrics and trace artifact writing shared by the bench binaries.
//!
//! Every instrumented run drops four files next to the JSONL protocol
//! trace: a Prometheus text snapshot (`<stem>.prom`), the same metrics
//! rendered as JSON (`<stem>.json`), a Chrome trace-format timeline
//! (`<stem>_chrome.json`) that `chrome://tracing` or Perfetto opens
//! directly, and the per-op span artifact (`<stem>_spans.jsonl`) the
//! `obs` report binary joins against the trace. See
//! `docs/OBSERVABILITY.md` for the worked example.
//!
//! Path resolution (the `GUESSTIMATE_TRACE` / `GUESSTIMATE_METRICS`
//! environment variables and their documented precedence) lives in
//! [`guesstimate_obs::env`]; [`metrics_stem`] and [`trace_path`] are
//! re-exported from there so older call sites keep working.

use std::io;
use std::path::{Path, PathBuf};

pub use guesstimate_obs::env::{metrics_stem, trace_path};

use guesstimate_net::TraceRecord;
use guesstimate_telemetry::Telemetry;

/// Writes the four metrics artifacts for one instrumented run and
/// returns their paths in `[prometheus, json, chrome_trace, spans]`
/// order.
pub fn write_metrics_artifacts(
    telemetry: &Telemetry,
    records: &[TraceRecord],
    stem: &Path,
) -> io::Result<[PathBuf; 4]> {
    if let Some(parent) = stem.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let spans_path = guesstimate_obs::env::spans_path(stem);
    let stem = stem.to_string_lossy();
    let paths = [
        PathBuf::from(format!("{stem}.prom")),
        PathBuf::from(format!("{stem}.json")),
        PathBuf::from(format!("{stem}_chrome.json")),
        spans_path,
    ];
    std::fs::write(&paths[0], telemetry.render_prometheus())?;
    std::fs::write(&paths[1], telemetry.render_json())?;
    std::fs::write(&paths[2], telemetry.render_chrome_trace(records))?;
    let mut spans = String::new();
    for s in telemetry.spans() {
        spans.push_str(&s.to_json_line());
        spans.push('\n');
    }
    std::fs::write(&paths[3], spans)?;
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_all_four_artifacts() {
        let dir =
            std::env::temp_dir().join(format!("guesstimate-artifacts-{}", std::process::id()));
        let telemetry = Telemetry::new();
        telemetry.mc_schedule();
        telemetry.op_issued(
            guesstimate_core::OpId::new(guesstimate_core::MachineId::new(1), 0),
            Some(guesstimate_net::SimTime::from_millis(5)),
        );
        let paths = write_metrics_artifacts(&telemetry, &[], &dir.join("smoke"))
            .expect("artifacts written");
        for p in &paths[..3] {
            let text = std::fs::read_to_string(p).expect("artifact readable");
            assert!(!text.is_empty(), "{} should not be empty", p.display());
        }
        assert!(paths[0].to_string_lossy().ends_with(".prom"));
        assert!(paths[2].to_string_lossy().ends_with("_chrome.json"));
        assert!(paths[3].to_string_lossy().ends_with("_spans.jsonl"));
        let spans = std::fs::read_to_string(&paths[3]).unwrap();
        assert_eq!(spans.lines().count(), 1, "one span line per tracked op");
        assert!(spans.contains("\"machine\":1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stem_defaults_under_target() {
        // Only exercise the default branch: mutating the environment is
        // not safe under the parallel test harness.
        if std::env::var_os("GUESSTIMATE_METRICS").is_none() {
            assert_eq!(metrics_stem("x"), PathBuf::from("target").join("x"));
        }
    }
}
