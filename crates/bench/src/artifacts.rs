//! Metrics and trace artifact writing shared by the bench binaries.
//!
//! Every instrumented run drops three files next to the JSONL protocol
//! trace: a Prometheus text snapshot (`<stem>.prom`), the same metrics
//! rendered as JSON (`<stem>.json`), and a Chrome trace-format timeline
//! (`<stem>_chrome.json`) that `chrome://tracing` or Perfetto opens
//! directly. See `docs/OBSERVABILITY.md` for the worked example.

use std::io;
use std::path::{Path, PathBuf};

use guesstimate_net::TraceRecord;
use guesstimate_telemetry::Telemetry;

/// Resolves the metrics artifact stem: the `GUESSTIMATE_METRICS`
/// environment variable overrides it wholesale, otherwise
/// `target/<default_stem>`. [`write_metrics_artifacts`] extends the stem
/// with `.prom`, `.json`, and `_chrome.json`.
pub fn metrics_stem(default_stem: &str) -> PathBuf {
    std::env::var_os("GUESSTIMATE_METRICS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join(default_stem))
}

/// Writes the three metrics artifacts for one instrumented run and
/// returns their paths in `[prometheus, json, chrome_trace]` order.
pub fn write_metrics_artifacts(
    telemetry: &Telemetry,
    records: &[TraceRecord],
    stem: &Path,
) -> io::Result<[PathBuf; 3]> {
    if let Some(parent) = stem.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let stem = stem.to_string_lossy();
    let paths = [
        PathBuf::from(format!("{stem}.prom")),
        PathBuf::from(format!("{stem}.json")),
        PathBuf::from(format!("{stem}_chrome.json")),
    ];
    std::fs::write(&paths[0], telemetry.render_prometheus())?;
    std::fs::write(&paths[1], telemetry.render_json())?;
    std::fs::write(&paths[2], telemetry.render_chrome_trace(records))?;
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_all_three_artifacts() {
        let dir =
            std::env::temp_dir().join(format!("guesstimate-artifacts-{}", std::process::id()));
        let telemetry = Telemetry::new();
        telemetry.mc_schedule();
        let paths = write_metrics_artifacts(&telemetry, &[], &dir.join("smoke"))
            .expect("artifacts written");
        for p in &paths {
            let text = std::fs::read_to_string(p).expect("artifact readable");
            assert!(!text.is_empty(), "{} should not be empty", p.display());
        }
        assert!(paths[0].to_string_lossy().ends_with(".prom"));
        assert!(paths[2].to_string_lossy().ends_with("_chrome.json"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stem_defaults_under_target() {
        // Only exercise the default branch: mutating the environment is
        // not safe under the parallel test harness.
        if std::env::var_os("GUESSTIMATE_METRICS").is_none() {
            assert_eq!(metrics_stem("x"), PathBuf::from("target").join("x"));
        }
    }
}
