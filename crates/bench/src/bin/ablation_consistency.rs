//! The §1 consistency–performance spectrum, measured.
//!
//! "On the one extreme, we have one copy serializability ... inherently
//! slow. The other extreme is replicated execution ... very high
//! performance, but there is no consistency between the states of the
//! various machines." GUESSTIMATE sits in between: immediate local
//! visibility *and* eventual agreement. This binary runs one identical
//! Sudoku workload under all three models.
//!
//! Usage: `ablation_consistency [users] [seed]` (defaults: 4, 23).

use guesstimate_bench::run_consistency_spectrum;

fn main() {
    let mut args = std::env::args().skip(1);
    let users: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(23);
    eprintln!("running consistency spectrum: {users} users, seed {seed} ...");
    let rows = run_consistency_spectrum(seed, users);

    println!("# Consistency spectrum (§1) under an identical workload");
    println!(
        "{:<22} {:>16} {:>18} {:>13}",
        "model", "distinct_states", "visibility_ms", "ops_accepted"
    );
    for r in &rows {
        println!(
            "{:<22} {:>16} {:>18.1} {:>13}",
            r.model,
            r.distinct_states,
            r.visibility.as_millis_f64(),
            r.ops_accepted
        );
    }
    println!();
    println!("# replicated-execution: instant but divergent (distinct_states = users);");
    println!("# guesstimate: instant AND convergent (distinct_states = 1);");
    println!("# one-copy: convergent but the issuer blocks a round trip per op.");
    assert_eq!(rows[0].distinct_states, users as usize);
    assert_eq!(rows[1].distinct_states, 1);
    assert_eq!(rows[2].distinct_states, 1);
}
