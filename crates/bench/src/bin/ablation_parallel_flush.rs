//! Ablation A1: parallel first stage (§9 "Scalable run-time").
//!
//! The paper: "the time for synchronization increases linearly with number
//! of users. This can be attributed to the serial nature of the first stage
//! (AddUpdatesToMesh) ... One possibility is to parallelize the first stage
//! of the synchronization protocol so that the time taken depends only on
//! the number of operations and the network delay but not on the number of
//! users." This ablation runs the same Figure 6 sweep with the parallel
//! flush enabled and shows the linear term collapse.
//!
//! Usage: `ablation_parallel_flush [duration_secs] [seed]` (defaults: 60, 7).

use guesstimate_bench::{ActivityLevel, SessionConfig};
use guesstimate_net::SimTime;

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let cutoff = SimTime::from_secs(12);

    eprintln!("running ablation A1: serial vs parallel flush, users 2..=8, {duration}s each ...");
    println!("# Ablation A1: serial (paper) vs parallel (future-work) first stage");
    println!("{:>5} {:>12} {:>14}", "users", "serial_ms", "parallel_ms");
    let mut serial = Vec::new();
    let mut parallel = Vec::new();
    for users in 2..=8u32 {
        let mut cfg = SessionConfig::paper_default(users, seed + u64::from(users));
        cfg.duration = SimTime::from_secs(duration);
        cfg.activity = ActivityLevel::Idle;
        let s = guesstimate_bench::experiments::run_session(&cfg)
            .mean_sync_excluding(cutoff)
            .expect("serial rounds");
        cfg.parallel_flush = true;
        let p = guesstimate_bench::experiments::run_session(&cfg)
            .mean_sync_excluding(cutoff)
            .expect("parallel rounds");
        println!(
            "{users:>5} {:>12.1} {:>14.1}",
            s.as_millis_f64(),
            p.as_millis_f64()
        );
        serial.push(s.as_millis_f64());
        parallel.push(p.as_millis_f64());
    }
    println!();
    let growth = |v: &[f64]| v.last().unwrap() / v.first().unwrap();
    println!(
        "# growth 2→8 users: serial {:.2}x, parallel {:.2}x",
        growth(&serial),
        growth(&parallel)
    );
    println!("# expected shape: serial grows ~linearly; parallel stays ~flat");
}
