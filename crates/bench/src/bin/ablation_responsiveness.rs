//! Ablation A2: responsiveness vs one-copy serializability (§1 tradeoff).
//!
//! GUESSTIMATE's pitch: "operations can be executed by any machine on its
//! guesstimated state without waiting for any communication with other
//! machines" — local visibility is immediate, while commitment happens in
//! the background. Under one-copy serializability the *same* operation is
//! invisible to its own issuer until a sequencer round trip completes.
//!
//! Usage: `ablation_responsiveness [seed]` (default 5).

use guesstimate_bench::run_responsiveness;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    eprintln!("running ablation A2: guesstimate vs one-copy, users 2/4/8, seed {seed} ...");
    let rows = run_responsiveness(seed, &[2, 4, 8]);

    println!("# Ablation A2: time until an issued operation becomes visible to its issuer");
    println!(
        "{:>5} {:>22} {:>22} {:>22}",
        "users", "guesstimate_local_ms", "guesstimate_commit_ms", "one_copy_visible_ms"
    );
    for r in &rows {
        println!(
            "{:>5} {:>22.1} {:>22.1} {:>22.1}",
            r.users,
            r.guess_visibility.as_millis_f64(),
            r.guess_commit.as_millis_f64(),
            r.one_copy_visibility.as_millis_f64()
        );
    }
    println!();
    println!("# GUESSTIMATE: effects are visible locally at issue time (0 ms, non-blocking);");
    println!("# commitment proceeds in the background at sync-round granularity.");
    println!("# One-copy: the user waits a full sequencer round trip before seeing anything.");
}
