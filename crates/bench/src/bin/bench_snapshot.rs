//! Telemetry smoke benchmark: a short fixed-seed Figure 5 run with the
//! full observability stack on, self-validated.
//!
//! Checks the invariants docs/OBSERVABILITY.md promises:
//!
//! 1. per-stage durations sum exactly to each round's duration;
//! 2. the commit-lag histogram holds one sample per committed operation;
//! 3. no operation executed more than 3 times (issue, replay, commit);
//! 4. a paired run with the no-op telemetry handle commits a
//!    byte-identical history (observational invisibility).
//!
//! 5. the hybrid commit path collapses commit lag for an all-commuting
//!    blind-counter workload by at least 5x against the serialized-round
//!    baseline (the PR-6 headline), written as a second summary.
//!
//! 6. a short paired run with apply-site witness checks on
//!    (`SessionConfig::witness_checks`: paranoid invariants plus
//!    access-witness read probing at every apply) produces a
//!    byte-identical committed digest and identical issue/commit counts —
//!    the witness layer observes, never perturbs.
//!
//! 7. the shard-partition analysis (docs/ANALYSIS.md "Shard plans")
//!    yields a balanced population: every app's derived plan routes its
//!    whole analysis-suite op population, only CarPool needs a
//!    cross-shard route, and the per-app shard-balance rows (shard
//!    count, per-shard op share, cross fraction) are written as a third
//!    summary.
//!
//! 8. the merged causal timeline of the fig5 run passes the strict
//!    happens-before check (every receive matches an earlier send, no
//!    stamp reuse), and the per-op lag waterfall attributes 100% of each
//!    committed op's lag to named stages that sum exactly — on the
//!    serialized path here and on the async path via a traced hybrid
//!    session; every re-execution event carries a cause tag, and a
//!    flight-recorder bundle built from the same run validates
//!    round-trip (the PR-9 causal-observability summary is written as a
//!    fourth summary, `BENCH_pr9.json` under CI).
//!
//! Usage: `bench_snapshot [duration_secs] [seed] [out_json] [hybrid_json]
//! [shards_json] [obs_json]` (defaults: 60, 42,
//! `target/bench_snapshot.json`, `target/bench_hybrid.json`,
//! `target/bench_shards.json`, `target/bench_obs.json`). Metrics
//! artifacts (Prometheus text, JSON, Chrome trace, op spans) go under the
//! `target/bench_snapshot_metrics` stem (override with
//! `GUESSTIMATE_METRICS=<stem>`). Any violated invariant exits non-zero.

use std::path::PathBuf;
use std::sync::Arc;

use guesstimate_bench::{
    metrics_stem, run_fig5, run_fig5_instrumented, run_hybrid_lag, run_hybrid_traced, write_jsonl,
    write_metrics_artifacts, HybridLagRow,
};
use guesstimate_net::{RecordingTracer, SimTime, Tracer};
use guesstimate_obs::{validate_postmortem, FlightRecorder};
use guesstimate_telemetry::Telemetry;

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let out_json = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("bench_snapshot.json"));
    let hybrid_json = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("bench_hybrid.json"));
    let shards_json = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("bench_shards.json"));
    let obs_json = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("bench_obs.json"));

    eprintln!("bench_snapshot: fig5 {duration}s, seed {seed}, telemetry on ...");
    let tracer = Arc::new(RecordingTracer::new());
    // Tee the same stream into a flight recorder so invariant 8 can
    // validate the postmortem bundle a crash would have produced.
    let recorder = Arc::new(FlightRecorder::default());
    let tee: Arc<dyn Tracer> = Arc::new(guesstimate_obs::TeeTracer::new(
        tracer.clone(),
        recorder.clone(),
    ));
    let telemetry = Telemetry::new();
    let instrumented = run_fig5_instrumented(
        seed,
        SimTime::from_secs(duration),
        Some(tee),
        telemetry.clone(),
    );

    let records = tracer.take();
    let stem = metrics_stem("bench_snapshot_metrics");
    let trace_path = PathBuf::from(format!("{}_trace.jsonl", stem.to_string_lossy()));
    if let Some(parent) = trace_path.parent() {
        std::fs::create_dir_all(parent).expect("create artifact dir");
    }
    write_jsonl(&trace_path, &records).expect("write trace");
    let artifact_paths =
        write_metrics_artifacts(&telemetry, &records, &stem).expect("write metrics artifacts");
    for p in &artifact_paths {
        eprintln!("wrote metrics artifact {}", p.display());
    }

    // Invariant 1: the three stage durations partition the round exactly.
    for s in &instrumented.sync_samples {
        let sum = s.flush_duration + s.apply_duration + s.completion_duration;
        assert_eq!(
            sum, s.duration,
            "round {}: stage durations {sum:?} != round duration {:?}",
            s.round, s.duration
        );
    }

    // Invariant 2: one commit-lag sample per committed operation, and the
    // span count agrees with the runtime's own commit tally.
    assert_eq!(
        telemetry.commit_lag_count(),
        telemetry.ops_committed(),
        "commit-lag histogram must hold exactly one sample per commit"
    );
    assert_eq!(
        telemetry.ops_committed(),
        instrumented.committed,
        "telemetry spans must agree with runtime commit stats"
    );

    // Invariant 3: the paper's bound — an op executes at most 3 times.
    assert!(
        telemetry.max_exec_count() <= 3,
        "op executed {} times, bound is 3",
        telemetry.max_exec_count()
    );
    assert_eq!(
        telemetry.exec_count_above(3),
        0,
        "exec-count histogram must have zero mass above 3"
    );

    // Invariant 4: observational invisibility — the same seed with the
    // no-op handle (and no tracer) commits a byte-identical history.
    eprintln!("bench_snapshot: paired run with no-op telemetry ...");
    let noop = run_fig5(seed, SimTime::from_secs(duration));
    assert!(instrumented.converged, "instrumented run must converge");
    assert!(noop.converged, "noop run must converge");
    assert_eq!(
        instrumented.committed_digest, noop.committed_digest,
        "telemetry must not perturb the committed history"
    );
    assert_eq!(instrumented.issued, noop.issued, "issue counts must match");
    assert_eq!(
        instrumented.committed, noop.committed,
        "commit counts must match"
    );

    // Invariant 6: witness invisibility — a short paired run with
    // paranoid + witness-read checks enabled reaches the exact same
    // observable outcome as the plain run. Short because witnessing
    // re-executes each apply once per uncovered path and the paranoid
    // invariant replays are quadratic in the pending queue.
    eprintln!("bench_snapshot: paired witnessed run ...");
    let witness_secs = SimTime::from_secs(15);
    let mut plain_cfg = guesstimate_bench::SessionConfig::paper_default(4, seed);
    plain_cfg.duration = witness_secs;
    let mut witness_cfg = plain_cfg.clone();
    witness_cfg.witness_checks = true;
    let plain = guesstimate_bench::run_session(&plain_cfg);
    let witnessed = guesstimate_bench::run_session(&witness_cfg);
    assert!(plain.converged, "plain run must converge");
    assert!(witnessed.converged, "witnessed run must converge");
    assert_eq!(
        plain.committed_digest, witnessed.committed_digest,
        "witnessing must not perturb the committed history"
    );
    assert_eq!(
        plain.issued, witnessed.issued,
        "witnessing must not change issue counts"
    );
    assert_eq!(
        plain.committed, witnessed.committed,
        "witnessing must not change commit counts"
    );

    let json = format!(
        "{{\n  \"bench\": \"bench_snapshot\",\n  \"seed\": {seed},\n  \"duration_secs\": {duration},\n  \"synchronizations\": {},\n  \"ops_issued\": {},\n  \"ops_committed\": {},\n  \"commit_lag_samples\": {},\n  \"max_exec_count\": {},\n  \"bytes_sent\": {},\n  \"bytes_delivered\": {},\n  \"trace_events\": {},\n  \"stage_sum_ok\": true,\n  \"invisibility_ok\": true,\n  \"witness_invisibility_ok\": true,\n  \"converged\": true\n}}\n",
        instrumented.sync_samples.len(),
        instrumented.issued,
        instrumented.committed,
        telemetry.commit_lag_count(),
        telemetry.max_exec_count(),
        instrumented.net.bytes_sent,
        instrumented.net.bytes_delivered,
        records.len(),
    );
    if let Some(parent) = out_json.parent() {
        std::fs::create_dir_all(parent).expect("create output dir");
    }
    std::fs::write(&out_json, &json).expect("write summary json");
    eprintln!("wrote summary to {}", out_json.display());

    // Invariant 5: the hybrid commit path's headline — an all-commuting
    // blind-counter workload commits at least 5x faster than under the
    // serialized-round baseline, on both bundled counter apps.
    eprintln!("bench_snapshot: hybrid commit-lag comparison ...");
    let rows = run_hybrid_lag(seed, 4, SimTime::from_secs(30));
    let mut ratios = Vec::new();
    for pair in rows.chunks(2) {
        let [ser, hy] = pair else {
            unreachable!("rows come in serialized/hybrid pairs")
        };
        assert!(
            ser.converged && hy.converged,
            "{}: both modes converge",
            ser.app
        );
        assert_eq!(ser.ops_async, 0, "{}: async path stays off", ser.app);
        assert!(hy.ops_async > 0, "{}: async path must engage", hy.app);
        let ratio =
            ser.mean_commit_lag.as_micros() as f64 / hy.mean_commit_lag.as_micros().max(1) as f64;
        assert!(
            ratio >= 5.0,
            "{}: serialized/hybrid commit-lag ratio {ratio:.1} < 5",
            ser.app
        );
        ratios.push((ser.app, ratio));
    }
    let row_json = |r: &HybridLagRow| {
        format!(
            "    {{\"app\": \"{}\", \"mode\": \"{}\", \"ops_committed\": {}, \"ops_async\": {}, \"mean_commit_lag_us\": {}, \"converged\": {}}}",
            r.app,
            r.mode,
            r.ops_committed,
            r.ops_async,
            r.mean_commit_lag.as_micros(),
            r.converged,
        )
    };
    let hybrid = format!(
        "{{\n  \"bench\": \"hybrid_commit_lag\",\n  \"seed\": {seed},\n  \"users\": 4,\n  \"duration_secs\": 30,\n  \"rows\": [\n{}\n  ],\n{},\n  \"lag_collapse_ok\": true\n}}\n",
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
        ratios
            .iter()
            .map(|(app, r)| format!("  \"lag_ratio_{app}\": {r:.1}"))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    if let Some(parent) = hybrid_json.parent() {
        std::fs::create_dir_all(parent).expect("create output dir");
    }
    std::fs::write(&hybrid_json, &hybrid).expect("write hybrid summary json");
    eprintln!("wrote hybrid summary to {}", hybrid_json.display());
    for (app, r) in &ratios {
        eprintln!("  {app}: commit-lag collapse {r:.1}x");
    }

    // Invariant 7: shard balance — every app's derived plan routes its
    // whole analysis-suite op population, and only CarPool (whose `board`
    // spans the vehicle and rider components) needs a cross-shard route.
    eprintln!("bench_snapshot: shard-balance summary ...");
    let rows = guesstimate_bench::shard_balance_rows();
    assert_eq!(rows.len(), 6, "one shard-balance row per bundled app");
    for r in &rows {
        assert!(r.total() > 0, "{}: empty op population", r.app);
        assert!(r.shard_count() >= 1, "{}: no local shard", r.app);
    }
    let crossing: Vec<&str> = rows
        .iter()
        .filter(|r| r.cross_ops() > 0)
        .map(|r| r.app.as_str())
        .collect();
    assert_eq!(
        crossing,
        ["CarPool"],
        "cross-shard routes must stay confined to CarPool"
    );
    let app_json = |r: &guesstimate_bench::ShardBalanceRow| {
        let per_shard = r
            .per_shard
            .iter()
            .map(|(s, n)| {
                format!(
                    "        {{\"shard\": \"{s}\", \"ops\": {n}, \"share\": {:.3}}}",
                    *n as f64 / r.total().max(1) as f64
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "    {{\"app\": \"{}\", \"shards\": {}, \"ops_total\": {}, \"cross_fraction\": {:.3}, \"max_share\": {:.3}, \"per_shard\": [\n{per_shard}\n    ]}}",
            r.app,
            r.shard_count(),
            r.total(),
            r.cross_fraction(),
            r.max_share(),
        )
    };
    let shards = format!(
        "{{\n  \"bench\": \"shard_balance\",\n  \"apps\": [\n{}\n  ],\n  \"cross_only_carpool_ok\": true\n}}\n",
        rows.iter().map(app_json).collect::<Vec<_>>().join(",\n"),
    );
    if let Some(parent) = shards_json.parent() {
        std::fs::create_dir_all(parent).expect("create output dir");
    }
    std::fs::write(&shards_json, &shards).expect("write shard-balance summary json");
    eprintln!("wrote shard-balance summary to {}", shards_json.display());
    print!("{}", guesstimate_bench::render_shard_balance(&rows));

    // Invariant 8: causal observability — strict happens-before on the
    // merged fig5 timeline, exact per-op lag attribution on both commit
    // paths, cause-tagged re-executions, and a postmortem bundle that
    // validates round-trip.
    eprintln!("bench_snapshot: causal timeline + lag attribution ...");
    let trace_text = std::fs::read_to_string(&trace_path).expect("read trace back");
    let spans_text =
        std::fs::read_to_string(guesstimate_obs::spans_path(&stem)).expect("read spans back");
    let report = guesstimate_obs::report::run(&trace_text, &spans_text).expect("obs report");
    assert!(
        report.hb.ok(),
        "strict happens-before must hold on the fig5 timeline: {:?}",
        report.hb
    );
    assert!(
        report.waterfall.verify_exact_sum(),
        "per-op lag stages must sum exactly to each op's total lag"
    );
    let serialized_ops = report
        .waterfall
        .ops
        .iter()
        .filter(|o| o.path == "serialized")
        .count();
    assert!(serialized_ops > 0, "fig5 exercises the serialized path");
    let lines: Vec<guesstimate_obs::TraceLine> = trace_text
        .lines()
        .map(|l| guesstimate_obs::TraceLine::parse(l).expect("trace line"))
        .collect();
    let reexecs: Vec<_> = lines.iter().filter(|l| l.event == "reexecuted").collect();
    assert!(
        reexecs.iter().all(|l| l.cause.is_some()),
        "every re-execution must carry a cause tag"
    );
    let report_json = guesstimate_obs::to_json(&report);
    guesstimate_analysis::json::Json::parse(&report_json).expect("obs report JSON parses");

    // The async commit path decomposes exactly too: a traced hybrid
    // blind-counter session, same pipeline.
    eprintln!("bench_snapshot: traced hybrid session (async-path attribution) ...");
    let (hy_row, hy_records, hy_telemetry) = run_hybrid_traced(seed, 4, SimTime::from_secs(20));
    assert!(hy_row.converged, "hybrid session must converge");
    assert!(
        hy_row.ops_async > 0,
        "hybrid session engages the async path"
    );
    let hy_trace: String = hy_records
        .iter()
        .map(|r| guesstimate_obs::record_to_json(r) + "\n")
        .collect();
    let hy_spans: String = hy_telemetry
        .spans()
        .iter()
        .map(|s| s.to_json_line() + "\n")
        .collect();
    let hy_report = guesstimate_obs::report::run(&hy_trace, &hy_spans).expect("hybrid obs report");
    assert!(
        hy_report.hb.ok(),
        "strict happens-before must hold on the hybrid timeline: {:?}",
        hy_report.hb
    );
    assert!(
        hy_report.waterfall.verify_exact_sum(),
        "async-path lag stages must sum exactly"
    );
    let async_ops = hy_report
        .waterfall
        .ops
        .iter()
        .filter(|o| o.path == "async")
        .count();
    assert!(async_ops > 0, "waterfall must attribute async-path ops");

    // The flight recorder that shadowed the fig5 run produces a bundle
    // the validator accepts (re-parses every event, re-runs the
    // happens-before check, cross-checks the embedded verdict).
    let bundle = recorder.dump_json("bench_snapshot self-check", &[]);
    let pm = validate_postmortem(&bundle).expect("postmortem bundle validates");
    assert!(pm.hb_ok, "postmortem window must be causally consistent");
    assert!(pm.events > 0, "postmortem carries recent events");

    let reexec_rows = report
        .waterfall
        .reexec
        .iter()
        .map(|(cause, t)| {
            format!(
                "    {{\"cause\": \"{cause}\", \"events\": {}, \"ops\": {}}}",
                t.events, t.ops
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let obs_summary = format!(
        "{{\n  \"bench\": \"causal_observability\",\n  \"seed\": {seed},\n  \"duration_secs\": {duration},\n  \"trace_events\": {},\n  \"hb_sends\": {},\n  \"hb_receives\": {},\n  \"hb_matched\": {},\n  \"hb_unreceived\": {},\n  \"ops_attributed_serialized\": {serialized_ops},\n  \"ops_attributed_async\": {async_ops},\n  \"ops_excluded_untimed\": {},\n  \"reexec_events\": {},\n  \"reexec_causes\": [\n{reexec_rows}\n  ],\n  \"postmortem_events\": {},\n  \"hb_ok\": true,\n  \"exact_sum_ok\": true,\n  \"async_exact_sum_ok\": true,\n  \"reexec_caused_ok\": true,\n  \"postmortem_ok\": true\n}}\n",
        report.events,
        report.hb.sends,
        report.hb.receives,
        report.hb.matched,
        report.hb.unreceived,
        report.waterfall.excluded_untimed,
        reexecs.len(),
        pm.events,
    );
    if let Some(parent) = obs_json.parent() {
        std::fs::create_dir_all(parent).expect("create output dir");
    }
    std::fs::write(&obs_json, &obs_summary).expect("write obs summary json");
    eprintln!(
        "wrote causal-observability summary to {}",
        obs_json.display()
    );

    println!("bench_snapshot: all telemetry invariants hold");
}
