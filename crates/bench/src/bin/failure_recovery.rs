//! §7 "Failure and recovery": the narrative experiment.
//!
//! Paper: "During the one hour period ... GUESSTIMATE encountered three
//! failures, once when one of the machines was restarted while the
//! application was running, and twice when the synchronization was stalled
//! possibly because a message was lost in transmission. GUESSTIMATE
//! recovered in all three cases automatically ... and none of the other
//! users were even aware of the failure."
//!
//! We inject two machine stalls plus background message loss, and report
//! what recovery did — and that the survivors' states stayed consistent and
//! the system kept committing throughout.
//!
//! Usage: `failure_recovery [duration_secs] [seed]` (defaults: 600, 13).
//!
//! A full per-event protocol trace is written as JSON lines to
//! `target/failure_recovery_trace.jsonl` (override with
//! `GUESSTIMATE_TRACE=<path>`); the recovery rounds' timelines are printed
//! so each resend/removal can be followed through the three stages.
//! Metrics snapshots (Prometheus text, JSON, Chrome trace) land under the
//! `target/failure_recovery_metrics` stem (override with
//! `GUESSTIMATE_METRICS=<stem>`); see docs/OBSERVABILITY.md.

use std::path::PathBuf;
use std::sync::Arc;

use guesstimate_bench::experiments::{run_session_instrumented, ActivityLevel, SessionConfig};
use guesstimate_bench::{
    metrics_stem, render_timelines, summarize_rounds, trace_path, write_jsonl,
    write_metrics_artifacts,
};
use guesstimate_core::MachineId;
use guesstimate_net::{FaultPlan, RecordingTracer, SimTime, StallWindow, Tracer};
use guesstimate_obs::{FlightRecorder, TeeTracer};
use guesstimate_telemetry::Telemetry;

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(600);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(13);

    let mut cfg = SessionConfig::paper_default(6, seed);
    cfg.duration = SimTime::from_secs(duration);
    cfg.stall_timeout = SimTime::from_secs(4);
    cfg.activity = ActivityLevel::Active {
        mean_think: SimTime::from_secs(1),
    };
    let third = SimTime::from_secs(duration / 3);
    cfg.faults = FaultPlan::new()
        .with_drop_prob(0.002)
        .with_stall(StallWindow::new(
            MachineId::new(2),
            third,
            third + SimTime::from_secs(20),
        ))
        .with_stall(StallWindow::new(
            MachineId::new(4),
            third + third,
            third + third + SimTime::from_secs(20),
        ));

    eprintln!("running failure/recovery session: 6 users, {duration}s, 2 stalls + 0.2% loss ...");
    let tracer = Arc::new(RecordingTracer::new());
    let recorder = Arc::new(FlightRecorder::default());
    let postmortem = PathBuf::from(format!(
        "{}_postmortem.json",
        metrics_stem("failure_recovery_metrics").to_string_lossy()
    ));
    FlightRecorder::install_panic_dump(recorder.clone(), postmortem);
    let tee: Arc<dyn Tracer> = Arc::new(TeeTracer::new(tracer.clone(), recorder));
    let telemetry = Telemetry::new();
    let r = run_session_instrumented(&cfg, Some(tee), telemetry.clone());

    let records = tracer.take();
    let path = trace_path("failure_recovery_trace.jsonl");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match write_jsonl(&path, &records) {
        Ok(()) => eprintln!("wrote {} trace events to {}", records.len(), path.display()),
        Err(e) => eprintln!("could not write trace to {}: {e}", path.display()),
    }
    let stem = metrics_stem("failure_recovery_metrics");
    match write_metrics_artifacts(&telemetry, &records, &stem) {
        Ok(paths) => {
            for p in &paths {
                eprintln!("wrote metrics artifact {}", p.display());
            }
        }
        Err(e) => eprintln!("could not write metrics to {}*: {e}", stem.display()),
    }

    let resends: u64 = r.sync_samples.iter().map(|s| s.resends).sum();
    let removals: u64 = r.sync_samples.iter().map(|s| s.removals).sum();
    let recovered_rounds = r.sync_samples.iter().filter(|s| s.recovered()).count();
    let restarts: u64 = r.per_machine.iter().map(|s| s.restarts).sum();
    let lost: u64 = r.per_machine.iter().map(|s| s.ops_lost_to_restart).sum();

    println!("# Failure and recovery (cf. §7 narrative)");
    println!("injected faults          : 2 machine stalls (20s each), 0.2% message loss");
    println!("synchronizations         : {}", r.sync_samples.len());
    println!("rounds needing recovery  : {recovered_rounds}");
    println!("recovery resends         : {resends}");
    println!("machines removed/restarted: {removals} removals, {restarts} restarts");
    println!("pending ops lost to restart: {lost}");
    println!("ops issued/committed     : {}/{}", r.issued, r.committed);
    println!(
        "bytes sent/delivered     : {}/{}",
        r.net.bytes_sent, r.net.bytes_delivered
    );
    println!(
        "max executions per op    : {}  [paper bound: 3]",
        telemetry.max_exec_count()
    );
    println!("survivors converged      : {}", r.converged);
    println!();
    println!("# expected shape: a handful of recovery rounds, every stalled machine");
    println!("# automatically restarted and re-admitted, and the remaining users'");
    println!("# committed states identical at the end — they never noticed.");

    // Stage-level timelines of exactly the rounds recovery touched.
    let recovery: Vec<_> = summarize_rounds(&records)
        .into_iter()
        .filter(|t| t.resends > 0 || t.removals > 0)
        .collect();
    println!();
    println!(
        "# recovery-round timelines ({} rounds; full trace: {}):",
        recovery.len(),
        path.display()
    );
    print!("{}", render_timelines(&recovery));
    assert!(r.converged, "survivors must converge");
}
