//! Figure 5: distribution of time taken for synchronization.
//!
//! Paper setup: "a long run of the application involving 8 users solving 2
//! Sudoku grids"; most synchronizations complete within 0.5 s; 2 outliers
//! above 12 s correspond to stalled synchronizations that needed fault
//! recovery.
//!
//! Usage: `fig5_sync_distribution [duration_secs] [seed]`
//! (defaults: 3600 s — the paper's one hour — and seed 42).
//!
//! A full per-event protocol trace is written as JSON lines to
//! `target/fig5_trace.jsonl` (override with `GUESSTIMATE_TRACE=<path>`), and
//! the slowest rounds' per-stage timelines are printed for triage. Metrics
//! snapshots (Prometheus text, JSON, Chrome trace) land next to it under the
//! `target/fig5_metrics` stem (override with `GUESSTIMATE_METRICS=<stem>`);
//! see docs/OBSERVABILITY.md.

use std::path::PathBuf;
use std::sync::Arc;

use guesstimate_bench::{
    histogram, metrics_stem, render_timelines, run_fig5_instrumented, summarize_rounds, trace_path,
    write_jsonl, write_metrics_artifacts,
};
use guesstimate_net::{RecordingTracer, SimTime, Tracer};
use guesstimate_obs::{FlightRecorder, TeeTracer};
use guesstimate_telemetry::Telemetry;

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3_600);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    eprintln!("running fig5: 8 users, 2 grids, {duration}s virtual, seed {seed} ...");
    let tracer = Arc::new(RecordingTracer::new());
    // The flight recorder keeps a bounded ring of recent events; if this
    // binary panics mid-run, a postmortem bundle lands next to the
    // metrics artifacts instead of losing the whole session.
    let recorder = Arc::new(FlightRecorder::default());
    let postmortem = PathBuf::from(format!(
        "{}_postmortem.json",
        metrics_stem("fig5_metrics").to_string_lossy()
    ));
    FlightRecorder::install_panic_dump(recorder.clone(), postmortem);
    let tee: Arc<dyn Tracer> = Arc::new(TeeTracer::new(tracer.clone(), recorder));
    let telemetry = Telemetry::new();
    let result = run_fig5_instrumented(
        seed,
        SimTime::from_secs(duration),
        Some(tee),
        telemetry.clone(),
    );

    let records = tracer.take();
    let path = trace_path("fig5_trace.jsonl");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match write_jsonl(&path, &records) {
        Ok(()) => eprintln!("wrote {} trace events to {}", records.len(), path.display()),
        Err(e) => eprintln!("could not write trace to {}: {e}", path.display()),
    }
    let stem = metrics_stem("fig5_metrics");
    match write_metrics_artifacts(&telemetry, &records, &stem) {
        Ok(paths) => {
            for p in &paths {
                eprintln!("wrote metrics artifact {}", p.display());
            }
        }
        Err(e) => eprintln!("could not write metrics to {}*: {e}", stem.display()),
    }

    println!("# Figure 5: distribution of time taken for synchronization");
    println!("# 8 users, 2 Sudoku grids, {duration}s, 2 injected stalls");
    println!("{:<16} {:>8}", "sync_time", "count");
    for b in histogram(&result.sync_samples) {
        let label = if b.lo >= SimTime::from_secs(12) {
            ">12s".to_owned()
        } else if b.hi.as_micros() <= 1_000_000 {
            format!("{}-{}ms", b.lo.as_millis(), b.hi.as_millis())
        } else {
            format!(
                "{}-{}s",
                b.lo.as_micros() / 1_000_000,
                b.hi.as_micros() / 1_000_000
            )
        };
        println!("{label:<16} {:>8}", b.count);
    }

    let total = result.sync_samples.len();
    let mut sorted: Vec<u64> = result
        .sync_samples
        .iter()
        .map(|s| s.duration.as_micros())
        .collect();
    sorted.sort_unstable();
    let pct = |p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx] as f64 / 1_000.0
    };
    let sub_500ms = result
        .sync_samples
        .iter()
        .filter(|s| s.duration < SimTime::from_millis(500))
        .count();
    let outliers = result
        .sync_samples
        .iter()
        .filter(|s| s.duration > SimTime::from_secs(12))
        .count();
    println!();
    println!("# total synchronizations : {total}");
    println!(
        "# p50/p90/p99            : {:.1} / {:.1} / {:.1} ms",
        pct(0.50),
        pct(0.90),
        pct(0.99)
    );
    println!(
        "# within 0.5s            : {sub_500ms} ({:.1}%)  [paper: 'within 0.5 seconds most of the time']",
        100.0 * sub_500ms as f64 / total.max(1) as f64
    );
    println!("# outliers > 12s         : {outliers}  [paper: 2, both fault recoveries]");
    println!(
        "# recovery rounds        : {}",
        result.sync_samples.iter().filter(|s| s.recovered()).count()
    );
    println!("# machines restarted     : {}", result.machines_restarted);
    println!(
        "# ops issued/committed   : {}/{}",
        result.issued, result.committed
    );
    println!(
        "# replays run/skipped    : {}/{}  [commute-aware skipping, docs/ANALYSIS.md]",
        result.replays, result.replays_skipped
    );
    println!(
        "# bytes sent/delivered   : {}/{}  [structural wire-size model]",
        result.net.bytes_sent, result.net.bytes_delivered
    );
    println!(
        "# max executions per op  : {}  [paper bound: 3]",
        telemetry.max_exec_count()
    );
    println!(
        "# cross-routed commits   : {}  [guesstimate_cross_routes_total: only the board creations, which span every component; moves stay in-shard]",
        telemetry.cross_routes()
    );
    println!("# converged              : {}", result.converged);

    // Per-stage breakdown of the slowest rounds: the >12 s outliers should
    // show their time in stage 1 (flush stalled until recovery cleared it).
    let mut timelines = summarize_rounds(&records);
    timelines.sort_by_key(|t| std::cmp::Reverse(t.duration().unwrap_or(SimTime::ZERO)));
    timelines.truncate(10);
    timelines.sort_by_key(|t| t.round);
    println!();
    println!(
        "# slowest 10 rounds, per stage (full trace: {}):",
        path.display()
    );
    print!("{}", render_timelines(&timelines));

    // How the derived shard plans would spread each app's operation
    // population — the static counterpart of the figure's sync timings.
    println!();
    print!(
        "{}",
        guesstimate_bench::render_shard_balance(&guesstimate_bench::shard_balance_rows())
    );
}
