//! Figure 6: average time to synchronize vs. number of users.
//!
//! Paper observations: (1) presence or absence of user activity barely
//! changes sync time (network delay dominates); (2) sync time grows
//! linearly with the number of users (serial first stage).
//!
//! Usage: `fig6_sync_vs_users [duration_secs] [seed]` (defaults: 120, 7).
//!
//! The 8-user active session (the series' most contended point) is traced;
//! its JSON-lines trace goes to `target/fig6_trace.jsonl` (override with
//! `GUESSTIMATE_TRACE=<path>`) and its mean per-stage split is printed.
//! Metrics snapshots for the same session (Prometheus text, JSON, Chrome
//! trace) land under the `target/fig6_metrics` stem (override with
//! `GUESSTIMATE_METRICS=<stem>`); see docs/OBSERVABILITY.md.

use std::path::PathBuf;
use std::sync::Arc;

use guesstimate_bench::{
    metrics_stem, run_fig6_instrumented, summarize_rounds, trace_path, write_jsonl,
    write_metrics_artifacts,
};
use guesstimate_net::{RecordingTracer, SimTime, Tracer};
use guesstimate_obs::{FlightRecorder, TeeTracer};
use guesstimate_telemetry::Telemetry;

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    eprintln!("running fig6: users 2..=8 x {{active, idle}}, {duration}s each, seed {seed} ...");
    let tracer = Arc::new(RecordingTracer::new());
    let recorder = Arc::new(FlightRecorder::default());
    let postmortem = PathBuf::from(format!(
        "{}_postmortem.json",
        metrics_stem("fig6_metrics").to_string_lossy()
    ));
    FlightRecorder::install_panic_dump(recorder.clone(), postmortem);
    let tee: Arc<dyn Tracer> = Arc::new(TeeTracer::new(tracer.clone(), recorder));
    let telemetry = Telemetry::new();
    let rows = run_fig6_instrumented(
        seed,
        SimTime::from_secs(duration),
        Some(tee),
        telemetry.clone(),
    );

    let records = tracer.take();
    let path = trace_path("fig6_trace.jsonl");
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    match write_jsonl(&path, &records) {
        Ok(()) => eprintln!(
            "wrote {} trace events (8-user active session) to {}",
            records.len(),
            path.display()
        ),
        Err(e) => eprintln!("could not write trace to {}: {e}", path.display()),
    }
    let stem = metrics_stem("fig6_metrics");
    match write_metrics_artifacts(&telemetry, &records, &stem) {
        Ok(paths) => {
            for p in &paths {
                eprintln!("wrote metrics artifact {}", p.display());
            }
        }
        Err(e) => eprintln!("could not write metrics to {}*: {e}", stem.display()),
    }

    println!("# Figure 6: average time to synchronize vs number of users");
    println!("# (outliers > 12s excluded, as in the paper)");
    println!(
        "{:>5} {:>14} {:>14} {:>8} {:>12} {:>14} {:>12} {:>12}",
        "users",
        "active_ms",
        "idle_ms",
        "rounds",
        "replays",
        "replays_skip",
        "bytes_sent",
        "bytes_dlvd"
    );
    for r in &rows {
        println!(
            "{:>5} {:>14.1} {:>14.1} {:>8} {:>12} {:>14} {:>12} {:>12}",
            r.users,
            r.active.as_millis_f64(),
            r.idle.as_millis_f64(),
            r.rounds,
            r.replays,
            r.replays_skipped,
            r.bytes_sent,
            r.bytes_delivered
        );
    }

    // Shape checks the paper calls out.
    let first = rows.first().expect("rows");
    let last = rows.last().expect("rows");
    println!();
    println!(
        "# linearity: 8-user sync is {:.2}x the 2-user sync (serial stage 1)",
        last.active.as_millis_f64() / first.active.as_millis_f64()
    );
    let max_gap = rows
        .iter()
        .map(|r| (r.active.as_millis_f64() - r.idle.as_millis_f64()).abs())
        .fold(0.0f64, f64::max);
    println!("# activity effect: max |active - idle| = {max_gap:.1} ms (small: network-dominated)");
    // The paper's extrapolation: "even with 100 users the average time to
    // synchronize would be within 3 seconds".
    let per_user = (last.active.as_millis_f64() - first.active.as_millis_f64()) / 6.0;
    let at_100 = first.active.as_millis_f64() + per_user * 98.0;
    println!(
        "# extrapolation: ~{:.2} s at 100 users (paper: within 3 s)",
        at_100 / 1_000.0
    );

    // Mean per-stage split of the traced 8-user session: with a serial
    // stage 1, flush should dominate and be the part that grows with users.
    let timelines = summarize_rounds(&records);
    let mean_ms = |f: &dyn Fn(&guesstimate_bench::RoundTimeline) -> Option<SimTime>| {
        let vals: Vec<f64> = timelines
            .iter()
            .filter_map(f)
            .map(SimTime::as_millis_f64)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    println!(
        "# 8-user per-stage means : flush {:.1} ms, apply {:.1} ms, flag-spread {:.1} ms ({} rounds traced)",
        mean_ms(&|t| t.flush_duration()),
        mean_ms(&|t| t.apply_duration()),
        mean_ms(&|t| t.completion_spread()),
        timelines.len()
    );
    println!(
        "# cross-routed commits   : {}  [guesstimate_cross_routes_total, 8-user session: only the board creations, which span every component; moves stay in-shard]",
        telemetry.cross_routes()
    );

    // How the derived shard plans would spread each app's operation
    // population — the ceiling a future multi-group synchronizer could
    // exploit to make sync time sublinear in users.
    println!();
    print!(
        "{}",
        guesstimate_bench::render_shard_balance(&guesstimate_bench::shard_balance_rows())
    );
}
