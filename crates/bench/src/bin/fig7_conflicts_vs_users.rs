//! Figure 7: number of conflicts vs. number of users.
//!
//! A *conflict* is "an operation that succeeded on issue \[but\] failed at
//! commit time". Paper protocol: start small and add "a new user for every
//! 100 synchronizations performed by the runtime"; conflicts remain rare
//! even with 8 active users.
//!
//! Usage: `fig7_conflicts_vs_users [mean_think_ms] [seed]` (defaults: 1000, 11).

use guesstimate_bench::run_fig7;
use guesstimate_net::SimTime;

fn main() {
    let mut args = std::env::args().skip(1);
    let think_ms: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);

    eprintln!("running fig7: +1 user per 100 syncs, think {think_ms}ms, seed {seed} ...");
    let rows = run_fig7(seed, SimTime::from_millis(think_ms));

    println!("# Figure 7: number of conflicts vs number of users");
    println!("# one user added per 100 synchronizations (as in the paper)");
    println!(
        "{:>5} {:>7} {:>9} {:>10} {:>14}",
        "users", "syncs", "ops", "conflicts", "conflict_rate"
    );
    let mut total_conflicts = 0;
    let mut total_ops = 0;
    for r in &rows {
        println!(
            "{:>5} {:>7} {:>9} {:>10} {:>13.2}%",
            r.users,
            r.syncs,
            r.ops,
            r.conflicts,
            100.0 * r.conflicts as f64 / r.ops.max(1) as f64
        );
        total_conflicts += r.conflicts;
        total_ops += r.ops;
    }
    println!();
    println!(
        "# total: {total_conflicts} conflicts across {total_ops} committed ops ({:.2}%)",
        100.0 * total_conflicts as f64 / total_ops.max(1) as f64
    );
    println!("# paper: 'conflicts are very rare even [in] the presence of 8 active users'");
}
