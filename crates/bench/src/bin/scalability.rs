//! Scalability beyond the paper's testbed (§7/§9).
//!
//! The paper could only *extrapolate*: "even assuming a linear increase
//! guesstimate should easily scale to a 100 users as even with 100 users
//! the average time to synchronize would be within 3 seconds", and "To
//! scale it further we would have to parallelize the first stage". With a
//! simulated mesh we can simply run 100 machines and check both claims
//! directly, for the serial protocol and the parallel-flush variant.
//!
//! Usage: `scalability [duration_secs] [seed]` (defaults: 60, 7).

use guesstimate_bench::experiments::{run_session, ActivityLevel, SessionConfig};
use guesstimate_net::SimTime;

fn main() {
    let mut args = std::env::args().skip(1);
    let duration: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let cutoff = SimTime::from_secs(60);

    println!("# Scalability: mean sync time at cluster sizes the paper only extrapolated");
    println!(
        "{:>6} {:>12} {:>14} {:>8}",
        "users", "serial_ms", "parallel_ms", "rounds"
    );
    let mut serial_100 = 0.0;
    for users in [10u32, 25, 50, 100] {
        let mut cfg = SessionConfig::paper_default(users, seed + u64::from(users));
        cfg.duration = SimTime::from_secs(duration);
        cfg.activity = ActivityLevel::Idle;
        // Large cohorts need a gentler stall timeout than the default so a
        // slow (but healthy) serial round is never mistaken for a fault.
        cfg.stall_timeout = SimTime::from_secs(20);
        let serial = run_session(&cfg);
        let s = serial.mean_sync_excluding(cutoff).expect("rounds measured");
        cfg.parallel_flush = true;
        let parallel = run_session(&cfg);
        let p = parallel
            .mean_sync_excluding(cutoff)
            .expect("rounds measured");
        println!(
            "{users:>6} {:>12.1} {:>14.1} {:>8}",
            s.as_millis_f64(),
            p.as_millis_f64(),
            serial.sync_samples.len()
        );
        if users == 100 {
            serial_100 = s.as_secs_f64();
        }
    }
    println!();
    println!("# paper's extrapolation: 100 users 'within 3 seconds' — measured: {serial_100:.2} s");
    println!("# (matches the linear model: ~31 ms of one-way latency per serial flush turn;");
    println!("#  the absolute figure scales with the per-hop latency, 30 ms here)");
    println!("# parallel flush removes the linear term, as §9 anticipates.");
}
