//! Shard-scaling bench: aggregate committed throughput vs sync-group count.
//!
//! 8 nodes on a [`guesstimate_net::ThreadedNet`] (real threads, 1 ms links)
//! run the same CPU-weighted counter workload under G ∈ {1, 2, 4, 8} sync
//! groups with partitioned hosting ([`MultiClusterSpec::partitioned`]):
//! node `i` hosts exactly group `i % G`, so every operation is replicated
//! to — and executed by — only its group's `8 / G` members instead of the
//! whole cluster. The single delivery thread pays the cluster's total
//! apply work, so aggregate committed ops/s grows near-linearly with the
//! group count: the multi-group synchronizer's headline.
//!
//! Self-validated invariants, written to the summary JSON:
//!
//! 1. `ok_scaling` — committed ops/s is strictly monotone in the group
//!    count and the 4-group configuration sustains at least 2.5x the
//!    single-group baseline;
//! 2. `ok_stage_partition` — for every sync group, the per-group
//!    flush/apply/completion stage-duration sums partition that group's
//!    summed round durations (within 4 µs of truncation slack per round),
//!    and the group's commit-lag histogram holds one sample per committed
//!    operation.
//!
//! Usage: `shard_scaling [ops_per_node] [work] [seed] [out_json]`
//! (defaults: 200, 30000, 42, `target/bench_shard_scaling.json`; the
//! `bench-shards` just target publishes the summary as `BENCH_pr10.json`).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use guesstimate_core::{
    args, ComponentPlan, GState, ObjectId, OpRegistry, PathPattern, RestoreError, Routing,
    ShardPlan, SharedOp, TypePlan, Value,
};
use guesstimate_net::{LatencyModel, SimTime};
use guesstimate_runtime::multigroup::{multi_threaded_cluster, GroupTable, MultiClusterSpec};
use guesstimate_runtime::MachineConfig;
use guesstimate_telemetry::Telemetry;

const NODES: u32 = 8;
const FIELDS: [&str; NODES as usize] = ["c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"];
const METHODS: [&str; NODES as usize] = [
    "bump0", "bump1", "bump2", "bump3", "bump4", "bump5", "bump6", "bump7",
];

/// Eight independent counters; the shard plan splits them into `G`
/// components of `8 / G` fields each.
#[derive(Clone, Default, Debug)]
struct Cells {
    c: [i64; NODES as usize],
}

impl GState for Cells {
    const TYPE_NAME: &'static str = "Cells";
    fn snapshot(&self) -> Value {
        let mut m = BTreeMap::new();
        for (name, v) in FIELDS.iter().zip(self.c.iter()) {
            m.insert((*name).to_owned(), Value::from(*v));
        }
        Value::Map(m)
    }
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let Value::Map(m) = v else {
            return Err(RestoreError::shape("map"));
        };
        for (name, c) in FIELDS.iter().zip(self.c.iter_mut()) {
            *c = m.get(*name).and_then(Value::as_i64).unwrap_or(0);
        }
        Ok(())
    }
}

/// A deterministic CPU burn standing in for real application work, so the
/// delivery thread's apply cost — not message latency — dominates the run.
fn churn(mut x: i64, iters: u32) -> i64 {
    for _ in 0..iters {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x ^= x >> 29;
    }
    x
}

fn registry(work: u32) -> OpRegistry {
    let mut r = OpRegistry::new();
    r.register_type::<Cells>();
    for (i, name) in METHODS.iter().enumerate() {
        r.register_method::<Cells>(name, move |p: &mut Cells, a| {
            let Some(d) = a.i64(0) else { return false };
            // `black_box` forces the burn to actually run without letting
            // its result perturb the committed value (a pure counter).
            std::hint::black_box(churn(p.c[i] ^ d, work));
            p.c[i] += d;
            true
        });
    }
    r
}

/// `G` components over the eight fields: component `j` owns the fields
/// with index ≡ `j` (mod `G`), and `bump_i` routes to component `i % G`.
fn plan_for(groups: u32) -> Arc<ShardPlan> {
    let mut tp = TypePlan {
        components: (0..groups)
            .map(|j| ComponentPlan {
                prefixes: FIELDS
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i as u32 % groups == j)
                    .map(|(_, f)| PathPattern::parse(f).expect("field pattern"))
                    .collect(),
                keyed: false,
            })
            .collect(),
        routes: BTreeMap::new(),
    };
    for (i, m) in METHODS.iter().enumerate() {
        tp.routes.insert(
            (*m).to_owned(),
            Routing::Local {
                component: i as u32 % groups,
                key_arg: None,
            },
        );
    }
    let mut p = ShardPlan::new();
    p.types.insert("Cells".to_owned(), tp);
    Arc::new(p)
}

/// One configuration's measured result plus its per-group stage audit.
struct Row {
    groups: u32,
    ops: u64,
    elapsed: Duration,
    ops_per_sec: f64,
    rounds: u64,
    stage_partition_ok: bool,
}

fn wait_until(what: &str, deadline: Duration, mut done: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !done() {
        assert!(
            t0.elapsed() < deadline,
            "shard_scaling: timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn run_config(groups: u32, ops_per_node: u32, work: u32, seed: u64) -> Row {
    let plan = plan_for(groups);
    let table = Arc::new(GroupTable::from_plan(Arc::clone(&plan)));
    let spec = MultiClusterSpec::partitioned(NODES, Arc::clone(&table));
    // Every bump pair commutes (distinct methods touch disjoint fields;
    // a method with itself is a commutative add), so commute-aware replay
    // skipping keeps the guess rebuild out of the measurement: what's
    // left is exactly the per-member apply work the partition divides.
    let mut matrix = guesstimate_core::CommuteMatrix::new();
    for a in METHODS {
        for b in METHODS {
            matrix.insert("Cells", a, b);
        }
    }
    let cfg = MachineConfig::default()
        .with_sync_period(SimTime::from_millis(15))
        .with_stall_timeout(SimTime::from_secs(30))
        .with_join_retry(SimTime::from_millis(40))
        .with_commute_skip(true)
        .with_commute_matrix(matrix)
        .with_shard_plan(plan);
    let telemetry = Telemetry::new();
    let (_net, handles) = multi_threaded_cluster(
        &spec,
        Arc::new(registry(work)),
        cfg,
        LatencyModel::constant_ms(1),
        seed,
        telemetry.clone(),
    );

    wait_until("cluster join", Duration::from_secs(60), || {
        handles
            .iter()
            .all(|h| h.read(|mm| mm.all_joined()).unwrap_or(false))
    });

    // One shared object per group, created on the group's master (node
    // `g`); its creation commits through the group's own round, which is
    // how the other members learn the id.
    let objs: Vec<ObjectId> = (0..groups)
        .map(|g| {
            handles[g as usize]
                .with(|mm, ctx| mm.create_instance(Cells::default(), ctx))
                .expect("master alive")
        })
        .collect();
    wait_until("object creation commits", Duration::from_secs(60), || {
        handles
            .iter()
            .all(|h| h.read(|mm| mm.committed_total() >= 1).unwrap_or(false))
    });

    // The measured window: every node issues `ops_per_node` bumps of its
    // own field (routed to its hosted group), then the clock stops when
    // every node has committed its whole group's workload.
    let per_node_share = u64::from(NODES / groups) * u64::from(ops_per_node);
    let expected = 1 + per_node_share;
    let t0 = Instant::now();
    for n in 0..NODES {
        let g = n % groups;
        let obj = objs[g as usize];
        let method = METHODS[n as usize];
        let h = &handles[n as usize];
        for _ in 0..ops_per_node {
            h.with(|mm, ctx| {
                mm.issue(SharedOp::primitive(obj, method, args![1]), None, ctx)
                    .expect("routed issue");
            })
            .expect("node alive");
        }
    }
    wait_until("workload commit", Duration::from_secs(120), || {
        handles.iter().all(|h| {
            h.read(|mm| mm.committed_total() >= expected)
                .unwrap_or(false)
        })
    });
    let elapsed = t0.elapsed();

    // Result audit: the committed counters hold exactly the issued bumps.
    for n in 0..NODES {
        let g = n % groups;
        let got = handles[n as usize]
            .read(|mm| {
                mm.group(g)
                    .expect("hosted")
                    .read_committed::<Cells, _>(objs[g as usize], |c| c.c[n as usize])
            })
            .flatten();
        assert_eq!(
            got,
            Some(i64::from(ops_per_node)),
            "node {n}: field {} must hold its full bump count",
            FIELDS[n as usize]
        );
    }

    // Per-group stage audit over the run's telemetry: the three stage
    // sums partition each group's round-duration sum (up to 4 µs of
    // `as_micros` truncation per round), and the group's commit-lag
    // histogram holds one sample per committed op.
    let mut rounds = 0;
    let mut stage_partition_ok = true;
    for g in 0..groups {
        let label = table.label(g).to_owned();
        let s = telemetry
            .group_round_stats(&label)
            .unwrap_or_else(|| panic!("group {label} recorded no rounds"));
        assert!(s.rounds > 0, "group {label}: no rounds completed");
        assert!(
            s.ops_committed >= per_node_share,
            "group {label}: committed {} < workload {per_node_share}",
            s.ops_committed
        );
        let stage_sum = s.flush_us + s.apply_us + s.completion_us;
        let slack = 4 * s.rounds;
        let partitions = stage_sum <= s.duration_us + slack
            && s.duration_us <= stage_sum + slack
            && s.lag_samples == s.ops_committed;
        if !partitions {
            eprintln!(
                "group {label}: stage partition violated: flush {} + apply {} + completion {} \
                 vs duration {} over {} rounds ({} lag samples / {} commits)",
                s.flush_us,
                s.apply_us,
                s.completion_us,
                s.duration_us,
                s.rounds,
                s.lag_samples,
                s.ops_committed
            );
        }
        stage_partition_ok &= partitions;
        rounds += s.rounds;
    }

    let ops = u64::from(NODES) * u64::from(ops_per_node);
    let ops_per_sec = ops as f64 / elapsed.as_secs_f64();
    Row {
        groups,
        ops,
        elapsed,
        ops_per_sec,
        rounds,
        stage_partition_ok,
    }
}

fn main() {
    let mut cli = std::env::args().skip(1);
    let ops_per_node: u32 = cli.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let work: u32 = cli.next().and_then(|a| a.parse().ok()).unwrap_or(30_000);
    let seed: u64 = cli.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let out_json = cli
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("bench_shard_scaling.json"));

    eprintln!(
        "shard_scaling: {NODES} nodes, {ops_per_node} ops/node, work {work}, seed {seed} ..."
    );
    let rows: Vec<Row> = [1u32, 2, 4, 8]
        .iter()
        .map(|&g| {
            let r = run_config(g, ops_per_node, work, seed + u64::from(g));
            eprintln!(
                "  G={:<2} {:>6} ops in {:>8.1} ms -> {:>9.0} ops/s ({} rounds)",
                r.groups,
                r.ops,
                r.elapsed.as_secs_f64() * 1e3,
                r.ops_per_sec,
                r.rounds
            );
            r
        })
        .collect();

    let monotone = rows.windows(2).all(|w| w[1].ops_per_sec > w[0].ops_per_sec);
    let speedup_4x = rows[2].ops_per_sec / rows[0].ops_per_sec;
    let ok_scaling = monotone && speedup_4x >= 2.5;
    let ok_stage_partition = rows.iter().all(|r| r.stage_partition_ok);

    println!("# shard scaling: aggregate committed ops/s vs sync-group count");
    println!(
        "{:>7} {:>8} {:>12} {:>12} {:>8}",
        "groups", "ops", "elapsed_ms", "ops_per_sec", "rounds"
    );
    for r in &rows {
        println!(
            "{:>7} {:>8} {:>12.1} {:>12.0} {:>8}",
            r.groups,
            r.ops,
            r.elapsed.as_secs_f64() * 1e3,
            r.ops_per_sec,
            r.rounds
        );
    }
    println!("# 4-group speedup over single group: {speedup_4x:.2}x (gate: >= 2.5x)");
    println!("# monotone in group count: {monotone}");
    println!("# per-group stage partition: {ok_stage_partition}");

    let row_json = |r: &Row| {
        format!(
            "    {{\"groups\": {}, \"nodes\": {NODES}, \"ops\": {}, \"elapsed_ms\": {:.1}, \"ops_per_sec\": {:.0}, \"rounds\": {}}}",
            r.groups,
            r.ops,
            r.elapsed.as_secs_f64() * 1e3,
            r.ops_per_sec,
            r.rounds
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \"seed\": {seed},\n  \"ops_per_node\": {ops_per_node},\n  \"work\": {work},\n  \"rows\": [\n{}\n  ],\n  \"speedup_4_groups\": {speedup_4x:.2},\n  \"ok_scaling\": {ok_scaling},\n  \"ok_stage_partition\": {ok_stage_partition}\n}}\n",
        rows.iter().map(row_json).collect::<Vec<_>>().join(",\n"),
    );
    if let Some(parent) = out_json.parent() {
        std::fs::create_dir_all(parent).expect("create output dir");
    }
    std::fs::write(&out_json, &json).expect("write summary json");
    eprintln!("wrote summary to {}", out_json.display());

    assert!(
        ok_scaling,
        "aggregate throughput must scale with group count (monotone {monotone}, 4-group speedup {speedup_4x:.2}x)"
    );
    assert!(
        ok_stage_partition,
        "per-group stage durations must partition rounds"
    );
}
