//! The §6 specification table (Spec#/Boogie analog).
//!
//! Paper: "For our final version of Sudoku with contracts, Spec# generated
//! 323 assertions out of which boogie was able to verify 271 as correct
//! while the remaining 52 were translated into runtime checks." We generate
//! each application's assertion population from its contracts and classify
//! every assertion with the bounded-exhaustive verifier.
//!
//! Usage: `table_spec_assertions [seed] [--detail]` (default seed 42;
//! `--detail` additionally prints the per-method breakdown for Sudoku).

use guesstimate_bench::run_spec_table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let detail = args.iter().any(|a| a == "--detail");
    let seed: u64 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(42);
    eprintln!("classifying assertion populations for all six applications (seed {seed}) ...");
    let rows = run_spec_table(seed);

    println!("# Specification table: assertions per application");
    println!("# (paper, Sudoku only: 323 assertions = 271 verified + 52 runtime checks)");
    println!(
        "{:<14} {:>6} {:>9} {:>15} {:>8}",
        "app", "total", "verified", "runtime_checks", "refuted"
    );
    let (mut t, mut v, mut rc, mut rf) = (0, 0, 0, 0);
    for r in &rows {
        println!(
            "{:<14} {:>6} {:>9} {:>15} {:>8}",
            r.app, r.total, r.verified, r.runtime_checks, r.refuted
        );
        t += r.total;
        v += r.verified;
        rc += r.runtime_checks;
        rf += r.refuted;
    }
    println!("{:<14} {:>6} {:>9} {:>15} {:>8}", "TOTAL", t, v, rc, rf);
    println!();
    println!("# shape vs paper: a large assertion population, the majority discharged");
    println!("# statically (here: complete small-scope enumeration), the remainder kept");
    println!("# as runtime checks; zero refutations on the shipped implementations.");

    if detail {
        use guesstimate_apps::sudoku;
        use guesstimate_core::OpRegistry;
        use guesstimate_spec::verify_suite;
        let mut reg = OpRegistry::new();
        sudoku::register(&mut reg);
        let space = sudoku::sampled_states(4, seed);
        let report = verify_suite(&reg, &sudoku::spec_suite(), &space);
        println!();
        println!("# Sudoku per-method breakdown:");
        print!("{}", report.format_table());
    }
}
