//! Experiment drivers regenerating the paper's §7 evaluation.
//!
//! Every experiment runs under virtual time on the deterministic simulated
//! mesh, so identical seeds regenerate identical figures. The latency model
//! defaults to a LAN-like heavy-tailed distribution (the §7 testbed was a
//! LAN and "the dominant component of the time for synchronization is
//! network delay").

use std::sync::Arc;

use guesstimate_apps::sudoku;
use guesstimate_core::{MachineId, ObjectId, OpRegistry, ShardPlan};
use guesstimate_net::{
    FaultPlan, LatencyModel, NetConfig, NetMetrics, SimNet, SimTime, StallWindow, Tracer,
};
use guesstimate_runtime::{
    run_until_cohort, sim_cluster, sim_cluster_instrumented, Machine, MachineConfig, MachineStats,
    SyncSample,
};
use guesstimate_spec::{verify_suite, CaseSpace, Value};
use guesstimate_telemetry::Telemetry;

use crate::workload::{schedule_user, schedule_user_dynamic, Activity};

/// Whether simulated users are active during the measured window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivityLevel {
    /// No user activity ("absence of user activity", Figure 6).
    Idle,
    /// Users issue Sudoku moves with the given mean think time.
    Active {
        /// Mean think time between moves, per user.
        mean_think: SimTime,
    },
}

/// Configuration of one measured Sudoku session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of machines (machine 0 is the master and also a player).
    pub users: u32,
    /// Number of shared Sudoku grids.
    pub boards: usize,
    /// Length of the measured window.
    pub duration: SimTime,
    /// Master's inter-round delay.
    pub sync_period: SimTime,
    /// Master's stall timeout (recovery trigger).
    pub stall_timeout: SimTime,
    /// Link latency model.
    pub latency: LatencyModel,
    /// Fault schedule (stalls/drops), in *measured-window* coordinates:
    /// windows are shifted by the session's warm-up offset.
    pub faults: FaultPlan,
    /// User activity.
    pub activity: ActivityLevel,
    /// RNG seed.
    pub seed: u64,
    /// Ablation A1: parallel first stage.
    pub parallel_flush: bool,
    /// Commute-aware replay skipping (`docs/ANALYSIS.md`): elide the
    /// `sg = [P](sc)` rebuild when a round's foreign commits provably
    /// commute with every pending local operation.
    pub commute_skip: bool,
    /// Run every machine with `MachineConfig::paranoid_checks` **and**
    /// `witness_reads`: per-step invariant replays plus access-witness
    /// containment (read probing included) at every apply site. Purely
    /// diagnostic and far slower; `bench_snapshot` uses a short paired
    /// run to pin that witnessing never perturbs the measured protocol
    /// (byte-identical committed digest, issue and commit counts).
    pub witness_checks: bool,
}

impl SessionConfig {
    /// The paper-like default: LAN latency, 250 ms sync period, active
    /// users with a 2 s mean think time, 2 grids.
    pub fn paper_default(users: u32, seed: u64) -> Self {
        SessionConfig {
            users,
            boards: 2,
            duration: SimTime::from_secs(120),
            sync_period: SimTime::from_millis(250),
            stall_timeout: SimTime::from_secs(3),
            latency: LatencyModel::lan_ms(30),
            faults: FaultPlan::new(),
            activity: ActivityLevel::Active {
                mean_think: SimTime::from_secs(2),
            },
            seed,
            parallel_flush: false,
            commute_skip: false,
            witness_checks: false,
        }
    }
}

/// What a session produced.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Sync samples whose round started inside the measured window.
    pub sync_samples: Vec<SyncSample>,
    /// Per-machine stats at the end of the run.
    pub per_machine: Vec<MachineStats>,
    /// Total conflicts across machines.
    pub conflicts: u64,
    /// Total operations issued.
    pub issued: u64,
    /// Total own-operation commits.
    pub committed: u64,
    /// Machines restarted by recovery at least once.
    pub machines_restarted: usize,
    /// True if all in-cohort machines ended with identical committed state.
    pub converged: bool,
    /// The per-user event counts scheduled.
    pub events_scheduled: usize,
    /// Total pending replays executed while rebuilding `sg = [P](sc)`.
    pub replays: u64,
    /// Total replays elided by commute-aware skipping (zero unless
    /// [`SessionConfig::commute_skip`] is set).
    pub replays_skipped: u64,
    /// Transport counters for the whole run, including the structural
    /// byte accounting (`bytes_sent`/`bytes_delivered`).
    pub net: NetMetrics,
    /// Digest of the first in-cohort machine's committed history. When
    /// [`SessionResult::converged`] holds this is *the* cohort digest, so
    /// two runs of the same seed can be checked for byte-identical
    /// committed histories (e.g. the telemetry invisibility check).
    pub committed_digest: u64,
}

impl SessionResult {
    /// Mean sync duration, excluding recovery outliers above `cutoff`
    /// (Figure 6 "ignores the outliers (time > 12 seconds), as including
    /// them would skew the average away from the median").
    pub fn mean_sync_excluding(&self, cutoff: SimTime) -> Option<SimTime> {
        let kept: Vec<u64> = self
            .sync_samples
            .iter()
            .filter(|s| s.duration <= cutoff)
            .map(|s| s.duration.as_micros())
            .collect();
        if kept.is_empty() {
            return None;
        }
        Some(SimTime::from_micros(
            kept.iter().sum::<u64>() / kept.len() as u64,
        ))
    }
}

/// The Sudoku app's analysis-derived shard plan, computed once: installed
/// on every session machine so the shard-labeled commit counters — the
/// dedicated Cross-route counter included — are live during figure runs.
fn sudoku_shard_plan() -> Arc<ShardPlan> {
    static PLAN: std::sync::OnceLock<Arc<ShardPlan>> = std::sync::OnceLock::new();
    Arc::clone(PLAN.get_or_init(|| {
        let a = guesstimate_analysis::harness::analyze_sudoku();
        let mut plan = ShardPlan::new();
        plan.types
            .insert(a.report.type_name.clone(), a.derive_shard_plan());
        Arc::new(plan)
    }))
}

/// Runs one measured Sudoku session.
///
/// Timeline: cohort assembly (up to 30 s) → board creation + 2 s settle →
/// `duration` of measured activity → 10 s settle (so pending operations
/// commit and the convergence check is meaningful).
pub fn run_session(cfg: &SessionConfig) -> SessionResult {
    run_session_traced(cfg, None)
}

/// [`run_session`] with a protocol trace sink installed on every machine.
///
/// Every machine in the session emits [`guesstimate_net::TraceEvent`]s to
/// `tracer`; pass a [`guesstimate_net::RecordingTracer`] to post-process the
/// stream (see [`crate::trace`]) or a [`crate::trace::JsonlSink`] to stream
/// it to disk. `None` is equivalent to [`run_session`].
pub fn run_session_traced(cfg: &SessionConfig, tracer: Option<Arc<dyn Tracer>>) -> SessionResult {
    run_session_instrumented(cfg, tracer, Telemetry::noop())
}

/// [`run_session_traced`] with a shared [`Telemetry`] handle installed on
/// every machine and fed the driver's transport counters at the end.
///
/// Pass [`Telemetry::noop`] to get exactly [`run_session_traced`]; pass an
/// enabled handle and snapshot it afterwards
/// ([`Telemetry::render_prometheus`] / [`Telemetry::render_json`] /
/// [`Telemetry::render_chrome_trace`]) to get the run's metrics and per-op
/// spans alongside the figure data.
pub fn run_session_instrumented(
    cfg: &SessionConfig,
    tracer: Option<Arc<dyn Tracer>>,
    telemetry: Telemetry,
) -> SessionResult {
    let mut registry = OpRegistry::new();
    sudoku::register(&mut registry);
    let mcfg = MachineConfig::default()
        .with_sync_period(cfg.sync_period)
        .with_stall_timeout(cfg.stall_timeout)
        .with_join_retry(SimTime::from_millis(700))
        .with_parallel_flush(cfg.parallel_flush)
        .with_commute_skip(cfg.commute_skip)
        .with_paranoid_checks(cfg.witness_checks)
        .with_witness_reads(cfg.witness_checks)
        // Sudoku's analysis-derived shard plan rides along so the
        // per-shard and Cross-route commit counters are live (the fig5 /
        // fig6 footer rows); routing is note-and-count only, so the
        // committed history is untouched (the telemetry-invisibility
        // invariant pins this).
        .with_shard_plan(sudoku_shard_plan());

    // Session-long fault plan: shift stall windows into absolute time after
    // the warm-up (measured window starts around t=32 s below).
    let warmup = SimTime::from_secs(32);
    let mut faults = FaultPlan::new()
        .with_drop_prob(cfg.faults.drop_prob())
        .with_dup_prob(cfg.faults.dup_prob());
    for w in cfg.faults.stalls() {
        faults = faults.with_stall(StallWindow::new(
            w.machine,
            w.from + warmup,
            w.until + warmup,
        ));
    }

    let netcfg = NetConfig::lan(cfg.seed)
        .with_latency(cfg.latency.clone())
        .with_faults(faults);
    let mut net =
        sim_cluster_instrumented(cfg.users, registry, mcfg, netcfg, tracer, telemetry.clone());
    assert!(
        run_until_cohort(&mut net, SimTime::from_secs(30)),
        "cohort must assemble before the measured window"
    );

    // Master creates the shared grids.
    let boards: Vec<ObjectId> = {
        let master = net.actor_mut(MachineId::new(0)).expect("master");
        (0..cfg.boards)
            .map(|_| master.create_instance(sudoku::example_puzzle()))
            .collect()
    };
    net.run_until(warmup);

    let t0 = net.now();
    let t_end = t0 + cfg.duration;
    let mut events_scheduled = 0;
    if let ActivityLevel::Active { mean_think } = cfg.activity {
        for i in 0..cfg.users {
            events_scheduled += schedule_user(
                &mut net,
                MachineId::new(i),
                &boards,
                Activity {
                    mean_think,
                    seed: cfg.seed,
                },
                t0,
                t_end,
            );
        }
    }
    net.run_until(t_end + SimTime::from_secs(10));

    telemetry.record_net(&net.metrics());
    collect_result(&net, t0, t_end, events_scheduled)
}

fn collect_result(
    net: &SimNet<Machine>,
    t0: SimTime,
    t_end: SimTime,
    events_scheduled: usize,
) -> SessionResult {
    let ids = net.members();
    let per_machine: Vec<MachineStats> = ids
        .iter()
        .filter_map(|&i| net.actor(i).map(|m| m.stats().clone()))
        .collect();
    let master_stats = net
        .actor(MachineId::new(0))
        .expect("master alive")
        .stats()
        .clone();
    let sync_samples: Vec<SyncSample> = master_stats
        .sync_samples
        .iter()
        .filter(|s| s.started_at >= t0 && s.started_at < t_end)
        .copied()
        .collect();
    let in_cohort: Vec<MachineId> = ids
        .iter()
        .copied()
        .filter(|&i| net.actor(i).map(Machine::in_cohort).unwrap_or(false))
        .collect();
    let digests: Vec<u64> = in_cohort
        .iter()
        .map(|&i| net.actor(i).expect("listed").committed_digest())
        .collect();
    let converged = digests.windows(2).all(|w| w[0] == w[1])
        && in_cohort
            .iter()
            .all(|&i| net.actor(i).expect("listed").pending_len() == 0);
    SessionResult {
        conflicts: per_machine.iter().map(|s| s.conflicts).sum(),
        issued: per_machine.iter().map(|s| s.issued).sum(),
        committed: per_machine.iter().map(|s| s.committed_own).sum(),
        machines_restarted: per_machine.iter().filter(|s| s.restarts > 0).count(),
        replays: per_machine.iter().map(|s| s.replays).sum(),
        replays_skipped: per_machine.iter().map(|s| s.replays_skipped).sum(),
        per_machine,
        sync_samples,
        converged,
        events_scheduled,
        net: net.metrics(),
        committed_digest: digests.first().copied().unwrap_or(0),
    }
}

// ---------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------

/// One bucket of the Figure 5 histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramBucket {
    /// Inclusive lower bound.
    pub lo: SimTime,
    /// Exclusive upper bound (`SimTime::from_secs(u64::MAX)` for the tail).
    pub hi: SimTime,
    /// Number of synchronizations in the bucket.
    pub count: usize,
}

/// Buckets sync durations with the paper's resolution (100 ms bins up to
/// 1 s, then 1 s bins up to 12 s, then a `>12 s` outlier bucket).
pub fn histogram(samples: &[SyncSample]) -> Vec<HistogramBucket> {
    let mut edges: Vec<u64> = (0..10).map(|i| i * 100_000).collect(); // 0..1s by 100ms
    edges.extend((1..=12).map(|s| s * 1_000_000)); // 1s..12s by 1s
    let mut buckets: Vec<HistogramBucket> = edges
        .windows(2)
        .map(|w| HistogramBucket {
            lo: SimTime::from_micros(w[0]),
            hi: SimTime::from_micros(w[1]),
            count: 0,
        })
        .collect();
    buckets.push(HistogramBucket {
        lo: SimTime::from_secs(12),
        hi: SimTime::from_secs(u64::MAX / 2_000_000),
        count: 0,
    });
    for s in samples {
        let us = s.duration.as_micros();
        let idx = buckets
            .iter()
            .position(|b| us >= b.lo.as_micros() && us < b.hi.as_micros())
            .unwrap_or(buckets.len() - 1);
        buckets[idx].count += 1;
    }
    buckets
}

/// Figure 5: the sync-duration distribution of a long 8-user, 2-grid
/// session with two injected stalls (the paper's two >12 s outliers were
/// "the times when synchronization stalled and the master had to perform a
/// fault recovery").
pub fn run_fig5(seed: u64, duration: SimTime) -> SessionResult {
    run_fig5_traced(seed, duration, None)
}

/// [`run_fig5`] with a protocol trace sink installed on every machine.
pub fn run_fig5_traced(
    seed: u64,
    duration: SimTime,
    tracer: Option<Arc<dyn Tracer>>,
) -> SessionResult {
    run_fig5_instrumented(seed, duration, tracer, Telemetry::noop())
}

/// [`run_fig5_traced`] with a shared [`Telemetry`] handle (see
/// [`run_session_instrumented`]).
pub fn run_fig5_instrumented(
    seed: u64,
    duration: SimTime,
    tracer: Option<Arc<dyn Tracer>>,
    telemetry: Telemetry,
) -> SessionResult {
    let mut cfg = SessionConfig::paper_default(8, seed);
    cfg.duration = duration;
    // Commute-aware replay skipping stays observationally identical (the
    // refinement suite proves it) while exercising the optimization: most
    // Sudoku moves land on distinct cells and so commute.
    cfg.commute_skip = true;
    // Long stalls on two different machines, far apart; each blocks a round
    // until the master's two-step recovery (resend, then remove + restart)
    // clears it, producing the outlier and the removal.
    cfg.stall_timeout = SimTime::from_secs(6);
    let third = SimTime::from_micros(duration.as_micros() / 3);
    cfg.faults = FaultPlan::new()
        .with_stall(StallWindow::new(
            MachineId::new(3),
            third,
            third + SimTime::from_secs(30),
        ))
        .with_stall(StallWindow::new(
            MachineId::new(6),
            third + third,
            third + third + SimTime::from_secs(30),
        ));
    run_session_instrumented(&cfg, tracer, telemetry)
}

// ---------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------

/// One row of Figure 6.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Number of users.
    pub users: u32,
    /// Average sync time with user activity (outliers excluded).
    pub active: SimTime,
    /// Average sync time without user activity.
    pub idle: SimTime,
    /// Rounds measured (active run).
    pub rounds: usize,
    /// Pending replays executed in the active run.
    pub replays: u64,
    /// Replays elided by commute-aware skipping in the active run.
    pub replays_skipped: u64,
    /// Payload bytes sent in the active run (structural wire-size model).
    pub bytes_sent: u64,
    /// Payload bytes delivered in the active run.
    pub bytes_delivered: u64,
}

/// Figure 6: average synchronization time vs number of users (2–8), with
/// and without user activity. Expect a linear trend (serial stage 1) and
/// little difference between active and idle (network-delay dominated).
pub fn run_fig6(seed: u64, duration: SimTime) -> Vec<Fig6Row> {
    run_fig6_traced(seed, duration, None)
}

/// [`run_fig6`] with a protocol trace sink on the **8-user active** session
/// only — the series' most contended point, and the one whose per-stage
/// breakdown explains the linear trend (serial stage 1 grows with users).
pub fn run_fig6_traced(
    seed: u64,
    duration: SimTime,
    tracer: Option<Arc<dyn Tracer>>,
) -> Vec<Fig6Row> {
    run_fig6_instrumented(seed, duration, tracer, Telemetry::noop())
}

/// [`run_fig6_traced`] with a shared [`Telemetry`] handle on the same
/// 8-user active session the tracer observes (see
/// [`run_session_instrumented`]).
pub fn run_fig6_instrumented(
    seed: u64,
    duration: SimTime,
    tracer: Option<Arc<dyn Tracer>>,
    telemetry: Telemetry,
) -> Vec<Fig6Row> {
    let cutoff = SimTime::from_secs(12);
    (2..=8)
        .map(|users| {
            let mut active_cfg = SessionConfig::paper_default(users, seed + u64::from(users));
            active_cfg.duration = duration;
            active_cfg.commute_skip = true;
            let (session_tracer, session_telemetry) = if users == 8 {
                (tracer.clone(), telemetry.clone())
            } else {
                (None, Telemetry::noop())
            };
            let active = run_session_instrumented(&active_cfg, session_tracer, session_telemetry);
            let mut idle_cfg = active_cfg.clone();
            idle_cfg.activity = ActivityLevel::Idle;
            let idle = run_session(&idle_cfg);
            Fig6Row {
                users,
                active: active
                    .mean_sync_excluding(cutoff)
                    .expect("active rounds measured"),
                idle: idle
                    .mean_sync_excluding(cutoff)
                    .expect("idle rounds measured"),
                rounds: active.sync_samples.len(),
                replays: active.replays,
                replays_skipped: active.replays_skipped,
                bytes_sent: active.net.bytes_sent,
                bytes_delivered: active.net.bytes_delivered,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------

/// One row of Figure 7.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Number of active users during the segment.
    pub users: u32,
    /// Synchronizations in the segment (~100, as in the paper).
    pub syncs: u64,
    /// Operations committed during the segment.
    pub ops: u64,
    /// Conflicts observed during the segment.
    pub conflicts: u64,
}

/// Figure 7: conflicts vs number of users. "These measurements were made by
/// adding a new user for every 100 synchronizations performed by the
/// runtime" — we start with 2 users and admit one more after each 100
/// rounds, recording the conflict delta per segment.
pub fn run_fig7(seed: u64, mean_think: SimTime) -> Vec<Fig7Row> {
    let mut registry = OpRegistry::new();
    sudoku::register(&mut registry);
    let registry = std::sync::Arc::new(registry);
    let mcfg = MachineConfig::default()
        .with_sync_period(SimTime::from_millis(250))
        .with_stall_timeout(SimTime::from_secs(3))
        .with_join_retry(SimTime::from_millis(700));
    let netcfg = NetConfig::lan(seed).with_latency(LatencyModel::lan_ms(30));
    let mut net: SimNet<Machine> = SimNet::new(netcfg);
    net.add_machine(
        MachineId::new(0),
        Machine::new_master(MachineId::new(0), registry.clone(), mcfg.clone()),
    );
    net.add_machine(
        MachineId::new(1),
        Machine::new_member(MachineId::new(1), registry.clone(), mcfg.clone()),
    );
    assert!(run_until_cohort(&mut net, SimTime::from_secs(30)));

    // Initial grids; fresh ones are added every segment so legal moves
    // never run dry (the paper's volunteers likewise moved on to new grids).
    {
        let master = net.actor_mut(MachineId::new(0)).expect("master");
        for _ in 0..8 {
            master.create_instance(sudoku::example_puzzle());
        }
    }
    net.run_until(net.now() + SimTime::from_secs(2));

    let activity = |seed| Activity { mean_think, seed };
    // The measured horizon is generous; each segment ends at +100 syncs.
    let horizon = net.now() + SimTime::from_secs(3_600);
    let start = net.now();
    for i in 0..2u32 {
        schedule_user_dynamic(&mut net, MachineId::new(i), activity(seed), start, horizon);
    }

    let mut rows = Vec::new();
    let mut active_users: u32 = 2;
    let segment_base = |net: &SimNet<Machine>| {
        net.actor(MachineId::new(0))
            .expect("master")
            .stats()
            .syncs_seen
    };
    let conflicts_now = |net: &SimNet<Machine>| -> u64 {
        net.members()
            .iter()
            .filter_map(|&i| net.actor(i))
            .map(|m| m.stats().conflicts)
            .sum()
    };
    let ops_now = |net: &SimNet<Machine>| -> u64 {
        net.members()
            .iter()
            .filter_map(|&i| net.actor(i))
            .map(|m| m.stats().committed_own)
            .sum()
    };

    while active_users <= 8 {
        let base_syncs = segment_base(&net);
        let base_conflicts = conflicts_now(&net);
        let base_ops = ops_now(&net);
        // Run until 100 more syncs completed.
        while segment_base(&net) < base_syncs + 100 {
            let t = net.now() + SimTime::from_secs(1);
            net.run_until(t);
        }
        rows.push(Fig7Row {
            users: active_users,
            syncs: segment_base(&net) - base_syncs,
            ops: ops_now(&net) - base_ops,
            conflicts: conflicts_now(&net) - base_conflicts,
        });
        if active_users == 8 {
            break;
        }
        // Fresh grids for the next segment, then admit the next user and
        // give it a workload.
        {
            let master = net.actor_mut(MachineId::new(0)).expect("master");
            for _ in 0..6 {
                master.create_instance(sudoku::example_puzzle());
            }
        }
        let next = MachineId::new(active_users);
        net.add_machine(
            next,
            Machine::new_member(next, registry.clone(), mcfg.clone()),
        );
        let start = net.now() + SimTime::from_secs(3);
        schedule_user_dynamic(&mut net, next, activity(seed), start, horizon);
        active_users += 1;
    }
    rows
}

// ---------------------------------------------------------------------
// Spec table (§6)
// ---------------------------------------------------------------------

/// One row of the specification table.
#[derive(Debug, Clone)]
pub struct SpecTableRow {
    /// Application name.
    pub app: &'static str,
    /// Total assertions generated from the contracts.
    pub total: usize,
    /// Statically verified (complete enumeration, no counterexample).
    pub verified: usize,
    /// Left as runtime checks.
    pub runtime_checks: usize,
    /// Refuted (would be compile-time warnings in Spec#).
    pub refuted: usize,
}

/// The Spec#/Boogie table: classify every application's assertion
/// population. The paper reports, for Sudoku alone: "Spec# generated 323
/// assertions out of which boogie was able to verify 271 as correct while
/// the remaining 52 were translated into runtime checks."
pub fn run_spec_table(seed: u64) -> Vec<SpecTableRow> {
    let mut rows = Vec::new();

    // Sudoku: full argument enumeration over sampled board states.
    {
        let mut reg = OpRegistry::new();
        sudoku::register(&mut reg);
        let space = sudoku::sampled_states(4, seed);
        let report = verify_suite(&reg, &sudoku::spec_suite(), &space);
        rows.push(SpecTableRow {
            app: "Sudoku",
            total: report.total(),
            verified: report.verified(),
            runtime_checks: report.runtime_checks(),
            refuted: report.refuted(),
        });
    }

    // The other five applications use representative sampled state spaces.
    let small = |states: Vec<Value>| CaseSpace::sampled(states, 100_000);

    {
        use guesstimate_apps::event_planner as ep;
        let mut reg = OpRegistry::new();
        ep::register(&mut reg);
        let states = app_states_event_planner(&reg);
        let report = verify_suite(&reg, &ep::spec_suite(), &small(states));
        rows.push(row("EventPlanner", &report));
    }
    {
        use guesstimate_apps::message_board as mb;
        let mut reg = OpRegistry::new();
        mb::register(&mut reg);
        let states = app_states_message_board(&reg);
        let report = verify_suite(&reg, &mb::spec_suite(), &small(states));
        rows.push(row("MessageBoard", &report));
    }
    {
        use guesstimate_apps::carpool as cp;
        let mut reg = OpRegistry::new();
        cp::register(&mut reg);
        let states = app_states_carpool(&reg);
        let report = verify_suite(&reg, &cp::spec_suite(), &small(states));
        rows.push(row("CarPool", &report));
    }
    {
        use guesstimate_apps::auction as au;
        let mut reg = OpRegistry::new();
        au::register(&mut reg);
        let states = app_states_auction(&reg);
        let report = verify_suite(&reg, &au::spec_suite(), &small(states));
        rows.push(row("Auction", &report));
    }
    {
        use guesstimate_apps::microblog as micro;
        let mut reg = OpRegistry::new();
        micro::register(&mut reg);
        let states = app_states_microblog(&reg);
        let report = verify_suite(&reg, &micro::spec_suite(), &small(states));
        rows.push(row("MicroBlog", &report));
    }
    rows
}

fn row(app: &'static str, report: &guesstimate_spec::VerificationReport) -> SpecTableRow {
    SpecTableRow {
        app,
        total: report.total(),
        verified: report.verified(),
        runtime_checks: report.runtime_checks(),
        refuted: report.refuted(),
    }
}

/// Builds representative states for an app by executing op sequences
/// through the registry and snapshotting after each step.
fn states_by_ops(
    reg: &OpRegistry,
    type_name: &str,
    seqs: &[Vec<guesstimate_core::SharedOp>],
    scratch: ObjectId,
) -> Vec<Value> {
    let mut out = Vec::new();
    for seq in seqs {
        let mut store = guesstimate_core::ObjectStore::new();
        store.insert(scratch, reg.construct(type_name).expect("registered"));
        out.push(store.get(scratch).expect("present").snapshot());
        for op in seq {
            let _ = guesstimate_core::execute(op, &mut store, reg);
            out.push(store.get(scratch).expect("present").snapshot());
        }
    }
    out
}

fn scratch_obj() -> ObjectId {
    ObjectId::new(MachineId::new(0), 0)
}

fn app_states_event_planner(reg: &OpRegistry) -> Vec<Value> {
    use guesstimate_apps::event_planner::ops;
    let o = scratch_obj();
    states_by_ops(
        reg,
        "EventPlanner",
        &[vec![
            ops::register_user(o, "ann", "pw"),
            ops::register_user(o, "bob", "pw"),
            ops::create_event(o, "party", 1),
            ops::create_event(o, "dinner", 2),
            ops::join(o, "ann", "party"),
            ops::join(o, "bob", "party"),
            ops::join(o, "bob", "dinner"),
            ops::leave(o, "ann", "party"),
        ]],
        o,
    )
}

fn app_states_message_board(reg: &OpRegistry) -> Vec<Value> {
    use guesstimate_apps::message_board::ops;
    let o = scratch_obj();
    states_by_ops(
        reg,
        "MessageBoard",
        &[vec![
            ops::create_topic(o, "general"),
            ops::post(o, "general", "ann", "hi"),
            ops::post(o, "general", "bob", "yo"),
        ]],
        o,
    )
}

fn app_states_carpool(reg: &OpRegistry) -> Vec<Value> {
    use guesstimate_apps::carpool::ops;
    let o = scratch_obj();
    states_by_ops(
        reg,
        "CarPool",
        &[vec![
            ops::add_vehicle(o, "v1", 1, "party"),
            ops::add_vehicle(o, "v2", 2, "party"),
            ops::board(o, "ann", "v1"),
            ops::board(o, "bob", "v2"),
            ops::disembark(o, "ann", "v1"),
        ]],
        o,
    )
}

fn app_states_auction(reg: &OpRegistry) -> Vec<Value> {
    use guesstimate_apps::auction::ops;
    let o = scratch_obj();
    states_by_ops(
        reg,
        "Auction",
        &[vec![
            ops::list_item(o, "lamp", "seller", 10, 5),
            ops::bid(o, "lamp", "ann", 10),
            ops::bid(o, "lamp", "bob", 15),
            ops::close(o, "lamp", "seller"),
        ]],
        o,
    )
}

fn app_states_microblog(reg: &OpRegistry) -> Vec<Value> {
    use guesstimate_apps::microblog::ops;
    let o = scratch_obj();
    states_by_ops(
        reg,
        "MicroBlog",
        &[vec![
            ops::register(o, "ann"),
            ops::register(o, "bob"),
            ops::follow(o, "ann", "bob"),
            ops::post(o, "bob", "hello"),
            ops::post(o, "ann", "hey"),
        ]],
        o,
    )
}

// ---------------------------------------------------------------------
// Ablation A2: responsiveness vs one-copy serializability
// ---------------------------------------------------------------------

/// One row of the responsiveness comparison.
#[derive(Debug, Clone, Copy)]
pub struct ResponsivenessRow {
    /// Number of users.
    pub users: u32,
    /// GUESSTIMATE: local visibility latency (always zero — effects are
    /// applied to the guesstimated state within the issuing call).
    pub guess_visibility: SimTime,
    /// GUESSTIMATE: mean issue-to-commit latency.
    pub guess_commit: SimTime,
    /// One-copy: mean submit-to-visibility latency (nothing is visible
    /// before commit).
    pub one_copy_visibility: SimTime,
}

/// Ablation A2: GUESSTIMATE's non-blocking issue vs one-copy
/// serializability, under the same mesh latency and an identical
/// counter-increment workload.
pub fn run_responsiveness(seed: u64, users_range: &[u32]) -> Vec<ResponsivenessRow> {
    users_range
        .iter()
        .map(|&users| {
            let (gv, gc) = guesstimate_latency(users, seed);
            let oc = one_copy_latency(users, seed);
            ResponsivenessRow {
                users,
                guess_visibility: gv,
                guess_commit: gc,
                one_copy_visibility: oc,
            }
        })
        .collect()
}

fn guesstimate_latency(users: u32, seed: u64) -> (SimTime, SimTime) {
    let mut registry = OpRegistry::new();
    sudoku::register(&mut registry);
    let mcfg = MachineConfig::default()
        .with_sync_period(SimTime::from_millis(250))
        .with_stall_timeout(SimTime::from_secs(3));
    let netcfg = NetConfig::lan(seed).with_latency(LatencyModel::lan_ms(30));
    let mut net = sim_cluster(users, registry, mcfg, netcfg);
    assert!(run_until_cohort(&mut net, SimTime::from_secs(30)));
    let board = net
        .actor_mut(MachineId::new(0))
        .expect("master")
        .create_instance(sudoku::example_puzzle());
    net.run_until(net.now() + SimTime::from_secs(2));
    // Every user issues 20 timed moves.
    let t0 = net.now();
    for i in 0..users {
        for k in 0..20u64 {
            let seed_k = seed ^ (u64::from(i) << 32) ^ k;
            net.schedule_call(
                t0 + SimTime::from_millis(200 * k + 7 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut Machine, ctx| {
                    let boards = [board];
                    // Reuse the workload move picker, but timed.
                    let _ =
                        crate::workload::issue_random_move_timed(m, &boards[..], seed_k, ctx.now());
                },
            );
        }
    }
    net.run_until(net.now() + SimTime::from_secs(30));
    let lats: Vec<SimTime> = (0..users)
        .filter_map(|i| net.actor(MachineId::new(i)))
        .flat_map(|m| m.stats().commit_latencies.clone())
        .collect();
    let mean = if lats.is_empty() {
        SimTime::ZERO
    } else {
        SimTime::from_micros(lats.iter().map(|t| t.as_micros()).sum::<u64>() / lats.len() as u64)
    };
    (SimTime::ZERO, mean)
}

fn one_copy_latency(users: u32, seed: u64) -> SimTime {
    use guesstimate_baselines::one_copy::{one_copy_cluster, OneCopyMachine};
    let mut registry = OpRegistry::new();
    sudoku::register(&mut registry);
    let netcfg = NetConfig::lan(seed).with_latency(LatencyModel::lan_ms(30));
    let mut net = one_copy_cluster(users, registry, netcfg);
    let board = {
        let mut out = None;
        net.call(MachineId::new(0), |m, ctx| {
            out = Some(m.create_instance(sudoku::example_puzzle(), ctx))
        });
        out.expect("created")
    };
    net.run_until(SimTime::from_secs(2));
    let t0 = net.now();
    for i in 0..users {
        for k in 0..20u64 {
            let seed_k = seed ^ (u64::from(i) << 32) ^ k;
            net.schedule_call(
                t0 + SimTime::from_millis(200 * k + 7 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut OneCopyMachine, ctx| {
                    use guesstimate_apps::sudoku::Sudoku;
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand::rngs::StdRng::seed_from_u64(seed_k);
                    let Some(moves) = m.read::<Sudoku, _>(board, |s| s.candidate_moves()) else {
                        return;
                    };
                    if moves.is_empty() {
                        return;
                    }
                    let (r, c, v) = moves[rng.gen_range(0..moves.len())];
                    m.issue(sudoku::ops::update(board, r, c, v), None, ctx);
                },
            );
        }
    }
    net.run_until(net.now() + SimTime::from_secs(30));
    let lats: Vec<SimTime> = (0..users)
        .filter_map(|i| net.actor(MachineId::new(i)))
        .flat_map(|m| m.stats().latencies.clone())
        .collect();
    if lats.is_empty() {
        SimTime::ZERO
    } else {
        SimTime::from_micros(lats.iter().map(|t| t.as_micros()).sum::<u64>() / lats.len() as u64)
    }
}

// ---------------------------------------------------------------------
// Consistency spectrum (§1): replicated execution vs GUESSTIMATE vs one-copy
// ---------------------------------------------------------------------

/// One row of the consistency-spectrum comparison.
#[derive(Debug, Clone)]
pub struct SpectrumRow {
    /// Model name.
    pub model: &'static str,
    /// Distinct committed replica states at the end (1 = consistent).
    pub distinct_states: usize,
    /// Time until an issued operation is visible to its own issuer.
    pub visibility: SimTime,
    /// Moves accepted across the cluster during the workload.
    pub ops_accepted: u64,
}

/// §1's three points on the consistency–performance spectrum, under one
/// identical Sudoku workload: unsynchronized replicated execution (fast,
/// divergent), GUESSTIMATE (fast *and* eventually agreed), and one-copy
/// serializability (agreed, but blocking).
pub fn run_consistency_spectrum(seed: u64, users: u32) -> Vec<SpectrumRow> {
    use guesstimate_baselines::local_only::{divergence, local_only_cluster};
    let mut rows = Vec::new();

    // A fixed move schedule: (user, event index) pairs; each model picks
    // moves from its own replica state with the same per-event seeds.
    let events: Vec<(u32, u64)> = (0..users)
        .flat_map(|i| (0..15u64).map(move |k| (i, k)))
        .collect();

    // 1. Replicated execution (local-only).
    {
        let mut registry = OpRegistry::new();
        sudoku::register(&mut registry);
        let mut net = local_only_cluster(users, registry, NetConfig::lan(seed));
        let shared = ObjectId::new(MachineId::new(9), 0);
        let ids: Vec<MachineId> = (0..users).map(MachineId::new).collect();
        for &i in &ids {
            net.actor_mut(i)
                .unwrap()
                .install(shared, sudoku::example_puzzle());
        }
        let mut accepted = 0u64;
        for &(i, k) in &events {
            let m = net.actor_mut(MachineId::new(i)).expect("machine");
            let moves = m
                .read::<sudoku::Sudoku, _>(shared, |s| s.candidate_moves())
                .unwrap_or_default();
            let idx = ((k + 3 * u64::from(i)) % 7) as usize;
            if let Some(&(r, c, v)) = moves.get(idx) {
                if m.issue(sudoku::ops::update(shared, r, c, v)) {
                    accepted += 1;
                }
            }
        }
        rows.push(SpectrumRow {
            model: "replicated-execution",
            distinct_states: divergence(&net, &ids),
            visibility: SimTime::ZERO,
            ops_accepted: accepted,
        });
    }

    // 2. GUESSTIMATE.
    {
        let mut registry = OpRegistry::new();
        sudoku::register(&mut registry);
        let mcfg = MachineConfig::default()
            .with_sync_period(SimTime::from_millis(250))
            .with_stall_timeout(SimTime::from_secs(3));
        let netcfg = NetConfig::lan(seed).with_latency(LatencyModel::lan_ms(30));
        let mut net = sim_cluster(users, registry, mcfg, netcfg);
        assert!(run_until_cohort(&mut net, SimTime::from_secs(30)));
        let board = net
            .actor_mut(MachineId::new(0))
            .expect("master")
            .create_instance(sudoku::example_puzzle());
        net.run_until(net.now() + SimTime::from_secs(2));
        let t0 = net.now();
        for &(i, k) in &events {
            net.schedule_call(
                t0 + SimTime::from_millis(100 * k + 11 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut Machine, _| {
                    if let Some(moves) = m.read::<sudoku::Sudoku, _>(board, |s| s.candidate_moves())
                    {
                        let idx = ((k + 3 * u64::from(i)) % 7) as usize;
                        if let Some(&(r, c, v)) = moves.get(idx) {
                            let _ = m.issue(sudoku::ops::update(board, r, c, v));
                        }
                    }
                },
            );
        }
        net.run_until(net.now() + SimTime::from_secs(15));
        let digests: std::collections::BTreeSet<u64> = (0..users)
            .map(|i| {
                net.actor(MachineId::new(i))
                    .expect("machine")
                    .committed_digest()
            })
            .collect();
        let accepted: u64 = (0..users)
            .map(|i| {
                net.actor(MachineId::new(i))
                    .expect("machine")
                    .stats()
                    .issued
            })
            .sum();
        rows.push(SpectrumRow {
            model: "guesstimate",
            distinct_states: digests.len(),
            visibility: SimTime::ZERO,
            ops_accepted: accepted,
        });
    }

    // 3. One-copy serializability.
    {
        use guesstimate_baselines::one_copy::{one_copy_cluster, OneCopyMachine};
        let mut registry = OpRegistry::new();
        sudoku::register(&mut registry);
        let netcfg = NetConfig::lan(seed).with_latency(LatencyModel::lan_ms(30));
        let mut net = one_copy_cluster(users, registry, netcfg);
        let board = {
            let mut out = None;
            net.call(MachineId::new(0), |m, ctx| {
                out = Some(m.create_instance(sudoku::example_puzzle(), ctx))
            });
            out.expect("created")
        };
        net.run_until(SimTime::from_secs(2));
        let t0 = net.now();
        for &(i, k) in &events {
            net.schedule_call(
                t0 + SimTime::from_millis(100 * k + 11 * u64::from(i)),
                MachineId::new(i),
                move |m: &mut OneCopyMachine, ctx| {
                    if let Some(moves) = m.read::<sudoku::Sudoku, _>(board, |s| s.candidate_moves())
                    {
                        if !moves.is_empty() {
                            let idx = ((k + 3 * u64::from(i)) % 7) as usize % moves.len();
                            let (r, c, v) = moves[idx];
                            m.issue(sudoku::ops::update(board, r, c, v), None, ctx);
                        }
                    }
                },
            );
        }
        net.run_until(net.now() + SimTime::from_secs(15));
        let digests: std::collections::BTreeSet<u64> = (0..users)
            .map(|i| net.actor(MachineId::new(i)).expect("machine").digest())
            .collect();
        let lats: Vec<SimTime> = (0..users)
            .filter_map(|i| net.actor(MachineId::new(i)))
            .flat_map(|m| m.stats().latencies.clone())
            .collect();
        let mean = if lats.is_empty() {
            SimTime::ZERO
        } else {
            SimTime::from_micros(
                lats.iter().map(|t| t.as_micros()).sum::<u64>() / lats.len() as u64,
            )
        };
        let accepted: u64 = (0..users)
            .map(|i| {
                net.actor(MachineId::new(i))
                    .expect("machine")
                    .stats()
                    .submitted
            })
            .sum();
        rows.push(SpectrumRow {
            model: "one-copy",
            distinct_states: digests.len(),
            visibility: mean,
            ops_accepted: accepted,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Hybrid commit path: commit lag, serialized rounds vs async one-hop
// ---------------------------------------------------------------------

/// One row of the hybrid commit-lag comparison.
#[derive(Debug, Clone)]
pub struct HybridLagRow {
    /// Application under load (`message_board` or `microblog`).
    pub app: &'static str,
    /// Commit path: `serialized` (rounds only) or `hybrid` (`async_commit`).
    pub mode: &'static str,
    /// Workload operations committed inside the measured window.
    pub ops_committed: u64,
    /// Of those, commits through the async path (0 in serialized mode).
    pub ops_async: u64,
    /// Mean issue-to-commit lag over the measured window.
    pub mean_commit_lag: SimTime,
    /// All machines ended on the same committed state with nothing pending.
    pub converged: bool,
}

/// The commute matrix a deployment would load from the `analyze --json`
/// archive, hand-mirrored for the two blind-counter apps (the bench crate
/// does not run the validator; drift fails loudly because a missing pair
/// de-classifies the method and the lag collapse disappears).
fn blind_counter_matrix(app: &'static str) -> guesstimate_core::CommuteMatrix {
    let mut m = guesstimate_core::CommuteMatrix::new();
    match app {
        "message_board" => {
            for other in ["like", "post", "create_topic"] {
                m.insert("MessageBoard", "like", other);
            }
        }
        "microblog" => {
            for other in ["heart", "register", "post", "follow", "unfollow"] {
                m.insert("MicroBlog", "heart", other);
            }
        }
        other => unreachable!("unknown app {other}"),
    }
    m
}

/// Runs one all-commuting blind-counter session and measures commit lag.
///
/// Every user spams the app's universal-commuter op (`like` / `heart`)
/// through [`Machine::issue_hybrid`]; with `async_commit` off that is the
/// paper's serialized round path (lag ≈ sync period), with it on the op
/// commits at issue and broadcasts in one hop (lag ≈ 0).
fn hybrid_lag_session(
    app: &'static str,
    async_on: bool,
    seed: u64,
    users: u32,
    duration: SimTime,
    tracer: Option<Arc<dyn Tracer>>,
    telemetry: Telemetry,
) -> HybridLagRow {
    use guesstimate_apps::{message_board, microblog};

    let mut registry = OpRegistry::new();
    match app {
        "message_board" => message_board::register(&mut registry),
        "microblog" => microblog::register(&mut registry),
        other => unreachable!("unknown app {other}"),
    }
    let mcfg = MachineConfig::default()
        .with_sync_period(SimTime::from_millis(250))
        .with_stall_timeout(SimTime::from_secs(3))
        .with_commute_matrix(blind_counter_matrix(app))
        .with_async_commit(async_on);
    let netcfg = NetConfig::lan(seed).with_latency(LatencyModel::lan_ms(30));
    let mut net =
        sim_cluster_instrumented(users, registry, mcfg, netcfg, tracer, telemetry.clone());
    assert!(
        run_until_cohort(&mut net, SimTime::from_secs(30)),
        "cohort must assemble before the measured window"
    );

    // The shared object must *commit* everywhere before its blind counter
    // is async-eligible (guess-only objects always serialize).
    let board = {
        let master = net.actor_mut(MachineId::new(0)).expect("master");
        match app {
            "message_board" => {
                let obj = master.create_instance(message_board::MessageBoard::new());
                assert!(master
                    .issue(message_board::ops::create_topic(obj, "general"))
                    .expect("known object"));
                obj
            }
            "microblog" => master.create_instance(microblog::MicroBlog::new()),
            other => unreachable!("unknown app {other}"),
        }
    };
    net.run_until(net.now() + SimTime::from_secs(2));

    let t0 = net.now();
    let t_end = t0 + duration;
    let step = SimTime::from_millis(400);
    for i in 0..users {
        let mut at = t0 + SimTime::from_millis(37 * u64::from(i));
        while at < t_end {
            net.schedule_call(at, MachineId::new(i), move |m: &mut Machine, ctx| {
                let op = match app {
                    "message_board" => message_board::ops::like(board, "general"),
                    _ => microblog::ops::heart(board, "ann"),
                };
                let _ = m.issue_hybrid(op, None, ctx);
            });
            at += step;
        }
    }
    net.run_until(t_end + SimTime::from_secs(10));

    // Lag over the workload window only: the prelude's create/topic ops
    // are round-committed in both modes and would dilute the comparison.
    let lags: Vec<u64> = telemetry
        .spans()
        .iter()
        .filter(|s| s.issued_at.is_some_and(|t| t >= t0))
        .filter_map(|s| s.commit_lag().map(|l| l.as_micros()))
        .collect();
    let mean_commit_lag = if lags.is_empty() {
        SimTime::ZERO
    } else {
        SimTime::from_micros(lags.iter().sum::<u64>() / lags.len() as u64)
    };
    let ids = net.members();
    let digests: Vec<u64> = ids
        .iter()
        .map(|&i| net.actor(i).expect("member").committed_digest())
        .collect();
    let converged = digests.windows(2).all(|w| w[0] == w[1])
        && ids
            .iter()
            .all(|&i| net.actor(i).expect("member").pending_len() == 0);
    HybridLagRow {
        app,
        mode: if async_on { "hybrid" } else { "serialized" },
        ops_committed: lags.len() as u64,
        ops_async: telemetry.ops_committed_async(),
        mean_commit_lag,
        converged,
    }
}

/// The hybrid-path headline: for an all-commuting workload, commit lag
/// collapses from round-period scale to ~one hop. Four rows — each
/// blind-counter app under the serialized baseline and the hybrid path,
/// same seed and schedule.
pub fn run_hybrid_lag(seed: u64, users: u32, duration: SimTime) -> Vec<HybridLagRow> {
    let mut rows = Vec::new();
    for app in ["message_board", "microblog"] {
        for async_on in [false, true] {
            rows.push(hybrid_lag_session(
                app,
                async_on,
                seed,
                users,
                duration,
                None,
                Telemetry::new(),
            ));
        }
    }
    rows
}

/// One fully-traced hybrid blind-counter session (`message_board` with
/// `async_commit` on): returns the comparison row, the driver+machine
/// trace records, and the telemetry handle whose spans carry the
/// async-path commit times — the inputs the lag-attribution waterfall
/// needs to exercise the `async_commit` stage decomposition.
pub fn run_hybrid_traced(
    seed: u64,
    users: u32,
    duration: SimTime,
) -> (HybridLagRow, Vec<guesstimate_net::TraceRecord>, Telemetry) {
    let tracer = Arc::new(guesstimate_net::RecordingTracer::new());
    let telemetry = Telemetry::new();
    let row = hybrid_lag_session(
        "message_board",
        true,
        seed,
        users,
        duration,
        Some(tracer.clone()),
        telemetry.clone(),
    );
    (row, tracer.take(), telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_session_runs_and_converges() {
        let mut cfg = SessionConfig::paper_default(3, 5);
        cfg.duration = SimTime::from_secs(20);
        cfg.activity = ActivityLevel::Active {
            mean_think: SimTime::from_millis(800),
        };
        let r = run_session(&cfg);
        assert!(r.converged, "session converged");
        assert!(r.issued > 10);
        assert!(r.committed > 10);
        assert!(!r.sync_samples.is_empty());
        assert!(r.events_scheduled > 0);
    }

    #[test]
    fn idle_session_has_rounds_but_no_ops() {
        let mut cfg = SessionConfig::paper_default(2, 5);
        cfg.duration = SimTime::from_secs(15);
        cfg.activity = ActivityLevel::Idle;
        let r = run_session(&cfg);
        assert!(r.sync_samples.len() > 20);
        assert_eq!(r.events_scheduled, 0);
        // Only the board creations were committed.
        assert_eq!(r.committed, 2);
    }

    #[test]
    fn histogram_buckets_cover_everything() {
        let mk = |ms: u64| SyncSample {
            round: 0,
            started_at: SimTime::ZERO,
            duration: SimTime::from_millis(ms),
            flush_duration: SimTime::from_millis(ms),
            apply_duration: SimTime::ZERO,
            completion_duration: SimTime::ZERO,
            participants: 2,
            ops_committed: 0,
            ops_flushed: 0,
            resends: 0,
            removals: 0,
        };
        let samples = vec![mk(50), mk(150), mk(950), mk(1500), mk(13_000)];
        let h = histogram(&samples);
        let total: usize = h.iter().map(|b| b.count).sum();
        assert_eq!(total, samples.len());
        assert_eq!(h.last().unwrap().count, 1, ">12s outlier counted");
        assert_eq!(h[0].count, 1, "50ms in first bucket");
    }

    #[test]
    fn mean_excluding_filters_outliers() {
        let mk = |ms: u64| SyncSample {
            round: 0,
            started_at: SimTime::ZERO,
            duration: SimTime::from_millis(ms),
            flush_duration: SimTime::from_millis(ms),
            apply_duration: SimTime::ZERO,
            completion_duration: SimTime::ZERO,
            participants: 2,
            ops_committed: 0,
            ops_flushed: 0,
            resends: 0,
            removals: 0,
        };
        let r = SessionResult {
            sync_samples: vec![mk(100), mk(300), mk(20_000)],
            per_machine: vec![],
            conflicts: 0,
            issued: 0,
            committed: 0,
            machines_restarted: 0,
            converged: true,
            events_scheduled: 0,
            replays: 0,
            replays_skipped: 0,
            net: NetMetrics::default(),
            committed_digest: 0,
        };
        assert_eq!(
            r.mean_sync_excluding(SimTime::from_secs(12)),
            Some(SimTime::from_millis(200))
        );
    }

    #[test]
    fn hybrid_lag_collapses_for_blind_counters() {
        let rows = run_hybrid_lag(7, 3, SimTime::from_secs(10));
        assert_eq!(rows.len(), 4);
        for pair in rows.chunks(2) {
            let (ser, hy) = (&pair[0], &pair[1]);
            assert_eq!(ser.mode, "serialized");
            assert_eq!(hy.mode, "hybrid");
            assert!(ser.converged, "{}: serialized converged", ser.app);
            assert!(hy.converged, "{}: hybrid converged", hy.app);
            assert!(ser.ops_committed > 0 && hy.ops_committed > 0);
            assert_eq!(ser.ops_async, 0, "{}: no async path off", ser.app);
            assert!(hy.ops_async > 0, "{}: async path must engage", hy.app);
            let ratio = ser.mean_commit_lag.as_micros() as f64
                / hy.mean_commit_lag.as_micros().max(1) as f64;
            assert!(
                ratio >= 5.0,
                "{}: serialized/hybrid lag ratio {ratio:.1} < 5",
                ser.app
            );
        }
    }

    #[test]
    fn spec_table_has_six_rows_and_no_refutations() {
        let rows = run_spec_table(3);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.refuted, 0, "{}: correct implementations", r.app);
            assert_eq!(r.total, r.verified + r.runtime_checks);
        }
        let sudoku_row = &rows[0];
        assert_eq!(sudoku_row.total, 227);
        assert!(sudoku_row.verified >= 5, "the SI guards verify");
    }
}
