//! # guesstimate-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! GUESSTIMATE paper's evaluation (§7), plus the ablations called out in
//! DESIGN.md. Each binary prints the same rows/series the paper reports:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig5_sync_distribution` | Figure 5 — distribution of synchronization time (8 users, 2 grids, 1 h, fault-recovery outliers) |
//! | `fig6_sync_vs_users` | Figure 6 — average sync time vs number of users, with/without user activity |
//! | `fig7_conflicts_vs_users` | Figure 7 — conflicts vs number of users, one user added per 100 syncs |
//! | `table_spec_assertions` | §6 Spec#/Boogie statistic (323 assertions: 271 verified, 52 runtime checks) |
//! | `failure_recovery` | §7 "Failure and recovery" narrative (stalls, resends, restarts) |
//! | `ablation_parallel_flush` | §9 future work: parallel stage 1 ⇒ sync time ~independent of user count |
//! | `ablation_responsiveness` | §1 claim: non-blocking issue vs one-copy serializability |
//! | `ablation_consistency` | §1 spectrum: replicated execution vs GUESSTIMATE vs one-copy |
//! | `scalability` | §7/§9 extrapolation ("100 users within 3 s"), actually run |
//!
//! The workload is the paper's: concurrent users collaboratively solving
//! Sudoku grids, with seeded think times and move choices so every figure
//! is reproducible bit-for-bit.

#![warn(missing_docs)]

pub mod artifacts;
pub mod experiments;
pub mod shard_balance;
pub mod trace;
pub mod workload;

pub use artifacts::{metrics_stem, trace_path, write_metrics_artifacts};
pub use experiments::{
    histogram, run_consistency_spectrum, run_fig5, run_fig5_instrumented, run_fig5_traced,
    run_fig6, run_fig6_instrumented, run_fig6_traced, run_fig7, run_hybrid_lag, run_hybrid_traced,
    run_responsiveness, run_session, run_session_instrumented, run_session_traced, run_spec_table,
    ActivityLevel, Fig6Row, Fig7Row, HistogramBucket, HybridLagRow, ResponsivenessRow,
    SessionConfig, SessionResult, SpecTableRow, SpectrumRow,
};
pub use shard_balance::{render_shard_balance, shard_balance_rows, ShardBalanceRow};
pub use trace::{
    record_to_json, render_timelines, summarize_rounds, write_jsonl, JsonlSink, RoundTimeline,
};
