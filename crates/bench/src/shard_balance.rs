//! Per-app shard-balance summaries for the figure binaries.
//!
//! Re-runs the shard-partition analysis (`guesstimate-analysis`, see
//! docs/ANALYSIS.md "Shard plans"), routes every enumerated argument case
//! of every method through each app's derived plan, and reports how the
//! operation population spreads across shards: shard count, per-shard op
//! share, and the cross-shard fraction. The fig5/fig6 binaries print these
//! rows as a footer, and `bench_snapshot` persists them (`BENCH_pr8.json`)
//! with the derived-plan regression gates.

use guesstimate_analysis::harness::analyze_all_apps;

/// One app's shard-balance tally: how the analysis suite's operation
/// population distributes over the app's derived shard plan.
#[derive(Debug, Clone)]
pub struct ShardBalanceRow {
    /// The app's registered type name.
    pub app: String,
    /// `(shard label, ops routed there)`, sorted by label; the `"cross"`
    /// label holds cross-shard operations.
    pub per_shard: Vec<(String, u64)>,
}

impl ShardBalanceRow {
    /// Total operations routed.
    pub fn total(&self) -> u64 {
        self.per_shard.iter().map(|(_, n)| n).sum()
    }

    /// Operations that routed cross-shard.
    pub fn cross_ops(&self) -> u64 {
        self.per_shard
            .iter()
            .filter(|(s, _)| s == "cross")
            .map(|(_, n)| *n)
            .sum()
    }

    /// Distinct local shards the population touched (excludes `"cross"`).
    pub fn shard_count(&self) -> usize {
        self.per_shard.iter().filter(|(s, _)| s != "cross").count()
    }

    /// Fraction of operations that routed cross-shard, in `[0, 1]`.
    pub fn cross_fraction(&self) -> f64 {
        self.cross_ops() as f64 / self.total().max(1) as f64
    }

    /// The largest single local shard's share of the population.
    pub fn max_share(&self) -> f64 {
        self.per_shard
            .iter()
            .filter(|(s, _)| s != "cross")
            .map(|(_, n)| *n as f64 / self.total().max(1) as f64)
            .fold(0.0, f64::max)
    }
}

/// Derives each bundled app's shard plan and tallies its shard balance, in
/// the canonical app order.
pub fn shard_balance_rows() -> Vec<ShardBalanceRow> {
    analyze_all_apps()
        .iter()
        .map(|a| {
            let plan = a.derive_shard_plan();
            ShardBalanceRow {
                app: a.report.type_name.clone(),
                per_shard: a.shard_balance(&plan),
            }
        })
        .collect()
}

/// Renders the rows as `#`-prefixed summary lines (the figure binaries'
/// footer idiom): one line per app with shard count, cross-shard fraction,
/// and every local shard's op share.
pub fn render_shard_balance(rows: &[ShardBalanceRow]) -> String {
    let mut out = String::new();
    out.push_str("# shard balance (derived plans routed over the analysis arg spaces):\n");
    for r in rows {
        let shares: Vec<String> = r
            .per_shard
            .iter()
            .filter(|(s, _)| s != "cross")
            .map(|(s, n)| format!("{s}={:.1}%", 100.0 * *n as f64 / r.total().max(1) as f64))
            .collect();
        out.push_str(&format!(
            "#   {:<14} shards={:<2} cross={:>5.1}%  {}\n",
            r.app,
            r.shard_count(),
            100.0 * r.cross_fraction(),
            shares.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_apps_and_only_carpool_crosses() {
        let rows = shard_balance_rows();
        assert_eq!(rows.len(), 6, "one row per bundled app");
        for r in &rows {
            assert!(r.total() > 0, "{}: empty op population", r.app);
            assert!(r.shard_count() >= 1, "{}: no local shard", r.app);
        }
        let crossing: Vec<&str> = rows
            .iter()
            .filter(|r| r.cross_ops() > 0)
            .map(|r| r.app.as_str())
            .collect();
        // The derived plans' only cross-shard route is CarPool's `board`
        // (it spans the vehicle and rider components).
        assert_eq!(crossing, ["CarPool"]);
        let rendered = render_shard_balance(&rows);
        assert!(rendered.contains("CarPool"), "{rendered}");
    }
}
