//! Trace sinks and round-timeline summaries for the experiment binaries.
//!
//! The runtime emits [`TraceRecord`]s through the pluggable
//! [`guesstimate_net::Tracer`] interface; this module turns those streams
//! into artifacts a person (or a plotting script) can use:
//!
//! * [`JsonlSink`] / [`write_jsonl`] — one JSON object per line, one line
//!   per event, with stable keys taken from [`TraceEvent::name`]. The JSON
//!   is hand-rolled: every field is a scalar (no strings need escaping), so
//!   no serialization dependency is required.
//! * [`summarize_rounds`] — folds a trace into one [`RoundTimeline`] per
//!   sync round, recovering the per-stage boundaries (flush → apply →
//!   completion) that aggregate [`guesstimate_runtime::SyncSample`] counters
//!   compress away.
//! * [`render_timelines`] — a fixed-width text table of the timelines, used
//!   by the `fig5_sync_distribution` and `failure_recovery` binaries.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use guesstimate_net::{SimTime, TraceEvent, TraceRecord, Tracer};
// The canonical line format (writer + reader) lives in `guesstimate-obs`;
// re-exported here so the sinks below and older call sites share it.
pub use guesstimate_obs::record_to_json;

/// Writes a recorded trace to `path`, one JSON object per line.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_jsonl(path: &Path, records: &[TraceRecord]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for r in records {
        out.write_all(record_to_json(r).as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// A [`Tracer`] that streams each event to a file as a JSON line.
///
/// Unlike collecting with [`guesstimate_net::RecordingTracer`] and calling
/// [`write_jsonl`] afterwards, this sink holds no events in memory — useful
/// for hour-long sessions where the full trace would be large.
#[derive(Debug)]
pub struct JsonlSink {
    out: parking_lot::Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink {
            out: parking_lot::Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    /// Flushes buffered lines to disk.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error from the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().flush()
    }
}

impl Tracer for JsonlSink {
    fn record(&self, record: TraceRecord) {
        let mut out = self.out.lock();
        // `record` must not panic; a full disk degrades to a truncated trace.
        let _ = out.write_all(record_to_json(&record).as_bytes());
        let _ = out.write_all(b"\n");
    }
}

/// The reconstructed timeline of one synchronization round.
///
/// Built from the master's round-scoped events plus the members'
/// [`TraceEvent::SyncCompleteReceived`] receipts; any field can be `None`
/// when a trace is truncated (round in flight at either end of the
/// recording window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundTimeline {
    /// Round number.
    pub round: u64,
    /// Master broadcast `BeginSync` ([`TraceEvent::RoundStarted`]).
    pub started_at: Option<SimTime>,
    /// Stage 1 → 2 boundary: master broadcast `BeginApply`.
    pub flush_done_at: Option<SimTime>,
    /// Master broadcast `SyncComplete` (last ack observed).
    pub completed_at: Option<SimTime>,
    /// Last member receipt of `SyncComplete` — the stage-3 propagation edge.
    pub last_received_at: Option<SimTime>,
    /// Operations committed by the round.
    pub ops_committed: u64,
    /// Recovery nudges ([`TraceEvent::Resend`]) during the round.
    pub resends: u32,
    /// Machines removed from the round.
    pub removals: u32,
}

impl RoundTimeline {
    fn empty(round: u64) -> Self {
        RoundTimeline {
            round,
            started_at: None,
            flush_done_at: None,
            completed_at: None,
            last_received_at: None,
            ops_committed: 0,
            resends: 0,
            removals: 0,
        }
    }

    /// Stage-1 duration (round start → `BeginApply`), when both edges were
    /// observed.
    pub fn flush_duration(&self) -> Option<SimTime> {
        Some(self.flush_done_at?.saturating_since(self.started_at?))
    }

    /// Stage-2 duration (`BeginApply` → last ack / `SyncComplete`).
    pub fn apply_duration(&self) -> Option<SimTime> {
        Some(self.completed_at?.saturating_since(self.flush_done_at?))
    }

    /// Stage-3 propagation spread (`SyncComplete` sent → last member
    /// receipt). `None` when no member receipt was traced.
    pub fn completion_spread(&self) -> Option<SimTime> {
        Some(self.last_received_at?.saturating_since(self.completed_at?))
    }

    /// Whole-round duration as seen by the master.
    pub fn duration(&self) -> Option<SimTime> {
        Some(self.completed_at?.saturating_since(self.started_at?))
    }
}

/// Folds a trace into one [`RoundTimeline`] per round, in round order.
///
/// Only round-scoped events contribute; machine-scoped events (`restarted`,
/// elections) are ignored here and are best read directly from the JSONL
/// stream.
pub fn summarize_rounds(records: &[TraceRecord]) -> Vec<RoundTimeline> {
    let mut rounds: BTreeMap<u64, RoundTimeline> = BTreeMap::new();
    for r in records {
        let Some(round) = r.event.round() else {
            continue;
        };
        let t = rounds
            .entry(round)
            .or_insert_with(|| RoundTimeline::empty(round));
        match r.event {
            TraceEvent::RoundStarted { .. } => t.started_at = Some(r.at),
            TraceEvent::BeginApply { .. } => t.flush_done_at = Some(r.at),
            TraceEvent::SyncComplete { ops_committed, .. } => {
                t.completed_at = Some(r.at);
                t.ops_committed = ops_committed;
            }
            TraceEvent::SyncCompleteReceived { .. } => {
                t.last_received_at = Some(t.last_received_at.map_or(r.at, |m| m.max(r.at)));
            }
            TraceEvent::Resend { .. } => t.resends += 1,
            TraceEvent::Removed { .. } => t.removals += 1,
            _ => {}
        }
    }
    rounds.into_values().collect()
}

/// Renders timelines as a fixed-width table (one row per round).
///
/// Columns: round, start time, stage-1/2 durations, stage-3 spread, whole
/// round duration, ops committed, resends, removals. Unobserved edges print
/// as `-`.
pub fn render_timelines(timelines: &[RoundTimeline]) -> String {
    let fmt_ms = |t: Option<SimTime>| match t {
        Some(t) => format!("{:.1}", t.as_millis_f64()),
        None => "-".to_owned(),
    };
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>6} {:>10} {:>9} {:>9} {:>9} {:>9} {:>5} {:>7} {:>8}",
        "round",
        "start_s",
        "flush_ms",
        "apply_ms",
        "flag_ms",
        "total_ms",
        "ops",
        "resends",
        "removed"
    );
    for t in timelines {
        let _ = writeln!(
            s,
            "{:>6} {:>10} {:>9} {:>9} {:>9} {:>9} {:>5} {:>7} {:>8}",
            t.round,
            t.started_at
                .map_or("-".to_owned(), |t| format!("{:.3}", t.as_secs_f64())),
            fmt_ms(t.flush_duration()),
            fmt_ms(t.apply_duration()),
            fmt_ms(t.completion_spread()),
            fmt_ms(t.duration()),
            t.ops_committed,
            t.resends,
            t.removals
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::MachineId;

    fn rec(at_ms: u64, source: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_millis(at_ms),
            source: MachineId::new(source),
            event,
        }
    }

    fn sample_round() -> Vec<TraceRecord> {
        vec![
            rec(
                100,
                0,
                TraceEvent::RoundStarted {
                    round: 5,
                    participants: 3,
                },
            ),
            rec(110, 1, TraceEvent::OpsBatchSent { round: 5, ops: 2 }),
            rec(
                150,
                0,
                TraceEvent::BeginApply {
                    round: 5,
                    ops_total: 2,
                },
            ),
            rec(
                160,
                0,
                TraceEvent::Resend {
                    round: 5,
                    machine: MachineId::new(2),
                    stage: 2,
                },
            ),
            rec(
                200,
                0,
                TraceEvent::SyncComplete {
                    round: 5,
                    ops_committed: 2,
                },
            ),
            rec(230, 1, TraceEvent::SyncCompleteReceived { round: 5 }),
            rec(245, 2, TraceEvent::SyncCompleteReceived { round: 5 }),
        ]
    }

    #[test]
    fn json_lines_have_stable_shape() {
        let line = record_to_json(&rec(
            100,
            0,
            TraceEvent::RoundStarted {
                round: 5,
                participants: 3,
            },
        ));
        assert_eq!(
            line,
            "{\"at_us\":100000,\"src\":0,\"event\":\"round_started\",\"round\":5,\"participants\":3}"
        );
        let bare = record_to_json(&rec(7, 2, TraceEvent::Restarted));
        assert_eq!(bare, "{\"at_us\":7000,\"src\":2,\"event\":\"restarted\"}");
    }

    #[test]
    fn json_carries_machine_ids_as_indices() {
        let line = record_to_json(&rec(
            1,
            0,
            TraceEvent::Removed {
                round: 9,
                machine: MachineId::new(4),
            },
        ));
        assert!(line.contains("\"machine\":4"), "{line}");
        assert!(line.contains("\"round\":9"), "{line}");
    }

    #[test]
    fn summarize_reconstructs_stage_boundaries() {
        let t = summarize_rounds(&sample_round());
        assert_eq!(t.len(), 1);
        let t = &t[0];
        assert_eq!(t.round, 5);
        assert_eq!(t.flush_duration(), Some(SimTime::from_millis(50)));
        assert_eq!(t.apply_duration(), Some(SimTime::from_millis(50)));
        assert_eq!(t.completion_spread(), Some(SimTime::from_millis(45)));
        assert_eq!(t.duration(), Some(SimTime::from_millis(100)));
        assert_eq!(t.ops_committed, 2);
        assert_eq!(t.resends, 1);
        assert_eq!(t.removals, 0);
    }

    #[test]
    fn summarize_tolerates_truncated_rounds() {
        // Only the tail of a round: no RoundStarted.
        let t = summarize_rounds(&[rec(
            10,
            0,
            TraceEvent::SyncComplete {
                round: 1,
                ops_committed: 0,
            },
        )]);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].duration(), None);
        assert_eq!(t[0].flush_duration(), None);
        // Machine-scoped events contribute no rounds.
        assert!(summarize_rounds(&[rec(0, 1, TraceEvent::Restarted)]).is_empty());
    }

    #[test]
    fn render_prints_one_row_per_round() {
        let table = render_timelines(&summarize_rounds(&sample_round()));
        assert_eq!(table.lines().count(), 2, "header + one round:\n{table}");
        assert!(table.contains("flush_ms"));
    }

    #[test]
    fn jsonl_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("guesstimate-bench-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let records = sample_round();
        write_jsonl(&path, &records).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), records.len());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }

        // The streaming sink produces the same bytes.
        let sink_path = dir.join("sink.jsonl");
        let sink = JsonlSink::create(&sink_path).unwrap();
        for r in &records {
            sink.record(*r);
        }
        sink.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&sink_path).unwrap(), text);
        std::fs::remove_dir_all(&dir).ok();
    }
}
