//! The §7 measurement workload: users collaboratively solving Sudoku.
//!
//! "All measurements were made while running the Sudoku application with 2
//! to 8 users within a local area network over a one hour time period." We
//! simulate each user as a stream of *move events*: at seeded think-time
//! intervals the user looks at their machine's **guesstimated** board,
//! picks a random still-legal move and issues `update(r, c, v)`. Because
//! moves are chosen against the local guesstimate, two users can pick
//! conflicting moves between synchronizations — the source of the Figure 7
//! conflicts.

use guesstimate_apps::sudoku::{self, Sudoku};
use guesstimate_core::{MachineId, ObjectId};
use guesstimate_net::{SimNet, SimTime};
use guesstimate_runtime::Machine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One user's activity profile.
#[derive(Debug, Clone, Copy)]
pub struct Activity {
    /// Mean think time between move attempts.
    pub mean_think: SimTime,
    /// Base RNG seed (combined with user and event indices).
    pub seed: u64,
}

/// Deterministic per-event seed derivation.
fn event_seed(base: u64, user: u32, event: u64) -> u64 {
    // SplitMix64-style mixing keeps streams independent across users.
    let mut z = base
        .wrapping_add(u64::from(user).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(event.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Schedules `user`'s move events on `net` between `from` and `until`.
///
/// Think times are exponential with the given mean (sampled up front, so
/// the schedule is fixed by the seed); each event, *at its virtual time*,
/// reads the machine's guesstimated boards, picks a uniformly random legal
/// move on a uniformly random board, and issues it. Events on machines that
/// have been removed or restarted are skipped by the driver.
pub fn schedule_user(
    net: &mut SimNet<Machine>,
    user: MachineId,
    boards: &[ObjectId],
    activity: Activity,
    from: SimTime,
    until: SimTime,
) -> usize {
    let mut rng = StdRng::seed_from_u64(event_seed(activity.seed, user.index(), u64::MAX));
    let mut t = from;
    let mut events = 0usize;
    let boards = boards.to_vec();
    loop {
        // Exponential inter-arrival with the configured mean.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = (-u.ln() * activity.mean_think.as_micros() as f64) as u64;
        t += SimTime::from_micros(gap.max(1_000));
        if t >= until {
            break;
        }
        let seed = event_seed(activity.seed, user.index(), events as u64);
        let boards = boards.clone();
        net.schedule_call(t, user, move |m: &mut Machine, ctx| {
            issue_random_move_timed(m, &boards, seed, ctx.now());
        });
        events += 1;
    }
    events
}

/// Picks a random legal move on a random board (as seen on the machine's
/// guesstimated state) and issues it. Returns the issue result, or `None`
/// when no move is available.
pub fn issue_random_move(m: &mut Machine, boards: &[ObjectId], seed: u64) -> Option<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    if boards.is_empty() {
        return None;
    }
    let board = boards[rng.gen_range(0..boards.len())];
    let moves = m.read::<Sudoku, _>(board, |s| s.candidate_moves())?;
    if moves.is_empty() {
        return None;
    }
    let (r, c, v) = moves[rng.gen_range(0..moves.len())];
    m.issue(sudoku::ops::update(board, r, c, v)).ok()
}

/// Schedules `user`'s move events with *dynamic* board discovery: each
/// event picks among all Sudoku objects in the machine's catalog at event
/// time, so boards created mid-run (e.g. fresh grids added as old ones fill
/// up) are used automatically.
pub fn schedule_user_dynamic(
    net: &mut SimNet<Machine>,
    user: MachineId,
    activity: Activity,
    from: SimTime,
    until: SimTime,
) -> usize {
    let mut rng = StdRng::seed_from_u64(event_seed(activity.seed, user.index(), u64::MAX));
    let mut t = from;
    let mut events = 0usize;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = (-u.ln() * activity.mean_think.as_micros() as f64) as u64;
        t += SimTime::from_micros(gap.max(1_000));
        if t >= until {
            break;
        }
        let seed = event_seed(activity.seed, user.index(), events as u64);
        net.schedule_call(t, user, move |m: &mut Machine, ctx| {
            let boards: Vec<ObjectId> = m
                .available_objects()
                .into_iter()
                .filter(|(_, t)| t == "Sudoku")
                .map(|(id, _)| id)
                .collect();
            issue_random_move_timed(m, &boards, seed, ctx.now());
        });
        events += 1;
    }
    events
}

/// Like [`issue_random_move`], but stamps the issue time so the runtime
/// records the operation's issue-to-commit latency (responsiveness ablation).
pub fn issue_random_move_timed(
    m: &mut Machine,
    boards: &[ObjectId],
    seed: u64,
    now: SimTime,
) -> Option<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    if boards.is_empty() {
        return None;
    }
    let board = boards[rng.gen_range(0..boards.len())];
    let moves = m.read::<Sudoku, _>(board, |s| s.candidate_moves())?;
    if moves.is_empty() {
        return None;
    }
    let (r, c, v) = moves[rng.gen_range(0..moves.len())];
    m.issue_at(sudoku::ops::update(board, r, c, v), None, now)
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use guesstimate_core::OpRegistry;
    use guesstimate_net::{LatencyModel, NetConfig};
    use guesstimate_runtime::{run_until_cohort, sim_cluster, MachineConfig};

    fn cluster(n: u32) -> SimNet<Machine> {
        let mut reg = OpRegistry::new();
        guesstimate_apps::sudoku::register(&mut reg);
        let cfg = MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_millis(800));
        sim_cluster(
            n,
            reg,
            cfg,
            NetConfig::lan(11).with_latency(LatencyModel::constant_ms(10)),
        )
    }

    #[test]
    fn scheduled_users_make_progress_and_converge() {
        let mut net = cluster(3);
        assert!(run_until_cohort(&mut net, SimTime::from_secs(5)));
        let board = net
            .actor_mut(MachineId::new(0))
            .unwrap()
            .create_instance(sudoku::example_puzzle());
        let t0 = net.now() + SimTime::from_secs(1);
        net.run_until(t0);
        let activity = Activity {
            mean_think: SimTime::from_millis(400),
            seed: 9,
        };
        let until = t0 + SimTime::from_secs(20);
        for i in 0..3 {
            let n = schedule_user(&mut net, MachineId::new(i), &[board], activity, t0, until);
            assert!(n > 10, "user {i} scheduled {n} events");
        }
        net.run_until(until + SimTime::from_secs(5));
        let filled: Vec<usize> = (0..3)
            .map(|i| {
                81 - net
                    .actor(MachineId::new(i))
                    .unwrap()
                    .read::<Sudoku, _>(board, |s| s.empty_count())
                    .unwrap()
            })
            .collect();
        assert!(filled[0] > 30, "board is being solved: {filled:?}");
        assert!(
            filled.windows(2).all(|w| w[0] == w[1]),
            "all machines agree: {filled:?}"
        );
    }

    #[test]
    fn event_seeds_are_deterministic_and_distinct() {
        assert_eq!(event_seed(1, 2, 3), event_seed(1, 2, 3));
        assert_ne!(event_seed(1, 2, 3), event_seed(1, 2, 4));
        assert_ne!(event_seed(1, 2, 3), event_seed(1, 3, 3));
        assert_ne!(event_seed(1, 2, 3), event_seed(2, 2, 3));
    }

    #[test]
    fn issue_random_move_handles_empty_inputs() {
        let mut net = cluster(1);
        net.run_until(SimTime::from_secs(1));
        let m = net.actor_mut(MachineId::new(0)).unwrap();
        assert_eq!(issue_random_move(m, &[], 1), None, "no boards");
        let ghost = ObjectId::new(MachineId::new(7), 7);
        assert_eq!(issue_random_move(m, &[ghost], 1), None, "unknown board");
    }
}
