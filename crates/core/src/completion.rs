//! Completion operations: commit-time callbacks on the issuing machine.
//!
//! A composite operation is a pair `(s, c)` of a shared operation and a
//! completion operation (§3). The completion runs **on the machine that
//! issued the operation**, **at commit time**, and receives the boolean
//! result of the *commit-time* execution — this is how applications learn
//! that an operation which succeeded optimistically at issue time was lost
//! to a conflict, and take remedial action (repaint the Sudoku square RED,
//! release a blocked sign-in thread, …).
//!
//! During *ApplyUpdatesFromMesh* the runtime first applies all committed
//! operations, queuing the completions of its own operations into a
//! `PendingCompletionRoutines` queue, and only then runs them (§4). The
//! [`CompletionQueue`] models that queue.

use std::collections::VecDeque;
use std::fmt;

use crate::ids::OpId;

/// A completion callback: receives the commit-time boolean of its operation.
///
/// The C# signature is `delegate void CompletionOp(bool v)`; local state the
/// completion needs (the paper's `G` component) is captured by the closure.
pub type CompletionFn = Box<dyn FnOnce(bool) + Send>;

/// A completion routine queued for execution, tagged with the operation it
/// belongs to and that operation's commit-time result.
pub struct PendingCompletion {
    /// The operation whose commitment produced this completion.
    pub op_id: OpId,
    /// The boolean result of the commit-time execution.
    pub committed_result: bool,
    /// The callback itself.
    pub completion: CompletionFn,
}

impl fmt::Debug for PendingCompletion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingCompletion")
            .field("op_id", &self.op_id)
            .field("committed_result", &self.committed_result)
            .finish()
    }
}

/// FIFO queue of completion routines awaiting execution — the paper's
/// `PendingCompletionRoutines`.
///
/// # Examples
///
/// ```
/// use guesstimate_core::{CompletionQueue, MachineId, OpId};
/// use std::sync::atomic::{AtomicBool, Ordering};
/// use std::sync::Arc;
///
/// let flag = Arc::new(AtomicBool::new(false));
/// let f = flag.clone();
/// let mut q = CompletionQueue::new();
/// q.push(
///     OpId::new(MachineId::new(0), 0),
///     true,
///     Box::new(move |b| f.store(b, Ordering::SeqCst)),
/// );
/// assert_eq!(q.run_all(), 1);
/// assert!(flag.load(Ordering::SeqCst));
/// ```
#[derive(Debug, Default)]
pub struct CompletionQueue {
    queue: VecDeque<PendingCompletion>,
}

impl CompletionQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CompletionQueue::default()
    }

    /// Number of queued completions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if no completions are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Queues `completion` for `op_id` with its commit-time result.
    pub fn push(&mut self, op_id: OpId, committed_result: bool, completion: CompletionFn) {
        self.queue.push_back(PendingCompletion {
            op_id,
            committed_result,
            completion,
        });
    }

    /// Runs every queued completion in FIFO order, returning how many ran.
    ///
    /// Completions run after the committed state has been copied onto the
    /// guesstimated state (§4 step ii), so reads they perform through the
    /// runtime observe post-commit state.
    pub fn run_all(&mut self) -> usize {
        let mut n = 0;
        while let Some(pc) = self.queue.pop_front() {
            (pc.completion)(pc.committed_result);
            n += 1;
        }
        n
    }

    /// Drains the queue without running, returning the pending entries.
    ///
    /// Used by drivers that must run completions on a specific thread.
    pub fn drain(&mut self) -> Vec<PendingCompletion> {
        self.queue.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MachineId;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn op(n: u64) -> OpId {
        OpId::new(MachineId::new(0), n)
    }

    #[test]
    fn runs_in_fifo_order_with_results() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut q = CompletionQueue::new();
        for (i, res) in [(0u64, true), (1, false), (2, true)] {
            let log = log.clone();
            q.push(op(i), res, Box::new(move |b| log.lock().push((i, b))));
        }
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert_eq!(q.run_all(), 3);
        assert!(q.is_empty());
        assert_eq!(*log.lock(), vec![(0, true), (1, false), (2, true)]);
    }

    #[test]
    fn run_all_on_empty_is_zero() {
        let mut q = CompletionQueue::new();
        assert_eq!(q.run_all(), 0);
    }

    #[test]
    fn drain_returns_without_running() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        let mut q = CompletionQueue::new();
        q.push(
            op(0),
            true,
            Box::new(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let drained = q.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(count.load(Ordering::SeqCst), 0, "not run by drain");
        assert_eq!(drained[0].op_id, op(0));
        assert!(drained[0].committed_result);
        assert!(format!("{:?}", drained[0]).contains("PendingCompletion"));
    }
}
