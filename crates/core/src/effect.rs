//! The operation effect language: read/write footprints over state keys.
//!
//! A shared-operation method may declare, alongside its apply function, an
//! [`EffectSpec`]: a function from the argument vector to the method's
//! [`Footprint`] — the set of object-state *keys* it may read and the set it
//! may write. Keys are `/`-separated paths into the object's canonical
//! snapshot (see [`crate::GState::snapshot`]), so a declared footprint can be
//! checked mechanically against observed snapshot diffs.
//!
//! Footprints feed two consumers:
//!
//! * the `guesstimate-analysis` crate, which refutes under-approximating
//!   write sets and derives a commutativity classification per method pair
//!   (disjoint write/write and read/write sets ⇒ the two invocations commute
//!   as state transformers); and
//! * the runtime, which — once the analysis has validated the declarations —
//!   uses footprint disjointness to skip rebuilding the guesstimated state
//!   when freshly committed remote operations commute with every pending
//!   local operation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::paths::{path_covers, paths_overlap};
use crate::registry::ArgView;

/// The read/write footprint of one method invocation (concrete arguments).
///
/// Keys are `/`-separated paths into the object's canonical snapshot. The
/// write set need not repeat keys in the read set: a method that both reads
/// and writes a key declares it in both sets (writes alone conflict with
/// other writes and reads of the same key anyway).
///
/// # Examples
///
/// ```
/// use guesstimate_core::Footprint;
/// let a = Footprint::new().writes(["grid/17"]).reads(["grid/12", "fixed/17"]);
/// let b = Footprint::new().writes(["grid/3"]).reads(["grid/4"]);
/// assert!(a.disjoint(&b));
/// let c = Footprint::new().reads(["grid/17"]);
/// assert!(!a.disjoint(&c), "c reads what a writes");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Footprint {
    /// Snapshot paths the invocation may read.
    pub reads: BTreeSet<String>,
    /// Snapshot paths the invocation may write.
    pub writes: BTreeSet<String>,
}

impl Footprint {
    /// An empty footprint (reads nothing, writes nothing).
    pub fn new() -> Self {
        Footprint::default()
    }

    /// Adds read keys.
    pub fn reads<I, S>(mut self, keys: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.reads.extend(keys.into_iter().map(Into::into));
        self
    }

    /// Adds write keys.
    pub fn writes<I, S>(mut self, keys: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.writes.extend(keys.into_iter().map(Into::into));
        self
    }

    /// Merges another footprint into this one (used for composite
    /// operations, where the union over-approximates either execution path).
    pub fn union(mut self, other: &Footprint) -> Self {
        self.reads.extend(other.reads.iter().cloned());
        self.writes.extend(other.writes.iter().cloned());
        self
    }

    /// True if the two footprints cannot interfere: no write/write and no
    /// read/write overlap (read/read sharing is always harmless).
    pub fn disjoint(&self, other: &Footprint) -> bool {
        let clash = |xs: &BTreeSet<String>, ys: &BTreeSet<String>| {
            xs.iter().any(|x| ys.iter().any(|y| paths_overlap(x, y)))
        };
        !clash(&self.writes, &other.writes)
            && !clash(&self.writes, &other.reads)
            && !clash(&self.reads, &other.writes)
    }

    /// True if some declared write key covers `path` (see [`path_covers`]).
    pub fn writes_cover(&self, path: &str) -> bool {
        self.writes.iter().any(|w| path_covers(w, path))
    }

    /// True if some declared read key covers `path` (see [`path_covers`]).
    ///
    /// Used by the access-witness containment check: an observed read is
    /// accounted for when the declared reads *or* writes cover it — a
    /// declared write already conflicts with every other access of the
    /// key, so reading a key one also writes needs no separate entry.
    pub fn reads_cover(&self, path: &str) -> bool {
        self.reads.iter().any(|r| path_covers(r, path))
    }
}

/// A method's declared effect: argument vector → footprint.
///
/// The function must be *total* and conservative: for any argument vector —
/// including malformed ones — it must return a footprint covering every key
/// the apply function could touch with those arguments. (A method that
/// rejects malformed arguments without touching state may return an empty
/// footprint for them.)
#[derive(Clone)]
pub struct EffectSpec {
    footprint: Arc<dyn Fn(ArgView<'_>) -> Footprint + Send + Sync>,
    self_commuting: bool,
}

impl EffectSpec {
    /// Wraps a footprint function.
    pub fn new(f: impl Fn(ArgView<'_>) -> Footprint + Send + Sync + 'static) -> Self {
        EffectSpec {
            footprint: Arc::new(f),
            self_commuting: false,
        }
    }

    /// Declares that two invocations of this method always commute with
    /// *each other* — in final state and results — even where their
    /// footprints overlap (e.g. a blind counter: `n += 1` twice yields the
    /// same tally in either order, and both report success).
    ///
    /// This is a **claim, not a proof**: the analysis crate's pairwise
    /// classifier accepts it for the diagonal pair only when its dynamic
    /// sweep finds no counterexample, and a refuting case is flagged as a
    /// static/semantic disagreement just like an under-declared footprint.
    pub fn self_commuting(mut self) -> Self {
        self.self_commuting = true;
        self
    }

    /// Whether the method declares diagonal commutativity.
    pub fn is_self_commuting(&self) -> bool {
        self.self_commuting
    }

    /// The declared footprint for one concrete argument vector.
    pub fn footprint(&self, args: ArgView<'_>) -> Footprint {
        (self.footprint)(args)
    }
}

impl fmt::Debug for EffectSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("EffectSpec(..)")
    }
}

/// A validated method-level commutativity matrix: the set of `(type, m1,
/// m2)` pairs proven (by the analysis crate's bounded-exhaustive validation)
/// to commute for *every* argument combination.
///
/// Pairs are stored order-normalized, so `commutes(t, a, b)` equals
/// `commutes(t, b, a)`. The runtime consults the matrix as a fast path
/// before falling back to argument-precise footprint disjointness.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommuteMatrix {
    pairs: BTreeMap<String, BTreeSet<(String, String)>>,
}

impl CommuteMatrix {
    /// An empty matrix (nothing is known to commute).
    pub fn new() -> Self {
        CommuteMatrix::default()
    }

    /// Records that `m1` and `m2` on `type_name` always commute.
    pub fn insert(&mut self, type_name: &str, m1: &str, m2: &str) {
        let (a, b) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        self.pairs
            .entry(type_name.to_owned())
            .or_default()
            .insert((a.to_owned(), b.to_owned()));
    }

    /// True if `(m1, m2)` on `type_name` was recorded as always commuting.
    pub fn commutes(&self, type_name: &str, m1: &str, m2: &str) -> bool {
        let (a, b) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        self.pairs
            .get(type_name)
            .is_some_and(|set| set.contains(&(a.to_owned(), b.to_owned())))
    }

    /// Number of recorded pairs across all types.
    pub fn len(&self) -> usize {
        self.pairs.values().map(BTreeSet::len).sum()
    }

    /// True if no pairs are recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.values().all(BTreeSet::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    #[test]
    fn disjointness_checks_ww_and_rw() {
        let w17 = Footprint::new().writes(["grid/17"]);
        let w17b = Footprint::new().writes(["grid/17"]);
        let w2 = Footprint::new().writes(["grid/2"]);
        let r17 = Footprint::new().reads(["grid/17"]);
        let rall = Footprint::new().reads(["grid"]);
        assert!(!w17.disjoint(&w17b), "write/write");
        assert!(w17.disjoint(&w2));
        assert!(!w17.disjoint(&r17), "write/read");
        assert!(!r17.disjoint(&w17), "read/write");
        assert!(
            r17.disjoint(&Footprint::new().reads(["grid/17"])),
            "read/read ok"
        );
        assert!(!rall.disjoint(&w17), "subtree read vs leaf write");
        assert!(Footprint::new().disjoint(&w17), "empty vs anything");
    }

    #[test]
    fn union_merges_both_sets() {
        let a = Footprint::new().reads(["x"]).writes(["y"]);
        let b = Footprint::new().reads(["z"]).writes(["y/1"]);
        let u = a.union(&b);
        assert!(u.reads.contains("x") && u.reads.contains("z"));
        assert!(u.writes.contains("y") && u.writes.contains("y/1"));
    }

    #[test]
    fn writes_cover_uses_ancestry() {
        let f = Footprint::new().writes(["events/party"]);
        assert!(f.writes_cover("events/party/attendees/0"));
        assert!(f.writes_cover("events/party"));
        assert!(!f.writes_cover("events"));
        assert!(!f.writes_cover("users/ann"));
    }

    #[test]
    fn effect_spec_is_parameterized_on_args() {
        let spec = EffectSpec::new(|a| match a.str(0) {
            Some(t) => Footprint::new().writes([format!("topics/{t}")]),
            None => Footprint::new(),
        });
        let v = args!["general"];
        let fp = spec.footprint(ArgView::new(&v));
        assert!(fp.writes.contains("topics/general"));
        let bad: Vec<crate::Value> = args![];
        assert_eq!(spec.footprint(ArgView::new(&bad)), Footprint::new());
        assert!(format!("{spec:?}").contains("EffectSpec"));
    }

    #[test]
    fn commute_matrix_normalizes_order() {
        let mut m = CommuteMatrix::new();
        assert!(m.is_empty());
        m.insert("T", "b", "a");
        assert!(m.commutes("T", "a", "b"));
        assert!(m.commutes("T", "b", "a"));
        assert!(!m.commutes("T", "a", "c"));
        assert!(!m.commutes("U", "a", "b"));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }
}
