//! Error types for the core programming model.

use std::error::Error;
use std::fmt;

use crate::ids::ObjectId;

/// Error raised by [`crate::GState::restore`] when a snapshot does not match
/// the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError {
    expected: String,
}

impl RestoreError {
    /// Creates a restore error describing the expected snapshot shape.
    pub fn shape(expected: impl Into<String>) -> Self {
        RestoreError {
            expected: expected.into(),
        }
    }

    /// The shape that was expected.
    pub fn expected(&self) -> &str {
        &self.expected
    }
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot shape mismatch, expected {}", self.expected)
    }
}

impl Error for RestoreError {}

/// Error raised while executing a [`crate::SharedOp`].
///
/// Execution errors are *programming* errors (unknown object, unregistered
/// method, type mismatches) and are distinct from an operation merely
/// *failing* (returning `false`), which is part of the model's semantics:
/// "a shared operation either returns true and satisfies its specification,
/// or returns false and does not modify the shared state" (§3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The operation referenced an object id not present in the store.
    UnknownObject(ObjectId),
    /// No apply function is registered for `(type_name, method)`.
    UnknownMethod {
        /// Registered type name of the target object.
        type_name: String,
        /// Requested method name.
        method: String,
    },
    /// No constructor is registered for a type name (during join/replication).
    UnknownType(String),
    /// An object had a different concrete type than the operation (or state
    /// copy) expected. Replicas register the same types under the same
    /// names, so this indicates registries that disagree across machines.
    TypeMismatch {
        /// The type the caller expected.
        expected: String,
        /// The registered type name actually found.
        actual: String,
    },
    /// An object targeted by an atomic operation disappeared from the store
    /// between execution on the overlay and commit of the overlay.
    VanishedObject(ObjectId),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownObject(id) => write!(f, "unknown shared object {id}"),
            ExecError::UnknownMethod { type_name, method } => {
                write!(f, "no method {method:?} registered for type {type_name:?}")
            }
            ExecError::UnknownType(t) => write!(f, "no constructor registered for type {t:?}"),
            ExecError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected:?}, found {actual:?}")
            }
            ExecError::VanishedObject(id) => {
                write!(f, "shared object {id} vanished before commit")
            }
        }
    }
}

impl Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MachineId;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ExecError::UnknownObject(ObjectId::new(MachineId::new(1), 2));
        assert_eq!(e.to_string(), "unknown shared object obj-m1-2");
        let e = ExecError::UnknownMethod {
            type_name: "Sudoku".into(),
            method: "update".into(),
        };
        assert!(e.to_string().contains("update"));
        let e = ExecError::UnknownType("Foo".into());
        assert!(e.to_string().contains("Foo"));
        let e = ExecError::TypeMismatch {
            expected: "Pair".into(),
            actual: "Other".into(),
        };
        assert!(e.to_string().contains("Pair") && e.to_string().contains("Other"));
        let e = ExecError::VanishedObject(ObjectId::new(MachineId::new(2), 5));
        assert!(e.to_string().contains("obj-m2-5"));
        let r = RestoreError::shape("i64");
        assert!(r.to_string().contains("i64"));
        assert_eq!(r.expected(), "i64");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecError>();
        assert_send_sync::<RestoreError>();
    }
}
