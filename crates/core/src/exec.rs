//! The operation execution engine.
//!
//! Executes a [`SharedOp`] tree against an object store, implementing the
//! semantics of §2/§4 of the paper:
//!
//! * A **primitive** operation invokes its registered apply function and
//!   yields that function's boolean result.
//! * An **`Atomic`** block is all-or-nothing: children execute against a
//!   per-object **copy-on-write overlay** ("the first time an object is
//!   updated within an atomic operation a temporary copy of its state is
//!   made and from then on all updates within the atomic operation are made
//!   to this copy", §4). Only if every child succeeds is the overlay copied
//!   back into the underlying store.
//! * An **`OrElse`** tries its first child and, only if that fails, its
//!   second; at most one of the two succeeds.
//!
//! The same engine runs at issue time (against the guesstimated store), at
//! replay time (re-establishing `sg = [P](sc)`) and at commit time (against
//! the committed store) — which is what makes the issue/commit results
//! comparable, and their occasional disagreement a *conflict*.

use std::collections::BTreeMap;

use crate::error::ExecError;
use crate::ids::ObjectId;
use crate::object::SharedObject;
use crate::op::SharedOp;
use crate::registry::{ArgView, OpRegistry};
use crate::store::ObjectStore;

/// Result of executing a shared operation: the model's boolean, made a type.
///
/// `Failure` is *not* an error — it is the defined outcome of an operation
/// whose precondition does not hold, and by contract leaves the state
/// unchanged. Programming errors (unknown objects/methods) surface as
/// [`ExecError`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecOutcome {
    /// The operation succeeded and may have updated the shared state.
    Success,
    /// The operation failed and left the shared state unchanged.
    Failure,
}

impl ExecOutcome {
    /// True for [`ExecOutcome::Success`].
    pub fn is_success(self) -> bool {
        matches!(self, ExecOutcome::Success)
    }

    /// The model's boolean: `true` for success.
    pub fn as_bool(self) -> bool {
        self.is_success()
    }
}

impl From<bool> for ExecOutcome {
    fn from(b: bool) -> Self {
        if b {
            ExecOutcome::Success
        } else {
            ExecOutcome::Failure
        }
    }
}

/// Mutable access to a set of shared objects.
///
/// Implemented by [`ObjectStore`] (direct access) and [`CowOverlay`]
/// (copy-on-write access inside `Atomic` blocks), letting the execution
/// engine recurse uniformly through nested atomics.
pub trait ObjectAccess {
    /// True if `id` resolves to an object.
    fn exists(&self, id: ObjectId) -> bool;

    /// Clones the object under `id` (used to populate overlays).
    fn clone_object(&self, id: ObjectId) -> Option<Box<dyn SharedObject>>;

    /// Runs `f` against the object under `id`, returning its boolean, or
    /// `None` if the object does not exist.
    fn apply(
        &mut self,
        id: ObjectId,
        f: &mut dyn FnMut(&mut (dyn SharedObject + 'static)) -> bool,
    ) -> Option<bool>;
}

/// Per-object copy-on-write overlay used for `Atomic` execution.
///
/// Objects are copied from the base on first touch; all subsequent access
/// inside the atomic block goes to the copy. [`CowOverlay::commit`] writes
/// the copies back; dropping the overlay discards them.
///
/// Overlays nest: an inner `Atomic` builds a `CowOverlay` whose base is the
/// outer overlay, so an inner rollback never disturbs outer tentative state.
pub struct CowOverlay<'a, B: ObjectAccess + ?Sized> {
    base: &'a mut B,
    copies: BTreeMap<ObjectId, Box<dyn SharedObject>>,
}

impl<'a, B: ObjectAccess + ?Sized> CowOverlay<'a, B> {
    /// Creates an empty overlay over `base`.
    pub fn new(base: &'a mut B) -> Self {
        CowOverlay {
            base,
            copies: BTreeMap::new(),
        }
    }

    /// Number of objects copied so far (diagnostics / benchmarks).
    pub fn touched(&self) -> usize {
        self.copies.len()
    }

    /// Writes every touched copy back into the base store.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::VanishedObject`] if a touched object no longer
    /// exists in the base (it existed when it was copied, so something
    /// removed it mid-operation), or [`ExecError::TypeMismatch`] if the
    /// object under that id changed concrete type. Both indicate the store
    /// was mutated behind the overlay's back; copies written before the
    /// failing one remain applied, so callers must treat the store as
    /// corrupted and surface the error rather than continue.
    pub fn commit(self) -> Result<(), ExecError> {
        let CowOverlay { base, copies } = self;
        for (id, copy) in copies {
            let mut copy_err = None;
            let applied = base.apply(id, &mut |obj| {
                copy_err = obj.copy_from(&*copy).err();
                true
            });
            if applied.is_none() {
                return Err(ExecError::VanishedObject(id));
            }
            if let Some(e) = copy_err {
                return Err(e);
            }
        }
        Ok(())
    }
}

impl<B: ObjectAccess + ?Sized> std::fmt::Debug for CowOverlay<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CowOverlay")
            .field("touched", &self.copies.len())
            .finish()
    }
}

impl<B: ObjectAccess + ?Sized> ObjectAccess for CowOverlay<'_, B> {
    fn exists(&self, id: ObjectId) -> bool {
        self.copies.contains_key(&id) || self.base.exists(id)
    }

    fn clone_object(&self, id: ObjectId) -> Option<Box<dyn SharedObject>> {
        match self.copies.get(&id) {
            Some(c) => Some(c.clone_boxed()),
            None => self.base.clone_object(id),
        }
    }

    fn apply(
        &mut self,
        id: ObjectId,
        f: &mut dyn FnMut(&mut (dyn SharedObject + 'static)) -> bool,
    ) -> Option<bool> {
        if !self.copies.contains_key(&id) {
            let copy = self.base.clone_object(id)?;
            self.copies.insert(id, copy);
        }
        self.copies.get_mut(&id).map(|obj| f(&mut **obj))
    }
}

/// Executes `op` against an arbitrary [`ObjectAccess`] (store or overlay).
///
/// # Errors
///
/// Returns [`ExecError`] for unknown objects, unregistered methods, type
/// mismatches between an object and its apply function, or objects that
/// vanish between an `Atomic`'s execution and its commit. An error inside an
/// `Atomic` discards the overlay; an error inside either arm of an `OrElse`
/// aborts the whole operation (a programming error is never "handled" by
/// falling through to the alternative).
pub fn execute_against(
    op: &SharedOp,
    access: &mut dyn ObjectAccess,
    registry: &OpRegistry,
) -> Result<bool, ExecError> {
    match op {
        SharedOp::Primitive {
            object,
            method,
            args,
        } => {
            let mut routing_err: Option<ExecError> = None;
            let outcome = access.apply(*object, &mut |obj| match registry
                .lookup(obj.type_name(), method)
                .and_then(|f| f(obj, ArgView::new(args)))
            {
                Ok(b) => b,
                Err(e) => {
                    routing_err = Some(e);
                    false
                }
            });
            match outcome {
                None => Err(ExecError::UnknownObject(*object)),
                Some(b) => match routing_err {
                    Some(e) => Err(e),
                    None => Ok(b),
                },
            }
        }
        SharedOp::Atomic(ops) => {
            let mut overlay = CowOverlay::new(access);
            for child in ops {
                if !execute_against(child, &mut overlay, registry)? {
                    return Ok(false); // overlay dropped: nothing visible
                }
            }
            overlay.commit()?;
            Ok(true)
        }
        SharedOp::OrElse(first, second) => {
            if execute_against(first, access, registry)? {
                Ok(true)
            } else {
                execute_against(second, access, registry)
            }
        }
    }
}

/// Executes `op` against a store, yielding the model's boolean as an
/// [`ExecOutcome`].
///
/// This is the entry point the runtime uses at issue, replay and commit time.
///
/// # Errors
///
/// See [`execute_against`].
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn execute(
    op: &SharedOp,
    store: &mut ObjectStore,
    registry: &OpRegistry,
) -> Result<ExecOutcome, ExecError> {
    execute_against(op, store, registry).map(ExecOutcome::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;
    use crate::error::RestoreError;
    use crate::ids::MachineId;
    use crate::object::GState;
    use crate::value::Value;

    /// A bank-account-like object: `deposit(n)` always succeeds,
    /// `withdraw(n)` fails if the balance would go negative.
    #[derive(Clone, Default, Debug, PartialEq)]
    struct Account {
        balance: i64,
    }

    impl GState for Account {
        const TYPE_NAME: &'static str = "Account";
        fn snapshot(&self) -> Value {
            Value::from(self.balance)
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            self.balance = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
            Ok(())
        }
    }

    fn registry() -> OpRegistry {
        let mut r = OpRegistry::new();
        r.register_type::<Account>();
        r.register_method::<Account>("deposit", |acc, a| {
            let Some(n) = a.i64(0) else { return false };
            acc.balance += n;
            true
        });
        r.register_method::<Account>("withdraw", |acc, a| {
            let Some(n) = a.i64(0) else { return false };
            if acc.balance < n {
                return false;
            }
            acc.balance -= n;
            true
        });
        r
    }

    fn oid(s: u64) -> ObjectId {
        ObjectId::new(MachineId::new(0), s)
    }

    fn store_with(balances: &[i64]) -> ObjectStore {
        let mut s = ObjectStore::new();
        for (i, &b) in balances.iter().enumerate() {
            s.insert(oid(i as u64), Box::new(Account { balance: b }));
        }
        s
    }

    fn balance(s: &ObjectStore, i: u64) -> i64 {
        s.get_as::<Account>(oid(i)).unwrap().balance
    }

    #[test]
    fn primitive_success_and_failure() {
        let r = registry();
        let mut s = store_with(&[10]);
        let dep = SharedOp::primitive(oid(0), "deposit", args![5]);
        assert_eq!(execute(&dep, &mut s, &r).unwrap(), ExecOutcome::Success);
        assert_eq!(balance(&s, 0), 15);

        let wd = SharedOp::primitive(oid(0), "withdraw", args![100]);
        assert_eq!(execute(&wd, &mut s, &r).unwrap(), ExecOutcome::Failure);
        assert_eq!(balance(&s, 0), 15, "failed op leaves state unchanged");
    }

    #[test]
    fn unknown_object_and_method_are_errors() {
        let r = registry();
        let mut s = store_with(&[0]);
        let op = SharedOp::primitive(oid(9), "deposit", args![1]);
        assert_eq!(
            execute(&op, &mut s, &r).unwrap_err(),
            ExecError::UnknownObject(oid(9))
        );
        let op = SharedOp::primitive(oid(0), "bogus", args![]);
        assert!(matches!(
            execute(&op, &mut s, &r).unwrap_err(),
            ExecError::UnknownMethod { .. }
        ));
    }

    #[test]
    fn atomic_commits_all_effects_on_success() {
        let r = registry();
        let mut s = store_with(&[10, 0]);
        // Transfer 10 from account 0 to account 1.
        let transfer = SharedOp::atomic(vec![
            SharedOp::primitive(oid(0), "withdraw", args![10]),
            SharedOp::primitive(oid(1), "deposit", args![10]),
        ]);
        assert_eq!(
            execute(&transfer, &mut s, &r).unwrap(),
            ExecOutcome::Success
        );
        assert_eq!(balance(&s, 0), 0);
        assert_eq!(balance(&s, 1), 10);
    }

    #[test]
    fn atomic_rolls_back_partial_effects_on_failure() {
        let r = registry();
        let mut s = store_with(&[10, 0]);
        // Deposit succeeds first, then withdraw fails: nothing is visible.
        let op = SharedOp::atomic(vec![
            SharedOp::primitive(oid(1), "deposit", args![10]),
            SharedOp::primitive(oid(0), "withdraw", args![100]),
        ]);
        assert_eq!(execute(&op, &mut s, &r).unwrap(), ExecOutcome::Failure);
        assert_eq!(balance(&s, 0), 10);
        assert_eq!(balance(&s, 1), 0, "atomic discarded the deposit");
    }

    #[test]
    fn empty_atomic_succeeds_vacuously() {
        let r = registry();
        let mut s = store_with(&[1]);
        assert_eq!(
            execute(&SharedOp::atomic(vec![]), &mut s, &r).unwrap(),
            ExecOutcome::Success
        );
        assert_eq!(balance(&s, 0), 1);
    }

    #[test]
    fn atomic_error_discards_overlay() {
        let r = registry();
        let mut s = store_with(&[10]);
        let op = SharedOp::atomic(vec![
            SharedOp::primitive(oid(0), "deposit", args![5]),
            SharedOp::primitive(oid(0), "bogus", args![]),
        ]);
        assert!(execute(&op, &mut s, &r).is_err());
        assert_eq!(balance(&s, 0), 10, "error rolled back tentative deposit");
    }

    #[test]
    fn or_else_prefers_first_alternative() {
        let r = registry();
        let mut s = store_with(&[10]);
        let op = SharedOp::primitive(oid(0), "withdraw", args![5]).or_else(SharedOp::primitive(
            oid(0),
            "withdraw",
            args![1],
        ));
        assert_eq!(execute(&op, &mut s, &r).unwrap(), ExecOutcome::Success);
        assert_eq!(balance(&s, 0), 5, "only the first arm ran");
    }

    #[test]
    fn or_else_falls_through_on_failure() {
        let r = registry();
        let mut s = store_with(&[10]);
        let op = SharedOp::primitive(oid(0), "withdraw", args![100]).or_else(SharedOp::primitive(
            oid(0),
            "withdraw",
            args![1],
        ));
        assert_eq!(execute(&op, &mut s, &r).unwrap(), ExecOutcome::Success);
        assert_eq!(balance(&s, 0), 9, "second arm ran after first failed");
    }

    #[test]
    fn or_else_fails_when_both_fail() {
        let r = registry();
        let mut s = store_with(&[0]);
        let op = SharedOp::primitive(oid(0), "withdraw", args![1]).or_else(SharedOp::primitive(
            oid(0),
            "withdraw",
            args![2],
        ));
        assert_eq!(execute(&op, &mut s, &r).unwrap(), ExecOutcome::Failure);
        assert_eq!(balance(&s, 0), 0);
    }

    #[test]
    fn nested_atomic_inner_rollback_preserves_outer_tentative_state() {
        let r = registry();
        let mut s = store_with(&[10, 0]);
        // Outer atomic: deposit to 1, then an inner atomic that fails,
        // wrapped in an OrElse so the outer can still succeed.
        let inner_failing = SharedOp::atomic(vec![
            SharedOp::primitive(oid(1), "deposit", args![100]),
            SharedOp::primitive(oid(0), "withdraw", args![999]),
        ]);
        let op = SharedOp::atomic(vec![
            SharedOp::primitive(oid(1), "deposit", args![1]),
            inner_failing.or_else(SharedOp::primitive(oid(0), "withdraw", args![1])),
        ]);
        assert_eq!(execute(&op, &mut s, &r).unwrap(), ExecOutcome::Success);
        assert_eq!(balance(&s, 1), 1, "outer deposit survived inner rollback");
        assert_eq!(balance(&s, 0), 9, "fallback arm applied");
    }

    #[test]
    fn nested_atomic_failure_propagates_to_outer() {
        let r = registry();
        let mut s = store_with(&[10, 0]);
        let op = SharedOp::atomic(vec![
            SharedOp::primitive(oid(1), "deposit", args![1]),
            SharedOp::atomic(vec![SharedOp::primitive(oid(0), "withdraw", args![999])]),
        ]);
        assert_eq!(execute(&op, &mut s, &r).unwrap(), ExecOutcome::Failure);
        assert_eq!(balance(&s, 0), 10);
        assert_eq!(balance(&s, 1), 0);
    }

    #[test]
    fn cow_overlay_touches_only_written_objects() {
        let r = registry();
        let mut s = store_with(&[1, 2, 3]);
        let mut overlay = CowOverlay::new(&mut s);
        let op = SharedOp::primitive(oid(1), "deposit", args![1]);
        assert!(execute_against(&op, &mut overlay, &r).unwrap());
        assert_eq!(overlay.touched(), 1);
    }

    #[test]
    fn cow_overlay_discard_leaves_base_untouched() {
        let r = registry();
        let mut s = store_with(&[1]);
        {
            let mut overlay = CowOverlay::new(&mut s);
            let op = SharedOp::primitive(oid(0), "deposit", args![100]);
            assert!(execute_against(&op, &mut overlay, &r).unwrap());
            // drop without commit
        }
        assert_eq!(balance(&s, 0), 1);
    }

    #[test]
    fn cow_overlay_exists_and_clone_see_through() {
        let s0 = store_with(&[5]);
        let mut s = s0;
        let overlay = CowOverlay::new(&mut s);
        assert!(overlay.exists(oid(0)));
        assert!(!overlay.exists(oid(7)));
        let cloned = overlay.clone_object(oid(0)).unwrap();
        assert_eq!(
            cloned.as_any().downcast_ref::<Account>().unwrap().balance,
            5
        );
        assert!(overlay.clone_object(oid(7)).is_none());
    }

    #[test]
    fn or_else_arms_with_atomic_do_not_leak_state() {
        // An OrElse whose first arm is an Atomic that partially succeeds:
        // the atomic's CoW must hide the partial effects before the second
        // arm runs.
        let r = registry();
        let mut s = store_with(&[10, 0]);
        let op = SharedOp::atomic(vec![
            SharedOp::primitive(oid(1), "deposit", args![7]),
            SharedOp::primitive(oid(0), "withdraw", args![999]),
        ])
        .or_else(SharedOp::primitive(oid(1), "deposit", args![1]));
        assert_eq!(execute(&op, &mut s, &r).unwrap(), ExecOutcome::Success);
        assert_eq!(balance(&s, 1), 1, "only the fallback deposit is visible");
    }

    #[test]
    fn or_else_inside_atomic_hides_failed_arm_from_the_fallback() {
        // Inside an `Atomic`, an `OrElse` whose first arm mutates two
        // objects under its CoW overlay before failing. The fallback arm
        // must observe pristine state: its withdraw can only succeed if the
        // discarded tentative deposit leaked, so a `Failure` outcome (and
        // rollback of the outer atomic's own tentative write) proves the
        // overlay hid it.
        let r = registry();
        let mut s = store_with(&[10, 0]);
        let first_arm = SharedOp::atomic(vec![
            SharedOp::primitive(oid(1), "deposit", args![100]),
            SharedOp::primitive(oid(0), "withdraw", args![999]),
        ]);
        let op = SharedOp::atomic(vec![
            SharedOp::primitive(oid(0), "deposit", args![1]),
            first_arm.or_else(SharedOp::primitive(oid(1), "withdraw", args![50])),
        ]);
        assert_eq!(execute(&op, &mut s, &r).unwrap(), ExecOutcome::Failure);
        assert_eq!(balance(&s, 0), 10, "outer tentative deposit rolled back");
        assert_eq!(balance(&s, 1), 0, "inner tentative deposit never visible");
    }

    #[test]
    fn atomic_inside_or_else_falls_through_without_visible_state_change() {
        // The failing first arm deposits into both accounts under its
        // overlay before failing; the fallback transfer must run from the
        // pristine balances. The final [0, 10] split is unreachable if any
        // tentative deposit stayed visible ([3, 14] would result instead).
        let r = registry();
        let mut s = store_with(&[10, 0]);
        let op = SharedOp::atomic(vec![
            SharedOp::primitive(oid(0), "deposit", args![3]),
            SharedOp::primitive(oid(1), "deposit", args![4]),
            SharedOp::primitive(oid(0), "withdraw", args![999]),
        ])
        .or_else(SharedOp::atomic(vec![
            SharedOp::primitive(oid(0), "withdraw", args![10]),
            SharedOp::primitive(oid(1), "deposit", args![10]),
        ]));
        assert_eq!(execute(&op, &mut s, &r).unwrap(), ExecOutcome::Success);
        assert_eq!(balance(&s, 0), 0, "fallback withdrew from the pristine 10");
        assert_eq!(balance(&s, 1), 10, "only the fallback deposit is visible");
    }

    /// An [`ObjectAccess`] in which one object can be cloned (so overlays
    /// can copy it) but never applied against — simulating an object removed
    /// from the store between an atomic's execution and its commit.
    struct VanishingStore {
        inner: ObjectStore,
        vanished: ObjectId,
    }

    impl ObjectAccess for VanishingStore {
        fn exists(&self, id: ObjectId) -> bool {
            self.inner.exists(id)
        }
        fn clone_object(&self, id: ObjectId) -> Option<Box<dyn SharedObject>> {
            self.inner.clone_object(id)
        }
        fn apply(
            &mut self,
            id: ObjectId,
            f: &mut dyn FnMut(&mut (dyn SharedObject + 'static)) -> bool,
        ) -> Option<bool> {
            if id == self.vanished {
                return None;
            }
            self.inner.apply(id, f)
        }
    }

    #[test]
    fn commit_surfaces_vanished_object() {
        let r = registry();
        let mut s = VanishingStore {
            inner: store_with(&[10]),
            vanished: oid(0),
        };
        // The deposit executes on the overlay's copy (cloning from the base
        // still works); at commit time the base refuses to resolve the
        // object, as if it had been removed mid-operation.
        let op = SharedOp::atomic(vec![SharedOp::primitive(oid(0), "deposit", args![5])]);
        assert_eq!(
            execute_against(&op, &mut s, &r).unwrap_err(),
            ExecError::VanishedObject(oid(0))
        );
    }

    /// A base that clones objects as `Account` but hands `apply` a
    /// different concrete type, simulating an id whose object changed type
    /// behind the overlay's back.
    struct TypeSwappingStore {
        account: Account,
        swapped: Blob,
    }

    #[derive(Clone, Default, Debug)]
    struct Blob;
    impl GState for Blob {
        const TYPE_NAME: &'static str = "Blob";
        fn snapshot(&self) -> Value {
            Value::Unit
        }
        fn restore(&mut self, _: &Value) -> Result<(), RestoreError> {
            Ok(())
        }
    }

    impl ObjectAccess for TypeSwappingStore {
        fn exists(&self, id: ObjectId) -> bool {
            id == oid(0)
        }
        fn clone_object(&self, id: ObjectId) -> Option<Box<dyn SharedObject>> {
            (id == oid(0)).then(|| {
                let b: Box<dyn SharedObject> = Box::new(self.account.clone());
                b
            })
        }
        fn apply(
            &mut self,
            id: ObjectId,
            f: &mut dyn FnMut(&mut (dyn SharedObject + 'static)) -> bool,
        ) -> Option<bool> {
            (id == oid(0)).then(|| f(&mut self.swapped))
        }
    }

    #[test]
    fn commit_surfaces_type_mismatch() {
        let r = registry();
        let mut s = TypeSwappingStore {
            account: Account { balance: 10 },
            swapped: Blob,
        };
        let op = SharedOp::atomic(vec![SharedOp::primitive(oid(0), "deposit", args![5])]);
        assert_eq!(
            execute_against(&op, &mut s, &r).unwrap_err(),
            ExecError::TypeMismatch {
                expected: "Blob".into(),
                actual: "Account".into(),
            }
        );
    }

    #[test]
    fn exec_outcome_conversions() {
        assert!(ExecOutcome::Success.is_success());
        assert!(!ExecOutcome::Failure.is_success());
        assert_eq!(ExecOutcome::from(true), ExecOutcome::Success);
        assert!(ExecOutcome::from(true).as_bool());
        assert!(!ExecOutcome::from(false).as_bool());
    }
}
