//! Identifier newtypes for machines, shared objects and operations.
//!
//! The paper identifies machines by an index `i ∈ 1..|M|`, shared objects by
//! a runtime-assigned "unique identifier" string, and operations by
//! `(machineID, operationnumber)` pairs whose lexicographic order determines
//! the commit order within a synchronization round (§4, *ApplyUpdatesFromMesh*).

use std::fmt;

/// Identity of a machine participating in the distributed system.
///
/// Machines are the unit of replication: each machine owns a committed and a
/// guesstimated replica of every shared object it has joined.
///
/// # Examples
///
/// ```
/// use guesstimate_core::MachineId;
/// let m = MachineId::new(3);
/// assert_eq!(m.to_string(), "m3");
/// assert!(MachineId::new(2) < m);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MachineId(u32);

impl MachineId {
    /// Creates a machine id from a raw index.
    pub const fn new(index: u32) -> Self {
        MachineId(index)
    }

    /// Returns the raw index of this machine.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl From<u32> for MachineId {
    fn from(index: u32) -> Self {
        MachineId(index)
    }
}

/// Unique identity of a shared object.
///
/// In the paper `Guesstimate.CreateInstance` assigns each shared object a
/// globally unique identifier string. We make ids unique *without
/// coordination* by pairing the creating machine with a per-machine creation
/// counter, which also yields a total order (useful for deterministic
/// iteration in [`crate::ObjectStore`]).
///
/// # Examples
///
/// ```
/// use guesstimate_core::{MachineId, ObjectId};
/// let id = ObjectId::new(MachineId::new(1), 7);
/// assert_eq!(id.to_string(), "obj-m1-7");
/// assert_eq!(ObjectId::parse("obj-m1-7"), Some(id));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObjectId {
    creator: MachineId,
    seq: u64,
}

impl ObjectId {
    /// Creates an object id from the creating machine and its creation counter.
    pub const fn new(creator: MachineId, seq: u64) -> Self {
        ObjectId { creator, seq }
    }

    /// The machine that created the object.
    pub const fn creator(self) -> MachineId {
        self.creator
    }

    /// The creation sequence number on the creating machine.
    pub const fn seq(self) -> u64 {
        self.seq
    }

    /// Parses the `Display` form (`obj-m<idx>-<seq>`) back into an id.
    ///
    /// Returns `None` if `s` is not in the canonical form. This is the analog
    /// of looking an object up by the paper's `uniqueID` string.
    pub fn parse(s: &str) -> Option<Self> {
        let rest = s.strip_prefix("obj-m")?;
        let (idx, seq) = rest.split_once('-')?;
        Some(ObjectId::new(
            MachineId::new(idx.parse().ok()?),
            seq.parse().ok()?,
        ))
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj-{}-{}", self.creator, self.seq)
    }
}

/// Identity of an issued composite operation: `(machineID, operationnumber)`.
///
/// The derived lexicographic `Ord` (machine first, then sequence number) is
/// exactly the commit order the runtime uses when applying a consolidated
/// pending list during *ApplyUpdatesFromMesh* (§4).
///
/// # Examples
///
/// ```
/// use guesstimate_core::{MachineId, OpId};
/// let a = OpId::new(MachineId::new(0), 9);
/// let b = OpId::new(MachineId::new(1), 0);
/// assert!(a < b, "machine id dominates the order");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct OpId {
    machine: MachineId,
    seq: u64,
}

impl OpId {
    /// Creates an operation id.
    pub const fn new(machine: MachineId, seq: u64) -> Self {
        OpId { machine, seq }
    }

    /// The machine that issued the operation.
    pub const fn machine(self) -> MachineId {
        self.machine
    }

    /// The per-machine issue sequence number.
    pub const fn seq(self) -> u64 {
        self.seq
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op-{}-{}", self.machine, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_id_roundtrip_and_order() {
        let ids: Vec<MachineId> = (0..5).map(MachineId::new).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(MachineId::new(42).index(), 42);
        assert_eq!(MachineId::from(7u32), MachineId::new(7));
    }

    #[test]
    fn object_id_display_parse_roundtrip() {
        let id = ObjectId::new(MachineId::new(12), 345);
        assert_eq!(ObjectId::parse(&id.to_string()), Some(id));
        assert_eq!(ObjectId::parse("nonsense"), None);
        assert_eq!(ObjectId::parse("obj-m1"), None);
        assert_eq!(ObjectId::parse("obj-mx-1"), None);
        assert_eq!(ObjectId::parse("obj-m1-x"), None);
    }

    #[test]
    fn op_id_lexicographic_order_matches_paper() {
        // §4: apply in lexicographic order of (machineID, operationnumber).
        let mut ops = vec![
            OpId::new(MachineId::new(1), 0),
            OpId::new(MachineId::new(0), 2),
            OpId::new(MachineId::new(0), 1),
            OpId::new(MachineId::new(2), 0),
        ];
        ops.sort();
        assert_eq!(
            ops,
            vec![
                OpId::new(MachineId::new(0), 1),
                OpId::new(MachineId::new(0), 2),
                OpId::new(MachineId::new(1), 0),
                OpId::new(MachineId::new(2), 0),
            ]
        );
    }

    #[test]
    fn op_id_display() {
        assert_eq!(OpId::new(MachineId::new(2), 9).to_string(), "op-m2-9");
    }
}
