//! A minimal JSON value, writer and recursive-descent parser.
//!
//! The repo deliberately carries no serialization dependency (the
//! container is offline; see `shims/`), and the handful of artifacts that
//! cross tool boundaries — the analyzer's `--json` archive, the model
//! checker's replayable schedule files — are small and schema-stable. A
//! few hundred lines of hand-rolled JSON beats a dependency here, and the
//! parser doubles as the reader for both consumers.
//!
//! Numbers are kept as `f64` (both producers only emit booleans, strings
//! and small non-negative integers, all exactly representable).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see module docs on `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    List(Vec<Json>),
    /// An object. `BTreeMap` keeps rendering deterministic.
    Map(BTreeMap<String, Json>),
}

impl Json {
    /// The string behind a `Str`, if that is what this is.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements behind a `List`, if that is what this is.
    pub fn as_list(&self) -> Option<&[Json]> {
        match self {
            Json::List(v) => Some(v),
            _ => None,
        }
    }

    /// The map behind a `Map`, if that is what this is.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The number behind a `Num`, if that is what this is.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number behind a `Num` as a `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean behind a `Bool`, if that is what this is.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup on a `Map` (None for absent keys and non-maps).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_map()?.get(key)
    }

    /// Parses one JSON document (trailing whitespace allowed, anything
    /// else after the value is an error).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description with a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => f.write_str(&escape(s)),
            Json::List(v) => {
                f.write_str("[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Json::Map(m) => {
                f.write_str("{")?;
                for (i, (k, x)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{x}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Renders a string as a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::List(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::List(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Map(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Map(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_owned())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not produced by our writers;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    if *pos == start {
        return Err(format!("expected a value at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structures() {
        let src = r#"{"a": [1, 2.5, -3], "b": {"x": null, "y": true}, "s": "q\"\\\n"}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_list().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("y").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("s").unwrap().as_str(), Some("q\"\\\n"));
        // Render → reparse is identity.
        let rendered = v.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(12.0).to_string(), "12");
        assert_eq!(Json::Num(12.0).as_u64(), Some(12));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(0.5).as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::parse(r#""café ☕""#).unwrap();
        assert_eq!(v.as_str(), Some("café ☕"));
        assert_eq!(escape("a\tb\u{1}"), "\"a\\tb\\u0001\"");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::List(vec![]));
        assert_eq!(Json::parse(" { } ").unwrap(), Json::Map(BTreeMap::new()));
    }
}
