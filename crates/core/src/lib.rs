//! # guesstimate-core
//!
//! Core programming model for **GUESSTIMATE** (Rajan, Rajamani, Yaduvanshi,
//! PLDI 2010): a programming model for collaborative distributed systems in
//! which every machine keeps two replicas of each shared object — a
//! *committed state* that is identical on all machines, and a *guesstimated
//! state* on which operations execute immediately and without blocking.
//!
//! This crate contains the machine-independent pieces of the model:
//!
//! * [`Value`] — a dynamic, totally ordered, hashable value type used as the
//!   argument vector (and state snapshot encoding) of replayable operations.
//! * [`SharedObject`] / [`GState`] — the Rust analog of the paper's
//!   `GSharedObject` abstract base class. Application state derives [`GState`]
//!   (a `Clone + Default` type with [`GState::snapshot`]/[`GState::restore`])
//!   and receives the object-safe [`SharedObject`] implementation for free.
//! * [`OpRegistry`] — the replacement for .NET reflection: a registry mapping
//!   `(type name, method name)` to an apply function, so that an operation
//!   created on one machine can be re-executed identically on every replica.
//! * [`SharedOp`] — the operation grammar from §2 of the paper:
//!   `SharedOp := PrimitiveOp | Atomic { SharedOp* } | SharedOp OrElse SharedOp`.
//! * [`ObjectStore`] — a keyed store of boxed shared objects, used for both
//!   the committed and the guesstimated replica, with whole-store copying
//!   (the `sc → sg` copy performed at the end of each synchronization).
//! * [`execute`] — the operation execution engine, including per-object
//!   copy-on-write for `Atomic` (all-or-nothing) and priority semantics for
//!   `OrElse`.
//! * [`execute_witnessed`] — the access-witness instrumentation mode: the
//!   same execution, additionally observing the actual read/write paths
//!   ([`AccessWitness`]) so declared [`EffectSpec`] footprints can be
//!   *checked* instead of trusted (see [`witness`]).
//!
//! The distributed runtime that issues, propagates and commits operations
//! lives in the `guesstimate-runtime` crate; the simulated peer-to-peer mesh
//! substrate lives in `guesstimate-net`.
//!
//! ## Example
//!
//! ```
//! use guesstimate_core::{
//!     args, ExecOutcome, GState, ObjectStore, OpRegistry, SharedOp, Value,
//! };
//!
//! #[derive(Clone, Default, Debug, PartialEq)]
//! struct Counter {
//!     n: i64,
//! }
//!
//! impl GState for Counter {
//!     const TYPE_NAME: &'static str = "Counter";
//!     fn snapshot(&self) -> Value {
//!         Value::from(self.n)
//!     }
//!     fn restore(&mut self, v: &Value) -> Result<(), guesstimate_core::RestoreError> {
//!         self.n = v.as_i64().ok_or_else(|| guesstimate_core::RestoreError::shape("i64"))?;
//!         Ok(())
//!     }
//! }
//!
//! let mut registry = OpRegistry::new();
//! registry.register_type::<Counter>();
//! registry.register_method::<Counter>("add", |c, a| {
//!     let Some(d) = a.i64(0) else { return false };
//!     if c.n + d < 0 {
//!         return false; // precondition: counter never goes negative
//!     }
//!     c.n += d;
//!     true
//! });
//!
//! let mut store = ObjectStore::new();
//! let id = guesstimate_core::ObjectId::new(guesstimate_core::MachineId::new(0), 0);
//! store.insert(id, Box::new(Counter::default()));
//!
//! let op = SharedOp::primitive(id, "add", args![5]);
//! assert_eq!(guesstimate_core::execute(&op, &mut store, &registry).unwrap(), ExecOutcome::Success);
//! assert_eq!(store.get_as::<Counter>(id).unwrap().n, 5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod completion;
mod effect;
mod error;
mod exec;
mod ids;
pub mod json;
mod object;
mod op;
pub mod paths;
mod registry;
pub mod shard;
mod store;
mod value;
pub mod witness;

pub use completion::{CompletionFn, CompletionQueue, PendingCompletion};
pub use effect::{CommuteMatrix, EffectSpec, Footprint};
pub use error::{ExecError, RestoreError};
pub use exec::{execute, execute_against, CowOverlay, ExecOutcome, ObjectAccess};
pub use ids::{MachineId, ObjectId, OpId};
pub use object::{GState, SharedObject};
pub use op::{OpEnvelope, SharedOp};
pub use paths::{path_covers, paths_overlap, PathPattern, ROOT};
pub use registry::{ArgView, OpRegistry};
pub use shard::{key_render, ComponentPlan, Routing, ShardId, ShardPlan, TypePlan};
pub use store::ObjectStore;
pub use value::{value_digest, Value};
pub use witness::{
    containment_escapes, declared_footprints, execute_witnessed, snapshot_diff, AccessKind,
    AccessWitness, ProbeReads, WitnessEscape,
};
