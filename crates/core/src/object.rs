//! Shared objects: the Rust analog of the paper's `GSharedObject` base class.
//!
//! In the C# API, application state classes derive from `GSharedObject` and
//! implement a single `Copy` method; the runtime uses `Copy` to overwrite a
//! replica's state with another replica's state (most importantly for the
//! `sc → sg` copy at the end of every synchronization, §4).
//!
//! In Rust the same contract is split in two:
//!
//! * [`GState`] — what the *application* implements: a plain `Clone +
//!   Default` state type plus a canonical [`GState::snapshot`] /
//!   [`GState::restore`] pair (used to replicate initial state to joining
//!   machines and to feed the spec checker).
//! * [`SharedObject`] — the object-safe trait the *runtime* consumes; it is
//!   implemented automatically for every `GState` via a blanket impl, so
//!   applications never write `dyn`-plumbing by hand.

use std::any::Any;
use std::fmt;

use crate::error::{ExecError, RestoreError};
use crate::value::Value;

/// Application-visible trait for shared (replicated) state.
///
/// Implement this for each class of shared object. The runtime will keep one
/// *committed* and one *guesstimated* instance per machine and copy between
/// them; `Clone` provides the paper's `Copy` method, `Default` provides the
/// factory used when a remote machine first materializes the object.
///
/// [`GState::snapshot`] must be a *canonical* encoding: two instances with
/// equal logical state must produce equal [`Value`]s, because snapshots are
/// digested to check cross-machine convergence and are consumed by the spec
/// framework (`guesstimate-spec`) as the pre/post states of operations.
///
/// # Examples
///
/// ```
/// use guesstimate_core::{GState, RestoreError, Value};
///
/// #[derive(Clone, Default)]
/// struct Score(i64);
///
/// impl GState for Score {
///     const TYPE_NAME: &'static str = "Score";
///     fn snapshot(&self) -> Value {
///         Value::from(self.0)
///     }
///     fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
///         self.0 = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
///         Ok(())
///     }
/// }
/// ```
pub trait GState: Clone + Default + Send + 'static {
    /// Stable type name used by the operation registry to route method calls.
    ///
    /// Must be unique across all registered types in an application.
    const TYPE_NAME: &'static str;

    /// Canonical encoding of the full logical state.
    fn snapshot(&self) -> Value;

    /// Overwrites the state from a canonical snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] when `v` does not have the shape produced by
    /// [`GState::snapshot`].
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError>;
}

/// Object-safe shared-object interface used by stores and the runtime.
///
/// Implemented automatically for every [`GState`]; you should not need to
/// implement it by hand. The methods mirror what the GUESSTIMATE runtime
/// needs: state copying (`copy_from`, the paper's `Copy`), replication
/// (`clone_boxed`), canonical snapshots, and downcasting.
pub trait SharedObject: Send {
    /// The registered type name (matches [`GState::TYPE_NAME`]).
    fn type_name(&self) -> &'static str;

    /// Overwrites this object's state with `src`'s state.
    ///
    /// This is the paper's `Copy(GSharedObject src)` method, used for the
    /// committed-to-guesstimated copy during synchronization.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::TypeMismatch`] if `src` is not the same concrete
    /// type; the state is left unmodified. The runtime only ever copies
    /// between replicas of the same object, so callers treat this as
    /// evidence of registries that disagree across machines.
    fn copy_from(&mut self, src: &dyn SharedObject) -> Result<(), ExecError>;

    /// Clones the object into a new box (replication to a joining machine).
    fn clone_boxed(&self) -> Box<dyn SharedObject>;

    /// Canonical state snapshot (see [`GState::snapshot`]).
    fn snapshot(&self) -> Value;

    /// Overwrites state from a canonical snapshot (see [`GState::restore`]).
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] when the snapshot shape does not match.
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError>;

    /// Upcast for concrete-type access.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for concrete-type access.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: GState> SharedObject for T {
    fn type_name(&self) -> &'static str {
        T::TYPE_NAME
    }

    fn copy_from(&mut self, src: &dyn SharedObject) -> Result<(), ExecError> {
        let src = src
            .as_any()
            .downcast_ref::<T>()
            .ok_or_else(|| ExecError::TypeMismatch {
                expected: T::TYPE_NAME.to_owned(),
                actual: src.type_name().to_owned(),
            })?;
        self.clone_from(src);
        Ok(())
    }

    fn clone_boxed(&self) -> Box<dyn SharedObject> {
        Box::new(self.clone())
    }

    fn snapshot(&self) -> Value {
        GState::snapshot(self)
    }

    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        GState::restore(self, v)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl fmt::Debug for dyn SharedObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedObject<{}>({})", self.type_name(), self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RestoreError;

    #[derive(Clone, Default, Debug, PartialEq)]
    struct Pair {
        a: i64,
        b: i64,
    }

    impl GState for Pair {
        const TYPE_NAME: &'static str = "Pair";
        fn snapshot(&self) -> Value {
            Value::map([("a", Value::from(self.a)), ("b", Value::from(self.b))])
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            self.a = v
                .field("a")
                .and_then(Value::as_i64)
                .ok_or_else(|| RestoreError::shape("map with int field a"))?;
            self.b = v
                .field("b")
                .and_then(Value::as_i64)
                .ok_or_else(|| RestoreError::shape("map with int field b"))?;
            Ok(())
        }
    }

    #[derive(Clone, Default)]
    struct Other;
    impl GState for Other {
        const TYPE_NAME: &'static str = "Other";
        fn snapshot(&self) -> Value {
            Value::Unit
        }
        fn restore(&mut self, _: &Value) -> Result<(), RestoreError> {
            Ok(())
        }
    }

    #[test]
    fn copy_from_overwrites_state() {
        let src = Pair { a: 1, b: 2 };
        let mut dst = Pair::default();
        SharedObject::copy_from(&mut dst, &src).unwrap();
        assert_eq!(dst, src);
    }

    #[test]
    fn copy_from_reports_type_mismatch_and_leaves_state_intact() {
        let mut dst = Pair { a: 3, b: 4 };
        let err = SharedObject::copy_from(&mut dst, &Other).unwrap_err();
        assert_eq!(
            err,
            ExecError::TypeMismatch {
                expected: "Pair".into(),
                actual: "Other".into(),
            }
        );
        assert_eq!(dst, Pair { a: 3, b: 4 }, "failed copy must not mutate");
    }

    #[test]
    fn clone_boxed_preserves_state_and_type() {
        let src = Pair { a: 7, b: -1 };
        let cloned = SharedObject::clone_boxed(&src);
        assert_eq!(cloned.type_name(), "Pair");
        assert_eq!(cloned.as_any().downcast_ref::<Pair>(), Some(&src));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let src = Pair { a: 10, b: 20 };
        let mut dst = Pair::default();
        GState::restore(&mut dst, &GState::snapshot(&src)).unwrap();
        assert_eq!(dst, src);
    }

    #[test]
    fn restore_rejects_bad_shape() {
        let mut p = Pair::default();
        assert!(GState::restore(&mut p, &Value::from(3)).is_err());
    }

    #[test]
    fn debug_for_dyn_object_is_nonempty() {
        let p = Pair { a: 1, b: 2 };
        let d: &dyn SharedObject = &p;
        let s = format!("{d:?}");
        assert!(s.contains("Pair"));
    }
}
