//! The shared-operation grammar (§2 of the paper):
//!
//! ```text
//! SharedOp := PrimitiveOp | AtomicOp | OrElseOp
//! AtomicOp := Atomic { SharedOp* }
//! OrElseOp := SharedOp OrElse SharedOp
//! ```
//!
//! `Atomic` has all-or-nothing semantics (implemented with per-object
//! copy-on-write, see [`crate::execute`]); `op1 OrElse op2` allows at most
//! one of the two to succeed, with priority to `op1`. The constructors nest
//! arbitrarily.

use std::collections::BTreeSet;
use std::fmt;

use crate::ids::{ObjectId, OpId};
use crate::value::Value;

/// A (possibly hierarchical) shared operation.
///
/// Created with [`SharedOp::primitive`] (the analog of
/// `Guesstimate.CreateOperation`), [`SharedOp::atomic`] (`CreateAtomic`) and
/// [`SharedOp::or_else`] (`CreateOrElse`).
///
/// # Examples
///
/// ```
/// use guesstimate_core::{args, MachineId, ObjectId, SharedOp};
/// let obj = ObjectId::new(MachineId::new(0), 0);
/// let join_a = SharedOp::primitive(obj, "join", args!["alice", "party"]);
/// let join_b = SharedOp::primitive(obj, "join", args!["alice", "dinner"]);
/// // Join one of the two events, preferring the party:
/// let either = join_a.clone().or_else(join_b);
/// // ... or sign up for both or neither:
/// let both = SharedOp::atomic(vec![join_a, either]);
/// assert_eq!(both.primitive_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharedOp {
    /// A single method invocation on one shared object.
    Primitive {
        /// Target shared object.
        object: ObjectId,
        /// Registered method name.
        method: String,
        /// Argument vector, replayed identically on every machine.
        args: Vec<Value>,
    },
    /// All-or-nothing composition: succeeds iff every child succeeds; on
    /// failure no child's effect is visible.
    Atomic(Vec<SharedOp>),
    /// Alternative composition: tries the first child, and only if it fails
    /// tries the second. At most one succeeds.
    OrElse(Box<SharedOp>, Box<SharedOp>),
}

impl SharedOp {
    /// Creates a primitive operation on `object` invoking `method` with `args`.
    pub fn primitive(object: ObjectId, method: impl Into<String>, args: Vec<Value>) -> SharedOp {
        SharedOp::Primitive {
            object,
            method: method.into(),
            args,
        }
    }

    /// Creates an all-or-nothing composition of `ops`.
    ///
    /// An empty `Atomic` trivially succeeds (vacuous conjunction).
    pub fn atomic(ops: Vec<SharedOp>) -> SharedOp {
        SharedOp::Atomic(ops)
    }

    /// Creates `self OrElse other`: `other` runs only if `self` fails.
    pub fn or_else(self, other: SharedOp) -> SharedOp {
        SharedOp::OrElse(Box::new(self), Box::new(other))
    }

    /// Folds a non-empty list of alternatives into a right-nested `OrElse`
    /// chain (first element has the highest priority).
    ///
    /// Returns `None` for an empty list.
    pub fn first_of(ops: Vec<SharedOp>) -> Option<SharedOp> {
        let mut it = ops.into_iter().rev();
        let last = it.next()?;
        Some(it.fold(last, |acc, op| op.or_else(acc)))
    }

    /// The set of shared objects this operation may touch.
    ///
    /// Used by the runtime for read isolation and by the copy-on-write
    /// machinery to bound the objects it must snapshot.
    pub fn objects_touched(&self) -> BTreeSet<ObjectId> {
        let mut set = BTreeSet::new();
        self.collect_objects(&mut set);
        set
    }

    fn collect_objects(&self, set: &mut BTreeSet<ObjectId>) {
        match self {
            SharedOp::Primitive { object, .. } => {
                set.insert(*object);
            }
            SharedOp::Atomic(ops) => {
                for op in ops {
                    op.collect_objects(set);
                }
            }
            SharedOp::OrElse(a, b) => {
                a.collect_objects(set);
                b.collect_objects(set);
            }
        }
    }

    /// Number of primitive operations in the tree.
    pub fn primitive_count(&self) -> usize {
        match self {
            SharedOp::Primitive { .. } => 1,
            SharedOp::Atomic(ops) => ops.iter().map(SharedOp::primitive_count).sum(),
            SharedOp::OrElse(a, b) => a.primitive_count() + b.primitive_count(),
        }
    }

    /// Nesting depth of the operation tree (a primitive has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            SharedOp::Primitive { .. } => 1,
            SharedOp::Atomic(ops) => 1 + ops.iter().map(SharedOp::depth).max().unwrap_or(0),
            SharedOp::OrElse(a, b) => 1 + a.depth().max(b.depth()),
        }
    }
}

impl fmt::Display for SharedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharedOp::Primitive {
                object,
                method,
                args,
            } => {
                write!(f, "{object}.{method}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            SharedOp::Atomic(ops) => {
                write!(f, "atomic {{ ")?;
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{op}")?;
                }
                write!(f, " }}")
            }
            SharedOp::OrElse(a, b) => write!(f, "({a} orelse {b})"),
        }
    }
}

/// A shared operation tagged with its issue identity — the
/// `(machineID, operationnumber, operation)` triple flushed on the
/// Operations channel during *AddUpdatesToMesh* (§4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpEnvelope {
    /// Issue identity: issuing machine + per-machine sequence number.
    pub id: OpId,
    /// The operation itself.
    pub op: SharedOp,
}

impl OpEnvelope {
    /// Wraps an operation with its issue identity.
    pub fn new(id: OpId, op: SharedOp) -> Self {
        OpEnvelope { id, op }
    }
}

impl fmt::Display for OpEnvelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;
    use crate::ids::MachineId;

    fn oid(s: u64) -> ObjectId {
        ObjectId::new(MachineId::new(0), s)
    }

    #[test]
    fn constructors_and_counts() {
        let p = SharedOp::primitive(oid(0), "f", args![1]);
        assert_eq!(p.primitive_count(), 1);
        assert_eq!(p.depth(), 1);

        let a = SharedOp::atomic(vec![p.clone(), p.clone()]);
        assert_eq!(a.primitive_count(), 2);
        assert_eq!(a.depth(), 2);

        let o = p.clone().or_else(a.clone());
        assert_eq!(o.primitive_count(), 3);
        assert_eq!(o.depth(), 3);

        let empty = SharedOp::atomic(vec![]);
        assert_eq!(empty.primitive_count(), 0);
        assert_eq!(empty.depth(), 1);
    }

    #[test]
    fn objects_touched_deduplicates() {
        let op = SharedOp::atomic(vec![
            SharedOp::primitive(oid(0), "f", args![]),
            SharedOp::primitive(oid(1), "g", args![]),
            SharedOp::primitive(oid(0), "h", args![]),
        ]);
        let touched = op.objects_touched();
        assert_eq!(
            touched.into_iter().collect::<Vec<_>>(),
            vec![oid(0), oid(1)]
        );
    }

    #[test]
    fn first_of_builds_priority_chain() {
        let ops: Vec<SharedOp> = (0..3)
            .map(|i| SharedOp::primitive(oid(i), "f", args![]))
            .collect();
        let chain = SharedOp::first_of(ops).unwrap();
        // Expect ((o0 orelse (o1 orelse o2)))
        match &chain {
            SharedOp::OrElse(first, rest) => {
                assert!(matches!(**first, SharedOp::Primitive { object, .. } if object == oid(0)));
                assert!(matches!(**rest, SharedOp::OrElse(_, _)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
        assert!(SharedOp::first_of(vec![]).is_none());
        let single = SharedOp::first_of(vec![SharedOp::primitive(oid(9), "f", args![])]).unwrap();
        assert!(matches!(single, SharedOp::Primitive { .. }));
    }

    #[test]
    fn display_is_readable() {
        let op =
            SharedOp::primitive(oid(0), "update", args![1, 2, 3]).or_else(SharedOp::atomic(vec![
                SharedOp::primitive(oid(1), "join", args!["e"]),
            ]));
        let s = op.to_string();
        assert!(s.contains("update(1, 2, 3)"));
        assert!(s.contains("orelse"));
        assert!(s.contains("atomic"));
    }

    #[test]
    fn envelope_display_and_eq() {
        let e = OpEnvelope::new(
            OpId::new(MachineId::new(1), 4),
            SharedOp::primitive(oid(0), "f", args![]),
        );
        assert!(e.to_string().starts_with("op-m1-4: "));
        assert_eq!(e, e.clone());
    }
}
