//! The `/`-separated snapshot-path algebra.
//!
//! Snapshot paths name nodes in an object's canonical [`crate::GState::snapshot`]
//! tree: `"topics/general"` is the `general` entry of the top-level `topics`
//! map, `""` ([`ROOT`]) is the whole snapshot. Every consumer of footprints —
//! the effect sanitizer, the access-witness checker, the commute matrix and
//! the shard-partition analysis — reasons over the same two relations:
//! *overlap* (can two paths denote intersecting state?) and *cover* (does one
//! path's subtree contain the other?). This module is their single home.
//!
//! On top of concrete paths it defines [`PathPattern`]: a path whose segments
//! may be literals, argument-derived *keys*, or wildcards. Patterns are the
//! node language of the shard-partition interference graph: the analysis
//! abstracts each method's concrete footprints into patterns, partitions the
//! pattern space into components, and the runtime router re-instantiates the
//! key segments from an operation's actual arguments.

use std::collections::BTreeSet;
use std::fmt;

/// The path denoting the *entire* object snapshot.
///
/// Some methods scan state that cannot be named from their arguments alone
/// (e.g. "does this user already have a ride on *any* vehicle?"). Declaring
/// a read of [`ROOT`] conservatively marks the whole snapshot as read:
/// [`ROOT`] overlaps, and covers, every path.
pub const ROOT: &str = "";

/// True if two snapshot paths can denote overlapping state.
///
/// Paths are `/`-separated; a path covers its whole subtree, so two paths
/// overlap iff one is a (segment-wise) prefix of the other. `"events"`
/// overlaps `"events/party"` but not `"users/ann"`. The empty path
/// ([`ROOT`]) denotes the whole snapshot and overlaps everything.
///
/// # Examples
///
/// ```
/// use guesstimate_core::{paths_overlap, ROOT};
/// assert!(paths_overlap("events", "events/party"));
/// assert!(paths_overlap("grid/17", "grid/17"));
/// assert!(!paths_overlap("grid/17", "grid/2"));
/// assert!(!paths_overlap("users/ann", "events"));
/// assert!(paths_overlap(ROOT, "users/ann"));
/// ```
pub fn paths_overlap(a: &str, b: &str) -> bool {
    if a.is_empty() || b.is_empty() {
        return true; // ROOT overlaps everything
    }
    let mut xs = a.split('/');
    let mut ys = b.split('/');
    loop {
        match (xs.next(), ys.next()) {
            (Some(x), Some(y)) => {
                if x != y {
                    return false;
                }
            }
            // One path exhausted: it is a prefix of the other (or equal).
            _ => return true,
        }
    }
}

/// True if `ancestor` covers `path`: equal, or a segment-wise prefix.
/// [`ROOT`] covers every path.
///
/// Used by the footprint sanitizer — an observed state change at `path` is
/// accounted for iff some declared write key covers it.
pub fn path_covers(ancestor: &str, path: &str) -> bool {
    if ancestor.is_empty() {
        return true; // ROOT covers everything
    }
    if path.is_empty() {
        return false; // only ROOT covers ROOT
    }
    let mut xs = ancestor.split('/');
    let mut ys = path.split('/');
    loop {
        let Some(x) = xs.next() else { return true };
        match ys.next() {
            Some(y) if x == y => {}
            _ => return false,
        }
    }
}

/// Appends segment `seg` to `path` (`ROOT` + `"a"` is `"a"`, not `"/a"`).
pub fn child(path: &str, seg: &str) -> String {
    if path.is_empty() {
        seg.to_owned()
    } else {
        format!("{path}/{seg}")
    }
}

/// Splits `path` into `(parent, last_segment)`; `None` for [`ROOT`].
pub fn split_last(path: &str) -> Option<(&str, &str)> {
    if path.is_empty() {
        return None;
    }
    match path.rfind('/') {
        Some(i) => Some((&path[..i], &path[i + 1..])),
        None => Some(("", path)),
    }
}

/// Percent-escapes one path segment for embedding in rendered patterns and
/// JSON exports: `%` → `%25`, `/` → `%2F`, `*` → `%2A`, `{` → `%7B`.
///
/// Snapshot segments are arbitrary map keys, so a key containing `/` (or a
/// key that *looks like* a wildcard) must not be confusable with pattern
/// structure in the serialized form. [`unescape_segment`] inverts this.
pub fn escape_segment(seg: &str) -> String {
    let mut out = String::with_capacity(seg.len());
    for c in seg.chars() {
        match c {
            '%' => out.push_str("%25"),
            '/' => out.push_str("%2F"),
            '*' => out.push_str("%2A"),
            '{' => out.push_str("%7B"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverts [`escape_segment`]. Unknown or truncated `%` escapes are an error.
pub fn unescape_segment(seg: &str) -> Result<String, String> {
    let mut out = String::with_capacity(seg.len());
    let mut chars = seg.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let pair: String = chars.by_ref().take(2).collect();
        match pair.as_str() {
            "25" => out.push('%'),
            "2F" => out.push('/'),
            "2A" => out.push('*'),
            "7B" => out.push('{'),
            other => return Err(format!("bad escape `%{other}` in segment `{seg}`")),
        }
    }
    Ok(out)
}

/// One segment of a [`PathPattern`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Seg {
    /// A fixed segment that must match exactly.
    Lit(String),
    /// A segment equal to the rendering of the method's argument `i` — the
    /// candidate shard key. Renders as `{i}`.
    Key(usize),
    /// A segment the analysis could not tie to an argument (e.g. a computed
    /// index). Matches any single segment; renders as `*`.
    Any,
}

/// A symbolic snapshot-path prefix: the node language of the shard-partition
/// interference graph.
///
/// A pattern denotes the set of concrete paths obtained by substituting each
/// [`Seg::Key`] with the rendering of the named argument and each
/// [`Seg::Any`] with an arbitrary segment — plus, as with concrete paths,
/// the entire subtree below. The empty pattern denotes [`ROOT`].
///
/// # Examples
///
/// ```
/// use guesstimate_core::paths::PathPattern;
/// let p = PathPattern::parse("topics/{0}").unwrap();
/// assert!(p.covers("topics/general/posts", Some("general")));
/// assert!(!p.covers("topics/general", Some("news")));
/// let q = PathPattern::parse("topics/*").unwrap();
/// assert!(q.covers("topics/anything", None));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathPattern {
    segs: Vec<Seg>,
}

impl PathPattern {
    /// The pattern denoting the whole snapshot ([`ROOT`]).
    pub fn root() -> Self {
        PathPattern::default()
    }

    /// Builds a pattern from segments.
    pub fn new(segs: impl IntoIterator<Item = Seg>) -> Self {
        PathPattern {
            segs: segs.into_iter().collect(),
        }
    }

    /// A pattern matching exactly the concrete path `path` (all literals).
    pub fn lit(path: &str) -> Self {
        if path.is_empty() {
            return PathPattern::root();
        }
        PathPattern {
            segs: path.split('/').map(|s| Seg::Lit(s.to_owned())).collect(),
        }
    }

    /// The segments.
    pub fn segs(&self) -> &[Seg] {
        &self.segs
    }

    /// True if this is the [`ROOT`] pattern.
    pub fn is_root(&self) -> bool {
        self.segs.is_empty()
    }

    /// The set of argument indices used as [`Seg::Key`] segments.
    pub fn key_args(&self) -> BTreeSet<usize> {
        self.segs
            .iter()
            .filter_map(|s| match s {
                Seg::Key(i) => Some(*i),
                _ => None,
            })
            .collect()
    }

    /// True if any segment is an unkeyed wildcard ([`Seg::Any`]).
    pub fn has_wildcard(&self) -> bool {
        self.segs.iter().any(|s| matches!(s, Seg::Any))
    }

    /// Renders the pattern: literal segments percent-escaped
    /// ([`escape_segment`]), keys as `{i}`, wildcards as `*`, joined by `/`.
    /// [`ROOT`] renders as the empty string. [`PathPattern::parse`] inverts
    /// this exactly.
    pub fn render(&self) -> String {
        self.segs
            .iter()
            .map(|s| match s {
                Seg::Lit(l) => escape_segment(l),
                Seg::Key(i) => format!("{{{i}}}"),
                Seg::Any => "*".to_owned(),
            })
            .collect::<Vec<_>>()
            .join("/")
    }

    /// Parses a rendered pattern (the inverse of [`PathPattern::render`]).
    pub fn parse(text: &str) -> Result<Self, String> {
        if text.is_empty() {
            return Ok(PathPattern::root());
        }
        let mut segs = Vec::new();
        for raw in text.split('/') {
            if raw == "*" {
                segs.push(Seg::Any);
            } else if let Some(idx) = raw.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
                let i: usize = idx
                    .parse()
                    .map_err(|_| format!("bad key segment `{raw}` in pattern `{text}`"))?;
                segs.push(Seg::Key(i));
            } else if raw.is_empty() {
                return Err(format!("empty segment in pattern `{text}`"));
            } else {
                segs.push(Seg::Lit(unescape_segment(raw)?));
            }
        }
        Ok(PathPattern { segs })
    }

    /// True if this pattern, instantiated at shard key `key`, covers the
    /// concrete path `path` (equal or a segment-wise prefix of it).
    ///
    /// [`Seg::Key`] segments match only the key when one is given, and any
    /// segment otherwise; [`Seg::Any`] matches any segment. The [`ROOT`]
    /// pattern covers everything; only it covers [`ROOT`].
    pub fn covers(&self, path: &str, key: Option<&str>) -> bool {
        if self.is_root() {
            return true;
        }
        if path.is_empty() {
            return false;
        }
        let mut ps = path.split('/');
        for seg in &self.segs {
            let Some(p) = ps.next() else { return false };
            let ok = match seg {
                Seg::Lit(l) => l == p,
                Seg::Key(_) => key.is_none_or(|k| k == p),
                Seg::Any => true,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// True if the two patterns can denote overlapping state under *some*
    /// instantiation of their key and wildcard segments.
    ///
    /// This is the conservative relation that drives interference-graph
    /// edges: [`Seg::Key`] and [`Seg::Any`] match anything, and (as with
    /// concrete paths) exhausting one pattern makes it a prefix of the
    /// other.
    pub fn overlaps(&self, other: &Self) -> bool {
        let mut xs = self.segs.iter();
        let mut ys = other.segs.iter();
        loop {
            match (xs.next(), ys.next()) {
                (Some(x), Some(y)) => {
                    if let (Seg::Lit(a), Seg::Lit(b)) = (x, y) {
                        if a != b {
                            return false;
                        }
                    }
                }
                _ => return true,
            }
        }
    }

    /// True if the two patterns can overlap even when their key segments are
    /// bound to *distinct* shard-key values.
    ///
    /// This is the decidable soundness check behind keyed components: if no
    /// pattern pair (including a pattern against itself) overlaps under
    /// distinct keys, ops carrying different key values are guaranteed
    /// disjoint and the component can be split per key at runtime.
    /// Key-vs-literal and any wildcard stay conservatively overlapping.
    pub fn overlaps_under_distinct_keys(&self, other: &Self) -> bool {
        let mut xs = self.segs.iter();
        let mut ys = other.segs.iter();
        loop {
            match (xs.next(), ys.next()) {
                (Some(x), Some(y)) => match (x, y) {
                    // Both sides substitute their (distinct) key value here:
                    // the segments cannot be equal, so the paths diverge.
                    (Seg::Key(_), Seg::Key(_)) => return false,
                    (Seg::Lit(a), Seg::Lit(b)) if a != b => return false,
                    _ => {}
                },
                _ => return true,
            }
        }
    }
}

impl fmt::Display for PathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_prefix_based_and_symmetric() {
        assert!(paths_overlap("a", "a"));
        assert!(paths_overlap("a", "a/b"));
        assert!(paths_overlap("a/b", "a"));
        assert!(!paths_overlap("a/b", "a/c"));
        assert!(!paths_overlap("ab", "a"));
        assert!(!paths_overlap("a", "ab"), "segment, not string, prefix");
        assert!(paths_overlap(ROOT, "a/b"));
        assert!(paths_overlap("a/b", ROOT));
        assert!(paths_overlap(ROOT, ROOT));
    }

    #[test]
    fn covers_is_directional() {
        assert!(path_covers("a", "a/b/c"));
        assert!(path_covers("a/b", "a/b"));
        assert!(!path_covers("a/b/c", "a/b"));
        assert!(!path_covers("x", "a"));
        assert!(path_covers(ROOT, "a/b"));
        assert!(path_covers(ROOT, ROOT));
        assert!(!path_covers("a", ROOT));
    }

    #[test]
    fn empty_segments_are_ordinary_segments() {
        // A trailing slash produces an empty final segment; the algebra
        // treats it as a normal (odd) map key, not as ROOT.
        assert!(paths_overlap("a/", "a"));
        assert!(path_covers("a", "a/"));
        assert!(!path_covers("a/", "a"));
        assert!(!paths_overlap("a/", "a/b"));
        assert_eq!(split_last("a/"), Some(("a", "")));
    }

    #[test]
    fn exact_match_and_child_roundtrip() {
        assert!(paths_overlap("grid/17", "grid/17"));
        assert!(path_covers("grid/17", "grid/17"));
        assert_eq!(child(ROOT, "a"), "a");
        assert_eq!(child("a", "b"), "a/b");
        assert_eq!(split_last("a/b"), Some(("a", "b")));
        assert_eq!(split_last("a"), Some(("", "a")));
        assert_eq!(split_last(ROOT), None);
    }

    #[test]
    fn map_entry_wildcard_covers_any_entry() {
        let p = PathPattern::parse("grid/*").unwrap();
        assert!(p.covers("grid/17", None));
        assert!(p.covers("grid/17/digit", None));
        assert!(p.covers("grid/17", Some("ignored"))); // Any ignores the key
        assert!(!p.covers("fixed/17", None));
        assert!(!p.covers("grid", None), "wildcard needs an entry segment");
    }

    #[test]
    fn segment_escaping_roundtrips_slash_adjacent_keys() {
        for raw in ["a/b", "a%2Fb", "*", "{0}", "50%", "plain", ""] {
            let esc = escape_segment(raw);
            assert!(!esc.contains('/'), "`{esc}` must stay one segment");
            assert_eq!(unescape_segment(&esc).unwrap(), raw);
        }
        assert_eq!(escape_segment("a/b"), "a%2Fb");
        assert!(unescape_segment("bad%zz").is_err());
        assert!(unescape_segment("trunc%2").is_err());
    }

    #[test]
    fn pattern_render_parse_roundtrip() {
        for text in ["", "topics/{0}", "grid/*", "a%2Fb/c", "{1}/riders", "x/%2A"] {
            let p = PathPattern::parse(text).unwrap();
            assert_eq!(p.render(), text);
            assert_eq!(PathPattern::parse(&p.render()).unwrap(), p);
        }
        // A literal segment that *looks like* a wildcard or key renders
        // escaped, so parsing cannot confuse it with pattern structure.
        let lit_star = PathPattern::new([Seg::Lit("*".into())]);
        assert_eq!(lit_star.render(), "%2A");
        let lit_key = PathPattern::new([Seg::Lit("{0}".into())]);
        assert_eq!(lit_key.render(), "%7B0}");
        assert_eq!(PathPattern::parse(&lit_key.render()).unwrap(), lit_key);
        assert!(PathPattern::parse("a//b").is_err());
        assert!(PathPattern::parse("{x}").is_err());
    }

    #[test]
    fn pattern_covers_instantiates_keys() {
        let p = PathPattern::parse("topics/{0}").unwrap();
        assert!(p.covers("topics/general", Some("general")));
        assert!(p.covers("topics/general/posts", Some("general")));
        assert!(!p.covers("topics/news", Some("general")));
        assert!(p.covers("topics/news", None), "unkeyed: key matches any");
        assert!(!p.covers("likes/news", Some("news")));
        assert!(!p.covers("topics", Some("general")), "prefix of pattern");
        assert!(PathPattern::root().covers(ROOT, None));
        assert!(PathPattern::root().covers("anything/at/all", None));
        assert!(!p.covers(ROOT, None));
    }

    #[test]
    fn symbolic_overlap_is_conservative() {
        let key = PathPattern::parse("topics/{0}").unwrap();
        let wild = PathPattern::parse("topics/*").unwrap();
        let lit = PathPattern::parse("topics/general").unwrap();
        let other = PathPattern::parse("likes/{0}").unwrap();
        assert!(key.overlaps(&wild));
        assert!(key.overlaps(&lit));
        assert!(key.overlaps(&key));
        assert!(!key.overlaps(&other));
        assert!(PathPattern::root().overlaps(&key));
        let parent = PathPattern::parse("topics").unwrap();
        assert!(parent.overlaps(&key), "prefix pattern overlaps subtree");
    }

    #[test]
    fn distinct_key_overlap_detects_unshardable_patterns() {
        let key = PathPattern::parse("topics/{0}").unwrap();
        assert!(
            !key.overlaps_under_distinct_keys(&key),
            "distinct keys name distinct topics"
        );
        let flat = PathPattern::parse("{0}").unwrap();
        let by_other_arg = PathPattern::parse("{1}/riders").unwrap();
        assert!(!flat.overlaps_under_distinct_keys(&by_other_arg));
        let lit = PathPattern::parse("topics/general").unwrap();
        assert!(key.overlaps_under_distinct_keys(&lit), "key may equal lit");
        let wild = PathPattern::parse("topics/*").unwrap();
        assert!(key.overlaps_under_distinct_keys(&wild));
        let parent = PathPattern::parse("topics").unwrap();
        assert!(
            key.overlaps_under_distinct_keys(&parent),
            "unkeyed prefix covers every key's subtree"
        );
    }
}
