//! The operation registry: reflection replacement for replayable operations.
//!
//! The C# API creates operations by name — `Guesstimate.CreateOperation(obj,
//! "Update", r, c, v)` — and the runtime re-invokes the named method on every
//! machine's committed replica at commit time. Rust has no runtime
//! reflection, so applications *register* each shared-operation method once,
//! as a typed closure, and the [`OpRegistry`] routes `(type name, method
//! name)` pairs to the registered apply function on every machine.
//!
//! The registry also holds a constructor per type, used to materialize an
//! object on machines that join it (`JoinInstance`) after creation.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::effect::EffectSpec;
use crate::error::ExecError;
use crate::object::{GState, SharedObject};
use crate::value::Value;

/// Type-erased apply function for one shared-operation method.
///
/// Per the model (§3), the function returns `Ok(true)` iff the operation
/// succeeded; on `Ok(false)` it must leave the object unchanged. An `Err`
/// means the registry routed the call to an object of the wrong concrete
/// type ([`ExecError::TypeMismatch`]) — a programming error, not a failed
/// precondition.
pub(crate) type ApplyFn =
    Arc<dyn Fn(&mut dyn SharedObject, ArgView<'_>) -> Result<bool, ExecError> + Send + Sync>;

type CtorFn = Arc<dyn Fn() -> Box<dyn SharedObject> + Send + Sync>;

/// A read-only view of an operation's argument vector with typed accessors.
///
/// Accessors return `None` both when the index is out of range and when the
/// value has a different type; apply functions typically treat that as a
/// failed precondition and return `false`.
///
/// # Examples
///
/// ```
/// use guesstimate_core::{args, ArgView};
/// let a = args![1, "x", true];
/// let view = ArgView::new(&a);
/// assert_eq!(view.i64(0), Some(1));
/// assert_eq!(view.str(1), Some("x"));
/// assert_eq!(view.bool(2), Some(true));
/// assert_eq!(view.i64(3), None);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ArgView<'a>(&'a [Value]);

impl<'a> ArgView<'a> {
    /// Wraps an argument slice.
    pub fn new(values: &'a [Value]) -> Self {
        ArgView(values)
    }

    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if there are no arguments.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The raw value at `idx`.
    pub fn value(&self, idx: usize) -> Option<&'a Value> {
        self.0.get(idx)
    }

    /// The integer argument at `idx`.
    pub fn i64(&self, idx: usize) -> Option<i64> {
        self.value(idx)?.as_i64()
    }

    /// The float argument at `idx` (integers widen).
    pub fn f64(&self, idx: usize) -> Option<f64> {
        self.value(idx)?.as_f64()
    }

    /// The boolean argument at `idx`.
    pub fn bool(&self, idx: usize) -> Option<bool> {
        self.value(idx)?.as_bool()
    }

    /// The string argument at `idx`.
    pub fn str(&self, idx: usize) -> Option<&'a str> {
        self.value(idx)?.as_str()
    }

    /// The list argument at `idx`.
    pub fn list(&self, idx: usize) -> Option<&'a [Value]> {
        self.value(idx)?.as_list()
    }

    /// The full argument slice.
    pub fn as_slice(&self) -> &'a [Value] {
        self.0
    }
}

/// Routes `(type name, method name)` pairs to registered apply functions,
/// and type names to constructors.
///
/// One registry is shared (typically via [`Arc`]) by every machine of an
/// application; because all machines register the same methods, an operation
/// recorded as `(object, "update", args)` executes identically wherever it is
/// replayed — the property the commit protocol depends on.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Clone, Default)]
pub struct OpRegistry {
    ctors: HashMap<&'static str, CtorFn>,
    methods: HashMap<&'static str, HashMap<&'static str, ApplyFn>>,
    effects: HashMap<&'static str, HashMap<&'static str, EffectSpec>>,
}

impl OpRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        OpRegistry::default()
    }

    /// Registers the constructor for `T` (its `Default`), enabling machines
    /// to materialize instances of `T` when joining objects created elsewhere.
    pub fn register_type<T: GState>(&mut self) {
        self.ctors
            .insert(T::TYPE_NAME, Arc::new(|| Box::new(T::default())));
    }

    /// True if a constructor for `type_name` is registered.
    pub fn has_type(&self, type_name: &str) -> bool {
        self.ctors.contains_key(type_name)
    }

    /// Constructs a default instance of the named type.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownType`] when the type was never registered.
    pub fn construct(&self, type_name: &str) -> Result<Box<dyn SharedObject>, ExecError> {
        self.ctors
            .get(type_name)
            .map(|c| c())
            .ok_or_else(|| ExecError::UnknownType(type_name.to_owned()))
    }

    /// Registers a shared-operation method for `T`.
    ///
    /// The closure receives the concrete object and the argument view, and
    /// must follow the model's contract: return `true` iff it succeeded, and
    /// leave the object unchanged when returning `false`. (The
    /// `guesstimate-spec` crate provides machinery to *check* that contract.)
    ///
    /// Registering the same `(T, method)` pair twice replaces the earlier
    /// registration.
    pub fn register_method<T: GState>(
        &mut self,
        method: &'static str,
        f: impl Fn(&mut T, ArgView<'_>) -> bool + Send + Sync + 'static,
    ) {
        let apply: ApplyFn = Arc::new(move |obj, argv| {
            let actual = obj.type_name();
            let obj =
                obj.as_any_mut()
                    .downcast_mut::<T>()
                    .ok_or_else(|| ExecError::TypeMismatch {
                        expected: T::TYPE_NAME.to_owned(),
                        actual: actual.to_owned(),
                    })?;
            Ok(f(obj, argv))
        });
        self.methods
            .entry(T::TYPE_NAME)
            .or_default()
            .insert(method, apply);
    }

    /// Registers a shared-operation method for `T` together with its
    /// declared [`EffectSpec`] (read/write footprint, parameterized on the
    /// argument vector).
    ///
    /// Semantics of the apply function are exactly those of
    /// [`OpRegistry::register_method`]. The effect declaration is optional
    /// metadata from the runtime's point of view, but the
    /// `guesstimate-analysis` lint treats a method without one as a
    /// violation, and only declared (and sanitizer-validated) footprints let
    /// the runtime skip guesstimate rebuilds for commuting operations.
    pub fn register_with_effects<T: GState>(
        &mut self,
        method: &'static str,
        effect: EffectSpec,
        f: impl Fn(&mut T, ArgView<'_>) -> bool + Send + Sync + 'static,
    ) {
        self.register_method::<T>(method, f);
        self.effects
            .entry(T::TYPE_NAME)
            .or_default()
            .insert(method, effect);
    }

    /// The declared effect of `(type_name, method)`, if any.
    pub fn effect_of(&self, type_name: &str, method: &str) -> Option<&EffectSpec> {
        self.effects.get(type_name)?.get(method)
    }

    /// Names of the registered methods of a type that have **no** declared
    /// effect, sorted — the analysis crate's "undeclared effect" lint.
    pub fn methods_without_effects(&self, type_name: &str) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self
            .methods
            .get(type_name)
            .map(|m| {
                m.keys()
                    .filter(|k| self.effect_of(type_name, k).is_none())
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// True if `(type_name, method)` has a registered apply function.
    pub fn has_method(&self, type_name: &str, method: &str) -> bool {
        self.methods
            .get(type_name)
            .is_some_and(|m| m.contains_key(method))
    }

    /// Looks up the apply function for `(type_name, method)`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownMethod`] when no such method is registered.
    pub(crate) fn lookup(&self, type_name: &str, method: &str) -> Result<&ApplyFn, ExecError> {
        self.methods
            .get(type_name)
            .and_then(|m| m.get(method))
            .ok_or_else(|| ExecError::UnknownMethod {
                type_name: type_name.to_owned(),
                method: method.to_owned(),
            })
    }

    /// Names of all registered methods for a type, sorted.
    pub fn methods_of(&self, type_name: &str) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self
            .methods
            .get(type_name)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Names of all registered types, sorted.
    pub fn types(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.ctors.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl fmt::Debug for OpRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpRegistry")
            .field("types", &self.types())
            .field("methods", &self.methods.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;
    use crate::error::RestoreError;

    #[derive(Clone, Default, Debug, PartialEq)]
    struct Cell(i64);
    impl GState for Cell {
        const TYPE_NAME: &'static str = "Cell";
        fn snapshot(&self) -> Value {
            Value::from(self.0)
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            self.0 = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
            Ok(())
        }
    }

    fn registry() -> OpRegistry {
        let mut r = OpRegistry::new();
        r.register_type::<Cell>();
        r.register_method::<Cell>("set", |c, a| {
            let Some(v) = a.i64(0) else { return false };
            c.0 = v;
            true
        });
        r
    }

    #[test]
    fn construct_known_and_unknown_types() {
        let r = registry();
        assert!(r.has_type("Cell"));
        let obj = r.construct("Cell").unwrap();
        assert_eq!(obj.type_name(), "Cell");
        assert_eq!(
            r.construct("Nope").unwrap_err(),
            ExecError::UnknownType("Nope".into())
        );
    }

    #[test]
    fn lookup_and_invoke_method() {
        let r = registry();
        assert!(r.has_method("Cell", "set"));
        assert!(!r.has_method("Cell", "get"));
        let mut obj: Box<dyn SharedObject> = Box::new(Cell(0));
        let f = r.lookup("Cell", "set").unwrap().clone();
        let a = args![7];
        assert!(f(&mut *obj, ArgView::new(&a)).unwrap());
        assert_eq!(obj.as_any().downcast_ref::<Cell>().unwrap().0, 7);
    }

    #[test]
    fn apply_fn_reports_misrouted_type() {
        #[derive(Clone, Default, Debug)]
        struct NotCell;
        impl GState for NotCell {
            const TYPE_NAME: &'static str = "NotCell";
            fn snapshot(&self) -> Value {
                Value::Unit
            }
            fn restore(&mut self, _: &Value) -> Result<(), RestoreError> {
                Ok(())
            }
        }
        let r = registry();
        let mut obj: Box<dyn SharedObject> = Box::new(NotCell);
        let f = r.lookup("Cell", "set").unwrap().clone();
        let a = args![7];
        assert_eq!(
            f(&mut *obj, ArgView::new(&a)).unwrap_err(),
            ExecError::TypeMismatch {
                expected: "Cell".into(),
                actual: "NotCell".into(),
            }
        );
    }

    #[test]
    fn lookup_unknown_method_errs() {
        let r = registry();
        assert!(matches!(
            r.lookup("Cell", "bogus"),
            Err(ExecError::UnknownMethod { .. })
        ));
    }

    #[test]
    fn apply_fn_returns_false_on_bad_args() {
        let r = registry();
        let mut obj: Box<dyn SharedObject> = Box::new(Cell(3));
        let f = r.lookup("Cell", "set").unwrap().clone();
        let a = args!["not an int"];
        assert!(!f(&mut *obj, ArgView::new(&a)).unwrap());
        assert_eq!(obj.as_any().downcast_ref::<Cell>().unwrap().0, 3);
    }

    #[test]
    fn methods_of_and_types_sorted() {
        let mut r = registry();
        r.register_method::<Cell>("clear", |c, _| {
            c.0 = 0;
            true
        });
        assert_eq!(r.methods_of("Cell"), vec!["clear", "set"]);
        assert_eq!(r.types(), vec!["Cell"]);
        assert!(r.methods_of("Nope").is_empty());
    }

    #[test]
    fn arg_view_accessors() {
        let a = args![1, 2.5, true, "s"];
        let v = ArgView::new(&a);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert_eq!(v.f64(0), Some(1.0));
        assert_eq!(v.f64(1), Some(2.5));
        assert_eq!(v.bool(2), Some(true));
        assert_eq!(v.str(3), Some("s"));
        assert_eq!(v.list(0), None);
        assert_eq!(v.value(9), None);
        assert_eq!(v.as_slice().len(), 4);
        let empty: Vec<Value> = args![];
        assert!(ArgView::new(&empty).is_empty());
    }

    #[test]
    fn reregistration_replaces() {
        let mut r = registry();
        r.register_method::<Cell>("set", |_c, _a| false);
        let mut obj: Box<dyn SharedObject> = Box::new(Cell(1));
        let f = r.lookup("Cell", "set").unwrap().clone();
        let a = args![9];
        assert!(!f(&mut *obj, ArgView::new(&a)).unwrap());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", registry()).contains("OpRegistry"));
    }

    #[test]
    fn register_with_effects_registers_method_and_effect() {
        use crate::effect::{EffectSpec, Footprint};
        let mut r = OpRegistry::new();
        r.register_type::<Cell>();
        r.register_with_effects::<Cell>(
            "set",
            EffectSpec::new(|_| Footprint::new().writes(["value"])),
            |c, a| {
                let Some(v) = a.i64(0) else { return false };
                c.0 = v;
                true
            },
        );
        assert!(r.has_method("Cell", "set"));
        let a = args![3];
        let fp = r
            .effect_of("Cell", "set")
            .expect("effect declared")
            .footprint(ArgView::new(&a));
        assert!(fp.writes.contains("value"));
        assert!(r.effect_of("Cell", "bogus").is_none());
        assert!(r.effect_of("Nope", "set").is_none());
    }

    #[test]
    fn methods_without_effects_lists_only_undeclared() {
        use crate::effect::{EffectSpec, Footprint};
        let mut r = registry(); // "set" registered without an effect
        r.register_method::<Cell>("clear", |c, _| {
            c.0 = 0;
            true
        });
        assert_eq!(r.methods_without_effects("Cell"), vec!["clear", "set"]);
        r.register_with_effects::<Cell>(
            "set",
            EffectSpec::new(|_| Footprint::new().writes(["value"])),
            |c, a| {
                let Some(v) = a.i64(0) else { return false };
                c.0 = v;
                true
            },
        );
        assert_eq!(r.methods_without_effects("Cell"), vec!["clear"]);
        assert!(r.methods_without_effects("Nope").is_empty());
    }
}
