//! Shard plans: the statically derived partition of each type's state space.
//!
//! A [`ShardPlan`] is the artifact emitted by the shard-partition analysis
//! (`guesstimate-analysis`): per registered type, the connected components of
//! the footprint interference graph (each a [`ComponentPlan`] of symbolic
//! path prefixes) and a per-method [`Routing`] that maps an invocation to a
//! [`ShardId`] from its arguments alone. The runtime consumes the plan to
//! route operations and — under `paranoid_checks` — to assert that committed
//! effects stay inside the routed shard; the future multi-group synchronizer
//! will consume the same plan to synchronize shards independently.
//!
//! The plan language is deliberately closed under serialization: every field
//! round-trips through the `analyze --shard-plan` JSON (schema v3), and all
//! containers are ordered so a plan renders byte-identically run-to-run.

use std::collections::BTreeMap;
use std::fmt;

use crate::paths::PathPattern;
use crate::value::Value;

/// One connected component of a type's footprint interference graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ComponentPlan {
    /// The component's path prefixes, sorted by rendering.
    pub prefixes: Vec<PathPattern>,
    /// True if the component splits into per-key shards: every prefix binds
    /// a key segment and distinct key values are provably disjoint.
    pub keyed: bool,
}

impl ComponentPlan {
    /// True if an access to `path` stays inside this component when the
    /// component is instantiated at shard key `key` (`None` for unkeyed
    /// components, which own their whole subtree family).
    pub fn allows(&self, path: &str, key: Option<&str>) -> bool {
        self.prefixes.iter().any(|p| p.covers(path, key))
    }
}

/// How one method's invocations map to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Routing {
    /// Every invocation stays inside one component. For keyed components
    /// `key_arg` names the argument whose rendering selects the shard.
    Local {
        /// Index into [`TypePlan::components`].
        component: u32,
        /// Argument index rendered into the shard key (`None` ⇒ unkeyed).
        key_arg: Option<usize>,
    },
    /// The method can span components (or its footprint is not statically
    /// attributable): it requires cross-shard coordination.
    CrossShard,
}

/// The shard plan for one registered type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypePlan {
    /// Interference-graph components, in deterministic order.
    pub components: Vec<ComponentPlan>,
    /// Routing for every registered method of the type.
    pub routes: BTreeMap<String, Routing>,
}

/// A validated shard plan covering every analyzed type.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardPlan {
    /// Per-type plans, keyed by `TYPE_NAME`.
    pub types: BTreeMap<String, TypePlan>,
}

/// The shard an operation routes to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShardId {
    /// A shard-local operation: one component of one type, optionally
    /// instantiated at a key value.
    Local {
        /// The object type owning the component.
        type_name: String,
        /// Index into that type's [`TypePlan::components`].
        component: u32,
        /// The rendered key value for keyed components.
        key: Option<String>,
    },
    /// Cross-shard: the operation needs global coordination.
    Cross,
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardId::Local {
                type_name,
                component,
                key: Some(k),
            } => write!(f, "{type_name}:{component}/{k}"),
            ShardId::Local {
                type_name,
                component,
                key: None,
            } => write!(f, "{type_name}:{component}"),
            ShardId::Cross => write!(f, "cross"),
        }
    }
}

/// Renders an argument value as a shard-key segment, mirroring how app
/// `EffectSpec`s embed arguments into footprint paths (strings verbatim,
/// integers in decimal). Structured values are not usable as keys.
pub fn key_render(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        Value::Int(i) => Some(i.to_string()),
        Value::Bool(b) => Some(b.to_string()),
        _ => None,
    }
}

impl ShardPlan {
    /// An empty plan (routes nothing; everything falls back to
    /// [`ShardId::Cross`]).
    pub fn new() -> Self {
        ShardPlan::default()
    }

    /// Reads the per-app `shard_plan` objects of an `analyze --json`
    /// archive (schema v3; v1/v2 archives parse but carry no plans) back
    /// into a combined plan — the runtime-side loader behind
    /// `MachineConfig::with_shard_plan_from_json`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or shape problem,
    /// including unknown versions and prefix patterns that fail to parse.
    pub fn from_json_archive(text: &str) -> Result<Self, String> {
        use crate::json::Json;
        let doc = Json::parse(text)?;
        match doc.get("version").and_then(Json::as_u64) {
            Some(1..=3) => {}
            Some(v) => return Err(format!("unsupported archive version {v}")),
            None => return Err("missing `version`".to_owned()),
        }
        let apps = doc
            .get("apps")
            .and_then(Json::as_list)
            .ok_or("missing `apps` array")?;
        let mut plan = ShardPlan::new();
        for app in apps {
            let ty = app
                .get("type")
                .and_then(Json::as_str)
                .ok_or("app missing `type`")?;
            let Some(sp) = app.get("shard_plan") else {
                continue;
            };
            let mut tp = TypePlan::default();
            for c in sp
                .get("components")
                .and_then(Json::as_list)
                .ok_or("shard_plan missing `components`")?
            {
                let keyed = c
                    .get("keyed")
                    .and_then(Json::as_bool)
                    .ok_or("component missing `keyed`")?;
                let mut prefixes = Vec::new();
                for p in c
                    .get("prefixes")
                    .and_then(Json::as_list)
                    .ok_or("component missing `prefixes`")?
                {
                    let text = p.as_str().ok_or("prefix must be a string")?;
                    prefixes.push(PathPattern::parse(text)?);
                }
                tp.components.push(ComponentPlan { prefixes, keyed });
            }
            let routes = sp
                .get("routes")
                .and_then(Json::as_map)
                .ok_or("shard_plan missing `routes`")?;
            for (method, r) in routes {
                let route = match r.get("kind").and_then(Json::as_str) {
                    Some("cross") => Routing::CrossShard,
                    Some("local") => Routing::Local {
                        component: r
                            .get("component")
                            .and_then(Json::as_u64)
                            .ok_or("local route missing `component`")?
                            as u32,
                        key_arg: match r.get("key_arg") {
                            None | Some(Json::Null) => None,
                            Some(v) => {
                                Some(v.as_u64().ok_or("`key_arg` must be a number")? as usize)
                            }
                        },
                    },
                    other => return Err(format!("unknown route kind {other:?}")),
                };
                tp.routes.insert(method.clone(), route);
            }
            plan.types.insert(ty.to_owned(), tp);
        }
        Ok(plan)
    }

    /// Routes one primitive method invocation.
    ///
    /// Unknown types or methods, and keyed routes whose key argument is
    /// missing or unrenderable, conservatively route to [`ShardId::Cross`].
    pub fn route_primitive(&self, type_name: &str, method: &str, args: &[Value]) -> ShardId {
        let Some(tp) = self.types.get(type_name) else {
            return ShardId::Cross;
        };
        let Some(route) = tp.routes.get(method) else {
            return ShardId::Cross;
        };
        match route {
            Routing::CrossShard => ShardId::Cross,
            Routing::Local { component, key_arg } => {
                let key = match key_arg {
                    None => None,
                    Some(i) => match args.get(*i).and_then(key_render) {
                        Some(k) => Some(k),
                        None => return ShardId::Cross,
                    },
                };
                ShardId::Local {
                    type_name: type_name.to_owned(),
                    component: *component,
                    key,
                }
            }
        }
    }

    /// Checks that an observed (or declared) access to `path` on an object
    /// of type `object_type` stays inside the routed shard. Returns a
    /// human-readable escape description, or `None` if contained.
    /// [`ShardId::Cross`] operations are allowed to touch anything.
    pub fn escape(&self, shard: &ShardId, object_type: &str, path: &str) -> Option<String> {
        let ShardId::Local {
            type_name,
            component,
            key,
        } = shard
        else {
            return None;
        };
        if object_type != type_name {
            return Some(format!(
                "op routed to shard `{shard}` touched an object of type `{object_type}`"
            ));
        }
        let comp = self
            .types
            .get(type_name)
            .and_then(|tp| tp.components.get(*component as usize));
        let Some(comp) = comp else {
            return Some(format!(
                "shard `{shard}` names a component missing from the plan"
            ));
        };
        if comp.allows(path, key.as_deref()) {
            None
        } else {
            Some(format!("access to `{path}` escapes shard `{shard}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args;

    fn keyed_plan() -> ShardPlan {
        let mut tp = TypePlan {
            components: vec![ComponentPlan {
                prefixes: vec![PathPattern::parse("topics/{0}").unwrap()],
                keyed: true,
            }],
            routes: BTreeMap::new(),
        };
        tp.routes.insert(
            "post".to_owned(),
            Routing::Local {
                component: 0,
                key_arg: Some(0),
            },
        );
        tp.routes.insert("purge".to_owned(), Routing::CrossShard);
        let mut plan = ShardPlan::new();
        plan.types.insert("Board".to_owned(), tp);
        plan
    }

    #[test]
    fn routing_instantiates_the_key_argument() {
        let plan = keyed_plan();
        let shard = plan.route_primitive("Board", "post", &args!["general", "ann"]);
        assert_eq!(
            shard,
            ShardId::Local {
                type_name: "Board".into(),
                component: 0,
                key: Some("general".into()),
            }
        );
        assert_eq!(shard.to_string(), "Board:0/general");
        assert_eq!(
            plan.route_primitive("Board", "purge", &args![]),
            ShardId::Cross
        );
        // Missing key argument and unknown methods degrade to Cross.
        assert_eq!(
            plan.route_primitive("Board", "post", &args![]),
            ShardId::Cross
        );
        assert_eq!(
            plan.route_primitive("Board", "nope", &args![1]),
            ShardId::Cross
        );
        assert_eq!(
            plan.route_primitive("Other", "post", &args![1]),
            ShardId::Cross
        );
    }

    #[test]
    fn escape_checks_containment_per_key() {
        let plan = keyed_plan();
        let shard = plan.route_primitive("Board", "post", &args!["general"]);
        assert_eq!(plan.escape(&shard, "Board", "topics/general"), None);
        assert_eq!(plan.escape(&shard, "Board", "topics/general/posts/3"), None);
        let esc = plan.escape(&shard, "Board", "topics/news").unwrap();
        assert!(esc.contains("topics/news"), "{esc}");
        assert!(esc.contains("Board:0/general"), "{esc}");
        let wrong_type = plan.escape(&shard, "Ledger", "topics/general").unwrap();
        assert!(wrong_type.contains("Ledger"), "{wrong_type}");
        assert_eq!(plan.escape(&ShardId::Cross, "Board", "anything"), None);
    }

    #[test]
    fn key_render_covers_scalar_values() {
        assert_eq!(key_render(&Value::from("x")), Some("x".to_owned()));
        assert_eq!(key_render(&Value::from(7i64)), Some("7".to_owned()));
        assert_eq!(key_render(&Value::from(true)), Some("true".to_owned()));
        assert_eq!(key_render(&Value::List(vec![])), None);
    }
}
