//! Object stores: one keyed store per replica (committed `sc`, guesstimated `sg`).
//!
//! The GUESSTIMATE runtime keeps, on every machine, *two copies* of each
//! shared object the machine has joined — one backing the committed state and
//! one backing the guesstimated state (§4). An [`ObjectStore`] is one such
//! replica set. Stores support whole-store copying ([`ObjectStore::copy_from`],
//! the `sc → sg` copy at the end of each synchronization) and canonical
//! digests used to check cross-machine convergence.

use std::collections::BTreeMap;

use crate::exec::ObjectAccess;
use crate::ids::ObjectId;
use crate::object::{GState, SharedObject};
use crate::value::{value_digest, Value};

/// A keyed collection of boxed shared objects.
///
/// Iteration order is the total order on [`ObjectId`], so that digests and
/// copies are deterministic across machines.
///
/// # Examples
///
/// ```
/// use guesstimate_core::{GState, MachineId, ObjectId, ObjectStore, RestoreError, Value};
///
/// #[derive(Clone, Default)]
/// struct Flag(bool);
/// impl GState for Flag {
///     const TYPE_NAME: &'static str = "Flag";
///     fn snapshot(&self) -> Value { Value::from(self.0) }
///     fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
///         self.0 = v.as_bool().ok_or_else(|| RestoreError::shape("bool"))?;
///         Ok(())
///     }
/// }
///
/// let mut store = ObjectStore::new();
/// let id = ObjectId::new(MachineId::new(0), 1);
/// store.insert(id, Box::new(Flag(true)));
/// assert!(store.get_as::<Flag>(id).unwrap().0);
/// ```
#[derive(Default)]
pub struct ObjectStore {
    objects: BTreeMap<ObjectId, Box<dyn SharedObject>>,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Number of objects in the store.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// True if `id` is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Inserts (or replaces) an object under `id`, returning the previous one.
    pub fn insert(
        &mut self,
        id: ObjectId,
        object: Box<dyn SharedObject>,
    ) -> Option<Box<dyn SharedObject>> {
        self.objects.insert(id, object)
    }

    /// Removes the object under `id`.
    pub fn remove(&mut self, id: ObjectId) -> Option<Box<dyn SharedObject>> {
        self.objects.remove(&id)
    }

    /// Borrows the object under `id`.
    pub fn get(&self, id: ObjectId) -> Option<&dyn SharedObject> {
        self.objects.get(&id).map(|b| &**b)
    }

    /// Mutably borrows the object under `id`.
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut (dyn SharedObject + 'static)> {
        self.objects.get_mut(&id).map(|b| &mut **b)
    }

    /// Borrows the object under `id` downcast to its concrete type.
    ///
    /// Returns `None` if the id is absent **or** the type does not match.
    pub fn get_as<T: GState>(&self, id: ObjectId) -> Option<&T> {
        self.get(id)?.as_any().downcast_ref::<T>()
    }

    /// Mutably borrows the object under `id` downcast to its concrete type.
    pub fn get_as_mut<T: GState>(&mut self, id: ObjectId) -> Option<&mut T> {
        self.get_mut(id)?.as_any_mut().downcast_mut::<T>()
    }

    /// Iterates over `(id, object)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &dyn SharedObject)> {
        self.objects.iter().map(|(id, b)| (*id, &**b))
    }

    /// The ids present in the store, in order.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.objects.keys().copied().collect()
    }

    /// Overwrites this store's contents with `src`'s contents.
    ///
    /// Objects present in both are copied in place via
    /// [`SharedObject::copy_from`]; objects only in `src` are cloned in;
    /// objects only in `self` are removed. After the call the two stores hold
    /// logically identical state. This is the whole-store analog of the
    /// paper's `Copy` and implements the committed-to-guesstimated state copy.
    ///
    /// If an id is occupied by a *different concrete type* in the two stores
    /// (possible only when an application reuses ids across types), the
    /// in-place copy is impossible and the object is replaced wholesale with
    /// a clone of `src`'s — the post-condition (stores logically identical)
    /// holds either way, so this method is infallible.
    pub fn copy_from(&mut self, src: &ObjectStore) {
        self.objects.retain(|id, _| src.objects.contains_key(id));
        for (id, obj) in &src.objects {
            let in_place = match self.objects.get_mut(id) {
                Some(mine) => mine.copy_from(&**obj).is_ok(),
                None => false,
            };
            if !in_place {
                self.objects.insert(*id, obj.clone_boxed());
            }
        }
    }

    /// Canonical snapshot of the entire store: a map from object id strings
    /// to object snapshots.
    pub fn snapshot(&self) -> Value {
        Value::map(
            self.objects
                .iter()
                .map(|(id, obj)| (id.to_string(), obj.snapshot())),
        )
    }

    /// Deterministic digest of the whole store, for convergence checks.
    pub fn digest(&self) -> u64 {
        value_digest(&self.snapshot())
    }
}

impl Clone for ObjectStore {
    /// Deep-copies every object via [`SharedObject::clone_boxed`].
    fn clone(&self) -> Self {
        let mut s = ObjectStore::new();
        s.copy_from(self);
        s
    }
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStore")
            .field("len", &self.objects.len())
            .field("ids", &self.ids())
            .finish()
    }
}

impl ObjectAccess for ObjectStore {
    fn exists(&self, id: ObjectId) -> bool {
        self.contains(id)
    }

    fn clone_object(&self, id: ObjectId) -> Option<Box<dyn SharedObject>> {
        self.get(id).map(|o| o.clone_boxed())
    }

    fn apply(
        &mut self,
        id: ObjectId,
        f: &mut dyn FnMut(&mut (dyn SharedObject + 'static)) -> bool,
    ) -> Option<bool> {
        self.get_mut(id).map(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RestoreError;
    use crate::ids::MachineId;

    #[derive(Clone, Default, Debug, PartialEq)]
    struct Num(i64);
    impl GState for Num {
        const TYPE_NAME: &'static str = "Num";
        fn snapshot(&self) -> Value {
            Value::from(self.0)
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            self.0 = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
            Ok(())
        }
    }

    #[derive(Clone, Default, Debug, PartialEq)]
    struct Txt(String);
    impl GState for Txt {
        const TYPE_NAME: &'static str = "Txt";
        fn snapshot(&self) -> Value {
            Value::from(self.0.clone())
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            self.0 = v.as_str().ok_or_else(|| RestoreError::shape("str"))?.into();
            Ok(())
        }
    }

    fn oid(m: u32, s: u64) -> ObjectId {
        ObjectId::new(MachineId::new(m), s)
    }

    #[test]
    fn insert_get_remove() {
        let mut s = ObjectStore::new();
        assert!(s.is_empty());
        s.insert(oid(0, 0), Box::new(Num(5)));
        assert_eq!(s.len(), 1);
        assert!(s.contains(oid(0, 0)));
        assert_eq!(s.get_as::<Num>(oid(0, 0)), Some(&Num(5)));
        assert_eq!(s.get_as::<Txt>(oid(0, 0)), None, "wrong type downcast");
        s.get_as_mut::<Num>(oid(0, 0)).unwrap().0 = 9;
        assert_eq!(s.get_as::<Num>(oid(0, 0)).unwrap().0, 9);
        assert!(s.remove(oid(0, 0)).is_some());
        assert!(s.is_empty());
        assert!(s.get(oid(0, 0)).is_none());
    }

    #[test]
    fn copy_from_makes_stores_identical() {
        let mut a = ObjectStore::new();
        a.insert(oid(0, 0), Box::new(Num(1)));
        a.insert(oid(0, 1), Box::new(Txt("x".into())));

        let mut b = ObjectStore::new();
        b.insert(oid(0, 0), Box::new(Num(99))); // will be overwritten in place
        b.insert(oid(9, 9), Box::new(Num(7))); // will be removed

        b.copy_from(&a);
        assert_eq!(b.digest(), a.digest());
        assert_eq!(b.get_as::<Num>(oid(0, 0)).unwrap().0, 1);
        assert_eq!(b.get_as::<Txt>(oid(0, 1)).unwrap().0, "x");
        assert!(!b.contains(oid(9, 9)));
    }

    #[test]
    fn copy_from_then_mutate_does_not_alias() {
        let mut a = ObjectStore::new();
        a.insert(oid(0, 0), Box::new(Num(1)));
        let mut b = ObjectStore::new();
        b.copy_from(&a);
        b.get_as_mut::<Num>(oid(0, 0)).unwrap().0 = 2;
        assert_eq!(a.get_as::<Num>(oid(0, 0)).unwrap().0, 1);
    }

    #[test]
    fn digest_reflects_state_not_insert_order() {
        let mut a = ObjectStore::new();
        a.insert(oid(0, 1), Box::new(Num(2)));
        a.insert(oid(0, 0), Box::new(Num(1)));
        let mut b = ObjectStore::new();
        b.insert(oid(0, 0), Box::new(Num(1)));
        b.insert(oid(0, 1), Box::new(Num(2)));
        assert_eq!(a.digest(), b.digest());
        b.get_as_mut::<Num>(oid(0, 1)).unwrap().0 = 3;
        assert_ne!(a.digest(), b.digest());
    }

    /// The digest is part of the cross-machine convergence protocol (and
    /// of checked-in schedule/bench baselines), so its value for a fixed
    /// store is pinned: an accidental change to the hash or to snapshot
    /// canonicalization shows up here before it desynchronizes replicas
    /// built from different versions.
    #[test]
    fn digest_of_fixed_store_is_pinned() {
        let mut s = ObjectStore::new();
        s.insert(oid(0, 0), Box::new(Num(42)));
        s.insert(oid(1, 3), Box::new(Txt("guess".into())));
        assert_eq!(s.digest(), 0x0D0B_E349_8FF8_4A78);
        assert_eq!(ObjectStore::new().digest(), 0x2BC5_8221_66BF_4786);
    }

    /// Map-valued snapshots canonicalize by key, so logically equal maps
    /// populated in different orders digest identically.
    #[test]
    fn map_snapshot_digest_ignores_population_order() {
        #[derive(Clone, Default, Debug)]
        struct Bag(std::collections::BTreeMap<String, i64>);
        impl GState for Bag {
            const TYPE_NAME: &'static str = "Bag";
            fn snapshot(&self) -> Value {
                Value::map(self.0.iter().map(|(k, v)| (k.clone(), Value::from(*v))))
            }
            fn restore(&mut self, _: &Value) -> Result<(), RestoreError> {
                Ok(())
            }
        }
        let mut x = Bag::default();
        x.0.insert("b".into(), 2);
        x.0.insert("a".into(), 1);
        let mut y = Bag::default();
        y.0.insert("a".into(), 1);
        y.0.insert("b".into(), 2);
        let mut sx = ObjectStore::new();
        sx.insert(oid(0, 0), Box::new(x));
        let mut sy = ObjectStore::new();
        sy.insert(oid(0, 0), Box::new(y));
        assert_eq!(sx.digest(), sy.digest());
    }

    #[test]
    fn ids_are_sorted() {
        let mut s = ObjectStore::new();
        s.insert(oid(1, 0), Box::new(Num(0)));
        s.insert(oid(0, 5), Box::new(Num(0)));
        assert_eq!(s.ids(), vec![oid(0, 5), oid(1, 0)]);
    }

    #[test]
    fn snapshot_maps_ids_to_object_snapshots() {
        let mut s = ObjectStore::new();
        s.insert(oid(0, 0), Box::new(Num(42)));
        let snap = s.snapshot();
        assert_eq!(snap.field("obj-m0-0").and_then(Value::as_i64), Some(42));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = ObjectStore::new();
        assert!(format!("{s:?}").contains("ObjectStore"));
    }
}
