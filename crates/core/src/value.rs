//! Dynamic values: operation arguments and canonical state snapshots.
//!
//! GUESSTIMATE operations must be *replayable*: an operation created on one
//! machine is re-executed — bit-for-bit identically — on every machine's
//! committed replica. The C# implementation relies on .NET reflection and
//! serialization for this; in Rust we represent operation arguments (and
//! canonical state snapshots used by the spec checker) as a small dynamic
//! [`Value`] type with a *total* order and hash, so that values can be used
//! as map keys, compared across replicas and digested for convergence checks.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically typed value.
///
/// `Value` is the argument vector element of a [`crate::SharedOp`] and the
/// canonical encoding returned by [`crate::GState::snapshot`]. Floats are
/// compared and hashed by their bit pattern, which makes the type totally
/// ordered ([`Ord`]) and hashable — a deliberate deviation from IEEE `NaN`
/// semantics in exchange for replica-deterministic comparisons.
///
/// # Examples
///
/// ```
/// use guesstimate_core::Value;
/// let v = Value::from(vec![Value::from(1), Value::from("x")]);
/// assert_eq!(v.as_list().unwrap().len(), 2);
/// assert!(Value::from(1) < Value::from(2));
/// ```
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// The unit (absence of a) value.
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer.
    Int(i64),
    /// A 64-bit float (bit-compared).
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// A byte string.
    Bytes(Vec<u8>),
    /// An ordered list of values.
    List(Vec<Value>),
    /// A string-keyed map of values (ordered for determinism).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Returns the contained boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the contained integer, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the contained float, if this is a `Float` (or an `Int`, widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the contained string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained byte slice, if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the contained list, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the contained map, if this is a `Map`.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Convenience map-field lookup: `v.field("name")`.
    ///
    /// Returns `None` when `self` is not a map or the key is absent.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// True if the value is `Unit`.
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }

    /// Builds a `Map` value from an iterator of `(key, value)` pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// use guesstimate_core::Value;
    /// let v = Value::map([("a", Value::from(1)), ("b", Value::from(true))]);
    /// assert_eq!(v.field("a").and_then(Value::as_i64), Some(1));
    /// ```
    pub fn map<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Value {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// A small integer tag identifying the variant, used by the total order.
    fn discriminant(&self) -> u8 {
        match self {
            Value::Unit => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Bytes(_) => 5,
            Value::List(_) => 6,
            Value::Map(_) => 7,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Unit, Unit) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            // Total order on floats via sign-magnitude bit trick: preserves
            // numeric order for ordinary floats and is deterministic for NaN.
            (Float(a), Float(b)) => total_bits(*a).cmp(&total_bits(*b)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            (Map(a), Map(b)) => a.cmp(b),
            _ => self.discriminant().cmp(&other.discriminant()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.discriminant().hash(state);
        match self {
            Value::Unit => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => total_bits(*f).hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bytes(b) => b.hash(state),
            Value::List(l) => l.hash(state),
            Value::Map(m) => m.hash(state),
        }
    }
}

/// Maps a float to an integer whose order matches numeric order (IEEE-754
/// sign-magnitude trick); NaNs sort deterministically above +inf.
fn total_bits(f: f64) -> i64 {
    let bits = f.to_bits() as i64;
    bits ^ (((bits >> 63) as u64) >> 1) as i64
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "b{b:?}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Unit
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<u8>> for Value {
    fn from(b: Vec<u8>) -> Self {
        Value::Bytes(b)
    }
}

impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::List(l)
    }
}

impl<V: Into<Value>> FromIterator<V> for Value {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Value::List(iter.into_iter().map(Into::into).collect())
    }
}

/// Builds a `Vec<Value>` argument vector from heterogeneous expressions.
///
/// Each element is converted with `Into<Value>`, mirroring the `params
/// object[]` argument of the paper's `CreateOperation`.
///
/// # Examples
///
/// ```
/// use guesstimate_core::{args, Value};
/// let a: Vec<Value> = args![1, "two", true];
/// assert_eq!(a.len(), 3);
/// ```
#[macro_export]
macro_rules! args {
    () => { ::std::vec::Vec::<$crate::Value>::new() };
    ($($e:expr),+ $(,)?) => {
        ::std::vec![$($crate::Value::from($e)),+]
    };
}

/// Computes a 64-bit FNV-1a digest of a value's canonical encoding.
///
/// Replicas with equal committed state produce equal digests; the runtime and
/// the test suite use this to assert convergence without shipping whole
/// snapshots.
///
/// # Examples
///
/// ```
/// use guesstimate_core::{value_digest, Value};
/// assert_eq!(value_digest(&Value::from(5)), value_digest(&Value::from(5)));
/// assert_ne!(value_digest(&Value::from(5)), value_digest(&Value::from(6)));
/// ```
pub fn value_digest(v: &Value) -> u64 {
    let mut h = Fnv1a::new();
    v.hash(&mut h);
    h.finish()
}

/// A tiny FNV-1a hasher: deterministic across processes and platforms,
/// unlike `DefaultHasher` whose keys are randomized per process.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(3).as_i64(), Some(3));
        assert_eq!(Value::from(3).as_f64(), Some(3.0));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert!(Value::Unit.is_unit());
        assert_eq!(Value::Unit.as_bool(), None);
        assert_eq!(Value::from("x").as_i64(), None);
    }

    #[test]
    fn map_builder_and_field() {
        let v = Value::map([("a", Value::from(1)), ("b", Value::from("s"))]);
        assert_eq!(v.field("a"), Some(&Value::Int(1)));
        assert_eq!(v.field("missing"), None);
        assert_eq!(Value::from(1).field("a"), None);
    }

    #[test]
    fn total_order_across_variants_is_consistent() {
        let vals = [
            Value::Unit,
            Value::from(false),
            Value::from(-1),
            Value::from(1.5),
            Value::from("a"),
            Value::Bytes(vec![0]),
            Value::List(vec![]),
            Value::Map(BTreeMap::new()),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn float_order_is_numeric_for_ordinary_floats() {
        let mut v = vec![
            Value::from(1.0),
            Value::from(-2.0),
            Value::from(0.0),
            Value::from(100.5),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Value::from(-2.0),
                Value::from(0.0),
                Value::from(1.0),
                Value::from(100.5)
            ]
        );
    }

    #[test]
    fn nan_compares_deterministically() {
        let nan = Value::from(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(nan, nan.clone());
        assert!(Value::from(f64::INFINITY) < nan);
    }

    #[test]
    fn digest_distinguishes_structure() {
        let a = Value::List(vec![Value::from("ab"), Value::from("c")]);
        let b = Value::List(vec![Value::from("a"), Value::from("bc")]);
        assert_ne!(value_digest(&a), value_digest(&b));
    }

    #[test]
    fn digest_is_stable() {
        // Guard against accidental changes to the canonical encoding: the
        // digest feeds cross-machine convergence checks.
        let v = Value::map([("k", Value::from(vec![Value::from(1), Value::from(2.0)]))]);
        assert_eq!(value_digest(&v), value_digest(&v.clone()));
    }

    #[test]
    fn args_macro_builds_heterogeneous_vectors() {
        let a = args![1, "two", true, 2.5];
        assert_eq!(
            a,
            vec![
                Value::from(1),
                Value::from("two"),
                Value::from(true),
                Value::from(2.5)
            ]
        );
        let empty = args![];
        assert!(empty.is_empty());
    }

    #[test]
    fn from_iterator_collects_lists() {
        let v: Value = (0..3).map(|i| i as i64).map(Value::from).collect();
        assert_eq!(v.as_list().unwrap().len(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::from(3).to_string(), "3");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(
            Value::List(vec![Value::from(1), Value::from(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(Value::map([("a", Value::from(1))]).to_string(), "{a: 1}");
    }
}
