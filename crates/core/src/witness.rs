//! Access-witness instrumentation: observing the *actual* read and write
//! set of an operation execution, in the same `/`-separated snapshot-path
//! language [`EffectSpec`](crate::EffectSpec) declarations use.
//!
//! Every fast path built on declared footprints — replay skipping,
//! partial-order reduction, the hybrid async commit — is only as sound as
//! the hand-written declarations. This module closes the loop: it turns a
//! declared footprint from *trusted* into *checked* by executing the
//! operation under observation and refuting any declaration the observed
//! accesses escape.
//!
//! ## Semantics
//!
//! * **Writes are observed exactly.** The write set of a run is the
//!   [`snapshot_diff`] of each touched object's canonical snapshot before
//!   and after the real execution — precisely the paths at which state
//!   changed.
//! * **Reads are observed by perturbation.** Apply functions are opaque
//!   closures, so reads leave no direct trace. Instead, each candidate
//!   path of the pre-state is *perturbed* (an int nudged, a bool flipped,
//!   a map key removed or added), the operation is re-executed on a
//!   scratch copy, and the path is recorded as read iff the outcome or
//!   any *other* path of the final state differs from the unperturbed
//!   baseline. A perturbation the object's `restore` rejects is skipped.
//!
//! This read witness is **sound for refutation and under-approximating**:
//! a detected read is a real semantic dependence (some state the method's
//! behavior observably depends on), but a read whose influence no
//! perturbation surfaces — e.g. a value read and then ignored — goes
//! undetected. Perturbed runs feed *only* read detection, never write
//! refutation: a perturbed state may violate app invariants, so what a
//! method writes under it proves nothing about honest executions.
//!
//! The instrumentation is a separate entry point ([`execute_witnessed`]);
//! the plain [`execute`] path is untouched, so the cost
//! when witnessing is disabled is zero.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::effect::Footprint;
use crate::error::ExecError;
use crate::exec::{execute, ExecOutcome};
use crate::ids::ObjectId;
use crate::op::SharedOp;
use crate::paths::{child, paths_overlap, split_last};
use crate::registry::{ArgView, OpRegistry};
use crate::store::ObjectStore;
use crate::value::Value;

/// Captured pre-state per touched object: the canonical snapshot (for the
/// write diff) and, when read probing is on, a clone of the object itself
/// (the scratch re-executions need the original state).
type PreState = BTreeMap<ObjectId, (Value, Option<Box<dyn crate::SharedObject>>)>;

/// Computes the set of snapshot paths at which two snapshots differ.
///
/// Maps recurse per key (a key present on only one side reports the key's
/// path); lists of equal length recurse per index, lists of different
/// length report the list's own path (append/remove moves indices, so the
/// whole list is the honest footprint); scalars report their path. Paths
/// use the same `/`-separated key language as [`Footprint`].
pub fn snapshot_diff(pre: &Value, post: &Value) -> Vec<String> {
    let mut out = Vec::new();
    diff_into(pre, post, String::new(), &mut out);
    out
}

fn diff_into(pre: &Value, post: &Value, path: String, out: &mut Vec<String>) {
    if pre == post {
        return;
    }
    match (pre, post) {
        (Value::Map(a), Value::Map(b)) => {
            let keys: BTreeSet<&String> = a.keys().chain(b.keys()).collect();
            for k in keys {
                match (a.get(k), b.get(k)) {
                    (Some(x), Some(y)) => diff_into(x, y, child(&path, k), out),
                    _ => out.push(child(&path, k)),
                }
            }
        }
        (Value::List(a), Value::List(b)) if a.len() == b.len() => {
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                diff_into(x, y, child(&path, &i.to_string()), out);
            }
        }
        _ => out.push(path),
    }
}

/// The observed accesses of one execution against one object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessWitness {
    /// Paths the execution was observed to read (perturbation-detected;
    /// an under-approximation of the true read set).
    pub reads: BTreeSet<String>,
    /// Paths the execution changed (exact, from the pre/post snapshot
    /// diff of the real run).
    pub writes: BTreeSet<String>,
}

impl AccessWitness {
    /// True when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// How aggressively [`execute_witnessed`] probes for reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeReads {
    /// No read probing: the witness carries writes only. One extra
    /// snapshot + diff per touched object; no re-execution.
    Off,
    /// Probe only paths the operation's declared footprints do *not*
    /// cover — the cheapest mode that can still refute a declaration.
    /// Falls back to [`ProbeReads::All`] when a constituent method has no
    /// declared effect.
    Uncovered,
    /// Probe every path of every touched object's pre-state, yielding the
    /// fullest observable read set (used by the analysis sanitizer, which
    /// also wants positive reads for dead-footprint detection).
    All,
}

/// Whether an escaping access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// An observed read.
    Read,
    /// An observed write.
    Write,
}

/// One observed access that escapes the declared footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessEscape {
    /// The object on which the access escaped.
    pub object: ObjectId,
    /// Read or write.
    pub kind: AccessKind,
    /// The escaping snapshot path.
    pub path: String,
}

impl fmt::Display for WitnessEscape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        write!(f, "undeclared {kind} of `{}` on {}", self.path, self.object)
    }
}

/// The declared per-object footprints of a whole operation tree, or
/// `None` when any constituent method lacks an [`crate::EffectSpec`] (or
/// targets an object absent from the store) — the containment check is
/// then impossible and callers should skip witnessing.
///
/// `Atomic` unions its components; `OrElse` unions both alternatives
/// (either may run, so the union over-approximates soundly).
pub fn declared_footprints(
    op: &SharedOp,
    store: &ObjectStore,
    registry: &OpRegistry,
) -> Option<BTreeMap<ObjectId, Footprint>> {
    fn go(
        op: &SharedOp,
        store: &ObjectStore,
        registry: &OpRegistry,
        acc: &mut BTreeMap<ObjectId, Footprint>,
    ) -> Option<()> {
        match op {
            SharedOp::Primitive {
                object,
                method,
                args,
            } => {
                let ty = store.get(*object)?.type_name().to_owned();
                let eff = registry.effect_of(&ty, method)?;
                let fp = eff.footprint(ArgView::new(args));
                let merged = match acc.remove(object) {
                    Some(prev) => prev.union(&fp),
                    None => fp,
                };
                acc.insert(*object, merged);
                Some(())
            }
            SharedOp::Atomic(ops) => {
                for op in ops {
                    go(op, store, registry, acc)?;
                }
                Some(())
            }
            SharedOp::OrElse(a, b) => {
                go(a, store, registry, acc)?;
                go(b, store, registry, acc)
            }
        }
    }
    let mut acc = BTreeMap::new();
    go(op, store, registry, &mut acc)?;
    Some(acc)
}

/// Observed accesses not covered by the declared footprints: every
/// observed write must be covered by the declared writes, every observed
/// read by the declared reads *or* writes (a declared write already
/// conflicts with any other access of the key, so it subsumes the read).
///
/// An object the witness touched but the declaration omits contributes
/// every one of its accesses as an escape.
pub fn containment_escapes(
    witness: &BTreeMap<ObjectId, AccessWitness>,
    declared: &BTreeMap<ObjectId, Footprint>,
) -> Vec<WitnessEscape> {
    let empty = Footprint::new();
    let mut out = Vec::new();
    for (&object, w) in witness {
        let fp = declared.get(&object).unwrap_or(&empty);
        for p in &w.writes {
            if !fp.writes_cover(p) {
                out.push(WitnessEscape {
                    object,
                    kind: AccessKind::Write,
                    path: p.clone(),
                });
            }
        }
        for p in &w.reads {
            if !fp.reads_cover(p) && !fp.writes_cover(p) {
                out.push(WitnessEscape {
                    object,
                    kind: AccessKind::Read,
                    path: p.clone(),
                });
            }
        }
    }
    out
}

/// Executes `op` against `store` exactly as [`execute`]
/// does, additionally recording a per-object [`AccessWitness`].
///
/// Writes come from the real run's pre/post snapshot diff; reads from
/// perturbation probing on scratch copies per `probe` (see the module
/// docs for the exact semantics and soundness direction). On `Err` the
/// store is left exactly as `execute` leaves it and no witness is
/// produced.
///
/// # Errors
///
/// Exactly the errors of [`execute`]: unknown object,
/// unknown method, or a failed atomic write-back.
pub fn execute_witnessed(
    op: &SharedOp,
    store: &mut ObjectStore,
    registry: &OpRegistry,
    probe: ProbeReads,
) -> Result<(ExecOutcome, BTreeMap<ObjectId, AccessWitness>), ExecError> {
    let touched = op.objects_touched();
    let probing = !matches!(probe, ProbeReads::Off);
    let declared = match probe {
        ProbeReads::Uncovered => declared_footprints(op, store, registry),
        _ => None,
    };
    // Pre-state: snapshots always (for the write diff), object clones only
    // when probing (the scratch re-executions need the original state).
    let mut pre: PreState = BTreeMap::new();
    for &id in &touched {
        if let Some(obj) = store.get(id) {
            let clone = probing.then(|| obj.clone_boxed());
            pre.insert(id, (obj.snapshot(), clone));
        }
    }

    let outcome = execute(op, store, registry)?;

    let mut witness: BTreeMap<ObjectId, AccessWitness> = BTreeMap::new();
    let mut post: BTreeMap<ObjectId, Value> = BTreeMap::new();
    for (&id, (pre_snap, _)) in &pre {
        let Some(obj) = store.get(id) else { continue };
        let post_snap = obj.snapshot();
        let w = witness.entry(id).or_default();
        w.writes.extend(snapshot_diff(pre_snap, &post_snap));
        post.insert(id, post_snap);
    }

    if probing {
        let base_sig = Some(outcome.is_success());
        for (&id, (pre_snap, _)) in &pre {
            let fp = declared.as_ref().and_then(|d| d.get(&id));
            for path in probe_paths(pre_snap) {
                if let Some(fp) = fp {
                    if fp.reads_cover(&path) || fp.writes_cover(&path) {
                        continue; // cannot escape: probing it proves nothing
                    }
                }
                if probe_detects_read(op, registry, &pre, &post, base_sig, id, pre_snap, &path) {
                    witness.entry(id).or_default().reads.insert(path);
                }
            }
        }
    }
    Ok((outcome, witness))
}

/// Runs every perturbation candidate for `path` on a scratch copy of the
/// pre-state; true iff some candidate changes the outcome or any path of
/// the final state other than the perturbed one.
#[allow(clippy::too_many_arguments)]
fn probe_detects_read(
    op: &SharedOp,
    registry: &OpRegistry,
    pre: &PreState,
    post: &BTreeMap<ObjectId, Value>,
    base_sig: Option<bool>,
    id: ObjectId,
    pre_snap: &Value,
    path: &str,
) -> bool {
    for candidate in perturbed_snapshots(pre_snap, path) {
        let mut scratch = ObjectStore::new();
        for (&oid, (_, obj)) in pre {
            let obj = obj.as_ref().expect("clones captured when probing");
            scratch.insert(oid, obj.clone_boxed());
        }
        {
            let Some(target) = scratch.get_mut(id) else {
                continue;
            };
            if target.restore(&candidate).is_err() {
                continue; // unrepresentable perturbation: skip, conservatively
            }
        }
        let sig = execute(op, &mut scratch, registry)
            .ok()
            .map(ExecOutcome::is_success);
        if sig != base_sig {
            return true;
        }
        for (&oid, post_base) in post {
            let Some(obj) = scratch.get(oid) else {
                continue;
            };
            let probe_post = obj.snapshot();
            for d in snapshot_diff(post_base, &probe_post) {
                // The perturbation itself survives at (or under) `path`
                // when the operation does not write it; only divergence
                // elsewhere evidences a read.
                if !(oid == id && paths_overlap(&d, path)) {
                    return true;
                }
            }
        }
    }
    false
}

/// Every probe-worthy path of a snapshot: each node of the value tree,
/// interior and leaf alike, the root (`""`, i.e. [`crate::ROOT`])
/// included — structural perturbations at container nodes are what
/// surface length and key-set reads.
fn probe_paths(v: &Value) -> Vec<String> {
    fn go(v: &Value, path: String, out: &mut Vec<String>) {
        out.push(path.clone());
        match v {
            Value::Map(m) => {
                for (k, x) in m {
                    go(x, child(&path, k), out);
                }
            }
            Value::List(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    go(x, child(&path, &i.to_string()), out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    go(v, String::new(), &mut out);
    out
}

/// Candidate perturbed whole-snapshots for one path: the node replaced by
/// each type-preserving mutation, plus — when the node is a map entry —
/// the entry removed outright (the probe that surfaces key-existence
/// reads). Candidates a type's `restore` rejects are skipped upstream.
fn perturbed_snapshots(root: &Value, path: &str) -> Vec<Value> {
    let Some(node) = node_at(root, path) else {
        return Vec::new();
    };
    let mut out: Vec<Value> = node_mutations(node)
        .into_iter()
        .filter_map(|m| replace_at(root, path, &m))
        .collect();
    if let Some((parent, key)) = split_last(path) {
        if let Some(Value::Map(_)) = node_at(root, parent) {
            if let Some(removed) = remove_at(root, parent, key) {
                out.push(removed);
            }
        }
    }
    out
}

/// Type-preserving single-node mutations. Containers get structural
/// candidates in several value types, because the element type their
/// `restore` accepts is unknowable here.
fn node_mutations(v: &Value) -> Vec<Value> {
    match v {
        Value::Unit => Vec::new(),
        Value::Bool(b) => vec![Value::Bool(!b)],
        Value::Int(n) => vec![Value::Int(n.wrapping_add(1)), Value::Int(n.wrapping_sub(1))],
        Value::Float(f) => vec![Value::Float(f + 1.0)],
        Value::Str(s) => vec![Value::Str(format!("{s}~"))],
        Value::Bytes(b) => {
            let mut b = b.clone();
            b.push(1);
            vec![Value::Bytes(b)]
        }
        Value::List(xs) => {
            let mut out = Vec::new();
            if let Some(last) = xs.last() {
                let mut grown = xs.clone();
                grown.push(last.clone());
                out.push(Value::List(grown));
                out.push(Value::List(xs[..xs.len() - 1].to_vec()));
            } else {
                out.push(Value::List(vec![Value::Int(0)]));
                out.push(Value::List(vec![Value::Str("~".to_owned())]));
            }
            out
        }
        Value::Map(m) => [
            Value::Int(0),
            Value::Str("~".to_owned()),
            Value::List(Vec::new()),
            Value::Unit,
        ]
        .into_iter()
        .map(|fresh| {
            let mut m = m.clone();
            m.insert("~witness".to_owned(), fresh);
            Value::Map(m)
        })
        .collect(),
    }
}

fn node_at<'v>(v: &'v Value, path: &str) -> Option<&'v Value> {
    if path.is_empty() {
        return Some(v);
    }
    let mut cur = v;
    for seg in path.split('/') {
        cur = match cur {
            Value::Map(m) => m.get(seg)?,
            Value::List(xs) => xs.get(seg.parse::<usize>().ok()?)?,
            _ => return None,
        };
    }
    Some(cur)
}

/// Rebuilds `root` with the node at `path` replaced by `new`.
fn replace_at(root: &Value, path: &str, new: &Value) -> Option<Value> {
    if path.is_empty() {
        return Some(new.clone());
    }
    let (head, rest) = match path.find('/') {
        Some(i) => (&path[..i], Some(&path[i + 1..])),
        None => (path, None),
    };
    match root {
        Value::Map(m) => {
            let inner = m.get(head)?;
            let replaced = match rest {
                Some(rest) => replace_at(inner, rest, new)?,
                None => new.clone(),
            };
            let mut m = m.clone();
            m.insert(head.to_owned(), replaced);
            Some(Value::Map(m))
        }
        Value::List(xs) => {
            let i = head.parse::<usize>().ok()?;
            let inner = xs.get(i)?;
            let replaced = match rest {
                Some(rest) => replace_at(inner, rest, new)?,
                None => new.clone(),
            };
            let mut xs = xs.clone();
            xs[i] = replaced;
            Some(Value::List(xs))
        }
        _ => None,
    }
}

/// Rebuilds `root` with map entry `key` under `parent` removed.
fn remove_at(root: &Value, parent: &str, key: &str) -> Option<Value> {
    let removed = match node_at(root, parent)? {
        Value::Map(m) => {
            let mut m = m.clone();
            m.remove(key)?;
            Value::Map(m)
        }
        _ => return None,
    };
    replace_at(root, parent, &removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RestoreError;
    use crate::ids::MachineId;
    use crate::object::GState;
    use crate::registry::OpRegistry;
    use crate::value::Value;
    use crate::EffectSpec;

    /// Two named cells with a strict restore (exactly the keys `a`, `b`),
    /// so structural map perturbations at the root are rejected.
    #[derive(Clone, Default, Debug, PartialEq)]
    struct Pair {
        a: i64,
        b: i64,
    }

    impl GState for Pair {
        const TYPE_NAME: &'static str = "Pair";
        fn snapshot(&self) -> Value {
            Value::map([("a", Value::from(self.a)), ("b", Value::from(self.b))])
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            let Value::Map(m) = v else {
                return Err(RestoreError::shape("map"));
            };
            if m.len() != 2 {
                return Err(RestoreError::shape("exactly keys a and b"));
            }
            self.a = m
                .get("a")
                .and_then(Value::as_i64)
                .ok_or_else(|| RestoreError::shape("int a"))?;
            self.b = m
                .get("b")
                .and_then(Value::as_i64)
                .ok_or_else(|| RestoreError::shape("int b"))?;
            Ok(())
        }
    }

    /// A free-form string→int map (restore accepts any such map), for the
    /// key-existence probes.
    #[derive(Clone, Default, Debug, PartialEq)]
    struct Roster {
        m: std::collections::BTreeMap<String, i64>,
    }

    impl GState for Roster {
        const TYPE_NAME: &'static str = "Roster";
        fn snapshot(&self) -> Value {
            Value::Map(
                self.m
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            )
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            let Value::Map(m) = v else {
                return Err(RestoreError::shape("map"));
            };
            self.m = m
                .iter()
                .map(|(k, v)| {
                    v.as_i64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| RestoreError::shape("int entry"))
                })
                .collect::<Result<_, _>>()?;
            Ok(())
        }
    }

    fn oid() -> ObjectId {
        ObjectId::new(MachineId::new(0), 0)
    }

    fn pair_registry() -> OpRegistry {
        let mut r = OpRegistry::new();
        r.register_type::<Pair>();
        r.register_with_effects::<Pair>(
            "set_a",
            EffectSpec::new(|_| Footprint::new().writes(["a"])),
            |p: &mut Pair, a| {
                let Some(v) = a.i64(0) else { return false };
                p.a = v;
                true
            },
        );
        // Honest: b := a, declared as read a / write b.
        r.register_with_effects::<Pair>(
            "copy_a_to_b",
            EffectSpec::new(|_| Footprint::new().reads(["a"]).writes(["b"])),
            |p: &mut Pair, _| {
                p.b = p.a;
                true
            },
        );
        // Sneaky: same behavior, the read of `a` omitted.
        r.register_with_effects::<Pair>(
            "sneaky_copy",
            EffectSpec::new(|_| Footprint::new().writes(["b"])),
            |p: &mut Pair, _| {
                p.b = p.a;
                true
            },
        );
        r
    }

    fn pair_store(a: i64, b: i64) -> ObjectStore {
        let mut s = ObjectStore::new();
        s.insert(oid(), Box::new(Pair { a, b }));
        s
    }

    fn prim(method: &str, args: Vec<Value>) -> SharedOp {
        SharedOp::Primitive {
            object: oid(),
            method: method.to_owned(),
            args,
        }
    }

    #[test]
    fn writes_are_witnessed_exactly_and_nothing_else_reads() {
        let reg = pair_registry();
        let mut store = pair_store(1, 2);
        let (out, w) = execute_witnessed(
            &prim("set_a", vec![Value::from(9)]),
            &mut store,
            &reg,
            ProbeReads::All,
        )
        .unwrap();
        assert!(out.is_success());
        let w = &w[&oid()];
        assert_eq!(w.writes.iter().collect::<Vec<_>>(), ["a"]);
        assert!(w.reads.is_empty(), "set_a reads nothing: {:?}", w.reads);
        assert_eq!(store.get_as::<Pair>(oid()).unwrap().a, 9);
    }

    #[test]
    fn perturbation_detects_the_hidden_read() {
        let reg = pair_registry();
        let mut store = pair_store(5, 0);
        let (_, w) = execute_witnessed(
            &prim("sneaky_copy", vec![]),
            &mut store,
            &reg,
            ProbeReads::All,
        )
        .unwrap();
        let w = &w[&oid()];
        assert!(w.reads.contains("a"), "reads: {:?}", w.reads);
        assert_eq!(w.writes.iter().collect::<Vec<_>>(), ["b"]);
    }

    #[test]
    fn containment_separates_honest_from_sneaky() {
        let reg = pair_registry();
        for (method, expect_escape) in [("copy_a_to_b", false), ("sneaky_copy", true)] {
            let mut store = pair_store(5, 0);
            let op = prim(method, vec![]);
            let declared = declared_footprints(&op, &store, &reg).expect("effects declared");
            let (_, w) = execute_witnessed(&op, &mut store, &reg, ProbeReads::All).unwrap();
            let escapes = containment_escapes(&w, &declared);
            if expect_escape {
                assert_eq!(escapes.len(), 1, "{escapes:?}");
                assert_eq!(escapes[0].kind, AccessKind::Read);
                assert_eq!(escapes[0].path, "a");
            } else {
                assert!(escapes.is_empty(), "{method}: {escapes:?}");
            }
        }
    }

    #[test]
    fn uncovered_probing_skips_declared_paths_but_still_refutes() {
        let reg = pair_registry();
        // Honest method under Uncovered: every touched path is declared,
        // so no probe runs and the witness carries writes only.
        let mut store = pair_store(5, 0);
        let op = prim("copy_a_to_b", vec![]);
        let (_, w) = execute_witnessed(&op, &mut store, &reg, ProbeReads::Uncovered).unwrap();
        assert!(w[&oid()].reads.is_empty());
        // Sneaky method under Uncovered: `a` is undeclared, hence probed,
        // hence caught.
        let mut store = pair_store(5, 0);
        let op = prim("sneaky_copy", vec![]);
        let (_, w) = execute_witnessed(&op, &mut store, &reg, ProbeReads::Uncovered).unwrap();
        assert!(w[&oid()].reads.contains("a"));
    }

    #[test]
    fn map_key_existence_reads_are_detected_by_removal() {
        let mut reg = OpRegistry::new();
        reg.register_type::<Roster>();
        // Pure membership check: no writes at all.
        reg.register_with_effects::<Roster>(
            "check",
            EffectSpec::new(|a| match a.str(0) {
                Some(k) => Footprint::new().reads([k.to_owned()]),
                None => Footprint::new(),
            }),
            |r: &mut Roster, a| {
                let Some(k) = a.str(0) else { return false };
                r.m.contains_key(k)
            },
        );
        let mut store = ObjectStore::new();
        store.insert(
            oid(),
            Box::new(Roster {
                m: [("ann".to_owned(), 1), ("bob".to_owned(), 2)].into(),
            }),
        );
        let op = prim("check", vec![Value::from("ann")]);
        let (out, w) = execute_witnessed(&op, &mut store, &reg, ProbeReads::All).unwrap();
        assert!(out.is_success());
        let w = &w[&oid()];
        assert!(w.writes.is_empty());
        assert!(w.reads.contains("ann"), "reads: {:?}", w.reads);
        assert!(!w.reads.contains("bob"), "reads: {:?}", w.reads);
    }

    #[test]
    fn rejected_perturbations_are_skipped_without_false_positives() {
        // Pair's restore rejects maps with extra keys, so the structural
        // root probe is skipped; the remaining probes must stay silent on
        // a method that reads nothing.
        let reg = pair_registry();
        let mut store = pair_store(i64::MAX, 0);
        let (_, w) = execute_witnessed(
            &prim("set_a", vec![Value::from(3)]),
            &mut store,
            &reg,
            ProbeReads::All,
        )
        .unwrap();
        assert!(w[&oid()].reads.is_empty(), "{:?}", w[&oid()].reads);
    }

    #[test]
    fn declared_footprints_union_composites_and_demand_effects() {
        let reg = pair_registry();
        let store = pair_store(0, 0);
        let atomic = SharedOp::Atomic(vec![
            prim("set_a", vec![Value::from(1)]),
            prim("copy_a_to_b", vec![]),
        ]);
        let fps = declared_footprints(&atomic, &store, &reg).unwrap();
        let fp = &fps[&oid()];
        assert!(fp.writes_cover("a") && fp.writes_cover("b") && fp.reads_cover("a"));
        // A method with no effect poisons the whole tree.
        let mut reg2 = OpRegistry::new();
        reg2.register_type::<Pair>();
        reg2.register_method::<Pair>("opaque", |_, _| true);
        let op = prim("opaque", vec![]);
        assert!(declared_footprints(&op, &store, &reg2).is_none());
    }
}
