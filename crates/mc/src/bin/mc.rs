//! The `mc` binary: bounded schedule model checking from the command
//! line.
//!
//! ```text
//! mc [--preset NAME|all] [--rounds N] [--max-schedules N] [--max-steps N]
//!    [--no-reduction] [--matrix FILE] [--min-prune R] [--min-schedules N]
//!    [--tamper VICTIM:NTH:I:J] [--out DIR] [--replay FILE] [--emit FILE]
//!    [--metrics FILE] [--list]
//! ```
//!
//! Default mode explores each selected preset within the schedule
//! budget, printing explored/pruned counts and the prune ratio. On an
//! oracle violation the offending schedule is minimized, written as a
//! replayable JSON file (into `--out`, default the working directory)
//! alongside a flight-recorder postmortem bundle
//! (`mc-postmortem-<preset>.json`: the minimized replay's causal
//! timeline, per-machine state summaries, and happens-before verdict;
//! inspect with `obs --postmortem`), and the process exits 1.
//! `--replay FILE` instead replays a schedule file and reports whether
//! it still violates, dumping `FILE.postmortem.json` when it does. `--matrix FILE` loads a
//! validated commute matrix from an `analyze --json` archive, sharpening
//! the partial-order reduction beyond footprint reasoning alone.
//! `--metrics FILE` (or the `GUESSTIMATE_METRICS` environment variable)
//! writes a Prometheus text snapshot of the exploration counters
//! (schedules, prunes, oracle checks) across all selected presets; a
//! `.json` extension selects the JSON snapshot format instead.
//!
//! Exit codes: 0 clean, 1 violation found (or replay reproduced one, or
//! a `--min-*` gate failed), 2 usage/IO error.

use std::process::ExitCode;
use std::sync::Arc;

use guesstimate_analysis::matrices_from_json;
use guesstimate_core::CommuteMatrix;
use guesstimate_mc::{
    explore, minimize, multigroup, replay_traced, ExploreConfig, Preset, Schedule, TamperSpec,
    CROSS_GROUP, PRESETS,
};
use guesstimate_net::Tracer;
use guesstimate_obs::FlightRecorder;
use guesstimate_telemetry::Telemetry;

struct Args {
    presets: Vec<&'static Preset>,
    /// Run the multi-group `cross-group` preset (not part of `all`: it
    /// explores a different cluster shape with its own oracles).
    cross_group: bool,
    rounds: Option<u64>,
    cfg: ExploreConfig,
    matrix: CommuteMatrix,
    min_prune: Option<f64>,
    min_schedules: Option<u64>,
    tamper: Option<TamperSpec>,
    out_dir: String,
    replay_file: Option<String>,
    emit: Option<String>,
    metrics: Option<String>,
}

fn usage() -> &'static str {
    "usage: mc [--preset NAME|all] [--rounds N] [--max-schedules N] [--max-steps N]\n          [--no-reduction] [--matrix FILE] [--min-prune RATIO] [--min-schedules N]\n          [--tamper VICTIM:NTH:I:J] [--out DIR] [--replay FILE] [--emit FILE]\n          [--metrics FILE] [--list]"
}

fn parse_tamper(s: &str) -> Result<TamperSpec, String> {
    let parts: Vec<&str> = s.split(':').collect();
    let [victim, nth, i, j] = parts[..] else {
        return Err(format!("--tamper wants VICTIM:NTH:I:J, got `{s}`"));
    };
    let num = |x: &str| x.parse::<u64>().map_err(|e| format!("--tamper `{x}`: {e}"));
    Ok(TamperSpec {
        victim: u32::try_from(num(victim)?).map_err(|e| e.to_string())?,
        nth: num(nth)?,
        swap: (num(i)? as usize, num(j)? as usize),
    })
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        presets: PRESETS.iter().collect(),
        cross_group: false,
        rounds: None,
        cfg: ExploreConfig::default(),
        matrix: CommuteMatrix::new(),
        min_prune: None,
        min_schedules: None,
        tamper: None,
        out_dir: ".".to_owned(),
        replay_file: None,
        emit: None,
        metrics: std::env::var("GUESSTIMATE_METRICS").ok(),
    };
    let mut argv = std::env::args().skip(1);
    let need = |flag: &str, v: Option<String>| v.ok_or(format!("{flag} needs a value"));
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--list" => {
                for p in PRESETS {
                    println!("{:<14} {}", p.name, p.blurb);
                }
                println!(
                    "{CROSS_GROUP:<14} multi-group cluster: per-group rounds + one coordinated cross round"
                );
                return Ok(None);
            }
            "--preset" => {
                let v = need("--preset", argv.next())?;
                if v == CROSS_GROUP {
                    args.presets = Vec::new();
                    args.cross_group = true;
                } else if v != "all" {
                    let p =
                        Preset::by_name(&v).ok_or(format!("unknown preset `{v}` (try --list)"))?;
                    args.presets = vec![p];
                }
            }
            "--rounds" => {
                args.rounds = Some(
                    need("--rounds", argv.next())?
                        .parse()
                        .map_err(|e| format!("--rounds: {e}"))?,
                );
            }
            "--max-schedules" => {
                args.cfg.max_schedules = need("--max-schedules", argv.next())?
                    .parse()
                    .map_err(|e| format!("--max-schedules: {e}"))?;
            }
            "--max-steps" => {
                args.cfg.max_steps = need("--max-steps", argv.next())?
                    .parse()
                    .map_err(|e| format!("--max-steps: {e}"))?;
            }
            "--no-reduction" => args.cfg.reduction = false,
            "--matrix" => {
                let path = need("--matrix", argv.next())?;
                let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                args.matrix = matrices_from_json(&text).map_err(|e| format!("{path}: {e}"))?;
            }
            "--min-prune" => {
                args.min_prune = Some(
                    need("--min-prune", argv.next())?
                        .parse()
                        .map_err(|e| format!("--min-prune: {e}"))?,
                );
            }
            "--min-schedules" => {
                args.min_schedules = Some(
                    need("--min-schedules", argv.next())?
                        .parse()
                        .map_err(|e| format!("--min-schedules: {e}"))?,
                );
            }
            "--tamper" => args.tamper = Some(parse_tamper(&need("--tamper", argv.next())?)?),
            "--out" => args.out_dir = need("--out", argv.next())?,
            "--replay" => args.replay_file = Some(need("--replay", argv.next())?),
            "--emit" => args.emit = Some(need("--emit", argv.next())?),
            "--metrics" => args.metrics = Some(need("--metrics", argv.next())?),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(Some(args))
}

/// Replays the minimized schedule with a flight recorder attached and
/// writes the postmortem bundle (recent causal timeline, machine state
/// summaries, happens-before verdict) next to the repro file.
///
/// Stamp allocation is deterministic driver state, so the bundle's
/// timeline is itself replayable: `obs --postmortem FILE` re-checks it.
fn write_postmortem(
    sched: &Schedule,
    matrix: &CommuteMatrix,
    file: &str,
    violation: &str,
) -> Result<(), String> {
    // Generous capacity: minimized schedules are short, so the whole
    // replay fits in the ring and nothing is dropped from the window.
    let recorder = Arc::new(FlightRecorder::new(4096));
    let tracer: Arc<dyn Tracer> = recorder.clone();
    let (_, states) = replay_traced(sched, matrix, tracer)?;
    let reason = format!("mc oracle violation ({}): {violation}", sched.preset);
    recorder
        .write_postmortem(file.as_ref(), &reason, &states)
        .map_err(|e| format!("{file}: {e}"))?;
    println!(
        "{}: wrote postmortem bundle to {file} (inspect with: obs --postmortem {file})",
        sched.preset
    );
    Ok(())
}

fn run_replay(path: &str, matrix: &CommuteMatrix) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let sched = Schedule::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let recorder = Arc::new(FlightRecorder::new(4096));
    let tracer: Arc<dyn Tracer> = recorder.clone();
    let (report, states) = replay_traced(&sched, matrix, tracer.clone())?;
    println!(
        "replayed {path}: {} applied, {} skipped",
        report.applied, report.skipped
    );
    match report.violation {
        Some(v) => {
            println!("violation reproduced: {v}");
            let file = format!("{path}.postmortem.json");
            let reason = format!("mc replay violation ({}): {v}", sched.preset);
            recorder
                .write_postmortem(file.as_ref(), &reason, &states)
                .map_err(|e| format!("{file}: {e}"))?;
            println!("wrote postmortem bundle to {file}");
            Ok(ExitCode::from(1))
        }
        None => {
            println!("no violation");
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// Writes the exploration-counter snapshot: Prometheus text by default,
/// the JSON format when `path` ends in `.json`.
fn write_metrics(path: Option<&str>, telemetry: &Telemetry) -> Result<(), String> {
    let Some(path) = path else { return Ok(()) };
    let text = if path.ends_with(".json") {
        telemetry.render_json()
    } else {
        telemetry.render_prometheus()
    };
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote metrics snapshot to {path}");
    Ok(())
}

fn run(mut args: Args) -> Result<ExitCode, String> {
    if let Some(path) = &args.replay_file {
        return run_replay(path, &args.matrix);
    }
    let telemetry = if args.metrics.is_some() {
        Telemetry::new()
    } else {
        Telemetry::noop()
    };
    args.cfg.telemetry = telemetry.clone();

    let mut gate_failed = false;
    for base in &args.presets {
        let mut preset = **base;
        if let Some(r) = args.rounds {
            preset.rounds = r;
        }
        let out = explore(&preset, &args.matrix, args.tamper, &args.cfg);
        let ratio = out.pruned as f64 / (out.pruned + out.schedules).max(1) as f64;
        println!(
            "{:<14} schedules {:>7}  pruned {:>7} ({:>5.1}%)  truncated {:>5}  max depth {:>3}  steps {:>9}{}",
            preset.name,
            out.schedules,
            out.pruned,
            100.0 * ratio,
            out.truncated,
            out.max_depth,
            out.steps_executed,
            if out.complete { "  (exhausted)" } else { "" },
        );

        if let Some((violation, steps)) = out.violation {
            println!(
                "{}: VIOLATION after {} steps: {violation}",
                preset.name,
                steps.len()
            );
            let raw = Schedule {
                preset: preset.name.to_owned(),
                tamper: args.tamper,
                steps,
            };
            let min = minimize(&raw, &args.matrix);
            println!(
                "{}: minimized {} -> {} steps",
                preset.name,
                raw.steps.len(),
                min.steps.len()
            );
            let file = format!("{}/mc-repro-{}.json", args.out_dir, preset.name);
            std::fs::write(&file, min.to_json()).map_err(|e| format!("{file}: {e}"))?;
            println!(
                "{}: wrote repro to {file} (replay with: mc --replay {file})",
                preset.name
            );
            let pm = format!("{}/mc-postmortem-{}.json", args.out_dir, preset.name);
            write_postmortem(&min, &args.matrix, &pm, &violation.to_string())?;
            write_metrics(args.metrics.as_deref(), &telemetry)?;
            return Ok(ExitCode::from(1));
        }

        if let (Some(path), Some(steps)) = (&args.emit, &out.sample) {
            let sched = Schedule {
                preset: preset.name.to_owned(),
                tamper: args.tamper,
                steps: steps.clone(),
            };
            std::fs::write(path, sched.to_json()).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{}: wrote sample schedule ({} steps) to {path}",
                preset.name,
                steps.len()
            );
        }

        if let Some(min) = args.min_schedules {
            if out.schedules < min {
                eprintln!(
                    "{}: GATE FAILED: explored {} schedules, wanted >= {min}",
                    preset.name, out.schedules
                );
                gate_failed = true;
            }
        }
        if let Some(min) = args.min_prune {
            if args.cfg.reduction && ratio < min {
                eprintln!(
                    "{}: GATE FAILED: prune ratio {ratio:.3}, wanted >= {min}",
                    preset.name
                );
                gate_failed = true;
            }
        }
    }
    if args.cross_group {
        let out = multigroup::explore(&args.cfg);
        let ratio = out.pruned as f64 / (out.pruned + out.schedules).max(1) as f64;
        println!(
            "{:<14} schedules {:>7}  pruned {:>7} ({:>5.1}%)  truncated {:>5}  max depth {:>3}  steps {:>9}{}",
            CROSS_GROUP,
            out.schedules,
            out.pruned,
            100.0 * ratio,
            out.truncated,
            out.max_depth,
            out.steps_executed,
            if out.complete { "  (exhausted)" } else { "" },
        );
        if let Some((violation, steps)) = out.violation {
            println!(
                "{CROSS_GROUP}: VIOLATION after {} steps: {violation}",
                steps.len()
            );
            let raw = Schedule {
                preset: CROSS_GROUP.to_owned(),
                tamper: None,
                steps,
            };
            let min = minimize(&raw, &args.matrix);
            println!(
                "{CROSS_GROUP}: minimized {} -> {} steps",
                raw.steps.len(),
                min.steps.len()
            );
            let file = format!("{}/mc-repro-{CROSS_GROUP}.json", args.out_dir);
            std::fs::write(&file, min.to_json()).map_err(|e| format!("{file}: {e}"))?;
            println!("{CROSS_GROUP}: wrote repro to {file} (replay with: mc --replay {file})");
            let pm = format!("{}/mc-postmortem-{CROSS_GROUP}.json", args.out_dir);
            write_postmortem(&min, &args.matrix, &pm, &violation.to_string())?;
            write_metrics(args.metrics.as_deref(), &telemetry)?;
            return Ok(ExitCode::from(1));
        }
        if let (Some(path), Some(steps)) = (&args.emit, &out.sample) {
            let sched = Schedule {
                preset: CROSS_GROUP.to_owned(),
                tamper: None,
                steps: steps.clone(),
            };
            std::fs::write(path, sched.to_json()).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{CROSS_GROUP}: wrote sample schedule ({} steps) to {path}",
                steps.len()
            );
        }
        if let Some(min) = args.min_schedules {
            if out.schedules < min {
                eprintln!(
                    "{CROSS_GROUP}: GATE FAILED: explored {} schedules, wanted >= {min}",
                    out.schedules
                );
                gate_failed = true;
            }
        }
        if let Some(min) = args.min_prune {
            if args.cfg.reduction && ratio < min {
                eprintln!("{CROSS_GROUP}: GATE FAILED: prune ratio {ratio:.3}, wanted >= {min}");
                gate_failed = true;
            }
        }
    }
    write_metrics(args.metrics.as_deref(), &telemetry)?;
    Ok(if gate_failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(Some(args)) => match run(args) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("mc: {e}");
                ExitCode::from(2)
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mc: {e}");
            ExitCode::from(2)
        }
    }
}
