//! Stateless depth-first exploration with sleep-set partial-order
//! reduction.
//!
//! The explorer enumerates schedules of a [`Preset`]'s post-prelude
//! cluster. Each tree node is a scheduler state; its outgoing edges are
//! the **enabled choices**: deliver any in-flight message, drop one
//! (while the preset's loss budget lasts), and — in quiet phases — admit
//! the staged joiner or fire the earliest timer. Machines are not
//! clonable (completions are closures), so backtracking is *stateless*:
//! the cluster is rebuilt from the preset and the current path prefix is
//! replayed. The prelude and every step are deterministic, so replay
//! reproduces the node exactly.
//!
//! ## Sleep sets
//!
//! The reduction is the classic sleep-set algorithm (Godefroid): when a
//! node's child via choice `c` is entered, the child's sleep set is the
//! parent's sleep set plus the parent's already-explored choices,
//! restricted to choices **independent** of `c`. A choice found in its
//! node's sleep set is skipped (counted as pruned): every behavior
//! reachable through it has already been covered through a sibling,
//! because executing independent choices in either order reaches the
//! same state.
//!
//! ## The independence relation
//!
//! Grounded in the validated effect analysis (`guesstimate_runtime::commute`,
//! fed by `guesstimate-analysis`):
//!
//! * `Deliver(x)` / `Deliver(y)` to **different machines** are
//!   independent: delivery only mutates the target.
//! * `Deliver(x)` / `Deliver(y)` to the **same machine** are independent
//!   iff both are `Msg::Ops` batches of the *same round* from *different
//!   senders* and every cross-pair of envelopes — serialized batches and
//!   piggybacked async windows alike — commutes per [`wire_ops_commute`]
//!   (object-disjointness → validated [`CommuteMatrix`] →
//!   argument-precise footprints). This is strictly conservative: the
//!   receiver buffers a round's batches by operation id and applies them
//!   in id order, so same-round batches commute at the state level
//!   regardless — the commute gate only ever keeps *more* interleavings
//!   than necessary, never fewer.
//! * `Deliver` of two `Msg::AsyncOp`s to the same machine are
//!   independent iff they come from different senders (same-sender
//!   asyncs share a FIFO arrival slot) and their envelopes commute;
//!   an `AsyncOp` and an `Ops` batch likewise, provided the flusher is
//!   not the async op's own sender and the async envelope commutes with
//!   everything the batch carries.
//! * `Drop(x)` is independent of anything except a choice about the same
//!   message.
//! * `Admit` and `Timer` are dependent on everything (they change
//!   membership/time, which feeds back into all future choices).
//!
//! One caveat the digest-set soundness test (`mc` crate tests) confirms
//! empirically: reordering independent deliveries can renumber messages
//! *created afterwards*, so sleep-set hits are matched on the choice
//! identity at this node, which the deterministic seq assignment makes
//! stable across replays of the same prefix.

use std::collections::BTreeSet;

use guesstimate_core::{CommuteMatrix, MachineId};
use guesstimate_net::SchedNet;
use guesstimate_runtime::commute::wire_ops_commute;
use guesstimate_runtime::{Machine, Msg, WireEnvelope};
use guesstimate_telemetry::Telemetry;

use crate::oracle::{check_step, check_terminal, state_digest, Violation};
use crate::scenario::{Built, Preset};
use crate::schedule::{Schedule, Step, TamperSpec};

/// Exploration limits and switches.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Stop after this many complete schedules.
    pub max_schedules: u64,
    /// Cut any single schedule at this depth (counted as truncated).
    pub max_steps: usize,
    /// Enable the sleep-set partial-order reduction.
    pub reduction: bool,
    /// Record a digest of every terminal state (for soundness tests).
    pub collect_digests: bool,
    /// Exploration counters (schedules, prunes, oracle checks) are
    /// recorded here; the default no-op handle records nothing.
    pub telemetry: Telemetry,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_schedules: 10_000,
            max_steps: 96,
            reduction: true,
            collect_digests: false,
            telemetry: Telemetry::noop(),
        }
    }
}

/// What an exploration found.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Complete schedules executed to a terminal (or cut) state.
    pub schedules: u64,
    /// Choices skipped because they were in their node's sleep set.
    pub pruned: u64,
    /// Schedules cut by `max_steps` before quiescing.
    pub truncated: u64,
    /// Deepest schedule seen.
    pub max_depth: usize,
    /// Total scheduler steps executed (including backtrack replays).
    pub steps_executed: u64,
    /// Digests of terminal states (when `collect_digests`).
    pub terminal_digests: BTreeSet<u64>,
    /// True when the whole (reduced) tree was exhausted within budget.
    pub complete: bool,
    /// The last complete schedule explored — a representative
    /// non-trivial interleaving (DFS visits the deterministic drain
    /// first, so later schedules carry the interesting reorderings).
    pub sample: Option<Vec<Step>>,
    /// The first oracle violation and the schedule that reached it.
    pub violation: Option<(Violation, Vec<Step>)>,
}

struct Frame {
    choices: Vec<Step>,
    idx: usize,
    sleep: Vec<Step>,
    explored: Vec<Step>,
}

/// Executes one choice against the cluster. Returns false if the choice
/// was not applicable (stale seq, no timer).
pub fn exec_step(net: &mut SchedNet<Machine>, s: Step) -> bool {
    match s {
        Step::Deliver(q) => net.deliver(q),
        Step::Drop(q) => net.drop_msg(q),
        Step::Admit(q) => net.admit(q),
        Step::Timer => net.fire_next_timer(),
    }
}

fn enabled(built: &Built, preset: &Preset, drops_used: u32) -> Vec<Step> {
    let net = &built.net;
    let mut v = Vec::new();
    let msgs = net.pending_msgs();
    if !msgs.is_empty() {
        v.extend(msgs.iter().map(|&s| Step::Deliver(s)));
        if drops_used < preset.drop_budget {
            v.extend(msgs.iter().map(|&s| Step::Drop(s)));
        }
        return v;
    }
    // Quiet phase: the round is over (or has not started). Admission and
    // the next timer are the only moves; the joiner's handshake messages
    // then become ordinary delivery choices.
    let master = net.actor(MachineId::new(0)).expect("master");
    if master.stats().syncs_seen >= built.base_rounds + preset.rounds {
        return v; // terminal: explored rounds exhausted, nothing in flight
    }
    v.extend(net.pending_joins().iter().map(|&j| Step::Admit(j)));
    if net.has_timers() {
        v.push(Step::Timer);
    }
    v
}

/// The independence relation described in the module docs.
fn independent(built: &Built, matrix: &CommuteMatrix, a: Step, b: Step) -> bool {
    use Step::{Admit, Deliver, Drop, Timer};
    match (a, b) {
        (Admit(_) | Timer, _) | (_, Admit(_) | Timer) => false,
        (Deliver(x) | Drop(x), Deliver(y) | Drop(y)) if x == y => false,
        (Drop(_), Deliver(_) | Drop(_)) | (Deliver(_), Drop(_)) => true,
        (Deliver(x), Deliver(y)) => {
            let net = &built.net;
            let (Some(px), Some(py)) = (net.pending_msg(x), net.pending_msg(y)) else {
                return false;
            };
            if px.to != py.to {
                return true;
            }
            let Some(target) = net.actor(px.to) else {
                return false;
            };
            let type_of = |oid| target.object_type(oid).map(str::to_owned);
            let commute = |ea: &WireEnvelope, eb: &WireEnvelope| {
                wire_ops_commute(&built.registry, matrix, &type_of, &ea.op, &eb.op)
            };
            // Envelopes a message applies (or stages) at the receiver:
            // serialized batch plus the piggybacked async window for Ops,
            // the single envelope for a standalone AsyncOp.
            match (&px.msg, &py.msg) {
                (
                    Msg::Ops {
                        round: ra,
                        machine: sa,
                        ops: oa,
                        asyncs: aa,
                    },
                    Msg::Ops {
                        round: rb,
                        machine: sb,
                        ops: ob,
                        asyncs: ab,
                    },
                ) => {
                    if ra != rb || sa == sb {
                        return false;
                    }
                    let ea = oa.iter().chain(aa.iter().map(|(_, e)| e));
                    ea.clone().all(|a| {
                        ob.iter()
                            .chain(ab.iter().map(|(_, e)| e))
                            .all(|b| commute(a, b))
                    })
                }
                (Msg::AsyncOp { env: ea, .. }, Msg::AsyncOp { env: eb, .. }) => {
                    // Same-sender AsyncOps share an arrival-order slot.
                    px.from != py.from && commute(ea, eb)
                }
                (
                    Msg::AsyncOp { env, .. },
                    Msg::Ops {
                        machine,
                        ops,
                        asyncs,
                        ..
                    },
                )
                | (
                    Msg::Ops {
                        machine,
                        ops,
                        asyncs,
                        ..
                    },
                    Msg::AsyncOp { env, .. },
                ) => {
                    // The async op must commute with both the ops the
                    // round will apply and the piggybacked window; a flush
                    // from the async op's own sender shares its slot.
                    let sender = if matches!(&px.msg, Msg::AsyncOp { .. }) {
                        px.from
                    } else {
                        py.from
                    };
                    sender != *machine
                        && ops
                            .iter()
                            .chain(asyncs.iter().map(|(_, e)| e))
                            .all(|b| commute(env, b))
                }
                _ => false,
            }
        }
    }
}

/// Explores the preset's schedule tree depth-first.
///
/// Stops at the first oracle violation (recorded in
/// [`Outcome::violation`] together with the offending schedule), when
/// `max_schedules` is reached, or when the tree is exhausted
/// (`complete = true`).
pub fn explore(
    preset: &Preset,
    matrix: &CommuteMatrix,
    tamper: Option<TamperSpec>,
    cfg: &ExploreConfig,
) -> Outcome {
    // Resolve the matrix once: the preset's baseline pairs (which arm the
    // hybrid path) must feed the POR independence relation and the
    // machines' own classification identically.
    let matrix = &preset.effective_matrix(matrix);
    let mut out = Outcome::default();
    let mut built = preset.build(matrix, tamper);
    let mut path: Vec<Step> = Vec::new();
    let mut frames = vec![Frame {
        choices: enabled(&built, preset, 0),
        idx: 0,
        sleep: Vec::new(),
        explored: Vec::new(),
    }];
    let mut drops_used = 0u32;
    // Set when the cluster state has moved past the node the top frame
    // describes (after any backtrack): rebuild + replay before executing.
    let mut dirty = false;

    while out.schedules < cfg.max_schedules {
        let Some(frame) = frames.last_mut() else {
            out.complete = true;
            break;
        };
        if frame.idx >= frame.choices.len() {
            frames.pop();
            match path.pop() {
                Some(c) => {
                    if matches!(c, Step::Drop(_)) {
                        drops_used -= 1;
                    }
                    let parent = frames.last_mut().expect("frames outnumber path by one");
                    parent.explored.push(c);
                    parent.idx += 1;
                    dirty = true;
                    continue;
                }
                None => {
                    out.complete = true;
                    break;
                }
            }
        }
        let c = frame.choices[frame.idx];
        if cfg.reduction && frame.sleep.contains(&c) {
            frame.idx += 1;
            out.pruned += 1;
            cfg.telemetry.mc_pruned();
            continue;
        }
        if dirty {
            built = preset.build(matrix, tamper);
            for &s in &path {
                assert!(
                    exec_step(&mut built.net, s),
                    "replaying {s} of a known prefix"
                );
                out.steps_executed += 1;
            }
            dirty = false;
        }
        // The child's sleep set must be computed *before* executing `c`:
        // independence inspects the messages still pending here.
        let frame = frames.last().expect("just checked");
        let child_sleep: Vec<Step> = frame
            .sleep
            .iter()
            .chain(frame.explored.iter())
            .copied()
            .filter(|&x| x != c && independent(&built, matrix, x, c))
            .collect();

        assert!(
            exec_step(&mut built.net, c),
            "enabled choice {c} must apply"
        );
        out.steps_executed += 1;
        path.push(c);
        if matches!(c, Step::Drop(_)) {
            drops_used += 1;
        }
        out.max_depth = out.max_depth.max(path.len());
        cfg.telemetry.mc_oracle_check();
        if let Some(v) = check_step(&built.net, preset.hybrid) {
            out.violation = Some((v, path.clone()));
            return out;
        }

        let next = enabled(&built, preset, drops_used);
        let terminal = next.is_empty();
        let cut = !terminal && path.len() >= cfg.max_steps;
        if terminal || cut {
            out.schedules += 1;
            cfg.telemetry.mc_schedule();
            if cut {
                out.truncated += 1;
            }
            if terminal {
                cfg.telemetry.mc_oracle_check();
                if let Some(v) =
                    check_terminal(&built.net, &built.registry, preset.total_machines())
                {
                    out.violation = Some((v, path.clone()));
                    return out;
                }
            }
            if cfg.collect_digests {
                out.terminal_digests.insert(state_digest(&built.net));
            }
            out.sample = Some(path.clone());
            path.pop();
            if matches!(c, Step::Drop(_)) {
                drops_used -= 1;
            }
            let frame = frames.last_mut().expect("frame for the popped step");
            frame.explored.push(c);
            frame.idx += 1;
            dirty = true;
        } else {
            frames.push(Frame {
                choices: next,
                idx: 0,
                sleep: child_sleep,
                explored: Vec::new(),
            });
        }
    }
    out
}

/// The result of replaying a schedule file.
#[derive(Debug)]
pub struct ReplayReport {
    /// Steps that applied cleanly.
    pub applied: usize,
    /// Steps skipped because their seq was no longer pending (expected
    /// after minimization; see `schedule` module docs).
    pub skipped: usize,
    /// The first oracle violation, if the schedule reproduces one.
    pub violation: Option<Violation>,
}

/// Replays a schedule against a freshly built cluster, running the step
/// oracles after every applied choice and the terminal oracles if the
/// run quiesces.
///
/// # Errors
///
/// Returns `Err` when the schedule names an unknown preset.
pub fn replay(sched: &Schedule, matrix: &CommuteMatrix) -> Result<ReplayReport, String> {
    replay_inner(sched, matrix, None).map(|(report, _)| report)
}

/// [`replay`] with a shared trace sink installed on the scheduler driver
/// and every initial machine *before* any step executes, plus a
/// [`guesstimate_runtime::StateSummary`] snapshot of each machine at the
/// end.
///
/// Message-stamp allocation is part of the deterministic driver state,
/// so replaying the same schedule reproduces the exact same stamped
/// causal timeline — which is what makes a flight-recorder postmortem
/// bundle replayable and its happens-before check meaningful.
///
/// # Errors
///
/// Returns `Err` when the schedule names an unknown preset.
pub fn replay_traced(
    sched: &Schedule,
    matrix: &CommuteMatrix,
    tracer: std::sync::Arc<dyn guesstimate_net::Tracer>,
) -> Result<(ReplayReport, Vec<guesstimate_runtime::StateSummary>), String> {
    replay_inner(sched, matrix, Some(tracer))
}

fn replay_inner(
    sched: &Schedule,
    matrix: &CommuteMatrix,
    tracer: Option<std::sync::Arc<dyn guesstimate_net::Tracer>>,
) -> Result<(ReplayReport, Vec<guesstimate_runtime::StateSummary>), String> {
    // The multi-group preset builds its own cluster shape (MultiMachine
    // wrappers, no tamper, no commute matrix); driver-level tracing does
    // not reach the inner machines, so its bundles carry state summaries
    // with an empty causal timeline.
    if sched.preset == crate::multigroup::CROSS_GROUP {
        return Ok(crate::multigroup::replay_with_summaries(sched));
    }
    let preset =
        Preset::by_name(&sched.preset).ok_or_else(|| format!("unknown preset {}", sched.preset))?;
    let matrix = &preset.effective_matrix(matrix);
    let mut built = preset.build(matrix, sched.tamper);
    if let Some(t) = tracer {
        built.net.set_tracer(t.clone());
        for i in 0..preset.total_machines() {
            if let Some(m) = built.net.actor_mut(MachineId::new(i)) {
                m.set_tracer(t.clone());
            }
        }
    }
    let mut report = ReplayReport {
        applied: 0,
        skipped: 0,
        violation: None,
    };
    for &s in &sched.steps {
        if exec_step(&mut built.net, s) {
            report.applied += 1;
        } else {
            report.skipped += 1;
            continue;
        }
        if let Some(v) = check_step(&built.net, preset.hybrid) {
            report.violation = Some(v);
            return Ok((report, summaries(&built, preset)));
        }
    }
    let quiesced = built.net.pending_msgs().is_empty()
        && built
            .net
            .actor(MachineId::new(0))
            .expect("master")
            .stats()
            .syncs_seen
            >= built.base_rounds + preset.rounds;
    if quiesced {
        report.violation = check_terminal(&built.net, &built.registry, preset.total_machines());
    }
    let states = summaries(&built, preset);
    Ok((report, states))
}

/// State summaries of every machine currently admitted to the net, in
/// machine-id order.
fn summaries(built: &Built, preset: &Preset) -> Vec<guesstimate_runtime::StateSummary> {
    (0..preset.total_machines())
        .filter_map(|i| built.net.actor(MachineId::new(i)))
        .map(Machine::state_summary)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(reduction: bool) -> ExploreConfig {
        ExploreConfig {
            max_schedules: 1_000_000,
            max_steps: 64,
            reduction,
            collect_digests: true,
            ..ExploreConfig::default()
        }
    }

    /// The reduction must not lose behaviors: on a scenario small enough
    /// to exhaust, the terminal-state digest sets with and without
    /// reduction are identical, while the reduced run visits strictly
    /// fewer schedules. The built-in sudoku preset is shrunk to two
    /// machines so the unreduced tree stays exhaustible.
    #[test]
    fn reduction_preserves_terminal_states_on_sudoku() {
        let p = Preset {
            eager: 2,
            ..*Preset::by_name("sudoku").unwrap()
        };
        let matrix = CommuteMatrix::new();
        let full = explore(&p, &matrix, None, &small_cfg(false));
        let reduced = explore(&p, &matrix, None, &small_cfg(true));
        assert!(full.complete, "unreduced exploration must exhaust");
        assert!(reduced.complete, "reduced exploration must exhaust");
        assert!(full.violation.is_none(), "{:?}", full.violation);
        assert!(reduced.violation.is_none(), "{:?}", reduced.violation);
        assert_eq!(full.terminal_digests, reduced.terminal_digests);
        assert!(
            reduced.schedules < full.schedules,
            "reduction explored {} of {} schedules — no pruning happened",
            reduced.schedules,
            full.schedules
        );
        assert!(reduced.pruned > 0);
    }

    /// The same soundness property on the hybrid preset: async `like`
    /// deliveries are where the new AsyncOp independence arms prune, and
    /// the pruned orders must reach the same terminal digests. Shrunk to
    /// two machines and a lossless network so both trees exhaust.
    #[test]
    fn reduction_preserves_terminal_states_on_hybrid_message_board() {
        let p = Preset {
            eager: 2,
            drop_budget: 0,
            ..*Preset::by_name("message_board").unwrap()
        };
        let matrix = CommuteMatrix::new();
        let full = explore(&p, &matrix, None, &small_cfg(false));
        let reduced = explore(&p, &matrix, None, &small_cfg(true));
        assert!(full.complete, "unreduced exploration must exhaust");
        assert!(reduced.complete, "reduced exploration must exhaust");
        assert!(full.violation.is_none(), "{:?}", full.violation);
        assert!(reduced.violation.is_none(), "{:?}", reduced.violation);
        assert_eq!(full.terminal_digests, reduced.terminal_digests);
        assert!(
            reduced.schedules < full.schedules,
            "reduction explored {} of {} schedules — no pruning happened",
            reduced.schedules,
            full.schedules
        );
        assert!(reduced.pruned > 0);
    }

    /// Replaying any explored prefix is deterministic: the same path
    /// reaches the same digest.
    #[test]
    fn replay_is_deterministic() {
        let p = Preset::by_name("sudoku").unwrap();
        let matrix = CommuteMatrix::new();
        let mut a = p.build(&matrix, None);
        let mut b = p.build(&matrix, None);
        let mut steps = Vec::new();
        for _ in 0..24 {
            let next = enabled(&a, p, 0);
            let Some(&c) = next.first() else { break };
            assert!(exec_step(&mut a.net, c));
            steps.push(c);
        }
        for &s in &steps {
            assert!(exec_step(&mut b.net, s));
        }
        assert_eq!(
            crate::oracle::state_digest(&a.net),
            crate::oracle::state_digest(&b.net)
        );
    }
}
