//! `guesstimate-mc`: a bounded schedule model checker for the
//! GUESSTIMATE runtime.
//!
//! The checker drives *real* [`guesstimate_runtime::Machine`]s — the
//! same protocol code deployed everywhere else in this repository —
//! through a controlled scheduler ([`guesstimate_net::SchedNet`]) in
//! which every message delivery, message loss, late join and timer
//! firing is an explicit choice point. It enumerates delivery
//! interleavings depth-first with sleep-set partial-order reduction
//! whose independence relation is grounded in the validated operation
//! effect analysis (`guesstimate-analysis` → `guesstimate_runtime::commute`),
//! checks the paper's §3 invariants at every explored state, and replays
//! each terminal schedule through the executable semantic model
//! (`guesstimate-semantics`) as a refinement check. Violations are
//! delta-debugged to a minimal, replayable JSON schedule.
//!
//! Layout:
//!
//! * [`scenario`] — the checking presets (small clusters with
//!   conflicting workloads) and the deterministic prelude.
//! * [`schedule`] — the choice alphabet ([`Step`]) and the replayable
//!   JSON schedule file format.
//! * [`mod@explore`] — the DFS explorer, the independence relation, and
//!   schedule replay.
//! * [`mod@multigroup`] — the `cross-group` preset: multi-group
//!   [`guesstimate_runtime::MultiMachine`] clusters, per-group prefix
//!   oracles, and the coordinated cross-round oracle.
//! * [`oracle`] — step/terminal oracles and the state digest.
//! * [`shrink`] — ddmin minimization of failing schedules.
//!
//! See `docs/MODELCHECK.md` for the full design and soundness argument.

#![warn(missing_docs)]

pub mod explore;
pub mod multigroup;
pub mod oracle;
pub mod scenario;
pub mod schedule;
pub mod shrink;

pub use explore::{explore, replay, replay_traced, ExploreConfig, Outcome, ReplayReport};
pub use multigroup::CROSS_GROUP;
pub use oracle::{check_step, check_terminal, state_digest, Violation};
pub use scenario::{Built, Preset, MISKEYED, PRESETS, SNEAKY};
pub use schedule::{Schedule, Step, TamperSpec};
pub use shrink::minimize;
