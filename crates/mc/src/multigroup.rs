//! Model checking the multi-group synchronizer: the `cross-group` preset.
//!
//! The single-group presets drive bare [`guesstimate_runtime::Machine`]s;
//! this module drives [`MultiMachine`] wrappers — one full round-protocol
//! instance per sync group behind every node — through the same
//! controlled scheduler, exploring the interleavings that only exist in
//! multi-group mode: two groups' rounds racing each other, a
//! cross-routed operation's `CrossSubmit` hop, the coordinator's marker
//! issue, per-group marker commits landing in either order, and the
//! fence-buffered replay after the coordinated round resolves.
//!
//! The fixture is the minimal two-component type: `XPair` holds fields
//! `a` and `b` whose hand-built [`ShardPlan`] splits them into sync
//! groups `XPair:0` and `XPair:1`; `bump_a`/`bump_b` route locally while
//! `mix` spans both components and must take the coordinated round.
//! Three fully-overlapping nodes issue one conflicting local op per
//! group plus one `mix`, and exploration starts with the `CrossSubmit`
//! still in flight.
//!
//! ## Oracles
//!
//! Per step, on every node and hosted group: the §3 guess invariant, the
//! ≤3-executions bound, empty witness/shard containment logs, **per-group
//! prefix agreement** (any two nodes' completion sequences for the *same
//! group* must be prefix-ordered — the paper's total order, instantiated
//! per group), and per-group committed-digest equality — gated on both
//! nodes having resolved equally many coordinated rounds with the group
//! unfenced, because resolution rewrites committed component copies
//! outside the group's own round. The **cross-round oracle** checks that
//! no node resolves a coordinated round more than once per submission
//! and that any two nodes that have resolved equally many agree on the
//! rolling `(xid, result)` digest. At terminal states every node must
//! have resolved every submitted cross operation, hold no fenced group,
//! and agree on the merged committed digest.
//!
//! Exploration is stateless DFS with a conservative sleep-set reduction
//! (deliveries to distinct nodes are independent — a delivery only
//! mutates its target wrapper; everything else is dependent). Schedules
//! reuse the standard [`Schedule`] file format under the preset name
//! [`CROSS_GROUP`], so `mc --replay`, ddmin minimization and the
//! checked-in regression suite work unchanged.

use std::collections::BTreeMap;
use std::sync::Arc;

use guesstimate_core::{
    args, ComponentPlan, EffectSpec, Footprint, GState, MachineId, OpRegistry, PathPattern,
    RestoreError, Routing, ShardPlan, SharedOp, TypePlan, Value,
};
use guesstimate_net::{SchedNet, SimTime};
use guesstimate_runtime::multigroup::{vid, GroupId, GroupTable, MultiClusterSpec, MultiMachine};
use guesstimate_runtime::MachineConfig;

use crate::explore::{ExploreConfig, Outcome, ReplayReport};
use crate::oracle::Violation;
use crate::schedule::{Schedule, Step};

/// The multi-group preset's name in schedule files and `mc --preset`.
pub const CROSS_GROUP: &str = "cross-group";

/// Nodes in the fixture cluster (full overlap: each hosts both groups).
const NODES: u32 = 3;
/// Cross operations the workload submits (the cross oracle's target).
const CROSS_OPS: u64 = 1;
/// Per-group rounds to explore beyond the prelude.
const ROUNDS: u64 = 2;

/// The two-component fixture type: independent fields `a` and `b`.
#[derive(Clone, Default, Debug, PartialEq)]
pub struct XPair {
    /// Component 0 (sync group `XPair:0`).
    pub a: i64,
    /// Component 1 (sync group `XPair:1`).
    pub b: i64,
}

impl GState for XPair {
    const TYPE_NAME: &'static str = "XPair";
    fn snapshot(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), Value::from(self.a));
        m.insert("b".to_owned(), Value::from(self.b));
        Value::Map(m)
    }
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        let Value::Map(m) = v else {
            return Err(RestoreError::shape("map"));
        };
        self.a = m.get("a").and_then(Value::as_i64).unwrap_or(0);
        self.b = m.get("b").and_then(Value::as_i64).unwrap_or(0);
        Ok(())
    }
}

fn registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    r.register_type::<XPair>();
    r.register_with_effects::<XPair>(
        "bump_a",
        EffectSpec::new(|_| Footprint::new().reads(["a"]).writes(["a"])),
        |p: &mut XPair, a| {
            let Some(d) = a.i64(0) else { return false };
            p.a += d;
            true
        },
    );
    r.register_with_effects::<XPair>(
        "bump_b",
        EffectSpec::new(|_| Footprint::new().reads(["b"]).writes(["b"])),
        |p: &mut XPair, a| {
            let Some(d) = a.i64(0) else { return false };
            p.b += d;
            true
        },
    );
    r.register_with_effects::<XPair>(
        "mix",
        EffectSpec::new(|_| Footprint::new().reads(["a", "b"]).writes(["a", "b"])),
        |p: &mut XPair, a| {
            let Some(d) = a.i64(0) else { return false };
            p.a += d;
            p.b += p.a;
            true
        },
    );
    r
}

/// The hand-built two-component plan (what the shard-partition analysis
/// would derive for `XPair`'s honest effect declarations).
pub fn plan() -> Arc<ShardPlan> {
    let mut tp = TypePlan {
        components: vec![
            ComponentPlan {
                prefixes: vec![PathPattern::parse("a").expect("valid pattern")],
                keyed: false,
            },
            ComponentPlan {
                prefixes: vec![PathPattern::parse("b").expect("valid pattern")],
                keyed: false,
            },
        ],
        routes: BTreeMap::new(),
    };
    tp.routes.insert(
        "bump_a".to_owned(),
        Routing::Local {
            component: 0,
            key_arg: None,
        },
    );
    tp.routes.insert(
        "bump_b".to_owned(),
        Routing::Local {
            component: 1,
            key_arg: None,
        },
    );
    tp.routes.insert("mix".to_owned(), Routing::CrossShard);
    let mut plan = ShardPlan::new();
    plan.types.insert(XPair::TYPE_NAME.to_owned(), tp);
    Arc::new(plan)
}

/// The built cross-group scenario, ready for exploration or replay.
#[derive(Debug)]
pub struct CrossBuilt {
    /// The multi-group cluster under the controlled scheduler.
    pub net: SchedNet<MultiMachine>,
    /// Each group master's sync count at the end of the prelude;
    /// exploration targets `base + ROUNDS` per group.
    pub base_rounds: BTreeMap<GroupId, u64>,
}

/// Builds the cross-group cluster, runs the deterministic prelude
/// (joins of both groups plus the fixture object's per-group creates),
/// and injects the workload: one conflicting local op per group and one
/// cross-routed `mix` whose `CrossSubmit` is in flight when exploration
/// starts.
///
/// # Panics
///
/// Panics if the prelude fails to converge — a harness or protocol bug,
/// not an explorable behavior.
pub fn build() -> CrossBuilt {
    let table = Arc::new(GroupTable::from_plan(plan()));
    let spec = MultiClusterSpec::full_overlap(NODES, Arc::clone(&table));
    let registry = Arc::new(registry());
    let cfg = MachineConfig::default()
        .with_sync_period(SimTime::from_millis(100))
        .with_join_retry(SimTime::from_millis(300))
        .with_stall_timeout(SimTime::from_millis(500))
        .with_paranoid_checks(true)
        .with_shard_plan(plan());

    let mut net: SchedNet<MultiMachine> = SchedNet::new();
    for i in 0..NODES {
        net.add_machine(MachineId::new(i), spec.build_node(i, &registry, &cfg));
    }

    let mut obj = None;
    net.call(MachineId::new(0), |mm, ctx| {
        obj = Some(mm.create_instance(XPair::default(), ctx));
    });
    let obj = obj.expect("node 0 exists");

    // Deterministic prelude: always deliver the lowest-seq message, fire
    // a timer only when quiet, until every node has joined both groups
    // and committed both per-group creates.
    let num_groups = table.num_groups() as u64;
    let mut guard = 0u32;
    loop {
        guard += 1;
        assert!(guard < 100_000, "cross-group prelude failed to converge");
        if let Some(&seq) = net.pending_msgs().first() {
            net.deliver(seq);
            continue;
        }
        let settled = (0..NODES).all(|i| {
            let mm = net.actor(MachineId::new(i)).expect("node added");
            mm.all_joined() && mm.committed_total() == num_groups
        });
        if settled {
            break;
        }
        assert!(net.fire_next_timer(), "cross-group prelude stalled");
    }

    // The workload: one local conflict seed per group, plus the cross op.
    net.call(MachineId::new(1), |mm, ctx| {
        mm.issue(SharedOp::primitive(obj, "bump_a", args![2]), None, ctx)
            .expect("bump_a routes to a hosted group");
    });
    net.call(MachineId::new(2), |mm, ctx| {
        mm.issue(SharedOp::primitive(obj, "bump_b", args![3]), None, ctx)
            .expect("bump_b routes to a hosted group");
    });
    net.call(MachineId::new(1), |mm, ctx| {
        mm.issue(SharedOp::primitive(obj, "mix", args![1]), None, ctx)
            .expect("mix cross-submits");
    });

    let node0 = net.actor(MachineId::new(0)).expect("node 0");
    let base_rounds = node0
        .group_ids()
        .into_iter()
        .map(|g| (g, node0.group(g).expect("hosted").stats().syncs_seen))
        .collect();
    CrossBuilt { net, base_rounds }
}

/// True when the explored window is over: every group's master has run
/// its target rounds, every node has resolved every submitted cross
/// operation, and no fences remain.
fn rounds_done(built: &CrossBuilt) -> bool {
    let node0 = built.net.actor(MachineId::new(0)).expect("node 0");
    let rounds_ok = built.base_rounds.iter().all(|(&g, &base)| {
        node0
            .group(g)
            .is_some_and(|m| m.stats().syncs_seen >= base + ROUNDS)
    });
    rounds_ok
        && (0..NODES).all(|i| {
            let mm = built.net.actor(MachineId::new(i)).expect("node");
            mm.cross_resolved() == CROSS_OPS && mm.frozen_groups().is_empty()
        })
}

fn enabled(built: &CrossBuilt) -> Vec<Step> {
    let msgs = built.net.pending_msgs();
    if !msgs.is_empty() {
        return msgs.iter().map(|&s| Step::Deliver(s)).collect();
    }
    if rounds_done(built) {
        return Vec::new();
    }
    if built.net.has_timers() {
        vec![Step::Timer]
    } else {
        Vec::new()
    }
}

/// Deliveries to different nodes are independent: a delivery mutates
/// only its target wrapper (and mints new messages, whose seq numbering
/// the stable per-node choice identity absorbs — same argument as the
/// single-group explorer). Everything else is dependent.
fn independent(built: &CrossBuilt, a: Step, b: Step) -> bool {
    let (Step::Deliver(x), Step::Deliver(y)) = (a, b) else {
        return false;
    };
    if x == y {
        return false;
    }
    match (built.net.pending_msg(x), built.net.pending_msg(y)) {
        (Some(px), Some(py)) => px.to != py.to,
        _ => false,
    }
}

/// Executes one choice. Returns false if it was not applicable.
fn exec_step(net: &mut SchedNet<MultiMachine>, s: Step) -> bool {
    match s {
        Step::Deliver(q) => net.deliver(q),
        Step::Drop(q) => net.drop_msg(q),
        Step::Admit(q) => net.admit(q),
        Step::Timer => net.fire_next_timer(),
    }
}

/// The per-step oracles described in the module docs.
pub fn check_step(net: &SchedNet<MultiMachine>) -> Option<Violation> {
    let ids = net.members();
    for &id in &ids {
        let mm = net.actor(id).expect("member");
        for g in mm.group_ids() {
            let m = mm.group(g).expect("hosted");
            if !m.check_guess_invariant() {
                return Some(Violation::GuessInvariant {
                    machine: vid(id, g),
                });
            }
            let count = m.stats().max_exec_count;
            if count > 3 {
                return Some(Violation::ExecBound {
                    machine: vid(id, g),
                    count,
                });
            }
            if let Some(w) = m.witness_violations().first() {
                return Some(Violation::WitnessEscape {
                    machine: vid(id, g),
                    detail: w.to_string(),
                });
            }
            if let Some(v) = m.shard_violations().first() {
                return Some(Violation::ShardEscape {
                    machine: vid(id, g),
                    detail: v.to_string(),
                });
            }
        }
        if mm.cross_resolved() > CROSS_OPS {
            return Some(Violation::CrossRound {
                detail: format!(
                    "node {id} resolved {} coordinated rounds for {CROSS_OPS} submissions",
                    mm.cross_resolved()
                ),
            });
        }
    }
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let na = net.actor(a).expect("member");
            let nb = net.actor(b).expect("member");
            for g in na.group_ids() {
                let (Some(ma), Some(mb)) = (na.group(g), nb.group(g)) else {
                    continue;
                };
                let (ca, cb) = (ma.completed_ops(), mb.completed_ops());
                let n = ca.len().min(cb.len());
                if ca[..n] != cb[..n] {
                    return Some(Violation::CompletedPrefix {
                        a: vid(a, g),
                        b: vid(b, g),
                    });
                }
                // A resolution rewrites committed component copies
                // outside the group's round, so digests are comparable
                // only between nodes at the same resolution count with
                // the group unfenced on both.
                let comparable = ca.len() == cb.len()
                    && na.cross_resolved() == nb.cross_resolved()
                    && !na.frozen_groups().contains(&g)
                    && !nb.frozen_groups().contains(&g);
                if comparable && ma.committed_digest() != mb.committed_digest() {
                    return Some(Violation::CommittedDigest {
                        a: vid(a, g),
                        b: vid(b, g),
                    });
                }
            }
            if na.cross_resolved() == nb.cross_resolved() && na.cross_digest() != nb.cross_digest()
            {
                return Some(Violation::CrossRound {
                    detail: format!(
                        "nodes {a} and {b} resolved {} coordinated rounds with different \
                         (xid, result) digests",
                        na.cross_resolved()
                    ),
                });
            }
        }
    }
    None
}

/// The terminal oracles: every cross operation resolved exactly once on
/// every node, no fences left, and merged committed state agreeing
/// cluster-wide.
pub fn check_terminal(net: &SchedNet<MultiMachine>) -> Option<Violation> {
    let ids = net.members();
    for &id in &ids {
        let mm = net.actor(id).expect("member");
        if mm.cross_resolved() != CROSS_OPS {
            return Some(Violation::CrossRound {
                detail: format!(
                    "terminal state: node {id} resolved {} of {CROSS_OPS} coordinated rounds",
                    mm.cross_resolved()
                ),
            });
        }
        if !mm.frozen_groups().is_empty() {
            return Some(Violation::CrossRound {
                detail: format!(
                    "terminal state: node {id} still fences {:?}",
                    mm.frozen_groups()
                ),
            });
        }
    }
    let d0 = net.actor(ids[0]).expect("member").merged_committed_digest();
    for &id in &ids[1..] {
        if net.actor(id).expect("member").merged_committed_digest() != d0 {
            return Some(Violation::CrossRound {
                detail: format!(
                    "terminal state: node {id} disagrees on the merged committed digest"
                ),
            });
        }
    }
    None
}

/// Explores the cross-group preset's schedule tree depth-first (see the
/// module docs for the reduction). Mirrors [`crate::explore::explore`]
/// for the multi-group cluster; drop and admission choices do not arise
/// (lossless network, no staged joiner).
pub fn explore(cfg: &ExploreConfig) -> Outcome {
    let mut out = Outcome::default();
    let mut built = build();
    let mut path: Vec<Step> = Vec::new();
    struct Frame {
        choices: Vec<Step>,
        idx: usize,
        sleep: Vec<Step>,
        explored: Vec<Step>,
    }
    let mut frames = vec![Frame {
        choices: enabled(&built),
        idx: 0,
        sleep: Vec::new(),
        explored: Vec::new(),
    }];
    let mut dirty = false;

    while out.schedules < cfg.max_schedules {
        let Some(frame) = frames.last_mut() else {
            out.complete = true;
            break;
        };
        if frame.idx >= frame.choices.len() {
            frames.pop();
            match path.pop() {
                Some(c) => {
                    let parent = frames.last_mut().expect("frames outnumber path by one");
                    parent.explored.push(c);
                    parent.idx += 1;
                    dirty = true;
                    continue;
                }
                None => {
                    out.complete = true;
                    break;
                }
            }
        }
        let c = frame.choices[frame.idx];
        if cfg.reduction && frame.sleep.contains(&c) {
            frame.idx += 1;
            out.pruned += 1;
            cfg.telemetry.mc_pruned();
            continue;
        }
        if dirty {
            built = build();
            for &s in &path {
                assert!(exec_step(&mut built.net, s), "replaying a known prefix");
                out.steps_executed += 1;
            }
            dirty = false;
        }
        let frame = frames.last().expect("just checked");
        let child_sleep: Vec<Step> = frame
            .sleep
            .iter()
            .chain(frame.explored.iter())
            .copied()
            .filter(|&x| x != c && independent(&built, x, c))
            .collect();

        assert!(exec_step(&mut built.net, c), "enabled choice must apply");
        out.steps_executed += 1;
        path.push(c);
        out.max_depth = out.max_depth.max(path.len());
        cfg.telemetry.mc_oracle_check();
        if let Some(v) = check_step(&built.net) {
            out.violation = Some((v, path.clone()));
            return out;
        }

        let next = enabled(&built);
        let terminal = next.is_empty();
        let cut = !terminal && path.len() >= cfg.max_steps;
        if terminal || cut {
            out.schedules += 1;
            cfg.telemetry.mc_schedule();
            if cut {
                out.truncated += 1;
            }
            if terminal {
                cfg.telemetry.mc_oracle_check();
                if let Some(v) = check_terminal(&built.net) {
                    out.violation = Some((v, path.clone()));
                    return out;
                }
            }
            out.sample = Some(path.clone());
            path.pop();
            let frame = frames.last_mut().expect("frame for the popped step");
            frame.explored.push(c);
            frame.idx += 1;
            dirty = true;
        } else {
            frames.push(Frame {
                choices: next,
                idx: 0,
                sleep: child_sleep,
                explored: Vec::new(),
            });
        }
    }
    out
}

/// Replays a `cross-group` schedule against a freshly built cluster with
/// the step oracles after every applied choice and the terminal oracles
/// if the run quiesces. Skip-on-stale-seq semantics match the
/// single-group replayer, so ddmin minimization works unchanged.
pub fn replay(sched: &Schedule) -> ReplayReport {
    let mut built = build();
    let mut report = ReplayReport {
        applied: 0,
        skipped: 0,
        violation: None,
    };
    for &s in &sched.steps {
        if exec_step(&mut built.net, s) {
            report.applied += 1;
        } else {
            report.skipped += 1;
            continue;
        }
        if let Some(v) = check_step(&built.net) {
            report.violation = Some(v);
            return report;
        }
    }
    if built.net.pending_msgs().is_empty() && rounds_done(&built) {
        report.violation = check_terminal(&built.net);
    }
    report
}

/// Per-inner-machine state summaries for postmortem bundles, ordered by
/// node then group.
pub fn summaries(net: &SchedNet<MultiMachine>) -> Vec<guesstimate_runtime::StateSummary> {
    let mut v = Vec::new();
    for id in net.members() {
        let mm = net.actor(id).expect("member");
        for g in mm.group_ids() {
            v.push(mm.group(g).expect("hosted").state_summary());
        }
    }
    v
}

/// [`replay`], additionally returning the summaries. The tracer plumbing
/// of the single-group replayer does not apply (inner machines run
/// behind the wrapper), so postmortem bundles for this preset carry
/// state summaries with an empty causal timeline.
pub fn replay_with_summaries(
    sched: &Schedule,
) -> (ReplayReport, Vec<guesstimate_runtime::StateSummary>) {
    let mut built = build();
    let mut report = ReplayReport {
        applied: 0,
        skipped: 0,
        violation: None,
    };
    for &s in &sched.steps {
        if exec_step(&mut built.net, s) {
            report.applied += 1;
        } else {
            report.skipped += 1;
            continue;
        }
        if let Some(v) = check_step(&built.net) {
            report.violation = Some(v);
            let s = summaries(&built.net);
            return (report, s);
        }
    }
    if built.net.pending_msgs().is_empty() && rounds_done(&built) {
        report.violation = check_terminal(&built.net);
    }
    let s = summaries(&built.net);
    (report, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the built scenario to quiescence deterministically, checking
    /// every oracle along the road — the multi-group analog of the
    /// single-group `oracles_pass_on_deterministic_runs`.
    #[test]
    fn oracles_pass_on_the_deterministic_drain() {
        let mut built = build();
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 100_000, "drain failed to converge");
            assert_eq!(check_step(&built.net), None);
            if let Some(&seq) = built.net.pending_msgs().first() {
                built.net.deliver(seq);
                continue;
            }
            if rounds_done(&built) {
                break;
            }
            assert!(built.net.fire_next_timer(), "drain stalled");
        }
        assert_eq!(check_terminal(&built.net), None);
        // The cross op resolved everywhere and the fences are gone.
        for i in 0..NODES {
            let mm = built.net.actor(MachineId::new(i)).unwrap();
            assert_eq!(mm.cross_resolved(), CROSS_OPS, "node {i}");
        }
    }

    /// A small bounded exploration stays oracle-clean and the reduction
    /// actually prunes.
    #[test]
    fn bounded_exploration_is_clean() {
        let cfg = ExploreConfig {
            max_schedules: 300,
            ..ExploreConfig::default()
        };
        let out = explore(&cfg);
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert_eq!(out.schedules, 300);
        assert!(out.pruned > 0, "the delivery reduction must prune");
    }

    /// Replay round-trips through the schedule file format.
    #[test]
    fn sample_schedule_replays_clean() {
        let cfg = ExploreConfig {
            max_schedules: 50,
            ..ExploreConfig::default()
        };
        let out = explore(&cfg);
        let steps = out.sample.expect("explored schedules");
        let sched = Schedule {
            preset: CROSS_GROUP.to_owned(),
            tamper: None,
            steps,
        };
        let reparsed = Schedule::from_json(&sched.to_json()).expect("well-formed");
        let report = replay(&reparsed);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.applied > 0);
    }
}
