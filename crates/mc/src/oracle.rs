//! The checker's correctness oracles.
//!
//! Two layers, mirroring the paper's §3 semantics:
//!
//! * **Step oracles** ([`check_step`]) run after *every* explored choice:
//!   the per-machine guess invariant `sg = [P](sc)`
//!   ([`Machine::check_guess_invariant`]), the ≤3-executions bound on any
//!   single operation, an empty per-machine witness-containment log (no
//!   operation's observed accesses escaped its declared footprint at any
//!   apply site — see [`guesstimate_runtime::WitnessViolation`]; the
//!   `sneaky` negative preset runs with recording instead of asserting
//!   precisely so this oracle is what reports it), an empty per-machine
//!   shard-containment log when a shard plan is installed (no committed
//!   operation's declared footprint escaped its routed shard — see
//!   [`guesstimate_runtime::ShardViolation`]; the `miskeyed` negative
//!   preset is caught here), pairwise agreement of
//!   completed histories (every
//!   pair of machines' completion sequences must be prefix-ordered), and
//!   committed-state digest equality whenever two machines have completed
//!   the same number of operations. Under the **hybrid commit path**
//!   (`hybrid = true`) async completions are unordered across machines,
//!   so the prefix check applies to the *serialized* completion
//!   subsequence ([`Machine::completed_serialized`]) and the digest
//!   comparison is gated on the full completed *sets* being equal —
//!   classification is per-method at issue time, so equal sets imply the
//!   same serialized subsequence plus async ops that all commute, and the
//!   committed states must agree.
//! * **Terminal oracles** ([`check_terminal`]) run once per fully explored
//!   schedule: the master's recorded commit history is replayed through
//!   the executable semantic model ([`SemSystem`]) — `Create` envelopes
//!   via `materialize`, shared ops via `issue_forced` + `commit` — with
//!   the model's R1/R2/R3 invariants checked at every step, and the final
//!   model state compared against the implementation (same completion
//!   sequence, same committed digest). A schedule that passes is a
//!   witness that this interleaving of the implementation refines a run
//!   of the abstract machine.

use std::fmt;
use std::hash::{Hash, Hasher};

use guesstimate_core::{MachineId, ObjectStore, OpRegistry};
use guesstimate_net::SchedNet;
use guesstimate_runtime::{Machine, WireOp};
use guesstimate_semantics::{check_invariants, SemSystem};

/// An oracle failure, with enough context to read the repro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `sg != [P](sc)` on a machine.
    GuessInvariant {
        /// The machine whose guess diverged.
        machine: MachineId,
    },
    /// Some operation executed more than three times on a machine.
    ExecBound {
        /// The offending machine.
        machine: MachineId,
        /// Its observed maximum execution count.
        count: u32,
    },
    /// Two machines' completion sequences are not prefix-ordered.
    CompletedPrefix {
        /// First machine of the disagreeing pair.
        a: MachineId,
        /// Second machine of the disagreeing pair.
        b: MachineId,
    },
    /// Equal completed lengths but different committed states.
    CommittedDigest {
        /// First machine of the disagreeing pair.
        a: MachineId,
        /// Second machine of the disagreeing pair.
        b: MachineId,
    },
    /// The schedule does not refine any run of the semantic model.
    Refinement {
        /// What diverged.
        detail: String,
    },
    /// An operation's observed access footprint escaped its declared
    /// effect at an apply site (recorded by the runtime's witness
    /// containment check; see `guesstimate_runtime::WitnessViolation`).
    WitnessEscape {
        /// The machine that recorded the escape.
        machine: MachineId,
        /// The recorded violation, rendered.
        detail: String,
    },
    /// A committed operation's declared footprint escaped the shard the
    /// installed shard plan routed it to (recorded by the runtime's
    /// shard containment check; see
    /// `guesstimate_runtime::ShardViolation`). Fires when the plan and
    /// the effect declarations disagree — e.g. the `miskeyed` negative
    /// preset's deliberately wrong routing key.
    ShardEscape {
        /// The machine that recorded the escape.
        machine: MachineId,
        /// The recorded violation, rendered.
        detail: String,
    },
    /// The multi-group coordinated cross round misbehaved: a node
    /// resolved a cross operation more or fewer times than it was
    /// submitted, nodes at the same resolution count disagree on the
    /// `(xid, result)` digest, a fence survived quiescence, or the
    /// merged committed states diverge at a terminal state (see the
    /// `multigroup` module).
    CrossRound {
        /// What went wrong, rendered.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::GuessInvariant { machine } => {
                write!(
                    f,
                    "guess invariant sg = [P](sc) broken on machine {machine}"
                )
            }
            Violation::ExecBound { machine, count } => {
                write!(
                    f,
                    "machine {machine} executed an operation {count} times (max 3)"
                )
            }
            Violation::CompletedPrefix { a, b } => {
                write!(
                    f,
                    "completed histories of machines {a} and {b} are not prefix-ordered"
                )
            }
            Violation::CommittedDigest { a, b } => write!(
                f,
                "machines {a} and {b} completed equally many ops with different committed state"
            ),
            Violation::Refinement { detail } => {
                write!(f, "schedule does not refine the semantic model: {detail}")
            }
            Violation::WitnessEscape { machine, detail } => {
                write!(f, "witness escape on machine {machine}: {detail}")
            }
            Violation::ShardEscape { machine, detail } => {
                write!(f, "shard escape on machine {machine}: {detail}")
            }
            Violation::CrossRound { detail } => {
                write!(f, "cross-group coordinated round violation: {detail}")
            }
        }
    }
}

/// Runs the per-step oracles over every machine in the cluster.
///
/// `hybrid` selects the agreement discipline (see the module docs): the
/// paper's total order over all completions, or — when the scenario runs
/// the hybrid commit path — a total order over serialized completions
/// only, with digests compared once the completed sets coincide.
pub fn check_step(net: &SchedNet<Machine>, hybrid: bool) -> Option<Violation> {
    let ids = net.members();
    for &id in &ids {
        let m = net.actor(id).expect("listed member exists");
        if !m.check_guess_invariant() {
            return Some(Violation::GuessInvariant { machine: id });
        }
        let count = m.stats().max_exec_count;
        if count > 3 {
            return Some(Violation::ExecBound { machine: id, count });
        }
        if let Some(w) = m.witness_violations().first() {
            return Some(Violation::WitnessEscape {
                machine: id,
                detail: w.to_string(),
            });
        }
        if let Some(v) = m.shard_violations().first() {
            return Some(Violation::ShardEscape {
                machine: id,
                detail: v.to_string(),
            });
        }
    }
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            let ma = net.actor(a).expect("member");
            let mb = net.actor(b).expect("member");
            let (ca, cb) = if hybrid {
                (ma.completed_serialized(), mb.completed_serialized())
            } else {
                (ma.completed_ops(), mb.completed_ops())
            };
            let n = ca.len().min(cb.len());
            if ca[..n] != cb[..n] {
                return Some(Violation::CompletedPrefix { a, b });
            }
            let digests_comparable = if hybrid {
                same_completed_set(ma, mb)
            } else {
                ca.len() == cb.len()
            };
            if digests_comparable && ma.committed_digest() != mb.committed_digest() {
                return Some(Violation::CommittedDigest { a, b });
            }
        }
    }
    None
}

/// True when two machines have completed the same *set* of operations
/// (in any order) — the hybrid path's precondition for demanding equal
/// committed states.
fn same_completed_set(a: &Machine, b: &Machine) -> bool {
    let (ca, cb) = (a.completed_ops(), b.completed_ops());
    if ca.len() != cb.len() {
        return false;
    }
    let mut sa = ca.to_vec();
    let mut sb = cb.to_vec();
    sa.sort_unstable();
    sb.sort_unstable();
    sa == sb
}

/// Replays the master's commit history through the semantic model and
/// checks that the schedule's outcome refines it.
///
/// `n_machines` is the scenario's total machine count (the abstract run
/// has every machine present from the start; late join is an
/// implementation detail the refinement mapping erases).
///
/// The check applies unchanged to hybrid scenarios: the master's history
/// records every commit — serialized and async alike — in its own apply
/// order, and that order is one admissible run of the abstract machine
/// (async commits are just issue-and-commit steps whose placement the
/// commutativity proof makes irrelevant to the final state).
pub fn check_terminal(
    net: &SchedNet<Machine>,
    registry: &std::sync::Arc<OpRegistry>,
    n_machines: u32,
) -> Option<Violation> {
    let master = net.actor(MachineId::new(0)).expect("master exists");
    let mut model = SemSystem::new(n_machines, registry.clone(), &ObjectStore::new());
    for env in master.history() {
        let r = match &env.op {
            WireOp::Create {
                object,
                type_name,
                init,
            } => model.materialize(env.id, *object, type_name, init),
            WireOp::Shared(op) => model
                .issue_forced(env.id.machine(), env.id, op.clone())
                .and_then(|()| model.commit(env.id.machine()).map(|_| ())),
            // Multi-group coordination markers are store no-ops; the
            // single-group presets this oracle serves never produce them.
            WireOp::CrossMarker { .. } => Ok(()),
        };
        if let Err(e) = r {
            return Some(Violation::Refinement {
                detail: format!("replaying {}: {e:?}", env.id),
            });
        }
        if let Err(v) = check_invariants(&model) {
            return Some(Violation::Refinement {
                detail: format!("model invariant after {}: {v}", env.id),
            });
        }
    }
    let m0 = model
        .machine(MachineId::new(0))
        .expect("model machine 0 exists");
    if m0.completed != master.completed_ops() {
        return Some(Violation::Refinement {
            detail: format!(
                "completion sequences differ: model {:?} vs implementation {:?}",
                m0.completed,
                master.completed_ops()
            ),
        });
    }
    if m0.committed.digest() != master.committed_digest() {
        return Some(Violation::Refinement {
            detail: "committed digests differ after identical completion sequence".to_owned(),
        });
    }
    None
}

/// A deterministic digest of the cluster's observable state, used to prove
/// the partial-order reduction sound on small scenarios: exploring with
/// and without reduction must visit the same *set* of terminal digests.
///
/// The serialized completion sequence is hashed in order (it is the
/// paper's total order); the full completed set is hashed *sorted*,
/// because on the hybrid path the arrival order of commuting async ops
/// is exactly what the reduction prunes — two interleavings it declares
/// equivalent differ only in that order, and by construction reach the
/// same committed state. On non-hybrid scenarios the two sequences
/// coincide, so nothing is lost.
pub fn state_digest(net: &SchedNet<Machine>) -> u64 {
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    let mut h = Fnv(0xCBF2_9CE4_8422_2325);
    for id in net.members() {
        let m = net.actor(id).expect("member");
        id.hash(&mut h);
        m.committed_digest().hash(&mut h);
        m.guess_digest().hash(&mut h);
        m.completed_serialized().hash(&mut h);
        let mut completed = m.completed_ops().to_vec();
        completed.sort_unstable();
        completed.hash(&mut h);
        m.in_cohort().hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Preset;
    use guesstimate_core::CommuteMatrix;

    /// Drive a built scenario to quiescence the deterministic way and
    /// check every oracle along the road.
    #[test]
    fn oracles_pass_on_deterministic_runs() {
        for p in crate::scenario::PRESETS {
            let mut built = p.build(&CommuteMatrix::new(), None);
            let rounds_target = built.base_rounds + p.rounds;
            let mut guard = 0u32;
            loop {
                guard += 1;
                assert!(guard < 100_000, "{}: run failed to converge", p.name);
                assert_eq!(check_step(&built.net, p.hybrid), None, "{}", p.name);
                if let Some(&seq) = built.net.pending_msgs().first() {
                    built.net.deliver(seq);
                    continue;
                }
                if let Some(&j) = built.net.pending_joins().first() {
                    built.net.admit(j);
                    continue;
                }
                let master = built.net.actor(MachineId::new(0)).unwrap();
                if master.stats().syncs_seen >= rounds_target {
                    break;
                }
                assert!(built.net.fire_next_timer(), "{}: stalled", p.name);
            }
            assert_eq!(
                check_terminal(&built.net, &built.registry, p.total_machines()),
                None,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn state_digest_is_stable_and_discriminating() {
        let p = Preset::by_name("sudoku").unwrap();
        let a = p.build(&CommuteMatrix::new(), None);
        let b = p.build(&CommuteMatrix::new(), None);
        assert_eq!(state_digest(&a.net), state_digest(&b.net));

        // Committing the injected ops must change the digest.
        let mut c = p.build(&CommuteMatrix::new(), None);
        let mut guard = 0;
        while c.net.actor(MachineId::new(0)).unwrap().pending_len() > 0 {
            guard += 1;
            assert!(guard < 10_000);
            if let Some(&seq) = c.net.pending_msgs().first() {
                c.net.deliver(seq);
            } else {
                assert!(c.net.fire_next_timer());
            }
        }
        assert_ne!(state_digest(&a.net), state_digest(&c.net));
    }
}
