//! Checking scenarios: small clusters with conflicting workloads.
//!
//! A preset builds a real [`Machine`] cluster under the controlled
//! scheduler ([`SchedNet`]), runs a **deterministic prelude** (membership
//! handshakes and one synchronization that commits the app objects
//! everywhere — uninteresting to explore, identical on every branch),
//! then injects each machine's pending operations. Exploration starts
//! from that state: the first choice is typically the master's sync tick.
//!
//! The workloads are chosen so each preset has both **conflicting**
//! operation pairs (the interesting interleavings the checker must keep)
//! and **commuting** pairs (what the partial-order reduction may prune):
//!
//! | preset | machines | conflict | commute |
//! |---|---|---|---|
//! | `sudoku` | 3 | `update(1,1,1)`;`clear(1,1)` same cell | moves in disjoint rows/cols/boxes |
//! | `auction` | 2 + late join | two first-bids on `lamp` | bids on different items |
//! | `event_planner` | 2, lossy | two joins for the last `party` seat | user registration vs joins |
//! | `message_board` | 3, lossy, hybrid | two posts to `general` (serialized) | async `like`s on all machines |
//!
//! The `auction` preset stages a third machine whose admission is itself
//! a choice point (late join at any explored moment); `event_planner`
//! grants the explorer a message-loss budget, driving the protocol's
//! resend/recovery paths. The `message_board` preset turns on the
//! **hybrid commit path** (`async_commit`): its `like` injections are
//! universal commuters that broadcast as `Msg::AsyncOp` and commit
//! without rounds, while its conflicting posts keep the serialized round
//! path — so the explorer interleaves async arrivals against round
//! flushes, with a loss budget that forces the round-boundary fence's
//! re-piggyback repair.

use std::sync::Arc;

use guesstimate_apps::{auction, event_planner, message_board, sudoku};
use guesstimate_core::{CommuteMatrix, MachineId, ObjectId, OpRegistry, SharedOp};
use guesstimate_net::{SchedNet, SimTime};
use guesstimate_runtime::{Machine, MachineConfig, Msg};

use crate::schedule::TamperSpec;

/// Fixture for the `sneaky` negative preset: a two-slot map whose
/// `mirror` method deliberately **under-declares** its footprint — it
/// copies `src` into `dst` while admitting only to touching `dst`. The
/// commute matrix and replay-skip judgments built on that declaration
/// are unsound for it, which is exactly what the witness-containment
/// oracle must report.
mod sneaky {
    use std::collections::BTreeMap;

    use guesstimate_core::{
        args, EffectSpec, Footprint, GState, ObjectId, OpRegistry, RestoreError, SharedOp, Value,
    };

    /// Two integer slots, `src` and `dst`.
    #[derive(Clone, Default, Debug)]
    pub struct Mirror {
        pub m: BTreeMap<String, i64>,
    }

    impl GState for Mirror {
        const TYPE_NAME: &'static str = "Mirror";
        fn snapshot(&self) -> Value {
            Value::Map(
                self.m
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from(*v)))
                    .collect(),
            )
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            let Value::Map(m) = v else {
                return Err(RestoreError::shape("map"));
            };
            self.m = m
                .iter()
                .map(|(k, v)| {
                    v.as_i64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| RestoreError::shape("i64 slot"))
                })
                .collect::<Result<_, _>>()?;
            Ok(())
        }
    }

    pub fn register(reg: &mut OpRegistry) {
        reg.register_type::<Mirror>();
        // Honest: `bump(k, d)` reads and writes exactly slot `k`.
        reg.register_with_effects::<Mirror>(
            "bump",
            EffectSpec::new(|a| {
                let Some(k) = a.str(0) else {
                    return Footprint::new();
                };
                Footprint::new().reads([k]).writes([k])
            }),
            |s: &mut Mirror, a| {
                let (Some(k), Some(d)) = (a.str(0), a.i64(1)) else {
                    return false;
                };
                *s.m.entry(k.to_owned()).or_insert(0) += d;
                true
            },
        );
        // Under-declared: actually reads `src`, declares only `dst`.
        reg.register_with_effects::<Mirror>(
            "mirror",
            EffectSpec::new(|_| Footprint::new().reads(["dst"]).writes(["dst"])),
            |s: &mut Mirror, _| {
                let Some(v) = s.m.get("src").copied() else {
                    return false;
                };
                s.m.insert("dst".to_owned(), v);
                true
            },
        );
    }

    pub fn bump(obj: ObjectId, k: &str, d: i64) -> SharedOp {
        SharedOp::primitive(obj, "bump", args![k, d])
    }

    pub fn mirror(obj: ObjectId) -> SharedOp {
        SharedOp::primitive(obj, "mirror", args![])
    }
}

/// Fixture for the `miskeyed` negative preset: an honestly-declared topic
/// board paired with a deliberately **mis-keyed** shard plan. `post(topic,
/// author)` reads and writes exactly `topics/{topic}`, but the hand-built
/// plan routes `post` by its *author* argument — so every post whose
/// author differs from its topic commits into a shard whose key cannot
/// cover the touched path. The runtime's shard containment check (see
/// `guesstimate_runtime::ShardViolation`) must record the escape at the
/// first round commit, and the checker's `ShardEscape` oracle must report
/// it.
mod miskeyed {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use guesstimate_core::{
        args, ComponentPlan, EffectSpec, Footprint, GState, ObjectId, OpRegistry, PathPattern,
        RestoreError, Routing, ShardPlan, SharedOp, TypePlan, Value,
    };

    /// Per-topic post tallies, snapshotted under a `topics` subtree so
    /// footprint paths have the shape `topics/{topic}`.
    #[derive(Clone, Default, Debug)]
    pub struct Board {
        pub topics: BTreeMap<String, i64>,
    }

    impl GState for Board {
        const TYPE_NAME: &'static str = "KeyedBoard";
        fn snapshot(&self) -> Value {
            Value::Map(
                [(
                    "topics".to_owned(),
                    Value::Map(
                        self.topics
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::from(*v)))
                            .collect(),
                    ),
                )]
                .into(),
            )
        }
        fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
            let Value::Map(m) = v else {
                return Err(RestoreError::shape("map"));
            };
            let Some(Value::Map(topics)) = m.get("topics") else {
                return Err(RestoreError::shape("topics map"));
            };
            self.topics = topics
                .iter()
                .map(|(k, v)| {
                    v.as_i64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| RestoreError::shape("i64 tally"))
                })
                .collect::<Result<_, _>>()?;
            Ok(())
        }
    }

    pub fn register(reg: &mut OpRegistry) {
        reg.register_type::<Board>();
        // Honest: `post(topic, author)` reads and writes `topics/{topic}`.
        reg.register_with_effects::<Board>(
            "post",
            EffectSpec::new(|a| match a.str(0) {
                Some(t) => Footprint::new()
                    .reads([format!("topics/{t}")])
                    .writes([format!("topics/{t}")]),
                None => Footprint::new(),
            }),
            |s: &mut Board, a| {
                let (Some(t), Some(_author)) = (a.str(0), a.str(1)) else {
                    return false;
                };
                *s.topics.entry(t.to_owned()).or_insert(0) += 1;
                true
            },
        );
    }

    /// The deliberately mis-keyed plan: the component is right
    /// (`topics/{0}`, keyed), but `post` is routed by argument **1** —
    /// the author — where the analysis would have derived argument 0.
    pub fn plan() -> Arc<ShardPlan> {
        let mut tp = TypePlan {
            components: vec![ComponentPlan {
                prefixes: vec![PathPattern::parse("topics/{0}").expect("valid pattern")],
                keyed: true,
            }],
            routes: BTreeMap::new(),
        };
        tp.routes.insert(
            "post".to_owned(),
            Routing::Local {
                component: 0,
                key_arg: Some(1),
            },
        );
        let mut plan = ShardPlan::new();
        plan.types.insert(Board::TYPE_NAME.to_owned(), tp);
        Arc::new(plan)
    }

    pub fn post(obj: ObjectId, topic: &str, author: &str) -> SharedOp {
        SharedOp::primitive(obj, "post", args![topic, author])
    }
}

/// One checking scenario.
#[derive(Debug, Clone, Copy)]
pub struct Preset {
    /// Preset name (also selects the application).
    pub name: &'static str,
    /// Machines present from the start (machine 0 is the master).
    pub eager: u32,
    /// Stage one additional machine whose admission is a choice point.
    pub late_join: bool,
    /// Synchronization rounds to explore after injection.
    pub rounds: u64,
    /// How many messages the explorer may drop per schedule.
    pub drop_budget: u32,
    /// Enable the hybrid commit path (`async_commit`): eligible
    /// injections broadcast as `Msg::AsyncOp` and commit without rounds.
    pub hybrid: bool,
    /// One-line description for `mc --list`.
    pub blurb: &'static str,
}

/// All built-in presets.
pub const PRESETS: &[Preset] = &[
    Preset {
        name: "sudoku",
        eager: 3,
        late_join: false,
        rounds: 2,
        drop_budget: 0,
        hybrid: false,
        blurb: "3 machines; same-cell update/clear conflict vs disjoint-unit moves",
    },
    Preset {
        name: "auction",
        eager: 2,
        late_join: true,
        rounds: 2,
        drop_budget: 0,
        hybrid: false,
        blurb: "2 machines + late joiner; dueling first-bids vs cross-item bids",
    },
    Preset {
        name: "event_planner",
        eager: 2,
        late_join: false,
        rounds: 3,
        drop_budget: 2,
        hybrid: false,
        blurb: "2 machines, lossy network; last-seat race plus recovery paths",
    },
    Preset {
        name: "message_board",
        eager: 3,
        late_join: false,
        rounds: 2,
        drop_budget: 2,
        hybrid: true,
        blurb: "3 machines, lossy, hybrid commit; async likes vs serialized same-topic posts",
    },
];

/// Negative-test preset: a deliberately **under-declared** workload the
/// witness-containment oracle must catch (its `mirror` injection reads
/// `src` while declaring only `dst`; see the `sneaky` module). Not listed in
/// [`PRESETS`] — the positive suites iterate those and this one violates
/// by design — but reachable through [`Preset::by_name`], so `mc
/// --preset sneaky` and schedule replays resolve it. Built with
/// `witness_reads` on and `witness_assert` off: escapes are *recorded*
/// on the machine for the oracle to report (and ddmin to shrink) instead
/// of aborting mid-delivery.
pub const SNEAKY: Preset = Preset {
    name: "sneaky",
    eager: 2,
    late_join: false,
    rounds: 2,
    drop_budget: 0,
    hybrid: false,
    blurb: "negative test: under-declared read the witness oracle must catch",
};

/// Negative-test preset: an honestly-declared workload under a
/// deliberately **mis-keyed** shard plan (its `post` route keys by the
/// author argument instead of the topic; see the `miskeyed` module).
/// Hidden from [`PRESETS`] like [`SNEAKY`] — it violates by design — but
/// reachable through [`Preset::by_name`], so `mc --preset miskeyed` and
/// schedule replays resolve it. Built with `witness_assert` off: shard
/// escapes are *recorded* on the machine for the `ShardEscape` oracle to
/// report (and ddmin to shrink) instead of aborting mid-delivery.
pub const MISKEYED: Preset = Preset {
    name: "miskeyed",
    eager: 2,
    late_join: false,
    rounds: 2,
    drop_budget: 0,
    hybrid: false,
    blurb: "negative test: mis-keyed shard plan the shard-escape oracle must catch",
};

impl Preset {
    /// Looks up a preset by name ([`PRESETS`] plus the hidden [`SNEAKY`]
    /// and [`MISKEYED`] negative presets).
    pub fn by_name(name: &str) -> Option<&'static Preset> {
        PRESETS
            .iter()
            .find(|p| p.name == name)
            .or((SNEAKY.name == name).then_some(&SNEAKY))
            .or((MISKEYED.name == name).then_some(&MISKEYED))
    }

    /// Total machines once the staged joiner (if any) is admitted.
    pub fn total_machines(&self) -> u32 {
        self.eager + u32::from(self.late_join)
    }

    fn registry(&self) -> OpRegistry {
        let mut reg = OpRegistry::new();
        match self.name {
            "sudoku" => sudoku::register(&mut reg),
            "auction" => auction::register(&mut reg),
            "event_planner" => event_planner::register(&mut reg),
            "message_board" => message_board::register(&mut reg),
            "sneaky" => sneaky::register(&mut reg),
            "miskeyed" => miskeyed::register(&mut reg),
            other => unreachable!("unknown preset {other}"),
        }
        reg
    }

    /// The commute matrix the scenario runs under: the caller's matrix
    /// (typically loaded from an `analyze --json` archive via `mc
    /// --matrix`) extended with the preset's baseline pairs. The hybrid
    /// preset needs `like`'s rows present even when no archive is given —
    /// an empty matrix would silently classify every method as serialized
    /// and the async path would never run. The inserted pairs mirror what
    /// `analyze` validates for `MessageBoard`; inserting an
    /// already-present pair is a no-op, so an archive matrix passes
    /// through unchanged.
    pub fn effective_matrix(&self, given: &CommuteMatrix) -> CommuteMatrix {
        let mut m = given.clone();
        if self.name == "message_board" {
            for other in ["like", "post", "create_topic"] {
                m.insert("MessageBoard", "like", other);
            }
        }
        m
    }

    /// Creates the app object on the master and issues the ops that the
    /// deterministic prelude must commit before exploration starts.
    /// Returns the object id and the number of ops issued (incl. the
    /// creation).
    fn prelude_ops(&self, master: &mut Machine) -> (ObjectId, u64) {
        match self.name {
            "sudoku" => (master.create_instance(sudoku::Sudoku::new()), 1),
            "auction" => {
                let obj = master.create_instance(auction::Auction::new());
                for op in [
                    auction::ops::list_item(obj, "lamp", "seller", 10, 5),
                    auction::ops::list_item(obj, "rug", "seller", 5, 1),
                ] {
                    assert!(
                        master.issue(op).expect("prelude issue"),
                        "prelude op failed"
                    );
                }
                (obj, 3)
            }
            "event_planner" => {
                let obj = master.create_instance(event_planner::EventPlanner::with_quota(2));
                for op in [
                    event_planner::ops::register_user(obj, "ann", "pw"),
                    event_planner::ops::register_user(obj, "bob", "pw"),
                    event_planner::ops::create_event(obj, "party", 1),
                    event_planner::ops::create_event(obj, "dinner", 2),
                ] {
                    assert!(
                        master.issue(op).expect("prelude issue"),
                        "prelude op failed"
                    );
                }
                (obj, 5)
            }
            "message_board" => {
                let obj = master.create_instance(message_board::MessageBoard::new());
                assert!(
                    master
                        .issue(message_board::ops::create_topic(obj, "general"))
                        .expect("prelude issue"),
                    "prelude op failed"
                );
                (obj, 2)
            }
            "sneaky" => {
                let obj = master.create_instance(sneaky::Mirror {
                    m: [("src".to_owned(), 1), ("dst".to_owned(), 0)].into(),
                });
                (obj, 1)
            }
            "miskeyed" => (master.create_instance(miskeyed::Board::default()), 1),
            other => unreachable!("unknown preset {other}"),
        }
    }

    /// The per-machine operations injected after the prelude — the
    /// workload whose interleavings are explored.
    fn injections(&self, obj: ObjectId) -> Vec<(u32, SharedOp)> {
        match self.name {
            "sudoku" => vec![
                // Machine 0: a same-cell conflicting pair (also the
                // seeded-mutation target: swapping their commit order is
                // observable).
                (0, sudoku::ops::update(obj, 1, 1, 1)),
                (0, sudoku::ops::clear(obj, 1, 1)),
                // Machine 1: moves in disjoint rows/columns/boxes — their
                // batch commutes with everything machine 0 flushes.
                (1, sudoku::ops::update(obj, 5, 5, 3)),
                (1, sudoku::ops::update(obj, 9, 9, 5)),
                // Machine 2: another disjoint-unit move (row 6, col 2,
                // box 3) — its batch commutes with both of the above.
                (2, sudoku::ops::update(obj, 6, 2, 7)),
            ],
            "auction" => vec![
                // Dueling first-bids at the reserve: the commit order
                // decides the winner, the loser's bid fails.
                (0, auction::ops::bid(obj, "lamp", "ann", 10)),
                (1, auction::ops::bid(obj, "lamp", "bob", 10)),
                // A bid on the other item commutes with both.
                (1, auction::ops::bid(obj, "rug", "carol", 5)),
            ],
            "event_planner" => vec![
                // The last-seat race for `party` (capacity 1).
                (0, event_planner::ops::join(obj, "ann", "party")),
                (1, event_planner::ops::join(obj, "bob", "party")),
                // A fresh registration touches only `users/carol`.
                (0, event_planner::ops::register_user(obj, "carol", "pw")),
            ],
            "message_board" => vec![
                // Two posts to the same topic: serialized, and the commit
                // order decides the thread order — the conflict the round
                // path must keep total.
                (0, message_board::ops::post(obj, "general", "ann", "hi")),
                (2, message_board::ops::post(obj, "general", "bob", "yo")),
                // Blind likes: universal commuters that take the async
                // path. Machine 1 issues two so same-sender FIFO ordering
                // (a shared arrival slot the reduction must not split) is
                // exercised alongside cross-sender reorderings.
                (0, message_board::ops::like(obj, "general")),
                (1, message_board::ops::like(obj, "general")),
                (1, message_board::ops::like(obj, "general")),
            ],
            "sneaky" => vec![
                // Honest slot bump on the master.
                (0, sneaky::bump(obj, "src", 1)),
                // The under-declared mirror: its hidden read of `src` is
                // recorded the moment machine 1 issues it, so the witness
                // oracle fires on the very first explored step.
                (1, sneaky::mirror(obj)),
            ],
            "miskeyed" => vec![
                // Honest posts. The mis-keyed plan routes each by its
                // author, so the first round commit lands `topics/news`
                // in shard `KeyedBoard:0/ann` (and `topics/sport` in
                // `KeyedBoard:0/bob`) — escapes the shard containment
                // check records on every machine.
                (0, miskeyed::post(obj, "news", "ann")),
                (1, miskeyed::post(obj, "sport", "bob")),
            ],
            other => unreachable!("unknown preset {other}"),
        }
    }

    /// Builds the cluster, runs the deterministic prelude, injects the
    /// workload, stages the late joiner, and installs the tamper hook.
    ///
    /// # Panics
    ///
    /// Panics if the prelude fails to converge — that is a bug in either
    /// the protocol or the harness, not an explorable behavior.
    pub fn build(&self, matrix: &CommuteMatrix, tamper: Option<TamperSpec>) -> Built {
        let registry = Arc::new(self.registry());
        // Timeout spacing mirrors deployment ratios (tick < join retry <
        // stall) so timer-only phases preserve protocol behavior; absolute
        // values are irrelevant under the controlled clock.
        let mut cfg = MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_join_retry(SimTime::from_millis(300))
            .with_stall_timeout(SimTime::from_millis(500))
            .with_record_history(true)
            .with_paranoid_checks(true)
            .with_async_commit(self.hybrid)
            .with_commute_matrix(self.effective_matrix(matrix))
            // The negative presets record escapes instead of asserting, so
            // an oracle (not a mid-delivery debug_assert) is what reports
            // them: `sneaky` additionally probes for undeclared reads.
            .with_witness_reads(self.name == "sneaky")
            .with_witness_assert(!matches!(self.name, "sneaky" | "miskeyed"));
        if self.name == "miskeyed" {
            // The deliberately wrong plan the shard containment check —
            // and the checker's ShardEscape oracle — must catch.
            cfg = cfg.with_shard_plan(miskeyed::plan());
        }

        let mut net: SchedNet<Machine> = SchedNet::new();
        net.add_machine(
            MachineId::new(0),
            Machine::new_master(MachineId::new(0), registry.clone(), cfg.clone()),
        );
        for i in 1..self.eager {
            net.add_machine(
                MachineId::new(i),
                Machine::new_member(MachineId::new(i), registry.clone(), cfg.clone()),
            );
        }
        let (obj, prelude_ops) =
            self.prelude_ops(net.actor_mut(MachineId::new(0)).expect("master added"));

        // Deterministic prelude: always deliver the lowest-seq message,
        // fire a timer only when quiet. Every branch of the exploration
        // replays this identically, so it contributes no choice points.
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 100_000, "prelude failed to converge");
            if let Some(&seq) = net.pending_msgs().first() {
                net.deliver(seq);
                continue;
            }
            let settled = (0..self.eager).all(|i| {
                let m = net.actor(MachineId::new(i)).expect("member");
                m.in_cohort() && m.completed_len() == prelude_ops as usize
            });
            if settled {
                break;
            }
            assert!(net.fire_next_timer(), "prelude stalled with no timers");
        }

        // Injections for machines beyond `eager` are dropped so tests can
        // shrink a preset (fewer machines → exhaustible tree) without
        // re-specifying its workload.
        for (machine, op) in self
            .injections(obj)
            .into_iter()
            .filter(|&(m, _)| m < self.eager)
        {
            let id = MachineId::new(machine);
            let issued = if self.hybrid {
                // The hybrid issue path may broadcast an AsyncOp, so it
                // needs a network context; the resulting in-flight
                // messages become exploration choices like any other.
                let mut ok = None;
                assert!(
                    net.call(id, |m, ctx| {
                        ok = Some(
                            m.issue_hybrid(op, None, ctx)
                                .expect("injection references known objects"),
                        );
                    }),
                    "machine exists"
                );
                ok.expect("call ran")
            } else {
                net.actor_mut(id)
                    .expect("machine exists")
                    .issue(op)
                    .expect("injection references known objects")
            };
            assert!(issued, "injected op failed at issue");
        }

        let join_choice = self.late_join.then(|| {
            let id = MachineId::new(self.eager);
            net.stage_join(id, Machine::new_member(id, registry.clone(), cfg.clone()))
        });

        if let Some(t) = tamper {
            let victim = MachineId::new(t.victim);
            let (i, j) = t.swap;
            let mut seen = 0u64;
            net.set_tamper(Box::new(move |_seq, _from, to, msg: &mut Msg| {
                if to != victim {
                    return false;
                }
                let Msg::Ops { ops, .. } = msg else {
                    return false;
                };
                seen += 1;
                if seen != t.nth || i == j || i >= ops.len() || j >= ops.len() {
                    return false;
                }
                // Swap the *ids*: receivers key a round's batch by id and
                // apply in id order, so this inverts the victim's commit
                // order for the two operations. The batch is shared behind
                // an Arc; clone-on-write so only this delivery is corrupted.
                let ops = std::sync::Arc::make_mut(ops);
                let a = ops[i].id;
                ops[i].id = ops[j].id;
                ops[j].id = a;
                true
            }));
        }

        let base_rounds = net
            .actor(MachineId::new(0))
            .expect("master")
            .stats()
            .syncs_seen;
        Built {
            net,
            registry,
            base_rounds,
            join_choice,
        }
    }
}

/// A built scenario, ready for exploration or replay.
#[derive(Debug)]
pub struct Built {
    /// The cluster under the controlled scheduler.
    pub net: SchedNet<Machine>,
    /// The shared operation registry (also used by oracles).
    pub registry: Arc<OpRegistry>,
    /// The master's sync count at the end of the prelude; exploration
    /// targets `base_rounds + preset.rounds`.
    pub base_rounds: u64,
    /// The staged joiner's choice seq, if the preset has a late join.
    pub join_choice: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_and_quiesce() {
        for p in PRESETS {
            let built = p.build(&CommuteMatrix::new(), None);
            // Serialized injections stay pending until a round; only the
            // hybrid preset's async broadcasts may already be in flight.
            for &seq in &built.net.pending_msgs() {
                let msg = &built.net.pending_msg(seq).unwrap().msg;
                assert!(
                    p.hybrid && matches!(msg, Msg::AsyncOp { .. }),
                    "{}: unexpected in-flight {msg:?}",
                    p.name
                );
            }
            assert!(built.net.has_timers(), "{}: tick must be armed", p.name);
            assert_eq!(built.join_choice.is_some(), p.late_join, "{}", p.name);
            for i in 0..p.eager {
                let m = built.net.actor(MachineId::new(i)).unwrap();
                assert!(m.check_guess_invariant(), "{} machine {i}", p.name);
            }
            // Injections are pending, not yet committed.
            let master = built.net.actor(MachineId::new(0)).unwrap();
            assert!(master.pending_len() > 0, "{}", p.name);
        }
    }

    #[test]
    fn hybrid_preset_commits_asyncs_at_issue() {
        let p = Preset::by_name("message_board").unwrap();
        let built = p.build(&CommuteMatrix::new(), None);
        // Machine 0's injections: one serialized post (pending) and one
        // async like (committed at issue, on top of the 2 prelude ops).
        let m0 = built.net.actor(MachineId::new(0)).unwrap();
        assert_eq!(m0.completed_len(), 3);
        assert_eq!(m0.completed_serialized().len(), 2);
        assert_eq!(m0.pending_len(), 1);
        // Machine 1 issued two async likes and nothing serialized.
        let m1 = built.net.actor(MachineId::new(1)).unwrap();
        assert_eq!(m1.completed_len(), 4);
        assert_eq!(m1.pending_len(), 0);
        // Each like broadcast to the two peers: 3 likes * 2 = 6 in flight.
        assert_eq!(built.net.pending_msgs().len(), 6);
    }

    #[test]
    fn build_is_deterministic() {
        let p = Preset::by_name("auction").unwrap();
        let a = p.build(&CommuteMatrix::new(), None);
        let b = p.build(&CommuteMatrix::new(), None);
        assert_eq!(a.base_rounds, b.base_rounds);
        assert_eq!(a.join_choice, b.join_choice);
        assert_eq!(
            a.net.actor(MachineId::new(0)).unwrap().committed_digest(),
            b.net.actor(MachineId::new(0)).unwrap().committed_digest()
        );
    }
}
