//! Replayable schedules: the checker's choice alphabet and its on-disk
//! JSON form.
//!
//! A schedule is the complete record of one explored interleaving: the
//! preset that built the initial cluster, the optional tamper
//! specification (for seeded-mutation tests), and the sequence of
//! [`Step`]s taken from the post-prelude state. Choice identities are the
//! controlled scheduler's stable sequence numbers
//! ([`guesstimate_net::SchedNet`]), which are deterministic functions of
//! the steps taken so far — so a schedule file replays verbatim on a
//! freshly built cluster.
//!
//! The file format (schema v1, written by [`Schedule::to_json`]):
//!
//! ```json
//! {
//!   "version": 1,
//!   "preset": "sudoku",
//!   "tamper": {"victim": 1, "nth": 1, "swap": [0, 1]},
//!   "steps": [
//!     {"t": "timer"},
//!     {"t": "deliver", "seq": 12},
//!     {"t": "drop", "seq": 14},
//!     {"t": "admit", "seq": 3}
//!   ]
//! }
//! ```
//!
//! `tamper` is optional. During replay, a `deliver`/`drop`/`admit` whose
//! seq is no longer pending is skipped rather than failing: the
//! minimizer removes steps, which shifts the seq numbers of messages
//! created later, and skip-on-mismatch keeps shrunken candidates
//! meaningful (see `shrink`).

use guesstimate_analysis::json::{escape, Json};

/// One scheduling choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Step {
    /// Deliver the in-flight message with this seq.
    Deliver(u64),
    /// Drop (lose) the in-flight message with this seq.
    Drop(u64),
    /// Admit the staged joiner with this choice seq.
    Admit(u64),
    /// Fire the earliest armed timer (advances virtual time).
    Timer,
}

impl std::fmt::Display for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Deliver(s) => write!(f, "deliver({s})"),
            Step::Drop(s) => write!(f, "drop({s})"),
            Step::Admit(s) => write!(f, "admit({s})"),
            Step::Timer => write!(f, "timer"),
        }
    }
}

/// A seeded mutation: on the `nth` (1-based) `Msg::Ops` delivery to
/// `victim`, swap the operation *ids* of the envelopes at positions
/// `swap.0` and `swap.1` of the batch.
///
/// Swapping ids (not positions) matters: receivers key a round's
/// operations by id and apply in id order, so an id swap inverts the
/// victim's apply order for those two operations — exactly the corruption
/// the committed-agreement oracles exist to catch. The swapped pair must
/// be non-commuting for the corruption to be observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TamperSpec {
    /// Machine whose incoming batch is corrupted.
    pub victim: u32,
    /// Which `Msg::Ops` delivery to the victim to corrupt (1-based).
    pub nth: u64,
    /// Envelope positions whose ids are exchanged.
    pub swap: (usize, usize),
}

/// A replayable schedule: preset + optional tamper + choice sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Preset name (`scenario::Preset::by_name`).
    pub preset: String,
    /// Optional seeded mutation.
    pub tamper: Option<TamperSpec>,
    /// The choices, in order.
    pub steps: Vec<Step>,
}

impl Schedule {
    /// Renders the schedule as its JSON file form (pretty enough to diff:
    /// one step per line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"preset\": {},\n", escape(&self.preset)));
        if let Some(t) = &self.tamper {
            out.push_str(&format!(
                "  \"tamper\": {{\"victim\": {}, \"nth\": {}, \"swap\": [{}, {}]}},\n",
                t.victim, t.nth, t.swap.0, t.swap.1
            ));
        }
        out.push_str("  \"steps\": [\n");
        for (i, s) in self.steps.iter().enumerate() {
            let body = match s {
                Step::Deliver(q) => format!("{{\"t\": \"deliver\", \"seq\": {q}}}"),
                Step::Drop(q) => format!("{{\"t\": \"drop\", \"seq\": {q}}}"),
                Step::Admit(q) => format!("{{\"t\": \"admit\", \"seq\": {q}}}"),
                Step::Timer => "{\"t\": \"timer\"}".to_owned(),
            };
            let comma = if i + 1 < self.steps.len() { "," } else { "" };
            out.push_str(&format!("    {body}{comma}\n"));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a schedule file.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or shape problem.
    pub fn from_json(text: &str) -> Result<Schedule, String> {
        let doc = Json::parse(text)?;
        match doc.get("version").and_then(Json::as_u64) {
            Some(1) => {}
            Some(v) => return Err(format!("unsupported schedule version {v}")),
            None => return Err("missing `version`".to_owned()),
        }
        let preset = doc
            .get("preset")
            .and_then(Json::as_str)
            .ok_or("missing `preset`")?
            .to_owned();
        let tamper = match doc.get("tamper") {
            None | Some(Json::Null) => None,
            Some(t) => {
                let victim = t
                    .get("victim")
                    .and_then(Json::as_u64)
                    .ok_or("tamper missing `victim`")?;
                let nth = t
                    .get("nth")
                    .and_then(Json::as_u64)
                    .ok_or("tamper missing `nth`")?;
                let swap = t
                    .get("swap")
                    .and_then(Json::as_list)
                    .ok_or("tamper missing `swap`")?;
                let [a, b] = swap else {
                    return Err("tamper `swap` must have two entries".to_owned());
                };
                let (Some(a), Some(b)) = (a.as_u64(), b.as_u64()) else {
                    return Err("tamper `swap` entries must be indices".to_owned());
                };
                Some(TamperSpec {
                    victim: u32::try_from(victim).map_err(|e| e.to_string())?,
                    nth,
                    swap: (a as usize, b as usize),
                })
            }
        };
        let mut steps = Vec::new();
        for (i, s) in doc
            .get("steps")
            .and_then(Json::as_list)
            .ok_or("missing `steps` array")?
            .iter()
            .enumerate()
        {
            let t = s
                .get("t")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("step {i} missing `t`"))?;
            let seq = || {
                s.get("seq")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("step {i} ({t}) missing `seq`"))
            };
            steps.push(match t {
                "deliver" => Step::Deliver(seq()?),
                "drop" => Step::Drop(seq()?),
                "admit" => Step::Admit(seq()?),
                "timer" => Step::Timer,
                other => return Err(format!("step {i}: unknown kind `{other}`")),
            });
        }
        Ok(Schedule {
            preset,
            tamper,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let s = Schedule {
            preset: "sudoku".to_owned(),
            tamper: Some(TamperSpec {
                victim: 1,
                nth: 2,
                swap: (0, 3),
            }),
            steps: vec![Step::Timer, Step::Deliver(7), Step::Drop(9), Step::Admit(3)],
        };
        let text = s.to_json();
        assert_eq!(Schedule::from_json(&text).unwrap(), s);

        let no_tamper = Schedule {
            preset: "auction".to_owned(),
            tamper: None,
            steps: vec![Step::Deliver(0)],
        };
        assert_eq!(
            Schedule::from_json(&no_tamper.to_json()).unwrap(),
            no_tamper
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(Schedule::from_json("{}").is_err());
        assert!(Schedule::from_json(
            "{\"version\": 1, \"preset\": \"x\", \"steps\": [{\"t\": \"deliver\"}]}"
        )
        .is_err());
        assert!(Schedule::from_json(
            "{\"version\": 1, \"preset\": \"x\", \"steps\": [{\"t\": \"warp\"}]}"
        )
        .is_err());
    }
}
