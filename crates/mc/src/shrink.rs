//! Delta-debugging schedule minimization.
//!
//! When exploration finds an oracle violation, the raw repro is a full
//! schedule — often dozens of steps, most of them irrelevant protocol
//! traffic. [`minimize`] shrinks it with ddmin (Zeller's delta
//! debugging) followed by a 1-minimal single-removal pass, using "replay
//! still reports a violation" as the interestingness predicate.
//!
//! Removing a step shifts the seq numbers of every message created
//! later; replay handles that by skipping steps whose seq is no longer
//! pending (see the `schedule` module docs), so shrunken candidates stay
//! meaningful instead of failing structurally.

use guesstimate_core::CommuteMatrix;

use crate::explore::replay;
use crate::schedule::{Schedule, Step};

fn fails(sched: &Schedule, steps: &[Step], matrix: &CommuteMatrix) -> bool {
    let candidate = Schedule {
        preset: sched.preset.clone(),
        tamper: sched.tamper,
        steps: steps.to_vec(),
    };
    replay(&candidate, matrix)
        .map(|r| r.violation.is_some())
        .unwrap_or(false)
}

/// Minimizes a failing schedule. Returns the smallest failing schedule
/// found (at worst, the input itself).
///
/// The input must actually fail on replay; if it does not (e.g. the
/// violation depended on state the replay cannot reproduce), the input
/// is returned unchanged.
pub fn minimize(sched: &Schedule, matrix: &CommuteMatrix) -> Schedule {
    if !fails(sched, &sched.steps, matrix) {
        return sched.clone();
    }
    let mut steps = sched.steps.clone();

    // ddmin: try removing ever-finer chunks until granularity exceeds
    // the sequence length.
    let mut chunks = 2usize;
    while steps.len() >= 2 {
        let chunk = steps.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0;
        while start < steps.len() {
            let end = (start + chunk).min(steps.len());
            let mut candidate = Vec::with_capacity(steps.len() - (end - start));
            candidate.extend_from_slice(&steps[..start]);
            candidate.extend_from_slice(&steps[end..]);
            if !candidate.is_empty() && fails(sched, &candidate, matrix) {
                steps = candidate;
                chunks = 2.max(chunks - 1);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break;
            }
            chunks = (chunks * 2).min(steps.len());
        }
    }

    // 1-minimal pass: no single remaining step can be removed.
    let mut i = 0;
    while i < steps.len() && steps.len() > 1 {
        let mut candidate = steps.clone();
        candidate.remove(i);
        if fails(sched, &candidate, matrix) {
            steps = candidate;
        } else {
            i += 1;
        }
    }

    Schedule {
        preset: sched.preset.clone(),
        tamper: sched.tamper,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};
    use crate::scenario::Preset;
    use crate::schedule::TamperSpec;

    /// The seeded mutation corrupts the first Ops batch delivered to
    /// machine 1 by swapping the ids of the same-cell sudoku pair; the
    /// checker must catch it and the minimized repro must still fail.
    #[test]
    fn seeded_mutation_is_caught_and_shrinks() {
        let p = Preset::by_name("sudoku").unwrap();
        let matrix = CommuteMatrix::new();
        let tamper = Some(TamperSpec {
            victim: 1,
            nth: 1,
            swap: (0, 1),
        });
        let out = explore(p, &matrix, tamper, &ExploreConfig::default());
        let (violation, steps) = out.violation.expect("tampered run must violate an oracle");
        let raw = Schedule {
            preset: "sudoku".to_owned(),
            tamper,
            steps,
        };
        let min = minimize(&raw, &matrix);
        assert!(min.steps.len() <= raw.steps.len());
        let report = replay(&min, &matrix).unwrap();
        assert!(
            report.violation.is_some(),
            "minimized schedule must still reproduce (original: {violation})"
        );
        // And it replays deterministically: twice in a row, same verdict.
        let again = replay(&min, &matrix).unwrap();
        assert_eq!(report.violation, again.violation);
    }
}
