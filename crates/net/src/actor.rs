//! The event-driven participant interface.
//!
//! Protocol logic (the GUESSTIMATE synchronizer, the baselines' servers and
//! clients) is written once against [`Actor`] and runs unchanged under the
//! deterministic virtual-time driver ([`crate::SimNet`]) and the real-thread
//! driver ([`crate::ThreadedNet`]). Actors never touch sockets or clocks
//! directly — they receive events and emit [`Action`]s through a [`Ctx`].

use guesstimate_core::MachineId;

use crate::channel::Channel;
use crate::time::SimTime;

/// An effect requested by an actor: a message send or a timer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Broadcast `msg` on `channel` to every *other* member of the mesh.
    Broadcast(Channel, M),
    /// Send `msg` on `channel` to one machine.
    Send(MachineId, Channel, M),
    /// Request an `on_timer(tag)` callback after `delay`.
    SetTimer {
        /// How long from now the timer fires.
        delay: SimTime,
        /// Opaque tag handed back to `on_timer`.
        tag: u64,
    },
}

/// The context handed to actor callbacks: the current time plus an outbox.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: MachineId,
    actions: &'a mut Vec<Action<M>>,
}

impl<'a, M> Ctx<'a, M> {
    /// Creates a context (driver-internal).
    pub fn new(now: SimTime, self_id: MachineId, actions: &'a mut Vec<Action<M>>) -> Self {
        Ctx {
            now,
            self_id,
            actions,
        }
    }

    /// The current (virtual or wall-derived) time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's machine id.
    pub fn self_id(&self) -> MachineId {
        self.self_id
    }

    /// Broadcasts `msg` on `channel` to every other mesh member.
    pub fn broadcast(&mut self, channel: Channel, msg: M) {
        self.actions.push(Action::Broadcast(channel, msg));
    }

    /// Sends `msg` on `channel` to `to`.
    pub fn send(&mut self, to: MachineId, channel: Channel, msg: M) {
        self.actions.push(Action::Send(to, channel, msg));
    }

    /// Schedules an [`Actor::on_timer`] callback `delay` from now.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        self.actions.push(Action::SetTimer { delay, tag });
    }
}

/// A mesh participant.
///
/// All callbacks run with exclusive access to the actor (the threaded driver
/// serializes them behind a lock), so implementations need no internal
/// synchronization for their own state.
pub trait Actor: Send + 'static {
    /// The message type carried on both channels.
    type Msg: Clone + Send + 'static;

    /// Called once when the actor joins the mesh.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called for every delivered message.
    fn on_message(
        &mut self,
        from: MachineId,
        channel: Channel,
        msg: Self::Msg,
        ctx: &mut Ctx<'_, Self::Msg>,
    );

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    ///
    /// Timers cannot be cancelled; actors that re-arm timers should carry a
    /// generation counter in the tag and ignore stale ones.
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = (tag, ctx);
    }

    /// Estimated wire size of `msg` in bytes, used by the drivers to
    /// account `bytes_sent`/`bytes_delivered` in
    /// [`crate::NetMetrics`].
    ///
    /// The default charges every message one size-of-the-value unit —
    /// enough for relative comparisons. Protocol actors override this
    /// with a structural estimate of their message payloads.
    fn msg_size(msg: &Self::Msg) -> u64 {
        let _ = msg;
        std::mem::size_of::<Self::Msg>() as u64
    }

    /// A short, stable label for `msg`, recorded on the causal
    /// [`crate::TraceEvent::MsgSent`]/[`crate::TraceEvent::MsgReceived`]
    /// events so merged cluster timelines can be filtered by message kind.
    ///
    /// The default labels every message `"msg"`; protocol actors override
    /// this with one snake_case name per variant.
    fn msg_kind(msg: &Self::Msg) -> &'static str {
        let _ = msg;
        "msg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_records_actions_in_order() {
        let mut actions = Vec::new();
        let mut ctx: Ctx<'_, &'static str> =
            Ctx::new(SimTime::from_millis(5), MachineId::new(1), &mut actions);
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        assert_eq!(ctx.self_id(), MachineId::new(1));
        ctx.broadcast(Channel::Signals, "a");
        ctx.send(MachineId::new(2), Channel::Operations, "b");
        ctx.set_timer(SimTime::from_millis(10), 42);
        assert_eq!(
            actions,
            vec![
                Action::Broadcast(Channel::Signals, "a"),
                Action::Send(MachineId::new(2), Channel::Operations, "b"),
                Action::SetTimer {
                    delay: SimTime::from_millis(10),
                    tag: 42
                },
            ]
        );
    }

    #[test]
    fn default_hooks_are_noops() {
        struct Null;
        impl Actor for Null {
            type Msg = ();
            fn on_message(&mut self, _: MachineId, _: Channel, _: (), _: &mut Ctx<'_, ()>) {}
        }
        let mut n = Null;
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(SimTime::ZERO, MachineId::new(0), &mut actions);
        n.on_start(&mut ctx);
        n.on_timer(0, &mut ctx);
        assert!(actions.is_empty());
    }
}
