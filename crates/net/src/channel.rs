//! The two logical meshes of the GUESSTIMATE runtime.

use std::fmt;

/// Which mesh a message travels on.
///
/// §4: "The GUESSTIMATE runtime uses two meshes, one for sending signals and
/// another for passing operations. Both meshes contain all participating
/// machines."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Channel {
    /// Control mesh: sync-round signals, confirmations, acknowledgments,
    /// membership and recovery messages.
    Signals,
    /// Data mesh: the `(machineID, operationnumber, operation)` triples
    /// flushed during *AddUpdatesToMesh*.
    Operations,
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Channel::Signals => write!(f, "signals"),
            Channel::Operations => write!(f, "operations"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(Channel::Signals.to_string(), "signals");
        assert_eq!(Channel::Operations.to_string(), "operations");
    }

    #[test]
    fn ord_and_eq() {
        assert!(Channel::Signals < Channel::Operations);
        assert_ne!(Channel::Signals, Channel::Operations);
    }
}
