//! Fault injection: message loss, duplication, stalls and crashes.
//!
//! §7 of the paper reports three failures during the measured hour — one
//! machine restart and two stalled synchronizations "possibly because a
//! message was lost in transmission" — all recovered automatically by the
//! master (resend, or removal from the round plus a restart signal). The
//! [`FaultPlan`] reproduces those conditions on demand: probabilistic
//! message drops, scheduled *stall windows* during which a machine neither
//! sends nor receives, and hard crashes.

use guesstimate_core::MachineId;

use crate::time::SimTime;

/// An interval during which a machine is unresponsive.
///
/// Models a GC pause, a swapped-out process or a flaky link: messages from
/// and to the machine are silently dropped while the window is open. The
/// machine's state is intact afterwards — it is the *recovery protocol's*
/// job to bring it back in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// The stalled machine.
    pub machine: MachineId,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl StallWindow {
    /// Creates a stall window.
    pub fn new(machine: MachineId, from: SimTime, until: SimTime) -> Self {
        StallWindow {
            machine,
            from,
            until,
        }
    }

    /// True if the window covers `t`.
    pub fn covers(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// An interval during which the mesh is split in two: messages between the
/// named group and everyone else are dropped in both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// One side of the partition (the other side is the complement).
    pub group: Vec<MachineId>,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl PartitionWindow {
    /// Creates a partition window.
    pub fn new(group: Vec<MachineId>, from: SimTime, until: SimTime) -> Self {
        PartitionWindow { group, from, until }
    }

    /// True if the window covers `t`.
    pub fn covers(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }

    /// True if `a` and `b` are on opposite sides.
    pub fn separates(&self, a: MachineId, b: MachineId) -> bool {
        self.group.contains(&a) != self.group.contains(&b)
    }
}

/// A scheduled one-shot fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Permanently crash a machine at a given time.
    Crash {
        /// The machine to crash.
        machine: MachineId,
        /// When the crash happens.
        at: SimTime,
    },
}

/// The complete fault schedule for one run.
///
/// # Examples
///
/// ```
/// use guesstimate_core::MachineId;
/// use guesstimate_net::{FaultPlan, SimTime, StallWindow};
///
/// let plan = FaultPlan::new()
///     .with_drop_prob(0.001)
///     .with_stall(StallWindow::new(
///         MachineId::new(2),
///         SimTime::from_secs(10),
///         SimTime::from_secs(25),
///     ));
/// assert!(plan.is_stalled(MachineId::new(2), SimTime::from_secs(12)));
/// assert!(!plan.is_stalled(MachineId::new(2), SimTime::from_secs(25)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    drop_prob: f64,
    dup_prob: f64,
    stalls: Vec<StallWindow>,
    partitions: Vec<PartitionWindow>,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the independent per-delivery drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.drop_prob = p;
        self
    }

    /// Sets the independent per-delivery duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_dup_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "dup probability out of range");
        self.dup_prob = p;
        self
    }

    /// Adds a stall window.
    pub fn with_stall(mut self, w: StallWindow) -> Self {
        self.stalls.push(w);
        self
    }

    /// Adds a scheduled crash.
    pub fn with_crash(mut self, machine: MachineId, at: SimTime) -> Self {
        self.events.push(FaultEvent::Crash { machine, at });
        self
    }

    /// Adds a partition window.
    pub fn with_partition(mut self, w: PartitionWindow) -> Self {
        self.partitions.push(w);
        self
    }

    /// The per-delivery drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// The per-delivery duplication probability.
    pub fn dup_prob(&self) -> f64 {
        self.dup_prob
    }

    /// True if `machine` is inside any stall window at `t`.
    pub fn is_stalled(&self, machine: MachineId, t: SimTime) -> bool {
        self.stalls
            .iter()
            .any(|w| w.machine == machine && w.covers(t))
    }

    /// All scheduled one-shot fault events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// All stall windows.
    pub fn stalls(&self) -> &[StallWindow] {
        &self.stalls
    }

    /// All partition windows.
    pub fn partitions(&self) -> &[PartitionWindow] {
        &self.partitions
    }

    /// True if a message from `a` to `b` crosses an open partition at `t`.
    pub fn is_cut(&self, a: MachineId, b: MachineId, t: SimTime) -> bool {
        self.partitions
            .iter()
            .any(|w| w.covers(t) && w.separates(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_window_boundaries() {
        let w = StallWindow::new(
            MachineId::new(0),
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        );
        assert!(!w.covers(SimTime::from_millis(9)));
        assert!(w.covers(SimTime::from_millis(10)));
        assert!(w.covers(SimTime::from_millis(19)));
        assert!(!w.covers(SimTime::from_millis(20)));
    }

    #[test]
    fn plan_builder_accumulates() {
        let plan = FaultPlan::new()
            .with_drop_prob(0.5)
            .with_dup_prob(0.25)
            .with_stall(StallWindow::new(
                MachineId::new(1),
                SimTime::ZERO,
                SimTime::from_secs(1),
            ))
            .with_crash(MachineId::new(2), SimTime::from_secs(5));
        assert_eq!(plan.drop_prob(), 0.5);
        assert_eq!(plan.dup_prob(), 0.25);
        assert_eq!(plan.stalls().len(), 1);
        assert_eq!(plan.events().len(), 1);
        assert!(plan.is_stalled(MachineId::new(1), SimTime::from_millis(500)));
        assert!(!plan.is_stalled(MachineId::new(2), SimTime::from_millis(500)));
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_bad_drop_prob() {
        let _ = FaultPlan::new().with_drop_prob(1.5);
    }

    #[test]
    #[should_panic(expected = "dup probability")]
    fn rejects_bad_dup_prob() {
        let _ = FaultPlan::new().with_dup_prob(-0.1);
    }

    #[test]
    fn partitions_cut_across_but_not_within_groups() {
        let w = PartitionWindow::new(
            vec![MachineId::new(0), MachineId::new(1)],
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        let plan = FaultPlan::new().with_partition(w);
        let t = SimTime::from_millis(1_500);
        assert!(plan.is_cut(MachineId::new(0), MachineId::new(2), t));
        assert!(plan.is_cut(MachineId::new(2), MachineId::new(1), t));
        assert!(
            !plan.is_cut(MachineId::new(0), MachineId::new(1), t),
            "same side"
        );
        assert!(
            !plan.is_cut(MachineId::new(2), MachineId::new(3), t),
            "same side"
        );
        assert!(
            !plan.is_cut(MachineId::new(0), MachineId::new(2), SimTime::from_secs(2)),
            "window closed"
        );
        assert_eq!(plan.partitions().len(), 1);
    }

    #[test]
    fn overlapping_stalls_union() {
        let plan = FaultPlan::new()
            .with_stall(StallWindow::new(
                MachineId::new(0),
                SimTime::from_millis(0),
                SimTime::from_millis(10),
            ))
            .with_stall(StallWindow::new(
                MachineId::new(0),
                SimTime::from_millis(5),
                SimTime::from_millis(15),
            ));
        assert!(plan.is_stalled(MachineId::new(0), SimTime::from_millis(12)));
        assert!(!plan.is_stalled(MachineId::new(0), SimTime::from_millis(15)));
    }
}
