//! Link-latency models.
//!
//! The paper's measurements ran on a LAN, where "the dominant component of
//! the time for synchronization is network delay" (§7). The latency model is
//! therefore the main knob that shapes Figures 5 and 6. All models are
//! sampled from a caller-provided RNG so simulations stay deterministic
//! under a seed.

use rand::Rng;

use crate::time::SimTime;

/// A distribution of one-way message latencies.
///
/// # Examples
///
/// ```
/// use guesstimate_net::LatencyModel;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let m = LatencyModel::uniform_ms(10, 20);
/// let s = m.sample(&mut rng);
/// assert!(s.as_millis() >= 10 && s.as_millis() <= 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimTime),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Minimum latency.
        lo: SimTime,
        /// Maximum latency.
        hi: SimTime,
    },
    /// Normal with the given mean and standard deviation (truncated at
    /// `min`); a reasonable LAN model.
    Normal {
        /// Mean latency in microseconds.
        mean_us: f64,
        /// Standard deviation in microseconds.
        std_us: f64,
        /// Lower truncation bound.
        min: SimTime,
    },
    /// Log-normal of the underlying normal `(mu, sigma)` (in ln-microsecond
    /// space); heavy-tailed, matching observed LAN/WLAN delay tails.
    LogNormal {
        /// Mean of the underlying normal (of ln latency-in-us).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// A base model plus, with probability `spike_prob`, an additive spike
    /// (models transient congestion; produces Figure 5-style outliers even
    /// without faults).
    Spiky {
        /// The base distribution.
        base: Box<LatencyModel>,
        /// Probability that a message hits a spike.
        spike_prob: f64,
        /// Extra delay added on a spike.
        spike: SimTime,
    },
}

impl LatencyModel {
    /// Constant latency of `ms` milliseconds.
    pub fn constant_ms(ms: u64) -> Self {
        LatencyModel::Constant(SimTime::from_millis(ms))
    }

    /// Uniform latency between `lo_ms` and `hi_ms` milliseconds.
    pub fn uniform_ms(lo_ms: u64, hi_ms: u64) -> Self {
        LatencyModel::Uniform {
            lo: SimTime::from_millis(lo_ms),
            hi: SimTime::from_millis(hi_ms),
        }
    }

    /// A LAN-like model: normal around `mean_ms` with 25% relative standard
    /// deviation, truncated at 1/4 of the mean.
    ///
    /// `mean_ms` is floored at 1: `lan_ms(0)` would otherwise degenerate to
    /// `Normal(0, 0, min = 0)` — a constant zero-latency link wearing a
    /// normal distribution's clothes, which silently defeats any experiment
    /// varying this knob. Samples truncate toward zero microseconds (the
    /// `as u64` cast), which at millisecond means loses well under 0.1%.
    pub fn lan_ms(mean_ms: u64) -> Self {
        let mean_us = (mean_ms.max(1) * 1_000) as f64;
        LatencyModel::Normal {
            mean_us,
            std_us: mean_us * 0.25,
            min: SimTime::from_micros((mean_us * 0.25) as u64),
        }
    }

    /// Samples a latency.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        match self {
            LatencyModel::Constant(t) => *t,
            LatencyModel::Uniform { lo, hi } => {
                let (lo, hi) = (lo.as_micros(), hi.as_micros());
                SimTime::from_micros(rng.gen_range(lo..=hi.max(lo)))
            }
            LatencyModel::Normal {
                mean_us,
                std_us,
                min,
            } => {
                let z = sample_standard_normal(rng);
                let v = mean_us + std_us * z;
                SimTime::from_micros((v.max(min.as_micros() as f64)) as u64)
            }
            LatencyModel::LogNormal { mu, sigma } => {
                let z = sample_standard_normal(rng);
                SimTime::from_micros((mu + sigma * z).exp().min(1e12) as u64)
            }
            LatencyModel::Spiky {
                base,
                spike_prob,
                spike,
            } => {
                let mut t = base.sample(rng);
                if rng.gen_bool((*spike_prob).clamp(0.0, 1.0)) {
                    t += *spike;
                }
                t
            }
        }
    }

    /// The model's mean latency, used for coarse schedule planning.
    pub fn mean(&self) -> SimTime {
        match self {
            LatencyModel::Constant(t) => *t,
            LatencyModel::Uniform { lo, hi } => {
                SimTime::from_micros((lo.as_micros() + hi.as_micros()) / 2)
            }
            LatencyModel::Normal { mean_us, .. } => SimTime::from_micros(*mean_us as u64),
            LatencyModel::LogNormal { mu, sigma } => {
                SimTime::from_micros((mu + sigma * sigma / 2.0).exp() as u64)
            }
            LatencyModel::Spiky {
                base,
                spike_prob,
                spike,
            } => base.mean() + SimTime::from_micros((spike.as_micros() as f64 * spike_prob) as u64),
        }
    }
}

/// Box–Muller standard normal sample (avoids a dependency on `rand_distr`).
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::constant_ms(5);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r).as_millis(), 5);
        }
        assert_eq!(m.mean().as_millis(), 5);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = LatencyModel::uniform_ms(10, 20);
        let mut r = rng();
        for _ in 0..200 {
            let s = m.sample(&mut r).as_millis();
            assert!((10..=20).contains(&s), "{s}");
        }
        assert_eq!(m.mean().as_millis(), 15);
    }

    #[test]
    fn normal_truncates_at_min() {
        let m = LatencyModel::Normal {
            mean_us: 1_000.0,
            std_us: 10_000.0,
            min: SimTime::from_micros(500),
        };
        let mut r = rng();
        for _ in 0..500 {
            assert!(m.sample(&mut r).as_micros() >= 500);
        }
    }

    #[test]
    fn lan_model_mean_is_close_empirically() {
        let m = LatencyModel::lan_ms(40);
        let mut r = rng();
        let n = 4_000;
        let total: u64 = (0..n).map(|_| m.sample(&mut r).as_micros()).sum();
        let avg = total as f64 / n as f64;
        assert!((30_000.0..50_000.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn spiky_adds_tail() {
        let m = LatencyModel::Spiky {
            base: Box::new(LatencyModel::constant_ms(1)),
            spike_prob: 0.5,
            spike: SimTime::from_millis(100),
        };
        let mut r = rng();
        let samples: Vec<u64> = (0..200).map(|_| m.sample(&mut r).as_millis()).collect();
        assert!(samples.iter().any(|&s| s > 50));
        assert!(samples.iter().any(|&s| s < 50));
        assert_eq!(m.mean().as_millis(), 51);
    }

    #[test]
    fn lan_zero_mean_floors_to_one_millisecond() {
        // A degenerate Normal(0, 0, 0) would make every sample zero; the
        // floor keeps the model a real distribution.
        let m = LatencyModel::lan_ms(0);
        assert_eq!(m, LatencyModel::lan_ms(1));
        assert_eq!(m.mean().as_micros(), 1_000);
        let mut r = rng();
        for _ in 0..100 {
            assert!(m.sample(&mut r).as_micros() >= 250);
        }
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let m = LatencyModel::lan_ms(20);
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(3);
            (0..50).map(|_| m.sample(&mut r).as_micros()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(3);
            (0..50).map(|_| m.sample(&mut r).as_micros()).collect()
        };
        assert_eq!(a, b);
    }
}
