//! # guesstimate-net
//!
//! The network substrate for the GUESSTIMATE runtime — a from-scratch
//! replacement for the .NET 3.5 **PeerChannel** peer-to-peer technology the
//! paper builds on (§4): *"PeerChannel allows multiple machines to be
//! combined together to form a mesh. Any member of the mesh can broadcast
//! messages to all other members via a channel associated with the mesh. The
//! GUESSTIMATE runtime uses two meshes, one for sending signals and another
//! for passing operations."*
//!
//! This crate provides:
//!
//! * [`Channel`] — the two logical meshes (*Signals* and *Operations*).
//! * [`Actor`] — the event-driven interface a protocol participant
//!   implements (`on_start` / `on_message` / `on_timer` / `on_call`); the
//!   GUESSTIMATE synchronizer in `guesstimate-runtime` is an `Actor`, which
//!   lets the *same* protocol logic run under both drivers below.
//! * [`SimNet`] — a deterministic, seeded, virtual-time discrete-event
//!   driver. All of the paper's figures are network-delay dominated, so
//!   reproducing them on a simulated clock preserves their shape while
//!   making experiments repeatable.
//! * [`ThreadedNet`] — a real-thread, wall-clock driver with the same
//!   semantics, for interactive examples.
//! * [`SchedNet`] — a controlled-scheduler driver for the model checker
//!   (`guesstimate-mc`): every delivery, drop, join admission and timer
//!   firing is an externally chosen event, so a checker can enumerate
//!   interleavings instead of following the simulator's fixed order.
//! * [`LatencyModel`] — constant / uniform / normal / log-normal / spiky
//!   link-latency distributions (LAN-like defaults match the §7 testbed).
//! * [`FaultPlan`] — message loss, duplication, machine stall windows and
//!   crashes; used to reproduce the §7 failure/recovery events and the
//!   Figure 5 outliers.
//! * [`Tracer`] / [`TraceEvent`] — a structured, allocation-light protocol
//!   trace stream; the runtime emits one event per protocol transition
//!   (round start, flush windows, apply, acks, completion, recovery) under
//!   either driver.
//!
//! ## Example
//!
//! ```
//! use guesstimate_core::MachineId;
//! use guesstimate_net::{Actor, Channel, Ctx, NetConfig, SimNet};
//!
//! /// Every machine broadcasts "hello" when asked and counts what it hears.
//! struct Hello {
//!     heard: usize,
//! }
//!
//! impl Actor for Hello {
//!     type Msg = String;
//!     fn on_message(
//!         &mut self,
//!         _from: MachineId,
//!         _channel: Channel,
//!         _msg: String,
//!         _ctx: &mut Ctx<'_, String>,
//!     ) {
//!         self.heard += 1;
//!     }
//! }
//!
//! let mut net = SimNet::new(NetConfig::lan(42));
//! for i in 0..3 {
//!     net.add_machine(MachineId::new(i), Hello { heard: 0 });
//! }
//! for i in 0..3 {
//!     net.schedule_call(
//!         guesstimate_net::SimTime::from_millis(i as u64),
//!         MachineId::new(i),
//!         |_, ctx| ctx.broadcast(Channel::Signals, "hello".to_owned()),
//!     );
//! }
//! net.run_until(guesstimate_net::SimTime::from_millis(1_000));
//! for i in 0..3 {
//!     assert_eq!(net.actor(MachineId::new(i)).unwrap().heard, 2);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod actor;
mod channel;
mod fault;
mod latency;
mod metrics;
mod sched;
mod sim;
mod threaded;
mod time;
mod trace;

pub use actor::{Action, Actor, Ctx};
pub use channel::Channel;
pub use fault::{FaultEvent, FaultPlan, PartitionWindow, StallWindow};
pub use latency::LatencyModel;
pub use metrics::NetMetrics;
pub use sched::{PendingMsg, SchedNet, TamperHook};
pub use sim::{NetConfig, SimNet};
pub use threaded::{ThreadedHandle, ThreadedNet};
pub use time::SimTime;
pub use trace::{NoopTracer, RecordingTracer, ReplayCause, TraceEvent, TraceRecord, Tracer};
