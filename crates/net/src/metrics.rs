//! Transport-level counters.

/// Counters accumulated by a driver over a run.
///
/// # Examples
///
/// ```
/// use guesstimate_net::NetMetrics;
/// let m = NetMetrics::default();
/// assert_eq!(m.sent, 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Point-to-point deliveries attempted (a broadcast to `n-1` peers
    /// counts `n-1`).
    pub sent: u64,
    /// Deliveries that reached `on_message`.
    pub delivered: u64,
    /// Deliveries dropped by the fault plan (loss or stall).
    pub dropped: u64,
    /// Extra deliveries injected by duplication faults.
    pub duplicated: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
}

impl NetMetrics {
    /// Delivery success ratio in `[0, 1]`; `1.0` when nothing was sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero() {
        assert_eq!(NetMetrics::default().delivery_ratio(), 1.0);
        let m = NetMetrics {
            sent: 4,
            delivered: 3,
            dropped: 1,
            ..Default::default()
        };
        assert_eq!(m.delivery_ratio(), 0.75);
    }
}
