//! Transport-level counters.

/// Counters accumulated by a driver over a run.
///
/// # Examples
///
/// ```
/// use guesstimate_net::NetMetrics;
/// let m = NetMetrics::default();
/// assert_eq!(m.sent, 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Point-to-point deliveries attempted (a broadcast to `n-1` peers
    /// counts `n-1`).
    pub sent: u64,
    /// Deliveries that reached `on_message`.
    pub delivered: u64,
    /// Deliveries dropped by the fault plan (loss or stall).
    pub dropped: u64,
    /// Extra deliveries injected by duplication faults.
    pub duplicated: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// Estimated payload bytes across all send attempts (sized via
    /// [`crate::Actor::msg_size`]; duplicates included).
    pub bytes_sent: u64,
    /// Estimated payload bytes across deliveries that reached
    /// `on_message`.
    pub bytes_delivered: u64,
}

impl NetMetrics {
    /// Delivery success ratio in `[0, 1]`; `1.0` when nothing was sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Folds another driver's counters into this one (e.g. summing the
    /// Operations- and Signals-side tallies, or several runs).
    pub fn merge(&mut self, other: &NetMetrics) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.timers_fired += other.timers_fired;
        self.bytes_sent += other.bytes_sent;
        self.bytes_delivered += other.bytes_delivered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_field() {
        let mut a = NetMetrics {
            sent: 1,
            delivered: 2,
            dropped: 3,
            duplicated: 4,
            timers_fired: 5,
            bytes_sent: 6,
            bytes_delivered: 7,
        };
        let b = NetMetrics {
            sent: 10,
            delivered: 20,
            dropped: 30,
            duplicated: 40,
            timers_fired: 50,
            bytes_sent: 60,
            bytes_delivered: 70,
        };
        a.merge(&b);
        assert_eq!(
            a,
            NetMetrics {
                sent: 11,
                delivered: 22,
                dropped: 33,
                duplicated: 44,
                timers_fired: 55,
                bytes_sent: 66,
                bytes_delivered: 77,
            }
        );
    }

    #[test]
    fn delivery_ratio_handles_zero() {
        assert_eq!(NetMetrics::default().delivery_ratio(), 1.0);
        let m = NetMetrics {
            sent: 4,
            delivered: 3,
            dropped: 1,
            ..Default::default()
        };
        assert_eq!(m.delivery_ratio(), 0.75);
    }
}
