//! A controlled-scheduler mesh for systematic exploration.
//!
//! [`SimNet`](crate::SimNet) is deterministic: events fire in `(time,
//! scheduling-order)` sequence and a seed fixes everything else. That is
//! perfect for experiments and fatal for model checking, where the point
//! is to *choose* the next event. [`SchedNet`] runs the same [`Actor`]s
//! but externalizes every nondeterministic decision:
//!
//! - **Message deliveries** are never performed spontaneously. Each send
//!   or broadcast leg becomes a [`PendingMsg`] with a stable sequence
//!   number; the caller picks which one to [`deliver`](SchedNet::deliver)
//!   or [`drop_msg`](SchedNet::drop_msg) next.
//! - **Joins** are staged with [`stage_join`](SchedNet::stage_join) and
//!   happen only when the caller [`admit`](SchedNet::admit)s them, making
//!   "the late joiner shows up *here*" an explorable choice point.
//! - **Timers** are kept in a `(due, seq)`-ordered queue; the caller fires
//!   the earliest with [`fire_next_timer`](SchedNet::fire_next_timer),
//!   which is the only thing that advances virtual time. Deliveries are
//!   instantaneous (latency is subsumed by delivery *order*), so the
//!   relative spacing of protocol timeouts — sync period < join retry <
//!   stall timeout — is preserved exactly while every delivery
//!   interleaving between two ticks remains reachable.
//!
//! A model checker drives this as a tree walk: the set of pending
//! sequence numbers (plus staged joins and the next timer) is the enabled
//! set at the current node, and replaying a recorded sequence of choices
//! from a fresh `SchedNet` reconstructs any visited state — sequence
//! numbers are deterministic, so recorded schedules replay verbatim.
//!
//! The optional [tamper hook](SchedNet::set_tamper) mutates a message at
//! the moment of delivery. The model checker's seeded-mutation test uses
//! it to corrupt a commit order and prove the oracles catch it; it is a
//! test surface, not a protocol feature.

use std::collections::BTreeMap;
use std::sync::Arc;

use guesstimate_core::MachineId;

use crate::actor::{Action, Actor, Ctx};
use crate::channel::Channel;
use crate::metrics::NetMetrics;
use crate::time::SimTime;
use crate::trace::{NoopTracer, TraceEvent, TraceRecord, Tracer};

/// A message leg awaiting a delivery decision.
#[derive(Debug, Clone)]
pub struct PendingMsg<M> {
    /// Stable choice identity (assigned at send time, never reused).
    pub seq: u64,
    /// Sender.
    pub from: MachineId,
    /// Receiver.
    pub to: MachineId,
    /// Channel the message was sent on.
    pub channel: Channel,
    /// The payload.
    pub msg: M,
    /// Causal stamp of the send action this leg belongs to; broadcast
    /// fan-out legs share one stamp (see [`TraceEvent::MsgSent`]).
    pub stamp: u64,
}

/// A pending timer, ordered by `(due, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct TimerKey {
    due: SimTime,
    seq: u64,
}

/// Mutates a message as it is delivered; returns `true` if it changed
/// anything. Arguments: delivery seq, sender, receiver, payload.
pub type TamperHook<M> = Box<dyn FnMut(u64, MachineId, MachineId, &mut M) -> bool + Send>;

/// A mesh whose every delivery, join, and timer firing is an external
/// choice. See the module docs for the model.
pub struct SchedNet<A: Actor> {
    machines: BTreeMap<MachineId, A>,
    /// Messages in flight, keyed by stable seq.
    pending: BTreeMap<u64, PendingMsg<A::Msg>>,
    /// Staged joiners, keyed by stable seq.
    joins: BTreeMap<u64, (MachineId, Option<A>)>,
    /// Armed timers: `(due, seq) -> (machine, tag)`.
    timers: BTreeMap<TimerKey, (MachineId, u64)>,
    now: SimTime,
    seq: u64,
    stamps: u64,
    tamper: Option<TamperHook<A::Msg>>,
    tampered: u64,
    metrics: NetMetrics,
    tracer: Arc<dyn Tracer>,
}

impl<A: Actor> std::fmt::Debug for SchedNet<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedNet")
            .field("machines", &self.machines.keys().collect::<Vec<_>>())
            .field("pending", &self.pending.len())
            .field("joins", &self.joins.len())
            .field("timers", &self.timers.len())
            .field("now", &self.now)
            .finish()
    }
}

impl<A: Actor> Default for SchedNet<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Actor> SchedNet<A> {
    /// Creates an empty controlled mesh at time zero.
    pub fn new() -> Self {
        SchedNet {
            machines: BTreeMap::new(),
            pending: BTreeMap::new(),
            joins: BTreeMap::new(),
            timers: BTreeMap::new(),
            now: SimTime::ZERO,
            seq: 0,
            stamps: 0,
            tamper: None,
            tampered: 0,
            metrics: NetMetrics::default(),
            tracer: Arc::new(NoopTracer),
        }
    }

    /// Installs a tracer for driver-level causal-stamp events
    /// ([`TraceEvent::MsgSent`] / [`TraceEvent::MsgReceived`]). Used by the
    /// model checker's postmortem replay to reconstruct the causal
    /// timeline of a shrunken violating schedule.
    pub fn set_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        self.tracer = tracer;
    }

    fn trace(&self, source: MachineId, event: TraceEvent) {
        self.tracer.record(TraceRecord {
            at: self.now,
            source,
            event,
        });
    }

    /// The current virtual time (advanced only by timer firings).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Transport counters so far: every send leg counts as `sent`, every
    /// [`SchedNet::deliver`] as `delivered`, every
    /// [`SchedNet::drop_msg`] as `dropped`.
    pub fn metrics(&self) -> NetMetrics {
        self.metrics
    }

    /// Ids of current members, in order.
    pub fn members(&self) -> Vec<MachineId> {
        self.machines.keys().copied().collect()
    }

    /// Immutable access to an actor.
    pub fn actor(&self, id: MachineId) -> Option<&A> {
        self.machines.get(&id)
    }

    /// Mutable access to an actor, **without** a context (assertions and
    /// stat extraction only; use [`SchedNet::call`] when the mutation may
    /// send messages or set timers).
    pub fn actor_mut(&mut self, id: MachineId) -> Option<&mut A> {
        self.machines.get_mut(&id)
    }

    /// Installs the delivery-time tamper hook (see the module docs).
    pub fn set_tamper(&mut self, hook: TamperHook<A::Msg>) {
        self.tamper = Some(hook);
    }

    /// How many deliveries the tamper hook reported mutating.
    pub fn tamper_count(&self) -> u64 {
        self.tampered
    }

    /// Adds a machine *now*; its [`Actor::on_start`] runs immediately.
    pub fn add_machine(&mut self, id: MachineId, actor: A) {
        self.machines.insert(id, actor);
        self.invoke(id, |a, ctx| a.on_start(ctx));
    }

    /// Stages `actor` as a joiner and returns the choice seq that
    /// [`SchedNet::admit`] takes.
    pub fn stage_join(&mut self, id: MachineId, actor: A) -> u64 {
        let seq = self.next_seq();
        self.joins.insert(seq, (id, Some(actor)));
        seq
    }

    /// Invokes `f` on an actor *now*, with a context. Returns `false` if
    /// the machine is not a member.
    pub fn call(&mut self, id: MachineId, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>)) -> bool {
        if !self.machines.contains_key(&id) {
            return false;
        }
        self.invoke(id, f);
        true
    }

    /// The sequence numbers of all messages awaiting a decision, ascending.
    pub fn pending_msgs(&self) -> Vec<u64> {
        self.pending.keys().copied().collect()
    }

    /// Looks at one in-flight message.
    pub fn pending_msg(&self, seq: u64) -> Option<&PendingMsg<A::Msg>> {
        self.pending.get(&seq)
    }

    /// The choice seqs of all staged joiners, ascending.
    pub fn pending_joins(&self) -> Vec<u64> {
        self.joins.keys().copied().collect()
    }

    /// The staged joiner behind a choice seq.
    pub fn pending_join(&self, seq: u64) -> Option<MachineId> {
        self.joins.get(&seq).map(|(id, _)| *id)
    }

    /// True if any timer is armed.
    pub fn has_timers(&self) -> bool {
        !self.timers.is_empty()
    }

    /// The due time of the earliest armed timer.
    pub fn next_timer_due(&self) -> Option<SimTime> {
        self.timers.keys().next().map(|k| k.due)
    }

    /// Delivers message `seq` now. Returns `false` (and discards nothing)
    /// if `seq` is not pending; a delivery to a machine that has left is
    /// consumed silently, like a real network handing bytes to a dead
    /// host.
    pub fn deliver(&mut self, seq: u64) -> bool {
        let Some(mut p) = self.pending.remove(&seq) else {
            return false;
        };
        if let Some(hook) = self.tamper.as_mut() {
            if hook(p.seq, p.from, p.to, &mut p.msg) {
                self.tampered += 1;
            }
        }
        if self.machines.contains_key(&p.to) {
            self.metrics.delivered += 1;
            self.metrics.bytes_delivered += A::msg_size(&p.msg);
            self.trace(
                p.to,
                TraceEvent::MsgReceived {
                    origin: p.from,
                    stamp: p.stamp,
                    kind: A::msg_kind(&p.msg),
                },
            );
            self.invoke(p.to, |a, ctx| a.on_message(p.from, p.channel, p.msg, ctx));
        } else {
            self.metrics.dropped += 1;
        }
        true
    }

    /// Drops message `seq` (the "network loses it" choice). Returns
    /// `false` if `seq` is not pending.
    pub fn drop_msg(&mut self, seq: u64) -> bool {
        let dropped = self.pending.remove(&seq).is_some();
        if dropped {
            self.metrics.dropped += 1;
        }
        dropped
    }

    /// Admits the staged joiner behind choice `seq`: the machine becomes a
    /// member and its `on_start` runs. Returns `false` if `seq` is not a
    /// staged join.
    pub fn admit(&mut self, seq: u64) -> bool {
        let Some((id, actor)) = self.joins.remove(&seq) else {
            return false;
        };
        let Some(actor) = actor else { return false };
        self.machines.insert(id, actor);
        self.invoke(id, |a, ctx| a.on_start(ctx));
        true
    }

    /// Fires the earliest armed timer (by `(due, seq)`), advancing virtual
    /// time to its due instant. Returns `false` if no timer is armed.
    ///
    /// Timers on departed machines are discarded (and the next one tried),
    /// mirroring [`SimNet`](crate::SimNet).
    pub fn fire_next_timer(&mut self) -> bool {
        while let Some((&key, _)) = self.timers.iter().next() {
            let (machine, tag) = self.timers.remove(&key).expect("key just seen");
            debug_assert!(key.due >= self.now, "time went backwards");
            self.now = self.now.max(key.due);
            if self.machines.contains_key(&machine) {
                self.metrics.timers_fired += 1;
                self.invoke(machine, |a, ctx| a.on_timer(tag, ctx));
                return true;
            }
        }
        false
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Allocates one causal stamp for a send action and records its
    /// [`TraceEvent::MsgSent`]. Stamp allocation is part of the
    /// deterministic driver state, so replaying a recorded schedule
    /// reproduces identical stamps.
    fn next_stamp(&mut self, src: MachineId, msg: &A::Msg) -> u64 {
        let stamp = self.stamps;
        self.stamps += 1;
        self.trace(
            src,
            TraceEvent::MsgSent {
                stamp,
                kind: A::msg_kind(msg),
                bytes: A::msg_size(msg),
            },
        );
        stamp
    }

    fn invoke(&mut self, id: MachineId, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>)) {
        let mut actions = Vec::new();
        {
            let actor = self.machines.get_mut(&id).expect("caller checked");
            let mut ctx = Ctx::new(self.now, id, &mut actions);
            f(actor, &mut ctx);
        }
        for action in actions {
            match action {
                Action::Broadcast(channel, msg) => {
                    let stamp = self.next_stamp(id, &msg);
                    let targets: Vec<MachineId> =
                        self.machines.keys().copied().filter(|&m| m != id).collect();
                    for to in targets {
                        let seq = self.next_seq();
                        self.metrics.sent += 1;
                        self.metrics.bytes_sent += A::msg_size(&msg);
                        self.pending.insert(
                            seq,
                            PendingMsg {
                                seq,
                                from: id,
                                to,
                                channel,
                                msg: msg.clone(),
                                stamp,
                            },
                        );
                    }
                }
                Action::Send(to, channel, msg) => {
                    let stamp = self.next_stamp(id, &msg);
                    let seq = self.next_seq();
                    self.metrics.sent += 1;
                    self.metrics.bytes_sent += A::msg_size(&msg);
                    self.pending.insert(
                        seq,
                        PendingMsg {
                            seq,
                            from: id,
                            to,
                            channel,
                            msg,
                            stamp,
                        },
                    );
                }
                Action::SetTimer { delay, tag } => {
                    let seq = self.next_seq();
                    self.timers.insert(
                        TimerKey {
                            due: self.now + delay,
                            seq,
                        },
                        (id, tag),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test actor: logs received payloads, replies to "ping", arms a timer
    /// on start.
    struct Probe {
        seen: Vec<&'static str>,
        timers: Vec<u64>,
    }
    impl Probe {
        fn new() -> Self {
            Probe {
                seen: Vec::new(),
                timers: Vec::new(),
            }
        }
    }
    impl Actor for Probe {
        type Msg = &'static str;
        fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
            ctx.set_timer(SimTime::from_millis(10), 1);
        }
        fn on_message(
            &mut self,
            from: MachineId,
            channel: Channel,
            msg: &'static str,
            ctx: &mut Ctx<'_, &'static str>,
        ) {
            self.seen.push(msg);
            if msg == "ping" {
                ctx.send(from, channel, "pong");
            }
        }
        fn on_timer(&mut self, tag: u64, _: &mut Ctx<'_, &'static str>) {
            self.timers.push(tag);
        }
    }

    fn m(i: u32) -> MachineId {
        MachineId::new(i)
    }

    #[test]
    fn deliveries_wait_for_the_caller() {
        let mut net: SchedNet<Probe> = SchedNet::new();
        net.add_machine(m(0), Probe::new());
        net.add_machine(m(1), Probe::new());
        net.call(m(0), |_, ctx| ctx.send(m(1), Channel::Operations, "ping"));
        let pend = net.pending_msgs();
        assert_eq!(pend.len(), 1);
        assert!(net.actor(m(1)).unwrap().seen.is_empty());
        assert!(net.deliver(pend[0]));
        assert_eq!(net.actor(m(1)).unwrap().seen, vec!["ping"]);
        // The reply is now itself a pending choice.
        let reply = net.pending_msgs();
        assert_eq!(reply.len(), 1);
        let info = net.pending_msg(reply[0]).unwrap();
        assert_eq!((info.from, info.to), (m(1), m(0)));
        assert!(net.deliver(reply[0]));
        assert_eq!(net.actor(m(0)).unwrap().seen, vec!["pong"]);
        assert!(net.pending_msgs().is_empty());
    }

    #[test]
    fn any_delivery_order_is_expressible() {
        let mut net: SchedNet<Probe> = SchedNet::new();
        for i in 0..3 {
            net.add_machine(m(i), Probe::new());
        }
        net.call(m(0), |_, ctx| ctx.broadcast(Channel::Operations, "a"));
        net.call(m(0), |_, ctx| ctx.broadcast(Channel::Operations, "b"));
        // Four legs pending: a->1, a->2, b->1, b->2. Deliver b before a on
        // machine 1, a before b on machine 2.
        let pend = net.pending_msgs();
        assert_eq!(pend.len(), 4);
        let leg = |net: &SchedNet<Probe>, msg: &str, to: MachineId| {
            net.pending_msgs()
                .into_iter()
                .find(|&s| {
                    let p = net.pending_msg(s).unwrap();
                    p.msg == msg && p.to == to
                })
                .unwrap()
        };
        let b1 = leg(&net, "b", m(1));
        assert!(net.deliver(b1));
        let a1 = leg(&net, "a", m(1));
        assert!(net.deliver(a1));
        let a2 = leg(&net, "a", m(2));
        assert!(net.deliver(a2));
        let b2 = leg(&net, "b", m(2));
        assert!(net.deliver(b2));
        assert_eq!(net.actor(m(1)).unwrap().seen, vec!["b", "a"]);
        assert_eq!(net.actor(m(2)).unwrap().seen, vec!["a", "b"]);
    }

    #[test]
    fn drops_joins_and_duplicate_seqs() {
        let mut net: SchedNet<Probe> = SchedNet::new();
        net.add_machine(m(0), Probe::new());
        net.add_machine(m(1), Probe::new());
        net.call(m(0), |_, ctx| ctx.send(m(1), Channel::Operations, "x"));
        let s = net.pending_msgs()[0];
        assert!(net.drop_msg(s));
        assert!(!net.drop_msg(s), "a choice seq is consumed exactly once");
        assert!(!net.deliver(s));
        assert!(net.actor(m(1)).unwrap().seen.is_empty());

        let j = net.stage_join(m(2), Probe::new());
        assert_eq!(net.pending_join(j), Some(m(2)));
        assert_eq!(net.members().len(), 2);
        assert!(net.admit(j));
        assert!(!net.admit(j));
        assert_eq!(net.members().len(), 3);
    }

    #[test]
    fn timers_fire_in_due_order_and_advance_time() {
        let mut net: SchedNet<Probe> = SchedNet::new();
        net.add_machine(m(0), Probe::new()); // arms t=10ms on start
        net.call(m(0), |_, ctx| {
            ctx.set_timer(SimTime::from_millis(5), 2);
            ctx.set_timer(SimTime::from_millis(20), 3);
        });
        assert!(net.has_timers());
        assert_eq!(net.next_timer_due(), Some(SimTime::from_millis(5)));
        assert!(net.fire_next_timer());
        assert_eq!(net.now(), SimTime::from_millis(5));
        assert!(net.fire_next_timer());
        assert_eq!(net.now(), SimTime::from_millis(10));
        assert!(net.fire_next_timer());
        assert_eq!(net.now(), SimTime::from_millis(20));
        assert_eq!(net.actor(m(0)).unwrap().timers, vec![2, 1, 3]);
        assert!(!net.fire_next_timer());
    }

    #[test]
    fn metrics_track_choices() {
        let sz = std::mem::size_of::<&'static str>() as u64;
        let mut net: SchedNet<Probe> = SchedNet::new();
        net.add_machine(m(0), Probe::new()); // arms one timer on start
        net.add_machine(m(1), Probe::new());
        net.call(m(0), |_, ctx| ctx.send(m(1), Channel::Operations, "a"));
        net.call(m(0), |_, ctx| ctx.send(m(1), Channel::Operations, "b"));
        let pend = net.pending_msgs();
        assert_eq!(net.metrics().sent, 2);
        assert_eq!(net.metrics().bytes_sent, 2 * sz);
        net.deliver(pend[0]);
        net.drop_msg(pend[1]);
        net.fire_next_timer();
        let got = net.metrics();
        assert_eq!(got.delivered, 1);
        assert_eq!(got.bytes_delivered, sz);
        assert_eq!(got.dropped, 1);
        assert_eq!(got.timers_fired, 1);
    }

    #[test]
    fn tamper_hook_mutates_at_delivery() {
        let mut net: SchedNet<Probe> = SchedNet::new();
        net.add_machine(m(0), Probe::new());
        net.add_machine(m(1), Probe::new());
        net.set_tamper(Box::new(|_, _, _, msg: &mut &'static str| {
            if *msg == "x" {
                *msg = "mutated";
                true
            } else {
                false
            }
        }));
        net.call(m(0), |_, ctx| ctx.send(m(1), Channel::Operations, "x"));
        net.call(m(0), |_, ctx| ctx.send(m(1), Channel::Operations, "y"));
        for s in net.pending_msgs() {
            net.deliver(s);
        }
        assert_eq!(net.actor(m(1)).unwrap().seen, vec!["mutated", "y"]);
        assert_eq!(net.tamper_count(), 1);
    }
}
