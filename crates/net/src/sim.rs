//! Deterministic virtual-time driver (discrete-event simulation).
//!
//! [`SimNet`] owns the actors, an event queue keyed by virtual time, a
//! seeded RNG (latency samples, fault coin-flips) and the fault plan. Every
//! run with the same seed, same actors and same scheduled calls produces the
//! same history — which is what lets the benchmark harness regenerate the
//! paper's figures repeatably.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use guesstimate_core::MachineId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::{Action, Actor, Ctx};
use crate::channel::Channel;
use crate::fault::{FaultEvent, FaultPlan};
use crate::latency::LatencyModel;
use crate::metrics::NetMetrics;
use crate::time::SimTime;
use crate::trace::{NoopTracer, TraceEvent, TraceRecord, Tracer};

/// Static configuration of a simulated mesh.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Latency model for the Operations channel (and default for Signals).
    pub latency: LatencyModel,
    /// Optional distinct latency model for the Signals channel.
    pub signals_latency: Option<LatencyModel>,
    /// RNG seed: same seed ⇒ same run.
    pub seed: u64,
    /// Fault schedule.
    pub faults: FaultPlan,
}

impl NetConfig {
    /// A fault-free LAN-like mesh (~30 ms one-way latency), as in §7.
    pub fn lan(seed: u64) -> Self {
        NetConfig {
            latency: LatencyModel::lan_ms(30),
            signals_latency: None,
            seed,
            faults: FaultPlan::new(),
        }
    }

    /// Replaces the latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets a distinct Signals-channel latency model.
    pub fn with_signals_latency(mut self, latency: LatencyModel) -> Self {
        self.signals_latency = Some(latency);
        self
    }

    /// Replaces the fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    fn model_for(&self, channel: Channel) -> &LatencyModel {
        match channel {
            Channel::Signals => self.signals_latency.as_ref().unwrap_or(&self.latency),
            Channel::Operations => &self.latency,
        }
    }
}

/// A deferred invocation on one actor (used by `schedule_call`).
type DeferredCall<A> = Box<dyn FnOnce(&mut A, &mut Ctx<'_, <A as Actor>::Msg>) + Send>;

enum EventKind<A: Actor> {
    Deliver {
        from: MachineId,
        to: MachineId,
        channel: Channel,
        msg: A::Msg,
        /// Causal stamp of the send action this leg belongs to (see
        /// [`TraceEvent::MsgSent`]); broadcast legs share one stamp.
        stamp: u64,
    },
    Timer {
        machine: MachineId,
        tag: u64,
    },
    Call {
        machine: MachineId,
        f: DeferredCall<A>,
    },
    Join {
        machine: MachineId,
        actor: Option<A>,
    },
    Crash {
        machine: MachineId,
    },
}

/// A queue entry, ordered by `(at, seq)`.
///
/// `seq` is a monotonically increasing scheduling counter, so events that
/// share a virtual timestamp fire in **exactly the order they were
/// scheduled** — a total, deterministic tie-break. This matters: protocol
/// stages routinely schedule several same-instant deliveries (a broadcast
/// under constant latency lands everywhere at once), and without the
/// counter the heap's ordering among equal keys would be arbitrary.
/// Exploring *different* same-timestamp orders deliberately is the job of
/// the model checker's `SchedNet`, not of `SimNet`.
struct Scheduled<A: Actor> {
    at: SimTime,
    seq: u64,
    kind: EventKind<A>,
}

impl<A: Actor> PartialEq for Scheduled<A> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<A: Actor> Eq for Scheduled<A> {}
impl<A: Actor> PartialOrd for Scheduled<A> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<A: Actor> Ord for Scheduled<A> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic, virtual-time mesh of actors.
///
/// See the [crate-level example](crate) for a minimal program.
pub struct SimNet<A: Actor> {
    cfg: NetConfig,
    machines: BTreeMap<MachineId, A>,
    queue: BinaryHeap<Scheduled<A>>,
    now: SimTime,
    seq: u64,
    stamps: u64,
    rng: StdRng,
    metrics: NetMetrics,
    tracer: Arc<dyn Tracer>,
}

impl<A: Actor> std::fmt::Debug for SimNet<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("now", &self.now)
            .field("machines", &self.machines.keys().collect::<Vec<_>>())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl<A: Actor> SimNet<A> {
    /// Creates an empty mesh; scheduled crash faults are armed immediately.
    pub fn new(cfg: NetConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        let mut net = SimNet {
            rng,
            machines: BTreeMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            stamps: 0,
            metrics: NetMetrics::default(),
            tracer: Arc::new(NoopTracer),
            cfg,
        };
        for ev in net.cfg.faults.events().to_vec() {
            match ev {
                FaultEvent::Crash { machine, at } => {
                    net.push(at, EventKind::Crash { machine });
                }
            }
        }
        net
    }

    fn push(&mut self, at: SimTime, kind: EventKind<A>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, kind });
    }

    /// Installs a tracer for driver-level causal-stamp events
    /// ([`TraceEvent::MsgSent`] / [`TraceEvent::MsgReceived`]).
    ///
    /// Distinct from any tracer the *actors* hold for protocol events; a
    /// cluster typically shares one sink between both so the streams merge.
    pub fn set_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        self.tracer = tracer;
    }

    fn trace(&self, source: MachineId, event: TraceEvent) {
        self.tracer.record(TraceRecord {
            at: self.now,
            source,
            event,
        });
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Transport counters so far.
    pub fn metrics(&self) -> NetMetrics {
        self.metrics
    }

    /// Ids of current (non-crashed) members, in order.
    pub fn members(&self) -> Vec<MachineId> {
        self.machines.keys().copied().collect()
    }

    /// Immutable access to an actor.
    pub fn actor(&self, id: MachineId) -> Option<&A> {
        self.machines.get(&id)
    }

    /// Mutable access to an actor, **without** a context.
    ///
    /// Use for assertions and stat extraction; use [`SimNet::call`] when the
    /// mutation needs to send messages or set timers.
    pub fn actor_mut(&mut self, id: MachineId) -> Option<&mut A> {
        self.machines.get_mut(&id)
    }

    /// Adds a machine *now*; its [`Actor::on_start`] runs immediately.
    pub fn add_machine(&mut self, id: MachineId, actor: A) {
        self.machines.insert(id, actor);
        self.invoke(id, |a, ctx| a.on_start(ctx));
    }

    /// Schedules a machine to join at virtual time `at`.
    pub fn schedule_join(&mut self, at: SimTime, id: MachineId, actor: A) {
        self.push(
            at,
            EventKind::Join {
                machine: id,
                actor: Some(actor),
            },
        );
    }

    /// Removes a machine immediately (graceful leave), returning its actor.
    pub fn remove_machine(&mut self, id: MachineId) -> Option<A> {
        self.machines.remove(&id)
    }

    /// Invokes `f` on an actor *now*, with a context (messages/timers work).
    ///
    /// Returns `false` if the machine is not a member.
    pub fn call(&mut self, id: MachineId, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>)) -> bool {
        if !self.machines.contains_key(&id) {
            return false;
        }
        self.invoke(id, f);
        true
    }

    /// Schedules `f` to run on machine `id` at virtual time `at`.
    ///
    /// This is how workloads inject user activity ("at t=3.2s, user 2
    /// updates cell (4,5)"). Calls on machines that have crashed or left by
    /// `at` are silently skipped.
    pub fn schedule_call(
        &mut self,
        at: SimTime,
        id: MachineId,
        f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>) + Send + 'static,
    ) {
        self.push(
            at,
            EventKind::Call {
                machine: id,
                f: Box::new(f),
            },
        );
    }

    /// Processes the next event, if any, returning its time.
    ///
    /// Events are consumed in `(at, seq)` order: earliest virtual time
    /// first, and among events sharing a timestamp, **scheduling order**
    /// (see `Scheduled`). Two runs with the same seed and the same
    /// sequence of external calls therefore process identical event
    /// sequences.
    pub fn step(&mut self) -> Option<SimTime> {
        let ev = self.queue.pop()?;
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        match ev.kind {
            EventKind::Deliver {
                from,
                to,
                channel,
                msg,
                stamp,
            } => {
                let stalled = self.cfg.faults.is_stalled(to, self.now)
                    || self.cfg.faults.is_cut(from, to, self.now);
                if stalled || !self.machines.contains_key(&to) {
                    self.metrics.dropped += 1;
                } else {
                    self.metrics.delivered += 1;
                    self.metrics.bytes_delivered += A::msg_size(&msg);
                    self.trace(
                        to,
                        TraceEvent::MsgReceived {
                            origin: from,
                            stamp,
                            kind: A::msg_kind(&msg),
                        },
                    );
                    self.invoke(to, |a, ctx| a.on_message(from, channel, msg, ctx));
                }
            }
            EventKind::Timer { machine, tag } => {
                if self.machines.contains_key(&machine) {
                    self.metrics.timers_fired += 1;
                    self.invoke(machine, |a, ctx| a.on_timer(tag, ctx));
                }
            }
            EventKind::Call { machine, f } => {
                if self.machines.contains_key(&machine) {
                    self.invoke(machine, f);
                }
            }
            EventKind::Join { machine, mut actor } => {
                if let Some(actor) = actor.take() {
                    self.machines.insert(machine, actor);
                    self.invoke(machine, |a, ctx| a.on_start(ctx));
                }
            }
            EventKind::Crash { machine } => {
                self.machines.remove(&machine);
            }
        }
        Some(self.now)
    }

    /// Runs every event scheduled at or before `t`; afterwards `now() == t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(next) = self.queue.peek() {
            if next.at > t {
                break;
            }
            self.step();
        }
        self.now = self.now.max(t);
    }

    /// Runs until the event queue drains or virtual time exceeds `limit`.
    ///
    /// Returns `true` if the queue drained (quiescence) within the limit.
    /// Note that periodic protocols (a master that re-arms a sync timer)
    /// never quiesce; use [`SimNet::run_until`] for those.
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> bool {
        while let Some(next) = self.queue.peek() {
            if next.at > limit {
                return false;
            }
            self.step();
        }
        true
    }

    fn invoke(&mut self, id: MachineId, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>)) {
        let mut actions = Vec::new();
        {
            let Some(actor) = self.machines.get_mut(&id) else {
                return;
            };
            let mut ctx = Ctx::new(self.now, id, &mut actions);
            f(actor, &mut ctx);
        }
        self.process_actions(id, actions);
    }

    fn process_actions(&mut self, src: MachineId, actions: Vec<Action<A::Msg>>) {
        for action in actions {
            match action {
                Action::Broadcast(channel, msg) => {
                    let stamp = self.next_stamp(src, &msg);
                    let targets: Vec<MachineId> = self
                        .machines
                        .keys()
                        .copied()
                        .filter(|&m| m != src)
                        .collect();
                    for to in targets {
                        self.schedule_delivery(src, to, channel, msg.clone(), stamp);
                    }
                }
                Action::Send(to, channel, msg) => {
                    let stamp = self.next_stamp(src, &msg);
                    self.schedule_delivery(src, to, channel, msg, stamp);
                }
                Action::SetTimer { delay, tag } => {
                    let at = self.now + delay;
                    self.push(at, EventKind::Timer { machine: src, tag });
                }
            }
        }
    }

    /// Allocates one causal stamp for a send action and records its
    /// [`TraceEvent::MsgSent`] (broadcast fan-out legs share the stamp).
    fn next_stamp(&mut self, src: MachineId, msg: &A::Msg) -> u64 {
        let stamp = self.stamps;
        self.stamps += 1;
        self.trace(
            src,
            TraceEvent::MsgSent {
                stamp,
                kind: A::msg_kind(msg),
                bytes: A::msg_size(msg),
            },
        );
        stamp
    }

    fn schedule_delivery(
        &mut self,
        from: MachineId,
        to: MachineId,
        channel: Channel,
        msg: A::Msg,
        stamp: u64,
    ) where
        A::Msg: Clone,
    {
        self.metrics.sent += 1;
        self.metrics.bytes_sent += A::msg_size(&msg);
        if self.cfg.faults.is_stalled(from, self.now) || self.cfg.faults.is_cut(from, to, self.now)
        {
            self.metrics.dropped += 1;
            return;
        }
        let drop_p = self.cfg.faults.drop_prob();
        if drop_p > 0.0 && self.rng.gen_bool(drop_p) {
            self.metrics.dropped += 1;
            return;
        }
        let dup_p = self.cfg.faults.dup_prob();
        let duplicate = dup_p > 0.0 && self.rng.gen_bool(dup_p);
        let lat = self.cfg.model_for(channel).sample(&mut self.rng);
        let at = self.now + lat;
        self.push(
            at,
            EventKind::Deliver {
                from,
                to,
                channel,
                msg: msg.clone(),
                stamp,
            },
        );
        if duplicate {
            self.metrics.duplicated += 1;
            let lat2 = self.cfg.model_for(channel).sample(&mut self.rng);
            self.push(
                self.now + lat2,
                EventKind::Deliver {
                    from,
                    to,
                    channel,
                    msg,
                    stamp,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StallWindow;

    /// Echo actor: replies "pong" to every "ping"; counts pongs received.
    struct Echo {
        pongs: usize,
        timer_fired_at: Option<SimTime>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                pongs: 0,
                timer_fired_at: None,
            }
        }
    }

    impl Actor for Echo {
        type Msg = &'static str;
        fn on_message(
            &mut self,
            from: MachineId,
            channel: Channel,
            msg: &'static str,
            ctx: &mut Ctx<'_, &'static str>,
        ) {
            match msg {
                "ping" => ctx.send(from, channel, "pong"),
                "pong" => self.pongs += 1,
                _ => {}
            }
        }
        fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_, &'static str>) {
            self.timer_fired_at = Some(ctx.now());
        }
    }

    fn mesh(n: u32, cfg: NetConfig) -> SimNet<Echo> {
        let mut net = SimNet::new(cfg);
        for i in 0..n {
            net.add_machine(MachineId::new(i), Echo::new());
        }
        net
    }

    #[test]
    fn ping_pong_roundtrip_with_constant_latency() {
        let cfg = NetConfig::lan(1).with_latency(LatencyModel::constant_ms(10));
        let mut net = mesh(2, cfg);
        net.call(MachineId::new(0), |_, ctx| {
            ctx.send(MachineId::new(1), Channel::Operations, "ping")
        });
        net.run_until(SimTime::from_millis(9));
        assert_eq!(net.actor(MachineId::new(0)).unwrap().pongs, 0);
        net.run_until(SimTime::from_millis(20));
        assert_eq!(net.actor(MachineId::new(0)).unwrap().pongs, 1);
        assert_eq!(net.metrics().delivered, 2);
    }

    #[test]
    fn broadcast_excludes_sender() {
        let cfg = NetConfig::lan(1).with_latency(LatencyModel::constant_ms(1));
        let mut net = mesh(4, cfg);
        net.call(MachineId::new(0), |_, ctx| {
            ctx.broadcast(Channel::Operations, "ping")
        });
        net.run_until(SimTime::from_millis(10));
        // 3 pings out, 3 pongs back to machine 0 only.
        assert_eq!(net.actor(MachineId::new(0)).unwrap().pongs, 3);
        for i in 1..4 {
            assert_eq!(net.actor(MachineId::new(i)).unwrap().pongs, 0);
        }
    }

    #[test]
    fn timers_fire_at_the_right_virtual_time() {
        let mut net = mesh(1, NetConfig::lan(1));
        net.call(MachineId::new(0), |_, ctx| {
            ctx.set_timer(SimTime::from_millis(250), 7)
        });
        net.run_until(SimTime::from_secs(1));
        assert_eq!(
            net.actor(MachineId::new(0)).unwrap().timer_fired_at,
            Some(SimTime::from_millis(250))
        );
        assert_eq!(net.metrics().timers_fired, 1);
    }

    #[test]
    fn identical_seeds_produce_identical_histories() {
        let run = |seed: u64| -> (u64, u64, usize) {
            let cfg = NetConfig::lan(seed);
            let mut net = mesh(5, cfg);
            for i in 0..5u32 {
                net.schedule_call(
                    SimTime::from_millis(i as u64 * 13),
                    MachineId::new(i),
                    |_, ctx| ctx.broadcast(Channel::Operations, "ping"),
                );
            }
            net.run_until(SimTime::from_secs(2));
            let m = net.metrics();
            (
                m.sent,
                m.delivered,
                net.actor(MachineId::new(3)).unwrap().pongs,
            )
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn drop_faults_lose_messages() {
        let cfg = NetConfig::lan(5)
            .with_latency(LatencyModel::constant_ms(1))
            .with_faults(FaultPlan::new().with_drop_prob(1.0));
        let mut net = mesh(2, cfg);
        net.call(MachineId::new(0), |_, ctx| {
            ctx.send(MachineId::new(1), Channel::Operations, "ping")
        });
        net.run_until(SimTime::from_millis(100));
        assert_eq!(net.metrics().delivered, 0);
        assert_eq!(net.metrics().dropped, 1);
        assert_eq!(net.actor(MachineId::new(0)).unwrap().pongs, 0);
    }

    #[test]
    fn stalled_machine_neither_sends_nor_receives() {
        let stall = StallWindow::new(MachineId::new(1), SimTime::ZERO, SimTime::from_millis(50));
        let cfg = NetConfig::lan(5)
            .with_latency(LatencyModel::constant_ms(1))
            .with_faults(FaultPlan::new().with_stall(stall));
        let mut net = mesh(2, cfg);
        // During the stall: ping to m1 is dropped at delivery.
        net.call(MachineId::new(0), |_, ctx| {
            ctx.send(MachineId::new(1), Channel::Operations, "ping")
        });
        // m1 tries to send during its stall: dropped at send.
        net.call(MachineId::new(1), |_, ctx| {
            ctx.send(MachineId::new(0), Channel::Operations, "ping")
        });
        net.run_until(SimTime::from_millis(40));
        assert_eq!(net.metrics().delivered, 0);
        assert_eq!(net.metrics().dropped, 2);
        // After the stall ends, traffic flows again.
        net.run_until(SimTime::from_millis(60));
        net.call(MachineId::new(0), |_, ctx| {
            ctx.send(MachineId::new(1), Channel::Operations, "ping")
        });
        net.run_until(SimTime::from_millis(100));
        assert_eq!(net.actor(MachineId::new(0)).unwrap().pongs, 1);
    }

    #[test]
    fn crash_removes_machine_permanently() {
        let cfg = NetConfig::lan(5)
            .with_latency(LatencyModel::constant_ms(1))
            .with_faults(FaultPlan::new().with_crash(MachineId::new(1), SimTime::from_millis(10)));
        let mut net = mesh(2, cfg);
        net.run_until(SimTime::from_millis(20));
        assert_eq!(net.members(), vec![MachineId::new(0)]);
        net.call(MachineId::new(0), |_, ctx| {
            ctx.send(MachineId::new(1), Channel::Operations, "ping")
        });
        net.run_until(SimTime::from_millis(40));
        assert_eq!(net.metrics().dropped, 1);
    }

    #[test]
    fn join_at_time_runs_on_start() {
        struct Greeter {
            started_at: Option<SimTime>,
        }
        impl Actor for Greeter {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                self.started_at = Some(ctx.now());
            }
            fn on_message(&mut self, _: MachineId, _: Channel, _: (), _: &mut Ctx<'_, ()>) {}
        }
        let mut net: SimNet<Greeter> = SimNet::new(NetConfig::lan(0));
        net.schedule_join(
            SimTime::from_millis(500),
            MachineId::new(0),
            Greeter { started_at: None },
        );
        assert!(net.members().is_empty());
        net.run_until(SimTime::from_secs(1));
        assert_eq!(
            net.actor(MachineId::new(0)).unwrap().started_at,
            Some(SimTime::from_millis(500))
        );
    }

    #[test]
    fn duplication_faults_duplicate() {
        let cfg = NetConfig::lan(5)
            .with_latency(LatencyModel::constant_ms(1))
            .with_faults(FaultPlan::new().with_dup_prob(1.0));
        let mut net = mesh(2, cfg);
        net.call(MachineId::new(1), |_, ctx| {
            ctx.send(MachineId::new(0), Channel::Operations, "pong")
        });
        net.run_until(SimTime::from_millis(100));
        assert_eq!(net.actor(MachineId::new(0)).unwrap().pongs, 2);
        assert_eq!(net.metrics().duplicated, 1);
    }

    #[test]
    fn run_until_quiescent_detects_drain() {
        let cfg = NetConfig::lan(1).with_latency(LatencyModel::constant_ms(1));
        let mut net = mesh(2, cfg);
        net.call(MachineId::new(0), |_, ctx| {
            ctx.send(MachineId::new(1), Channel::Operations, "ping")
        });
        assert!(net.run_until_quiescent(SimTime::from_secs(10)));
        assert_eq!(net.actor(MachineId::new(0)).unwrap().pongs, 1);
    }

    #[test]
    fn scheduled_call_on_departed_machine_is_skipped() {
        let mut net = mesh(2, NetConfig::lan(1));
        net.schedule_call(SimTime::from_millis(10), MachineId::new(1), |_, ctx| {
            ctx.broadcast(Channel::Operations, "ping")
        });
        let removed = net.remove_machine(MachineId::new(1));
        assert!(removed.is_some());
        net.run_until(SimTime::from_millis(100));
        assert_eq!(net.metrics().sent, 0);
    }

    #[test]
    fn byte_accounting_follows_msg_size() {
        // Echo does not override msg_size, so the default (size of the
        // message type) applies uniformly.
        let sz = std::mem::size_of::<&'static str>() as u64;
        let cfg = NetConfig::lan(1).with_latency(LatencyModel::constant_ms(1));
        let mut net = mesh(2, cfg);
        net.call(MachineId::new(0), |_, ctx| {
            ctx.send(MachineId::new(1), Channel::Operations, "ping")
        });
        net.run_until(SimTime::from_millis(10));
        let m = net.metrics();
        assert_eq!(m.sent, 2); // ping + pong
        assert_eq!(m.bytes_sent, m.sent * sz);
        assert_eq!(m.bytes_delivered, m.delivered * sz);
    }

    #[test]
    fn debug_is_nonempty() {
        let net = mesh(1, NetConfig::lan(1));
        assert!(format!("{net:?}").contains("SimNet"));
    }

    /// Sequence-recording actor for the tie-break test.
    struct Log {
        seen: Vec<u64>,
    }
    impl Actor for Log {
        type Msg = u64;
        fn on_message(&mut self, _: MachineId, _: Channel, msg: u64, _: &mut Ctx<'_, u64>) {
            self.seen.push(msg);
        }
    }

    #[test]
    fn same_timestamp_events_fire_in_scheduling_order() {
        // Every event below lands at exactly t=5ms (constant latency, one
        // shared target). The (at, seq) ordering must break the tie by
        // scheduling order — 0, 1, 2, ... — not by heap whim.
        let cfg = NetConfig::lan(1).with_latency(LatencyModel::constant_ms(5));
        let mut net: SimNet<Log> = SimNet::new(cfg);
        let target = MachineId::new(0);
        let sender = MachineId::new(1);
        net.add_machine(target, Log { seen: Vec::new() });
        net.add_machine(sender, Log { seen: Vec::new() });
        for k in 0..8 {
            net.call(sender, |_, ctx| ctx.send(target, Channel::Operations, k));
        }
        net.run_until(SimTime::from_millis(5));
        assert_eq!(net.actor(target).unwrap().seen, (0..8).collect::<Vec<_>>());

        // And the order is a function of scheduling order alone: a second
        // run scheduling the same messages in reverse delivers in reverse.
        let cfg = NetConfig::lan(1).with_latency(LatencyModel::constant_ms(5));
        let mut net: SimNet<Log> = SimNet::new(cfg);
        net.add_machine(target, Log { seen: Vec::new() });
        net.add_machine(sender, Log { seen: Vec::new() });
        for k in (0..8).rev() {
            net.call(sender, |_, ctx| ctx.send(target, Channel::Operations, k));
        }
        net.run_until(SimTime::from_millis(5));
        assert_eq!(
            net.actor(target).unwrap().seen,
            (0..8).rev().collect::<Vec<_>>()
        );
    }
}
