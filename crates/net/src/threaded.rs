//! Real-thread wall-clock driver.
//!
//! [`ThreadedNet`] runs the same [`Actor`] protocol logic as [`crate::SimNet`],
//! but with real threads and real delays: application threads (a UI, a
//! workload generator, a test) interact with their machine through a
//! [`ThreadedHandle`] while a background *delivery service* thread plays the
//! network, applying the configured latency model to every message.
//!
//! Fault injection is a simulation-mode feature; the threaded driver is
//! fault-free by design (it exists to demonstrate liveness and the
//! non-blocking API under true concurrency, not to run measured
//! experiments).

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use guesstimate_core::MachineId;
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::actor::{Action, Actor, Ctx};
use crate::channel::Channel;
use crate::latency::LatencyModel;
use crate::metrics::NetMetrics;
use crate::time::SimTime;
use crate::trace::{NoopTracer, TraceEvent, TraceRecord, Tracer};

enum Submission<M> {
    Deliver {
        at: SimTime,
        from: MachineId,
        to: MachineId,
        channel: Channel,
        msg: M,
        stamp: u64,
    },
    Timer {
        at: SimTime,
        machine: MachineId,
        tag: u64,
    },
    Shutdown,
}

struct Due<M> {
    at: SimTime,
    seq: u64,
    item: DueItem<M>,
}

enum DueItem<M> {
    Deliver {
        from: MachineId,
        to: MachineId,
        channel: Channel,
        msg: M,
        stamp: u64,
    },
    Timer {
        machine: MachineId,
        tag: u64,
    },
}

impl<M> PartialEq for Due<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<M> Eq for Due<M> {}
impl<M> PartialOrd for Due<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Due<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq)) // min-heap
    }
}

struct Shared<A: Actor> {
    machines: RwLock<std::collections::BTreeMap<MachineId, Arc<Mutex<A>>>>,
    tx: Sender<Submission<A::Msg>>,
    start: Instant,
    latency: LatencyModel,
    rng: Mutex<StdRng>,
    metrics: Mutex<NetMetrics>,
    stamps: AtomicU64,
    tracer: RwLock<Arc<dyn Tracer>>,
}

impl<A: Actor> Shared<A> {
    fn now(&self) -> SimTime {
        SimTime::from(self.start.elapsed())
    }

    fn trace(&self, at: SimTime, source: MachineId, event: TraceEvent) {
        self.tracer.read().record(TraceRecord { at, source, event });
    }

    /// Runs `f` on the actor with a live context, then routes its actions.
    fn invoke(&self, id: MachineId, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>)) -> bool {
        let Some(actor) = self.machines.read().get(&id).cloned() else {
            return false;
        };
        let mut actions = Vec::new();
        {
            let mut guard = actor.lock();
            let mut ctx = Ctx::new(self.now(), id, &mut actions);
            f(&mut guard, &mut ctx);
        }
        self.route(id, actions);
        true
    }

    fn route(&self, src: MachineId, actions: Vec<Action<A::Msg>>) {
        let now = self.now();
        for action in actions {
            match action {
                Action::Broadcast(channel, msg) => {
                    let stamp = self.next_stamp(now, src, &msg);
                    let targets: Vec<MachineId> = self
                        .machines
                        .read()
                        .keys()
                        .copied()
                        .filter(|&m| m != src)
                        .collect();
                    for to in targets {
                        self.submit_delivery(now, src, to, channel, msg.clone(), stamp);
                    }
                }
                Action::Send(to, channel, msg) => {
                    let stamp = self.next_stamp(now, src, &msg);
                    self.submit_delivery(now, src, to, channel, msg, stamp);
                }
                Action::SetTimer { delay, tag } => {
                    let _ = self.tx.send(Submission::Timer {
                        at: now + delay,
                        machine: src,
                        tag,
                    });
                }
            }
        }
    }

    /// Allocates one causal stamp for a send action and records its
    /// [`TraceEvent::MsgSent`] (broadcast fan-out legs share the stamp).
    fn next_stamp(&self, now: SimTime, src: MachineId, msg: &A::Msg) -> u64 {
        let stamp = self.stamps.fetch_add(1, AtomicOrdering::Relaxed);
        self.trace(
            now,
            src,
            TraceEvent::MsgSent {
                stamp,
                kind: A::msg_kind(msg),
                bytes: A::msg_size(msg),
            },
        );
        stamp
    }

    fn submit_delivery(
        &self,
        now: SimTime,
        from: MachineId,
        to: MachineId,
        channel: Channel,
        msg: A::Msg,
        stamp: u64,
    ) {
        {
            let mut m = self.metrics.lock();
            m.sent += 1;
            m.bytes_sent += A::msg_size(&msg);
        }
        let lat = self.latency.sample(&mut *self.rng.lock());
        let _ = self.tx.send(Submission::Deliver {
            at: now + lat,
            from,
            to,
            channel,
            msg,
            stamp,
        });
    }
}

/// A handle through which application threads drive one machine.
pub struct ThreadedHandle<A: Actor> {
    id: MachineId,
    shared: Arc<Shared<A>>,
}

impl<A: Actor> Clone for ThreadedHandle<A> {
    fn clone(&self) -> Self {
        ThreadedHandle {
            id: self.id,
            shared: self.shared.clone(),
        }
    }
}

impl<A: Actor> std::fmt::Debug for ThreadedHandle<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedHandle")
            .field("id", &self.id)
            .finish()
    }
}

impl<A: Actor> ThreadedHandle<A> {
    /// The machine this handle drives.
    pub fn id(&self) -> MachineId {
        self.id
    }

    /// Runs `f` with exclusive access to the actor and a live context;
    /// messages and timers the actor emits are routed through the mesh.
    ///
    /// Returns `None` if the machine has left the mesh.
    pub fn with<R>(&self, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>) -> R) -> Option<R> {
        let mut out = None;
        let ok = self.shared.invoke(self.id, |a, ctx| out = Some(f(a, ctx)));
        if ok {
            out
        } else {
            None
        }
    }

    /// Runs `f` with shared read access to the actor (no context).
    pub fn read<R>(&self, f: impl FnOnce(&A) -> R) -> Option<R> {
        let actor = self.shared.machines.read().get(&self.id).cloned()?;
        let guard = actor.lock();
        Some(f(&guard))
    }
}

/// A wall-clock mesh of actors, one delivery-service thread behind it.
///
/// # Examples
///
/// ```
/// use guesstimate_core::MachineId;
/// use guesstimate_net::{Actor, Channel, Ctx, LatencyModel, ThreadedNet};
///
/// struct Count(usize);
/// impl Actor for Count {
///     type Msg = u8;
///     fn on_message(&mut self, _: MachineId, _: Channel, _: u8, _: &mut Ctx<'_, u8>) {
///         self.0 += 1;
///     }
/// }
///
/// let net = ThreadedNet::new(LatencyModel::constant_ms(1), 7);
/// let a = net.add_machine(MachineId::new(0), Count(0));
/// let b = net.add_machine(MachineId::new(1), Count(0));
/// a.with(|_, ctx| ctx.broadcast(Channel::Signals, 9u8));
/// std::thread::sleep(std::time::Duration::from_millis(50));
/// assert_eq!(b.read(|c| c.0), Some(1));
/// ```
pub struct ThreadedNet<A: Actor> {
    shared: Arc<Shared<A>>,
    service: Option<JoinHandle<()>>,
}

impl<A: Actor> std::fmt::Debug for ThreadedNet<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedNet")
            .field("machines", &self.shared.machines.read().len())
            .finish()
    }
}

impl<A: Actor> ThreadedNet<A> {
    /// Starts an empty mesh with the given latency model and RNG seed.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        let (tx, rx) = unbounded();
        let shared = Arc::new(Shared {
            machines: RwLock::new(std::collections::BTreeMap::new()),
            tx,
            start: Instant::now(),
            latency,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            metrics: Mutex::new(NetMetrics::default()),
            stamps: AtomicU64::new(0),
            tracer: RwLock::new(Arc::new(NoopTracer)),
        });
        let service = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("guesstimate-net-delivery".into())
                .spawn(move || delivery_service(shared, rx))
                .expect("spawn delivery service")
        };
        ThreadedNet {
            shared,
            service: Some(service),
        }
    }

    /// Adds a machine; its [`Actor::on_start`] runs before this returns.
    pub fn add_machine(&self, id: MachineId, actor: A) -> ThreadedHandle<A> {
        self.shared
            .machines
            .write()
            .insert(id, Arc::new(Mutex::new(actor)));
        self.shared.invoke(id, |a, ctx| a.on_start(ctx));
        ThreadedHandle {
            id,
            shared: self.shared.clone(),
        }
    }

    /// Removes a machine from the mesh; in-flight messages to it are dropped.
    pub fn remove_machine(&self, id: MachineId) {
        self.shared.machines.write().remove(&id);
    }

    /// Installs a tracer for driver-level causal-stamp events
    /// ([`TraceEvent::MsgSent`] / [`TraceEvent::MsgReceived`]).
    ///
    /// Receive events are recorded from the delivery-service thread; sends
    /// from whichever application thread drove the actor — the sink must
    /// tolerate concurrent `record` calls (all shipped tracers do).
    pub fn set_tracer(&self, tracer: Arc<dyn Tracer>) {
        *self.shared.tracer.write() = tracer;
    }

    /// Wall-clock time since mesh start.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Transport counters so far.
    pub fn metrics(&self) -> NetMetrics {
        *self.shared.metrics.lock()
    }

    /// A handle to an existing machine.
    pub fn handle(&self, id: MachineId) -> Option<ThreadedHandle<A>> {
        if self.shared.machines.read().contains_key(&id) {
            Some(ThreadedHandle {
                id,
                shared: self.shared.clone(),
            })
        } else {
            None
        }
    }
}

impl<A: Actor> Drop for ThreadedNet<A> {
    fn drop(&mut self) {
        let _ = self.shared.tx.send(Submission::Shutdown);
        if let Some(h) = self.service.take() {
            let _ = h.join();
        }
    }
}

fn delivery_service<A: Actor>(shared: Arc<Shared<A>>, rx: Receiver<Submission<A::Msg>>) {
    let mut heap: BinaryHeap<Due<A::Msg>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    loop {
        // Dispatch everything due.
        let now = shared.now();
        while heap.peek().is_some_and(|d| d.at <= now) {
            let due = heap.pop().expect("peeked");
            match due.item {
                DueItem::Deliver {
                    from,
                    to,
                    channel,
                    msg,
                    stamp,
                } => {
                    let size = A::msg_size(&msg);
                    let kind = A::msg_kind(&msg);
                    // Record the receive *before* on_message so any reply's
                    // MsgSent timestamp is never earlier than this receive.
                    // (If the machine leaves in the tiny window before
                    // invoke, the extra receive is still HB-consistent:
                    // its matching send exists.)
                    if shared.machines.read().contains_key(&to) {
                        shared.trace(
                            shared.now(),
                            to,
                            TraceEvent::MsgReceived {
                                origin: from,
                                stamp,
                                kind,
                            },
                        );
                    }
                    let delivered =
                        shared.invoke(to, |a, ctx| a.on_message(from, channel, msg, ctx));
                    let mut m = shared.metrics.lock();
                    if delivered {
                        m.delivered += 1;
                        m.bytes_delivered += size;
                    } else {
                        m.dropped += 1;
                    }
                }
                DueItem::Timer { machine, tag } => {
                    if shared.invoke(machine, |a, ctx| a.on_timer(tag, ctx)) {
                        shared.metrics.lock().timers_fired += 1;
                    }
                }
            }
        }
        // Sleep until the next due time or the next submission.
        let timeout = heap
            .peek()
            .map(|d| Duration::from(d.at.saturating_since(shared.now())))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Submission::Shutdown) => return,
            Ok(Submission::Deliver {
                at,
                from,
                to,
                channel,
                msg,
                stamp,
            }) => {
                seq += 1;
                heap.push(Due {
                    at,
                    seq,
                    item: DueItem::Deliver {
                        from,
                        to,
                        channel,
                        msg,
                        stamp,
                    },
                });
            }
            Ok(Submission::Timer { at, machine, tag }) => {
                seq += 1;
                heap.push(Due {
                    at,
                    seq,
                    item: DueItem::Timer { machine, tag },
                });
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Pinger {
        pings_seen: usize,
        pongs_seen: Arc<AtomicUsize>,
        timer_hits: usize,
    }

    impl Actor for Pinger {
        type Msg = &'static str;
        fn on_message(
            &mut self,
            from: MachineId,
            channel: Channel,
            msg: &'static str,
            ctx: &mut Ctx<'_, &'static str>,
        ) {
            match msg {
                "ping" => {
                    self.pings_seen += 1;
                    ctx.send(from, channel, "pong");
                }
                "pong" => {
                    self.pongs_seen.fetch_add(1, Ordering::SeqCst);
                }
                _ => {}
            }
        }
        fn on_timer(&mut self, _tag: u64, _ctx: &mut Ctx<'_, &'static str>) {
            self.timer_hits += 1;
        }
    }

    fn pinger(pongs: &Arc<AtomicUsize>) -> Pinger {
        Pinger {
            pings_seen: 0,
            pongs_seen: pongs.clone(),
            timer_hits: 0,
        }
    }

    fn wait_for(pred: impl Fn() -> bool, ms: u64) -> bool {
        let deadline = Instant::now() + Duration::from_millis(ms);
        while Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        pred()
    }

    #[test]
    fn ping_pong_over_threads() {
        let pongs = Arc::new(AtomicUsize::new(0));
        let net = ThreadedNet::new(LatencyModel::constant_ms(1), 3);
        let a = net.add_machine(MachineId::new(0), pinger(&pongs));
        let _b = net.add_machine(MachineId::new(1), pinger(&pongs));
        a.with(|_, ctx| ctx.send(MachineId::new(1), Channel::Operations, "ping"));
        assert!(wait_for(|| pongs.load(Ordering::SeqCst) == 1, 2_000));
        assert_eq!(net.metrics().delivered, 2);
    }

    #[test]
    fn broadcast_reaches_all_other_machines() {
        let pongs = Arc::new(AtomicUsize::new(0));
        let net = ThreadedNet::new(LatencyModel::constant_ms(1), 3);
        let handles: Vec<_> = (0..4)
            .map(|i| net.add_machine(MachineId::new(i), pinger(&pongs)))
            .collect();
        handles[0].with(|_, ctx| ctx.broadcast(Channel::Operations, "ping"));
        assert!(wait_for(|| pongs.load(Ordering::SeqCst) == 3, 2_000));
        for h in &handles[1..] {
            assert_eq!(h.read(|p| p.pings_seen), Some(1));
        }
    }

    #[test]
    fn timers_fire() {
        let pongs = Arc::new(AtomicUsize::new(0));
        let net = ThreadedNet::new(LatencyModel::constant_ms(1), 3);
        let a = net.add_machine(MachineId::new(0), pinger(&pongs));
        a.with(|_, ctx| ctx.set_timer(SimTime::from_millis(5), 1));
        assert!(wait_for(|| a.read(|p| p.timer_hits).unwrap() == 1, 2_000));
    }

    #[test]
    fn removed_machine_drops_messages() {
        let pongs = Arc::new(AtomicUsize::new(0));
        let net = ThreadedNet::new(LatencyModel::constant_ms(5), 3);
        let a = net.add_machine(MachineId::new(0), pinger(&pongs));
        let _b = net.add_machine(MachineId::new(1), pinger(&pongs));
        a.with(|_, ctx| ctx.send(MachineId::new(1), Channel::Operations, "ping"));
        net.remove_machine(MachineId::new(1));
        assert!(wait_for(|| net.metrics().dropped == 1, 2_000));
        assert_eq!(pongs.load(Ordering::SeqCst), 0);
        assert!(net.handle(MachineId::new(1)).is_none());
        assert!(net.handle(MachineId::new(0)).is_some());
    }

    #[test]
    fn handle_read_and_with_return_values() {
        let pongs = Arc::new(AtomicUsize::new(0));
        let net = ThreadedNet::new(LatencyModel::constant_ms(1), 3);
        let a = net.add_machine(MachineId::new(0), pinger(&pongs));
        assert_eq!(a.with(|p, _| p.pings_seen), Some(0));
        assert_eq!(a.read(|p| p.timer_hits), Some(0));
        net.remove_machine(MachineId::new(0));
        assert_eq!(a.with(|p, _| p.pings_seen), None);
        assert_eq!(a.read(|p| p.timer_hits), None);
    }
}
