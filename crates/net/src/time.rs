//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, in microseconds since simulation start.
///
/// Both drivers express time as `SimTime`: the simulated driver advances it
/// through its event queue, the threaded driver derives it from the wall
/// clock. Microsecond resolution comfortably covers the paper's scales
/// (sync periods of hundreds of milliseconds, latencies of tens).
///
/// # Examples
///
/// ```
/// use guesstimate_net::SimTime;
/// let t = SimTime::from_millis(2) + SimTime::from_micros(500);
/// assert_eq!(t.as_micros(), 2_500);
/// assert_eq!(t.as_millis_f64(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This time in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This time in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl From<Duration> for SimTime {
    fn from(d: Duration) -> Self {
        SimTime(d.as_micros() as u64)
    }
}

impl From<SimTime> for Duration {
    fn from(t: SimTime) -> Duration {
        Duration::from_micros(t.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimTime::from_millis(1500).as_millis(), 1500);
        assert_eq!(SimTime::from_micros(2500).as_millis(), 2);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(2);
        let b = SimTime::from_millis(1);
        assert_eq!((a + b).as_millis(), 3);
        assert_eq!((a - b).as_millis(), 1);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 3);
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        assert_eq!(a.saturating_since(b).as_millis(), 1);
    }

    #[test]
    fn duration_roundtrip() {
        let t = SimTime::from(Duration::from_millis(5));
        assert_eq!(t.as_millis(), 5);
        assert_eq!(Duration::from(t), Duration::from_millis(5));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_micros(5).to_string(), "5us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }
}
