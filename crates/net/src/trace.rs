//! Structured, allocation-light protocol tracing.
//!
//! The GUESSTIMATE synchronizer is a three-stage master/slave protocol whose
//! behaviour under latency and faults is hard to reconstruct from aggregate
//! counters alone. This module defines a small, fixed vocabulary of
//! [`TraceEvent`]s — one per protocol transition worth observing — and a
//! pluggable [`Tracer`] sink that protocol participants call at each
//! transition.
//!
//! Design constraints:
//!
//! * **Allocation-light.** Every event variant carries only `Copy` scalars
//!   (round numbers, machine ids, op counts). Emitting an event never
//!   allocates; a disabled tracer ([`NoopTracer`], the default) costs one
//!   dynamic call per event.
//! * **Driver-agnostic.** Events are stamped with the [`SimTime`] of the
//!   emitting callback, so the same instrumentation works under the
//!   deterministic virtual-time driver ([`crate::SimNet`]) and the
//!   wall-clock threaded driver ([`crate::ThreadedNet`]).
//! * **Thread-safe.** [`Tracer`] is `Send + Sync`; one sink may be shared by
//!   every machine in a cluster (the threaded driver invokes actors from
//!   multiple threads).
//!
//! Consumers either collect events in memory with [`RecordingTracer`] or
//! stream them elsewhere with a custom [`Tracer`] impl (the bench crate
//! ships a JSON-lines sink).

use std::fmt;

use guesstimate_core::MachineId;

use crate::time::SimTime;

/// Why a machine re-executed guesstimated work: the cause tag carried by
/// every [`TraceEvent::Reexecuted`] record, so a merged cluster timeline
/// can attribute each `sg` replay (or in-place patch) to what forced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayCause {
    /// A foreign, conflicting commit entered the round: the commute check
    /// could not prove the round's foreign commits past the pending list,
    /// so `sg` was rebuilt from `sc` and every pending op re-executed.
    ForeignConflict,
    /// Ordinary round bookkeeping: the round carried only this machine's
    /// own commits (or nothing replay-relevant) but still-pending ops had
    /// to re-execute onto the rebuilt guesstimate.
    RoundReplay,
    /// The hybrid commit path patched a foreign async commit into `sc`
    /// and `sg` in place (per-sender reorder-buffer drain).
    AsyncPatch,
    /// Pending ops issued before (or while) joining re-executed onto a
    /// fresh join snapshot.
    JoinReplay,
}

impl ReplayCause {
    /// Stable snake_case name for this cause, suitable for log keys.
    pub fn name(&self) -> &'static str {
        match self {
            ReplayCause::ForeignConflict => "foreign_conflict",
            ReplayCause::RoundReplay => "round_replay",
            ReplayCause::AsyncPatch => "async_patch",
            ReplayCause::JoinReplay => "join_replay",
        }
    }
}

/// One observable transition of the sync protocol.
///
/// Variants map one-to-one onto the protocol described in
/// `docs/PROTOCOL.md`: stage 1 (*AddUpdatesToMesh*) opens and closes one
/// flush window per participant; stage 2 (*ApplyUpdatesFromMesh*) starts
/// with the master's authoritative [`TraceEvent::BeginApply`] and ends when
/// every participant has acked; stage 3 (*FlagCompletion*) is the
/// [`TraceEvent::SyncComplete`] broadcast. Recovery shows up as
/// [`TraceEvent::Resend`] / [`TraceEvent::OpsResendRequested`] /
/// [`TraceEvent::Removed`] / [`TraceEvent::Restarted`]; failover as the
/// election events.
///
/// Every variant carries only `Copy` scalars so that emitting an event never
/// allocates. The emitting machine and timestamp live on the enclosing
/// [`TraceRecord`], so e.g. [`TraceEvent::Restarted`] needs no fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The master opened sync round `round` with a `BeginSync` broadcast.
    RoundStarted {
        /// Round number (master's committed-prefix length at round start).
        round: u64,
        /// Number of machines participating (master included).
        participants: u32,
    },
    /// The master granted `machine` the (serial) flush turn for `round`.
    FlushWindowOpened {
        /// Round number.
        round: u64,
        /// Machine whose turn it now is to flush.
        machine: MachineId,
    },
    /// The master recorded `machine`'s `FlushDone` for `round`.
    FlushWindowClosed {
        /// Round number.
        round: u64,
        /// Machine that finished flushing.
        machine: MachineId,
        /// Number of operations that machine contributed.
        ops: u64,
    },
    /// The emitting machine broadcast its pending-operation batch.
    OpsBatchSent {
        /// Round number.
        round: u64,
        /// Number of operations in the batch.
        ops: u64,
    },
    /// The emitting machine received a peer's operation batch.
    OpsBatchReceived {
        /// Round number.
        round: u64,
        /// Machine whose batch arrived.
        from: MachineId,
        /// Number of operations in the batch.
        ops: u64,
    },
    /// The master broadcast `BeginApply`, fixing the round's contents.
    BeginApply {
        /// Round number.
        round: u64,
        /// Total operations across all flushed batches.
        ops_total: u64,
    },
    /// The master recorded `machine`'s apply `Ack` for `round`.
    AckReceived {
        /// Round number.
        round: u64,
        /// Machine that acked (the master acks itself).
        machine: MachineId,
    },
    /// The master broadcast `SyncComplete`, ending `round`.
    SyncComplete {
        /// Round number.
        round: u64,
        /// Operations committed by the round.
        ops_committed: u64,
    },
    /// The emitting (non-master) machine observed `SyncComplete` for `round`.
    SyncCompleteReceived {
        /// Round number.
        round: u64,
    },
    /// The emitting machine proved the round's foreign commits commute with
    /// every still-pending local operation and skipped the `sg` rebuild
    /// (copy + replay), patching the guesstimated store in place instead.
    ReplaySkipped {
        /// Round number.
        round: u64,
        /// Pending operations whose re-execution was skipped.
        pending: u64,
    },
    /// The master re-sent a stage's kickoff to a straggler.
    ///
    /// `stage` is `1` for a `BeginSync` re-send (flush never observed) or
    /// `2` for a `BeginApply` re-send (ack never observed).
    Resend {
        /// Round number.
        round: u64,
        /// Straggling machine being nudged.
        machine: MachineId,
        /// Protocol stage the nudge belongs to (1 or 2).
        stage: u8,
    },
    /// The emitting machine asked `source` to re-send its batch for `round`.
    OpsResendRequested {
        /// Round number.
        round: u64,
        /// Machine whose batch is missing.
        source: MachineId,
    },
    /// The master removed an unresponsive `machine` from `round`.
    Removed {
        /// Round number.
        round: u64,
        /// Machine dropped from the round (told to restart).
        machine: MachineId,
    },
    /// The emitting machine reset itself and is rejoining the mesh.
    Restarted,
    /// The emitting machine handed one send action to the mesh driver.
    ///
    /// `(source, stamp)` is the message's **causal stamp**: drivers assign
    /// one monotone stamp per send *action*, so a broadcast's fan-out legs
    /// all share it — one `MsgSent` pairs with up to N
    /// [`TraceEvent::MsgReceived`] records, and each such pair is a
    /// send→receive happens-before edge of the cluster timeline. A dropped
    /// leg simply has no matching receive.
    MsgSent {
        /// The driver's per-send-action causal stamp (monotone per driver).
        stamp: u64,
        /// Static message kind (see `Actor::msg_kind`).
        kind: &'static str,
        /// Structural wire size of the message in bytes.
        bytes: u64,
    },
    /// The emitting machine received (and processed) one message.
    ///
    /// `(origin, stamp)` names the matching [`TraceEvent::MsgSent`]; a
    /// duplicated delivery repeats the receive with the same stamp.
    MsgReceived {
        /// The machine that sent the message.
        origin: MachineId,
        /// The sender's causal stamp for the carrying send action.
        stamp: u64,
        /// Static message kind (see `Actor::msg_kind`).
        kind: &'static str,
    },
    /// The emitting machine re-executed guesstimated work, tagged with why.
    ///
    /// Machine-scoped (like [`TraceEvent::Restarted`]): the `round` field
    /// is informational — `0` for causes that are not round-driven
    /// ([`ReplayCause::AsyncPatch`], [`ReplayCause::JoinReplay`]).
    Reexecuted {
        /// Round that drove the re-execution (0 when not round-driven).
        round: u64,
        /// Number of operations re-executed (or patched in place).
        pending: u64,
        /// What forced the re-execution.
        cause: ReplayCause,
    },
    /// The emitting machine started a master election.
    ElectionStarted {
        /// Last round the candidate saw complete.
        last_round: u64,
    },
    /// The emitting machine won an election and promoted itself to master.
    ElectionWon {
        /// Round number the new master will run next.
        round: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case name for this event, suitable for log keys.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::RoundStarted { .. } => "round_started",
            TraceEvent::FlushWindowOpened { .. } => "flush_window_opened",
            TraceEvent::FlushWindowClosed { .. } => "flush_window_closed",
            TraceEvent::OpsBatchSent { .. } => "ops_batch_sent",
            TraceEvent::OpsBatchReceived { .. } => "ops_batch_received",
            TraceEvent::BeginApply { .. } => "begin_apply",
            TraceEvent::AckReceived { .. } => "ack_received",
            TraceEvent::SyncComplete { .. } => "sync_complete",
            TraceEvent::SyncCompleteReceived { .. } => "sync_complete_received",
            TraceEvent::ReplaySkipped { .. } => "replay_skipped",
            TraceEvent::Resend { .. } => "resend",
            TraceEvent::OpsResendRequested { .. } => "ops_resend_requested",
            TraceEvent::Removed { .. } => "removed",
            TraceEvent::Restarted => "restarted",
            TraceEvent::MsgSent { .. } => "msg_sent",
            TraceEvent::MsgReceived { .. } => "msg_received",
            TraceEvent::Reexecuted { .. } => "reexecuted",
            TraceEvent::ElectionStarted { .. } => "election_started",
            TraceEvent::ElectionWon { .. } => "election_won",
        }
    }

    /// The sync round this event belongs to, if it is round-scoped.
    ///
    /// [`TraceEvent::Restarted`], the election events, the causal-stamp
    /// events ([`TraceEvent::MsgSent`]/[`TraceEvent::MsgReceived`]) and
    /// [`TraceEvent::Reexecuted`] are machine-scoped and return `None`
    /// (`Reexecuted` keeps its informational `round` field out of the
    /// round timelines because async patches and join replays are not
    /// driven by any round).
    pub fn round(&self) -> Option<u64> {
        match *self {
            TraceEvent::RoundStarted { round, .. }
            | TraceEvent::FlushWindowOpened { round, .. }
            | TraceEvent::FlushWindowClosed { round, .. }
            | TraceEvent::OpsBatchSent { round, .. }
            | TraceEvent::OpsBatchReceived { round, .. }
            | TraceEvent::BeginApply { round, .. }
            | TraceEvent::AckReceived { round, .. }
            | TraceEvent::SyncComplete { round, .. }
            | TraceEvent::SyncCompleteReceived { round }
            | TraceEvent::ReplaySkipped { round, .. }
            | TraceEvent::Resend { round, .. }
            | TraceEvent::OpsResendRequested { round, .. }
            | TraceEvent::Removed { round, .. } => Some(round),
            TraceEvent::Restarted
            | TraceEvent::MsgSent { .. }
            | TraceEvent::MsgReceived { .. }
            | TraceEvent::Reexecuted { .. }
            | TraceEvent::ElectionStarted { .. }
            | TraceEvent::ElectionWon { .. } => None,
        }
    }
}

/// A timestamped, attributed [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event was emitted (virtual time under [`crate::SimNet`],
    /// wall-derived time under [`crate::ThreadedNet`]).
    pub at: SimTime,
    /// The machine that emitted the event.
    pub source: MachineId,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {:?}", self.at, self.source, self.event)
    }
}

/// A sink for protocol trace events.
///
/// Implementations must be cheap and non-blocking where possible: `record`
/// is called from inside actor callbacks, i.e. on the critical path of the
/// protocol. One tracer instance may be shared by every machine in a
/// cluster.
pub trait Tracer: Send + Sync {
    /// Accepts one event. Must not panic.
    fn record(&self, record: TraceRecord);
}

/// The default tracer: discards every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn record(&self, _record: TraceRecord) {}
}

/// A tracer that buffers every event in memory, in arrival order.
///
/// Under the deterministic virtual-time driver, arrival order is the
/// (deterministic) event execution order, so recorded traces are stable
/// across runs with the same seed.
#[derive(Debug, Default)]
pub struct RecordingTracer {
    records: parking_lot::Mutex<Vec<TraceRecord>>,
}

impl RecordingTracer {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.lock().clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.records.lock())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

impl Tracer for RecordingTracer {
    fn record(&self, record: TraceRecord) {
        self.records.lock().push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at_ms: u64, source: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_millis(at_ms),
            source: MachineId::new(source),
            event,
        }
    }

    #[test]
    fn recording_tracer_preserves_order() {
        let t = RecordingTracer::new();
        assert!(t.is_empty());
        t.record(rec(
            1,
            0,
            TraceEvent::RoundStarted {
                round: 7,
                participants: 3,
            },
        ));
        t.record(rec(2, 1, TraceEvent::OpsBatchSent { round: 7, ops: 4 }));
        assert_eq!(t.len(), 2);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].event.round(), Some(7));
        assert_eq!(snap[0].source, MachineId::new(0));
        assert!(snap[0].at < snap[1].at);
        // take drains
        assert_eq!(t.take().len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn event_names_are_stable_and_distinct() {
        let m = MachineId::new(1);
        let events = [
            TraceEvent::RoundStarted {
                round: 0,
                participants: 1,
            },
            TraceEvent::FlushWindowOpened {
                round: 0,
                machine: m,
            },
            TraceEvent::FlushWindowClosed {
                round: 0,
                machine: m,
                ops: 0,
            },
            TraceEvent::OpsBatchSent { round: 0, ops: 0 },
            TraceEvent::OpsBatchReceived {
                round: 0,
                from: m,
                ops: 0,
            },
            TraceEvent::BeginApply {
                round: 0,
                ops_total: 0,
            },
            TraceEvent::AckReceived {
                round: 0,
                machine: m,
            },
            TraceEvent::SyncComplete {
                round: 0,
                ops_committed: 0,
            },
            TraceEvent::SyncCompleteReceived { round: 0 },
            TraceEvent::ReplaySkipped {
                round: 0,
                pending: 0,
            },
            TraceEvent::Resend {
                round: 0,
                machine: m,
                stage: 1,
            },
            TraceEvent::OpsResendRequested {
                round: 0,
                source: m,
            },
            TraceEvent::Removed {
                round: 0,
                machine: m,
            },
            TraceEvent::Restarted,
            TraceEvent::MsgSent {
                stamp: 0,
                kind: "msg",
                bytes: 0,
            },
            TraceEvent::MsgReceived {
                origin: m,
                stamp: 0,
                kind: "msg",
            },
            TraceEvent::Reexecuted {
                round: 0,
                pending: 0,
                cause: ReplayCause::RoundReplay,
            },
            TraceEvent::ElectionStarted { last_round: 0 },
            TraceEvent::ElectionWon { round: 0 },
        ];
        let names: std::collections::BTreeSet<_> = events.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), events.len(), "names must be distinct");
        // Round-scoped vs machine-scoped split.
        assert_eq!(
            events.iter().filter(|e| e.round().is_none()).count(),
            6,
            "restarted + elections + causal-stamp events + reexecuted are machine-scoped"
        );
    }

    #[test]
    fn replay_cause_names_are_stable_and_distinct() {
        let causes = [
            ReplayCause::ForeignConflict,
            ReplayCause::RoundReplay,
            ReplayCause::AsyncPatch,
            ReplayCause::JoinReplay,
        ];
        let names: std::collections::BTreeSet<_> = causes.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), causes.len());
        assert_eq!(ReplayCause::ForeignConflict.name(), "foreign_conflict");
    }

    #[test]
    fn noop_tracer_discards() {
        // Compiles and runs; nothing observable to assert beyond not panicking.
        NoopTracer.record(rec(0, 0, TraceEvent::Restarted));
    }
}
