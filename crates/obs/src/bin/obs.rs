//! The observability report binary.
//!
//! Reads a protocol trace (JSONL) and its spans artifact, merges the
//! per-machine streams into one causal cluster timeline, checks the
//! happens-before discipline, and prints the per-op lag waterfall with
//! re-execution attribution. Exits non-zero when the timeline violates
//! happens-before or any op's lag partition fails to sum exactly.
//!
//! ```text
//! obs [--trace PATH] [--spans PATH] [--json OUT] [--postmortem PATH]
//! ```
//!
//! Defaults follow the shared artifact conventions (see
//! `guesstimate_obs::env`): the trace from `GUESSTIMATE_TRACE` or
//! `target/fig5_trace.jsonl`, the spans next to the `GUESSTIMATE_METRICS`
//! stem or `target/fig5_metrics_spans.jsonl`. `--postmortem` validates a
//! flight-recorder bundle instead of building a report.

use std::path::PathBuf;
use std::process::ExitCode;

use guesstimate_obs::{env, report, validate_postmortem};

fn main() -> ExitCode {
    let mut trace = None;
    let mut spans = None;
    let mut json_out: Option<PathBuf> = None;
    let mut postmortem: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--trace" => trace = Some(PathBuf::from(value("--trace"))),
            "--spans" => spans = Some(PathBuf::from(value("--spans"))),
            "--json" => json_out = Some(PathBuf::from(value("--json"))),
            "--postmortem" => postmortem = Some(PathBuf::from(value("--postmortem"))),
            "--help" | "-h" => {
                println!(
                    "usage: obs [--trace PATH] [--spans PATH] [--json OUT] [--postmortem PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = postmortem {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match validate_postmortem(&text) {
            Ok(s) => {
                println!(
                    "postmortem ok: reason={:?} machines={} events={} states={} hb_ok={}",
                    s.reason, s.machines, s.events, s.states, s.hb_ok
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("obs: malformed postmortem: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let trace = trace.unwrap_or_else(|| env::trace_path("fig5_trace.jsonl"));
    let spans = spans.unwrap_or_else(|| env::spans_path(&env::metrics_stem("fig5_metrics")));
    let trace_text = match std::fs::read_to_string(&trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs: cannot read trace {}: {e}", trace.display());
            return ExitCode::FAILURE;
        }
    };
    // A missing spans artifact degrades to timeline-only reporting.
    let spans_text = std::fs::read_to_string(&spans).unwrap_or_default();

    let report = match report::run(&trace_text, &spans_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("obs: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report::render_text(&report));
    if let Some(out) = json_out {
        if let Some(parent) = out.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&out, report::to_json(&report)) {
            eprintln!("obs: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("report json: {}", out.display());
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
