//! Artifact-path resolution shared by every binary in the workspace.
//!
//! Historically each bench binary carried its own copy of the
//! `GUESSTIMATE_TRACE` / `GUESSTIMATE_METRICS` lookup; this module is the
//! single definition. The precedence, everywhere, is:
//!
//! 1. an explicit CLI flag, when the binary has one (handled by the
//!    binary itself — it simply never calls these helpers);
//! 2. the environment variable (`GUESSTIMATE_TRACE` for the protocol
//!    trace path, `GUESSTIMATE_METRICS` for the metrics artifact stem),
//!    which overrides the location **wholesale** — no default directory
//!    is prepended;
//! 3. the binary's default name under `target/`.

use std::path::PathBuf;

/// Resolves the protocol-trace JSONL path: `GUESSTIMATE_TRACE` wholesale
/// if set, otherwise `target/<default_name>`.
pub fn trace_path(default_name: &str) -> PathBuf {
    std::env::var_os("GUESSTIMATE_TRACE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join(default_name))
}

/// Resolves the metrics artifact stem: `GUESSTIMATE_METRICS` wholesale if
/// set, otherwise `target/<default_stem>`. Writers extend the stem with
/// `.prom`, `.json`, `_chrome.json`, and `_spans.jsonl`.
pub fn metrics_stem(default_stem: &str) -> PathBuf {
    std::env::var_os("GUESSTIMATE_METRICS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join(default_stem))
}

/// The spans-artifact path derived from a metrics stem
/// (`<stem>_spans.jsonl`).
pub fn spans_path(stem: &std::path::Path) -> PathBuf {
    PathBuf::from(format!("{}_spans.jsonl", stem.to_string_lossy()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_land_under_target() {
        // Only the default branch is exercised: mutating the environment
        // is not safe under the parallel test harness.
        if std::env::var_os("GUESSTIMATE_TRACE").is_none() {
            assert_eq!(
                trace_path("t.jsonl"),
                PathBuf::from("target").join("t.jsonl")
            );
        }
        if std::env::var_os("GUESSTIMATE_METRICS").is_none() {
            assert_eq!(metrics_stem("m"), PathBuf::from("target").join("m"));
        }
    }

    #[test]
    fn spans_path_extends_the_stem() {
        assert_eq!(
            spans_path(&PathBuf::from("target/fig5_metrics")),
            PathBuf::from("target/fig5_metrics_spans.jsonl")
        );
    }
}
