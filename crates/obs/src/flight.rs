//! The violation flight recorder.
//!
//! A bounded, allocation-light [`Tracer`] keeping the most recent trace
//! events per machine in fixed-capacity rings. When something fires — a
//! model-checking oracle, a paranoid-mode invariant, a witness or shard
//! escape, or a panic in a bench binary — the recorder dumps a
//! **postmortem bundle**: the captured causal timeline, per-machine
//! [`StateSummary`] snapshots, and the result of a happens-before check
//! over the captured window. The bundle is a single JSON document meant
//! to sit next to a ddmin-shrunk schedule so a human can replay the last
//! seconds before the violation.
//!
//! Ring truncation means old `msg_sent` events age out while their
//! receives survive; the embedded happens-before check therefore runs in
//! lenient mode (orphan receives are counted, not flagged).

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::Arc;

use guesstimate_analysis::json::Json;
use guesstimate_net::{TraceRecord, Tracer};
use guesstimate_runtime::StateSummary;
use parking_lot::Mutex;

use crate::timeline::{check_happens_before, merge};
use crate::trace_json::{record_to_json, TraceLine};

/// Default per-machine ring capacity.
pub const DEFAULT_CAP: usize = 256;

struct Ring {
    events: VecDeque<TraceRecord>,
    dropped: u64,
}

/// A bounded per-machine ring buffer of recent trace events.
pub struct FlightRecorder {
    cap: usize,
    rings: Mutex<BTreeMap<u32, Ring>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rings = self.rings.lock();
        f.debug_struct("FlightRecorder")
            .field("cap", &self.cap)
            .field("machines", &rings.len())
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_CAP)
    }
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `cap` events per machine.
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            rings: Mutex::new(BTreeMap::new()),
        }
    }

    /// Every captured event, merged into causal timeline order.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let rings = self.rings.lock();
        let mut all: Vec<TraceRecord> = rings
            .values()
            .flat_map(|r| r.events.iter().copied())
            .collect();
        all.sort_by_key(|r| r.at);
        all
    }

    /// Total events currently held across all rings.
    pub fn len(&self) -> usize {
        self.rings.lock().values().map(|r| r.events.len()).sum()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the postmortem bundle: `reason`, per-machine captured
    /// events (with how many older events the ring dropped), the machine
    /// state summaries, and a lenient happens-before check over the
    /// captured window.
    pub fn dump_json(&self, reason: &str, states: &[StateSummary]) -> String {
        let rings = self.rings.lock();
        let mut lines: Vec<TraceLine> = Vec::new();
        let mut machines = String::new();
        for (i, (m, ring)) in rings.iter().enumerate() {
            if i > 0 {
                machines.push(',');
            }
            let events: Vec<String> = ring
                .events
                .iter()
                .map(|r| {
                    let json = record_to_json(r);
                    if let Ok(l) = TraceLine::parse(&json) {
                        lines.push(l);
                    }
                    json
                })
                .collect();
            machines.push_str(&format!(
                "{{\"machine\":{m},\"dropped\":{},\"events\":[{}]}}",
                ring.dropped,
                events.join(",")
            ));
        }
        drop(rings);
        let hb = check_happens_before(&merge(lines), false);
        let state_json: Vec<String> = states.iter().map(state_to_json).collect();
        format!(
            "{{\"reason\":{},\"cap\":{},\
             \"hb\":{{\"ok\":{},\"sends\":{},\"receives\":{},\"matched\":{},\
             \"orphans\":{},\"unreceived\":{},\"violations\":{}}},\
             \"machines\":[{}],\"states\":[{}]}}",
            Json::Str(reason.to_owned()),
            self.cap,
            hb.ok(),
            hb.sends,
            hb.receives,
            hb.matched,
            hb.orphans,
            hb.unreceived,
            hb.violations.len(),
            machines,
            state_json.join(","),
        )
    }

    /// Writes the postmortem bundle to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn write_postmortem(
        &self,
        path: &Path,
        reason: &str,
        states: &[StateSummary],
    ) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.dump_json(reason, states))
    }

    /// Installs a panic hook that dumps this recorder to `path` (with
    /// the panic message as the reason) before the previous hook runs.
    /// Used by the bench binaries so a crash mid-experiment still leaves
    /// a postmortem next to the partial artifacts.
    pub fn install_panic_dump(recorder: Arc<FlightRecorder>, path: std::path::PathBuf) {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let reason = format!("panic: {info}");
            let _ = recorder.write_postmortem(&path, &reason, &[]);
            previous(info);
        }));
    }
}

/// Fans one trace stream out to two sinks — typically a full archive
/// sink (recording tracer or JSONL stream) plus a [`FlightRecorder`], so
/// a binary both keeps the complete run and holds a bounded crash ring.
pub struct TeeTracer {
    a: Arc<dyn Tracer>,
    b: Arc<dyn Tracer>,
}

impl std::fmt::Debug for TeeTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeTracer").finish_non_exhaustive()
    }
}

impl TeeTracer {
    /// Builds the tee. Both sinks see every record, `a` first.
    pub fn new(a: Arc<dyn Tracer>, b: Arc<dyn Tracer>) -> Self {
        TeeTracer { a, b }
    }
}

impl Tracer for TeeTracer {
    fn record(&self, record: TraceRecord) {
        self.a.record(record);
        self.b.record(record);
    }
}

impl Tracer for FlightRecorder {
    fn record(&self, record: TraceRecord) {
        let mut rings = self.rings.lock();
        let ring = rings.entry(record.source.index()).or_insert_with(|| Ring {
            events: VecDeque::with_capacity(self.cap),
            dropped: 0,
        });
        if ring.events.len() == self.cap {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(record);
    }
}

fn state_to_json(s: &StateSummary) -> String {
    let round = match s.active_round {
        Some(r) => r.to_string(),
        None => "null".to_owned(),
    };
    format!(
        "{{\"machine\":{},\"is_master\":{},\"joined\":{},\"in_cohort\":{},\
         \"active_round\":{round},\"pending\":{},\"completed\":{},\
         \"completed_serialized\":{},\"committed_digest\":{},\
         \"guess_digest\":{},\"guess_invariant_holds\":{},\
         \"witness_violations\":{},\"shard_violations\":{},\"restarts\":{}}}",
        s.id.index(),
        s.is_master,
        s.joined,
        s.in_cohort,
        s.pending,
        s.completed,
        s.completed_serialized,
        s.committed_digest,
        s.guess_digest,
        s.guess_invariant_holds,
        s.witness_violations,
        s.shard_violations,
        s.restarts,
    )
}

/// What a validated postmortem bundle contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostmortemSummary {
    /// The recorded reason.
    pub reason: String,
    /// Machines with captured rings.
    pub machines: u64,
    /// Total captured events across rings.
    pub events: u64,
    /// State summaries embedded in the bundle.
    pub states: u64,
    /// Whether the embedded happens-before check passed.
    pub hb_ok: bool,
}

/// Validates a postmortem bundle: parses the document, requires the
/// `reason` / `hb` / `machines` / `states` sections, re-parses every
/// captured event as a trace line, and **re-runs** the happens-before
/// check on the captured timeline (lenient mode), cross-checking it
/// against the embedded verdict.
///
/// # Errors
///
/// Returns a human-readable description of the first malformation.
pub fn validate_postmortem(text: &str) -> Result<PostmortemSummary, String> {
    let v = Json::parse(text)?;
    let reason = v
        .get("reason")
        .and_then(Json::as_str)
        .ok_or("missing reason")?
        .to_owned();
    let hb_ok = v
        .get("hb")
        .and_then(|h| h.get("ok"))
        .and_then(Json::as_bool)
        .ok_or("missing hb.ok")?;
    let machines = v
        .get("machines")
        .and_then(Json::as_list)
        .ok_or("missing machines")?;
    let mut events = 0u64;
    let mut lines = Vec::new();
    for m in machines {
        m.get("machine")
            .and_then(Json::as_u64)
            .ok_or("machine entry missing index")?;
        for e in m
            .get("events")
            .and_then(Json::as_list)
            .ok_or("missing events")?
        {
            let line = TraceLine::parse(&e.to_string())
                .map_err(|err| format!("captured event malformed: {err}"))?;
            lines.push(line);
            events += 1;
        }
    }
    let states = v
        .get("states")
        .and_then(Json::as_list)
        .ok_or("missing states")?;
    for s in states {
        s.get("machine")
            .and_then(Json::as_u64)
            .ok_or("state entry missing machine")?;
    }
    let recheck = check_happens_before(&merge(lines), false);
    if recheck.ok() != hb_ok {
        return Err(format!(
            "embedded hb verdict ({hb_ok}) disagrees with recheck ({})",
            recheck.ok()
        ));
    }
    Ok(PostmortemSummary {
        reason,
        machines: machines.len() as u64,
        events,
        states: states.len() as u64,
        hb_ok,
    })
}

#[cfg(test)]
mod tests {
    use guesstimate_core::MachineId;
    use guesstimate_net::{SimTime, TraceEvent};

    use super::*;

    fn rec(at_ms: u64, source: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_millis(at_ms),
            source: MachineId::new(source),
            event,
        }
    }

    #[test]
    fn ring_keeps_only_the_last_cap_events() {
        let fr = FlightRecorder::new(3);
        for i in 0..10 {
            fr.record(rec(i, 0, TraceEvent::Restarted));
        }
        assert_eq!(fr.len(), 3);
        let snap = fr.snapshot();
        assert_eq!(snap[0].at, SimTime::from_millis(7));
        assert_eq!(snap[2].at, SimTime::from_millis(9));
    }

    #[test]
    fn rings_are_per_machine() {
        let fr = FlightRecorder::new(2);
        for i in 0..5 {
            fr.record(rec(i, 0, TraceEvent::Restarted));
            fr.record(rec(i, 1, TraceEvent::Restarted));
        }
        assert_eq!(fr.len(), 4, "two events kept per machine");
    }

    #[test]
    fn dump_validates_and_reports_truncation() {
        let fr = FlightRecorder::new(2);
        for i in 0..4 {
            fr.record(rec(
                i,
                0,
                TraceEvent::MsgSent {
                    stamp: i,
                    kind: "ops",
                    bytes: 10,
                },
            ));
        }
        fr.record(rec(
            9,
            1,
            TraceEvent::MsgReceived {
                origin: MachineId::new(0),
                stamp: 3,
                kind: "ops",
            },
        ));
        let bundle = fr.dump_json("test \"reason\"", &[]);
        let summary = validate_postmortem(&bundle).expect("bundle well-formed");
        assert_eq!(summary.reason, "test \"reason\"");
        assert_eq!(summary.machines, 2);
        assert_eq!(summary.events, 3);
        assert!(summary.hb_ok, "receive of stamp 3 matches a kept send");
        assert!(bundle.contains("\"dropped\":2"));
    }

    #[test]
    fn validate_rejects_garbage_and_mismatched_verdicts() {
        assert!(validate_postmortem("not json").is_err());
        assert!(validate_postmortem("{\"reason\":\"x\"}").is_err());
        let fr = FlightRecorder::new(4);
        fr.record(rec(1, 0, TraceEvent::Restarted));
        let bundle = fr.dump_json("ok", &[]);
        let flipped = bundle.replace("\"ok\":true", "\"ok\":false");
        assert!(validate_postmortem(&flipped).is_err());
    }
}
