//! # guesstimate-obs
//!
//! Cluster-wide causal observability for GUESSTIMATE runs:
//!
//! * **Causal timeline** — every message carries an origin `(machine,
//!   stamp)` allocated by the network driver at the send action; the
//!   per-machine JSONL trace streams merge ([`merge`]) into one
//!   causally-ordered cluster timeline whose happens-before discipline is
//!   checkable ([`check_happens_before`]).
//! * **Lag waterfalls** — [`waterfall`] joins the merged timeline with
//!   the per-op spans and decomposes each committed op's lag into named
//!   stages that sum *exactly* to the total, plus re-execution
//!   attribution (every speculative replay tagged with its recorded
//!   cause) and per-machine guess-divergence windows.
//! * **Flight recorder** — [`FlightRecorder`] keeps a bounded ring of
//!   recent events per machine and dumps a postmortem bundle (timeline +
//!   machine state summaries + happens-before verdict) when a model-
//!   checking oracle, paranoid invariant, witness/shard escape, or bench
//!   panic fires.
//!
//! The `obs` binary ties it together: it reads a trace and its spans
//! artifact, prints the report, and exits non-zero when the timeline is
//! causally inconsistent or the lag partition is not exact. See
//! `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod env;
pub mod flight;
pub mod report;
pub mod timeline;
pub mod trace_json;
pub mod waterfall;

pub use env::{metrics_stem, spans_path, trace_path};
pub use flight::{validate_postmortem, FlightRecorder, PostmortemSummary, TeeTracer};
pub use report::{render_text, to_json, Report};
pub use timeline::{check_happens_before, merge, HbReport, HbViolation};
pub use trace_json::{record_to_json, TraceLine};
pub use waterfall::{OpWaterfall, ReexecTotals, SpanLine, WaterfallReport};
