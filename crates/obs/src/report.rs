//! The end-to-end observability report: parse → merge → check → attribute.

use std::fmt::Write as _;

use crate::timeline::{check_happens_before, merge, HbReport};
use crate::trace_json::TraceLine;
use crate::waterfall::{self, SpanLine, WaterfallReport};

/// Everything the `obs` binary prints and gates on.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Events in the merged cluster timeline.
    pub events: u64,
    /// The happens-before verdict (strict mode: a full trace has no
    /// excuse for orphan receives).
    pub hb: HbReport,
    /// Per-op lag attribution.
    pub waterfall: WaterfallReport,
}

impl Report {
    /// Whether the run passed both gates: the causal timeline is
    /// happens-before consistent and every attributed op's stages sum
    /// exactly to its total lag.
    pub fn ok(&self) -> bool {
        self.hb.ok() && self.waterfall.verify_exact_sum()
    }
}

/// Builds the report from raw JSONL documents (trace + spans).
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn run(trace_text: &str, spans_text: &str) -> Result<Report, String> {
    let lines = merge(TraceLine::parse_all(trace_text).map_err(|e| format!("trace: {e}"))?);
    let spans = SpanLine::parse_all(spans_text).map_err(|e| format!("spans: {e}"))?;
    let hb = check_happens_before(&lines, true);
    let waterfall = waterfall::build(&lines, &spans);
    Ok(Report {
        events: lines.len() as u64,
        hb,
        waterfall,
    })
}

/// Renders the report for a terminal.
pub fn render_text(report: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== causal cluster timeline ==");
    let _ = writeln!(
        s,
        "events: {} (sends {}, receives {}, matched {}, dropped-or-in-flight {})",
        report.events, report.hb.sends, report.hb.receives, report.hb.matched, report.hb.unreceived
    );
    let _ = writeln!(
        s,
        "happens-before: {}",
        if report.hb.ok() { "OK" } else { "VIOLATED" }
    );
    for v in report.hb.violations.iter().take(10) {
        let _ = writeln!(s, "  {v}");
    }
    let _ = writeln!(s, "== per-op lag attribution ==");
    s.push_str(&waterfall::render(&report.waterfall));
    let _ = writeln!(
        s,
        "exact-sum partition: {}",
        if report.waterfall.verify_exact_sum() {
            "OK"
        } else {
            "VIOLATED"
        }
    );
    s
}

/// Renders the report as one JSON document (for `BENCH_pr9.json` and CI).
pub fn to_json(report: &Report) -> String {
    let mut ops = String::new();
    for (i, op) in report.waterfall.ops.iter().enumerate() {
        if i > 0 {
            ops.push(',');
        }
        let stages: Vec<String> = op
            .stages
            .iter()
            .map(|(name, us)| format!("\"{name}\":{us}"))
            .collect();
        let _ = write!(
            ops,
            "{{\"machine\":{},\"seq\":{},\"path\":\"{}\",\"total_us\":{},\"stages\":{{{}}}}}",
            op.machine,
            op.seq,
            op.path,
            op.total_us,
            stages.join(",")
        );
    }
    let mut reexec = String::new();
    for (i, (cause, t)) in report.waterfall.reexec.iter().enumerate() {
        if i > 0 {
            reexec.push(',');
        }
        let _ = write!(
            reexec,
            "\"{cause}\":{{\"events\":{},\"ops\":{}}}",
            t.events, t.ops
        );
    }
    let mut divergence = String::new();
    for (i, (m, us)) in report.waterfall.divergence_us.iter().enumerate() {
        if i > 0 {
            divergence.push(',');
        }
        let _ = write!(divergence, "\"{m}\":{us}");
    }
    format!(
        "{{\"events\":{},\"hb\":{{\"ok\":{},\"sends\":{},\"receives\":{},\
         \"matched\":{},\"orphans\":{},\"unreceived\":{},\"violations\":{}}},\
         \"exact_sum_ok\":{},\"excluded_untimed\":{},\
         \"ops\":[{ops}],\"reexec\":{{{reexec}}},\"divergence_us\":{{{divergence}}}}}",
        report.events,
        report.hb.ok(),
        report.hb.sends,
        report.hb.receives,
        report.hb.matched,
        report.hb.orphans,
        report.hb.unreceived,
        report.hb.violations.len(),
        report.waterfall.verify_exact_sum(),
        report.waterfall.excluded_untimed,
    )
}

#[cfg(test)]
mod tests {
    use guesstimate_analysis::json::Json;

    use super::*;

    const TRACE: &str = "\
{\"at_us\":1000,\"src\":0,\"event\":\"round_started\",\"round\":1,\"participants\":2}\n\
{\"at_us\":2000,\"src\":1,\"event\":\"msg_sent\",\"stamp\":0,\"kind\":\"ops\",\"bytes\":64}\n\
{\"at_us\":3000,\"src\":0,\"event\":\"msg_received\",\"origin\":1,\"stamp\":0,\"kind\":\"ops\"}\n\
{\"at_us\":4000,\"src\":0,\"event\":\"begin_apply\",\"round\":1,\"ops_total\":1}\n";

    const SPANS: &str = "\
{\"machine\":1,\"seq\":0,\"issued_us\":500,\"flushed_us\":2000,\"committed_us\":5000,\
\"completed_us\":5500,\"round\":1,\"async\":false,\"exec_count\":2,\"lost\":false}\n";

    #[test]
    fn end_to_end_report_is_ok_and_exact() {
        let report = run(TRACE, SPANS).unwrap();
        assert!(report.ok(), "{:?}", report.hb.violations);
        assert_eq!(report.waterfall.ops.len(), 1);
        assert_eq!(report.waterfall.ops[0].total_us, 5_000);
        let text = render_text(&report);
        assert!(text.contains("happens-before: OK"));
        assert!(text.contains("exact-sum partition: OK"));
    }

    #[test]
    fn json_output_parses_and_carries_the_partition() {
        let report = run(TRACE, SPANS).unwrap();
        let v = Json::parse(&to_json(&report)).expect("well-formed JSON");
        assert_eq!(v.get("exact_sum_ok").and_then(Json::as_bool), Some(true));
        let ops = v.get("ops").and_then(Json::as_list).unwrap();
        let stages = ops[0].get("stages").and_then(Json::as_map).unwrap();
        let sum: u64 = stages.values().filter_map(Json::as_u64).sum();
        assert_eq!(Some(sum), ops[0].get("total_us").and_then(Json::as_u64));
    }

    #[test]
    fn hb_violation_fails_the_report() {
        let bad = "{\"at_us\":10,\"src\":0,\"event\":\"msg_received\",\"origin\":1,\"stamp\":9,\"kind\":\"ops\"}\n";
        let report = run(bad, "").unwrap();
        assert!(!report.ok());
        assert!(render_text(&report).contains("happens-before: VIOLATED"));
    }
}
