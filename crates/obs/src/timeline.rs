//! Merging per-machine trace streams into one causally-ordered cluster
//! timeline, and checking the happens-before discipline of that timeline.
//!
//! Every message carries an origin stamp (allocated by the network driver
//! at the send *action*, so all legs of a broadcast share one stamp).
//! A trace is **causally consistent** when every `msg_received` has a
//! matching earlier `msg_sent` from its claimed origin. Dropped messages
//! legitimately leave sends without receives; faulty duplication
//! legitimately produces repeated receives of one stamp — neither is a
//! violation.

use std::collections::HashMap;

use crate::trace_json::TraceLine;

/// Sorts trace lines into the canonical cluster-timeline order: by
/// timestamp, with sends before protocol events before receives at equal
/// timestamps (so a zero-latency hop still orders its send first), then
/// by machine and stamp for determinism.
pub fn merge(mut lines: Vec<TraceLine>) -> Vec<TraceLine> {
    lines.sort_by_key(|l| (l.at_us, event_rank(&l.event), l.src, l.stamp));
    lines
}

fn event_rank(event: &str) -> u8 {
    match event {
        "msg_sent" => 0,
        "msg_received" => 2,
        _ => 1,
    }
}

/// One happens-before violation found in a timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbViolation {
    /// Claimed sender of the message.
    pub origin: u32,
    /// The message stamp.
    pub stamp: u64,
    /// The machine that recorded the receive.
    pub receiver: u32,
    /// When the matching send was recorded, if it exists at all.
    pub sent_at_us: Option<u64>,
    /// When the receive was recorded.
    pub received_at_us: u64,
}

impl std::fmt::Display for HbViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.sent_at_us {
            Some(s) => write!(
                f,
                "machine {} received stamp {} from {} at {}us but it was sent at {}us",
                self.receiver, self.stamp, self.origin, self.received_at_us, s
            ),
            None => write!(
                f,
                "machine {} received stamp {} from {} at {}us with no matching send",
                self.receiver, self.stamp, self.origin, self.received_at_us
            ),
        }
    }
}

/// The result of a happens-before check over a timeline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HbReport {
    /// `msg_sent` events seen.
    pub sends: u64,
    /// `msg_received` events seen.
    pub receives: u64,
    /// Receives whose matching send exists and precedes them.
    pub matched: u64,
    /// Receives with no matching send in the stream. In `strict` mode
    /// these are violations; in lenient mode (truncated flight-recorder
    /// rings, where old sends age out) they are merely counted.
    pub orphans: u64,
    /// Stamps sent but never received anywhere (dropped messages, or
    /// legs still in flight at shutdown). Informational.
    pub unreceived: u64,
    /// The violations found.
    pub violations: Vec<HbViolation>,
}

impl HbReport {
    /// Whether the timeline passed the check.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks the happens-before discipline: every receive's matching send
/// must exist (unless `strict` is false) and must not be later than the
/// receive. Duplicate receives of one stamp are fine (fault-plan
/// duplication); a stamp re-sent by the same origin is a violation
/// (stamps are allocated once per send action).
pub fn check_happens_before(lines: &[TraceLine], strict: bool) -> HbReport {
    let mut report = HbReport::default();
    let mut sends: HashMap<(u32, u64), u64> = HashMap::new();
    let mut received: HashMap<(u32, u64), u64> = HashMap::new();
    for l in lines {
        match l.event.as_str() {
            "msg_sent" => {
                report.sends += 1;
                let Some(stamp) = l.stamp else { continue };
                if let Some(&first) = sends.get(&(l.src, stamp)) {
                    // The same origin stamped two different sends: the
                    // stamp allocator is per-driver monotone, so this
                    // can only be a corrupted or mis-merged trace.
                    report.violations.push(HbViolation {
                        origin: l.src,
                        stamp,
                        receiver: l.src,
                        sent_at_us: Some(first),
                        received_at_us: l.at_us,
                    });
                } else {
                    sends.insert((l.src, stamp), l.at_us);
                }
            }
            "msg_received" => {
                report.receives += 1;
                let (Some(origin), Some(stamp)) = (l.origin, l.stamp) else {
                    continue;
                };
                received.insert((origin, stamp), l.at_us);
                match sends.get(&(origin, stamp)) {
                    Some(&sent_at) if sent_at <= l.at_us => report.matched += 1,
                    Some(&sent_at) => report.violations.push(HbViolation {
                        origin,
                        stamp,
                        receiver: l.src,
                        sent_at_us: Some(sent_at),
                        received_at_us: l.at_us,
                    }),
                    None => {
                        report.orphans += 1;
                        if strict {
                            report.violations.push(HbViolation {
                                origin,
                                stamp,
                                receiver: l.src,
                                sent_at_us: None,
                                received_at_us: l.at_us,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
    report.unreceived = sends
        .keys()
        .filter(|key| !received.contains_key(*key))
        .count() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(
        at_us: u64,
        src: u32,
        event: &str,
        origin: Option<u32>,
        stamp: Option<u64>,
    ) -> TraceLine {
        TraceLine {
            at_us,
            src,
            event: event.to_owned(),
            round: None,
            stamp,
            origin,
            kind: None,
            pending: None,
            cause: None,
        }
    }

    #[test]
    fn merge_orders_sends_before_receives_at_equal_times() {
        let merged = merge(vec![
            line(5, 1, "msg_received", Some(0), Some(0)),
            line(5, 0, "msg_sent", None, Some(0)),
            line(5, 0, "round_started", None, None),
        ]);
        assert_eq!(merged[0].event, "msg_sent");
        assert_eq!(merged[1].event, "round_started");
        assert_eq!(merged[2].event, "msg_received");
    }

    #[test]
    fn clean_broadcast_with_drop_and_duplicate_passes() {
        // One broadcast (stamp 0) to three peers: one leg delivered,
        // one delivered twice (duplication fault), one dropped.
        let lines = vec![
            line(1, 0, "msg_sent", None, Some(0)),
            line(4, 1, "msg_received", Some(0), Some(0)),
            line(5, 2, "msg_received", Some(0), Some(0)),
            line(9, 2, "msg_received", Some(0), Some(0)),
        ];
        let r = check_happens_before(&lines, true);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.sends, 1);
        assert_eq!(r.receives, 3);
        assert_eq!(r.matched, 3);
        assert_eq!(r.unreceived, 0);
    }

    #[test]
    fn dropped_send_is_not_a_violation_but_is_counted() {
        let lines = vec![line(1, 0, "msg_sent", None, Some(0))];
        let r = check_happens_before(&lines, true);
        assert!(r.ok());
        assert_eq!(r.unreceived, 1);
    }

    #[test]
    fn receive_before_send_is_a_violation() {
        let lines = vec![
            line(3, 1, "msg_received", Some(0), Some(0)),
            line(7, 0, "msg_sent", None, Some(0)),
        ];
        let r = check_happens_before(&lines, true);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(
            r.violations[0].sent_at_us, None,
            "send seen after, so unmatched at receive time"
        );
        // After the canonical merge the receive still precedes the send
        // (different timestamps), so the violation persists.
        let r = check_happens_before(&merge(lines), true);
        assert!(!r.ok());
    }

    #[test]
    fn orphan_receive_is_lenient_unless_strict() {
        let lines = vec![line(3, 1, "msg_received", Some(0), Some(9))];
        assert!(check_happens_before(&lines, false).ok());
        assert_eq!(check_happens_before(&lines, false).orphans, 1);
        assert!(!check_happens_before(&lines, true).ok());
    }

    #[test]
    fn reused_stamp_by_same_origin_is_a_violation() {
        let lines = vec![
            line(1, 0, "msg_sent", None, Some(4)),
            line(2, 0, "msg_sent", None, Some(4)),
        ];
        assert!(!check_happens_before(&lines, false).ok());
    }
}
