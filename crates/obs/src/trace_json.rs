//! The JSONL wire format for protocol traces: writer and reader.
//!
//! [`record_to_json`] is the **single** definition of the trace line
//! format (one JSON object per [`TraceRecord`], stable keys, every value
//! a scalar); `guesstimate-bench` re-exports it for its sinks. The
//! matching reader, [`TraceLine`], parses those lines back — including
//! lines produced by older binaries, since unknown keys are ignored and
//! absent keys parse as `None`.

use std::fmt::Write as _;

use guesstimate_analysis::json::Json;
use guesstimate_net::{TraceEvent, TraceRecord};

/// Renders one trace record as a single-line JSON object.
///
/// Keys: `at_us` (timestamp in virtual microseconds), `src` (emitting
/// machine index), `event` (stable snake_case name), then the variant's
/// scalar fields under their field names (machine ids as indices).
pub fn record_to_json(r: &TraceRecord) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"at_us\":{},\"src\":{},\"event\":\"{}\"",
        r.at.as_micros(),
        r.source.index(),
        r.event.name()
    );
    match r.event {
        TraceEvent::RoundStarted {
            round,
            participants,
        } => {
            let _ = write!(s, ",\"round\":{round},\"participants\":{participants}");
        }
        TraceEvent::FlushWindowOpened { round, machine } => {
            let _ = write!(s, ",\"round\":{round},\"machine\":{}", machine.index());
        }
        TraceEvent::FlushWindowClosed {
            round,
            machine,
            ops,
        } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"machine\":{},\"ops\":{ops}",
                machine.index()
            );
        }
        TraceEvent::OpsBatchSent { round, ops } => {
            let _ = write!(s, ",\"round\":{round},\"ops\":{ops}");
        }
        TraceEvent::OpsBatchReceived { round, from, ops } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"from\":{},\"ops\":{ops}",
                from.index()
            );
        }
        TraceEvent::BeginApply { round, ops_total } => {
            let _ = write!(s, ",\"round\":{round},\"ops_total\":{ops_total}");
        }
        TraceEvent::AckReceived { round, machine } => {
            let _ = write!(s, ",\"round\":{round},\"machine\":{}", machine.index());
        }
        TraceEvent::SyncComplete {
            round,
            ops_committed,
        } => {
            let _ = write!(s, ",\"round\":{round},\"ops_committed\":{ops_committed}");
        }
        TraceEvent::SyncCompleteReceived { round } => {
            let _ = write!(s, ",\"round\":{round}");
        }
        TraceEvent::ReplaySkipped { round, pending } => {
            let _ = write!(s, ",\"round\":{round},\"pending\":{pending}");
        }
        TraceEvent::Resend {
            round,
            machine,
            stage,
        } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"machine\":{},\"stage\":{stage}",
                machine.index()
            );
        }
        TraceEvent::OpsResendRequested { round, source } => {
            let _ = write!(s, ",\"round\":{round},\"source\":{}", source.index());
        }
        TraceEvent::Removed { round, machine } => {
            let _ = write!(s, ",\"round\":{round},\"machine\":{}", machine.index());
        }
        TraceEvent::Restarted => {}
        TraceEvent::MsgSent { stamp, kind, bytes } => {
            let _ = write!(
                s,
                ",\"stamp\":{stamp},\"kind\":\"{kind}\",\"bytes\":{bytes}"
            );
        }
        TraceEvent::MsgReceived {
            origin,
            stamp,
            kind,
        } => {
            let _ = write!(
                s,
                ",\"origin\":{},\"stamp\":{stamp},\"kind\":\"{kind}\"",
                origin.index()
            );
        }
        TraceEvent::Reexecuted {
            round,
            pending,
            cause,
        } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"pending\":{pending},\"cause\":\"{}\"",
                cause.name()
            );
        }
        TraceEvent::ElectionStarted { last_round } => {
            let _ = write!(s, ",\"last_round\":{last_round}");
        }
        TraceEvent::ElectionWon { round } => {
            let _ = write!(s, ",\"round\":{round}");
        }
    }
    s.push('}');
    s
}

/// One parsed trace line — the reader side of [`record_to_json`].
///
/// Only the fields the observability pipeline consumes are typed;
/// everything else in the line is ignored, so the reader tolerates both
/// older traces (fields absent → `None`) and future additions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceLine {
    /// Timestamp in virtual microseconds.
    pub at_us: u64,
    /// Emitting machine index.
    pub src: u32,
    /// Stable snake_case event name.
    pub event: String,
    /// Round number, for round-scoped events.
    pub round: Option<u64>,
    /// Message stamp (`msg_sent` / `msg_received`).
    pub stamp: Option<u64>,
    /// Sender index (`msg_received` only).
    pub origin: Option<u32>,
    /// Message-kind label (`msg_sent` / `msg_received`).
    pub kind: Option<String>,
    /// Pending-list length (`reexecuted` / `replay_skipped`).
    pub pending: Option<u64>,
    /// Re-execution cause (`reexecuted` only).
    pub cause: Option<String>,
}

impl TraceLine {
    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a description when the line is not a JSON object or lacks
    /// the `at_us` / `src` / `event` envelope.
    pub fn parse(line: &str) -> Result<TraceLine, String> {
        let v = Json::parse(line)?;
        let at_us = v
            .get("at_us")
            .and_then(Json::as_u64)
            .ok_or("missing at_us")?;
        let src = v.get("src").and_then(Json::as_u64).ok_or("missing src")? as u32;
        let event = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or("missing event")?
            .to_owned();
        Ok(TraceLine {
            at_us,
            src,
            event,
            round: v.get("round").and_then(Json::as_u64),
            stamp: v.get("stamp").and_then(Json::as_u64),
            origin: v.get("origin").and_then(Json::as_u64).map(|o| o as u32),
            kind: v.get("kind").and_then(Json::as_str).map(str::to_owned),
            pending: v.get("pending").and_then(Json::as_u64),
            cause: v.get("cause").and_then(Json::as_str).map(str::to_owned),
        })
    }

    /// Parses a whole JSONL document, skipping blank lines.
    ///
    /// # Errors
    ///
    /// Reports the first malformed line with its 1-based line number.
    pub fn parse_all(text: &str) -> Result<Vec<TraceLine>, String> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            out.push(TraceLine::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use guesstimate_core::MachineId;
    use guesstimate_net::{ReplayCause, SimTime};

    use super::*;

    fn rec(at_ms: u64, source: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_millis(at_ms),
            source: MachineId::new(source),
            event,
        }
    }

    #[test]
    fn message_events_roundtrip_through_the_reader() {
        let sent = record_to_json(&rec(
            2,
            1,
            TraceEvent::MsgSent {
                stamp: 7,
                kind: "ops",
                bytes: 120,
            },
        ));
        let line = TraceLine::parse(&sent).unwrap();
        assert_eq!(line.event, "msg_sent");
        assert_eq!(line.stamp, Some(7));
        assert_eq!(line.kind.as_deref(), Some("ops"));
        assert_eq!(line.at_us, 2000);
        assert_eq!(line.src, 1);

        let recv = record_to_json(&rec(
            5,
            0,
            TraceEvent::MsgReceived {
                origin: MachineId::new(1),
                stamp: 7,
                kind: "ops",
            },
        ));
        let line = TraceLine::parse(&recv).unwrap();
        assert_eq!(line.origin, Some(1));
        assert_eq!(line.stamp, Some(7));

        let reex = record_to_json(&rec(
            9,
            2,
            TraceEvent::Reexecuted {
                round: 4,
                pending: 3,
                cause: ReplayCause::ForeignConflict,
            },
        ));
        let line = TraceLine::parse(&reex).unwrap();
        assert_eq!(line.event, "reexecuted");
        assert_eq!(line.round, Some(4));
        assert_eq!(line.pending, Some(3));
        assert_eq!(line.cause.as_deref(), Some("foreign_conflict"));
    }

    #[test]
    fn reader_tolerates_unknown_and_absent_fields() {
        let line = TraceLine::parse("{\"at_us\":1,\"src\":0,\"event\":\"custom\",\"novel\":true}")
            .unwrap();
        assert_eq!(line.event, "custom");
        assert_eq!(line.round, None);
        assert!(TraceLine::parse("{\"src\":0,\"event\":\"x\"}").is_err());
    }

    #[test]
    fn parse_all_reports_line_numbers() {
        let doc = "{\"at_us\":1,\"src\":0,\"event\":\"a\"}\n\nnot json\n";
        let err = TraceLine::parse_all(doc).unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        let ok = TraceLine::parse_all("{\"at_us\":1,\"src\":0,\"event\":\"a\"}\n").unwrap();
        assert_eq!(ok.len(), 1);
    }
}
