//! Per-operation lag attribution: the waterfall.
//!
//! Joins the merged cluster timeline with the per-op spans and decomposes
//! each committed operation's end-to-end lag into named stages. The
//! decomposition is a **clamped monotone boundary chain**: each stage is
//! the (non-negative) gap between consecutive boundary timestamps, so the
//! stages telescope and **sum exactly** to the total lag, per op, by
//! construction — there is no residual "other" bucket.
//!
//! Serialized path (committed through a sync round):
//!
//! | stage        | boundary gap                                          |
//! |--------------|-------------------------------------------------------|
//! | `round_wait` | issue → the committing round's `round_started`        |
//! | `flush_wait` | … → the op's stage-1 flush broadcast                  |
//! | `wire`       | … → the master's receipt of that ops batch (via the   |
//! |              | send's causal stamp)                                  |
//! | `gather`     | … → the master's `begin_apply` (waiting on peers)     |
//! | `apply`      | … → the commit on the issuing machine                 |
//! | `completion` | … → the completion callback                           |
//!
//! Async path (hybrid commute-first commit): `async_commit` (issue →
//! commit, zero when committed at issue) and `completion`.
//!
//! The module also attributes every speculative **re-execution** to its
//! recorded cause and computes per-machine **guess-divergence windows**
//! (total virtual time each machine's `sg` ran ahead of its `sc` on its
//! own pending ops).

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

use guesstimate_analysis::json::Json;

use crate::trace_json::TraceLine;

/// One parsed line of the `<stem>_spans.jsonl` artifact (the reader side
/// of `guesstimate_telemetry::OpSpan::to_json_line`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanLine {
    /// Issuing machine index.
    pub machine: u32,
    /// Per-machine issue sequence number.
    pub seq: u64,
    /// Issue timestamp (virtual microseconds), if timed.
    pub issued_us: Option<u64>,
    /// First stage-1 flush broadcast.
    pub flushed_us: Option<u64>,
    /// Commit on the issuing machine.
    pub committed_us: Option<u64>,
    /// Completion callback.
    pub completed_us: Option<u64>,
    /// Committing round (None for the async path).
    pub round: Option<u64>,
    /// Committed through the hybrid async path.
    pub is_async: bool,
    /// Executions on the issuing machine (the paper bounds this by 3).
    pub exec_count: u32,
    /// Dropped with a restarting machine's pending list.
    pub lost: bool,
}

impl SpanLine {
    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a description when the line is not a span object.
    pub fn parse(line: &str) -> Result<SpanLine, String> {
        let v = Json::parse(line)?;
        let u = |k: &str| v.get(k).and_then(Json::as_u64);
        Ok(SpanLine {
            machine: u("machine").ok_or("missing machine")? as u32,
            seq: u("seq").ok_or("missing seq")?,
            issued_us: u("issued_us"),
            flushed_us: u("flushed_us"),
            committed_us: u("committed_us"),
            completed_us: u("completed_us"),
            round: u("round"),
            is_async: v.get("async").and_then(Json::as_bool).unwrap_or(false),
            exec_count: u("exec_count").unwrap_or(0) as u32,
            lost: v.get("lost").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// Parses a whole spans JSONL document, skipping blank lines.
    ///
    /// # Errors
    ///
    /// Reports the first malformed line with its 1-based line number.
    pub fn parse_all(text: &str) -> Result<Vec<SpanLine>, String> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            out.push(SpanLine::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(out)
    }
}

/// The stage decomposition of one committed op's lag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpWaterfall {
    /// Issuing machine index.
    pub machine: u32,
    /// Per-machine issue sequence number.
    pub seq: u64,
    /// `"serialized"` or `"async"`.
    pub path: &'static str,
    /// End-to-end lag in microseconds (issue → last observed boundary).
    pub total_us: u64,
    /// `(stage name, microseconds)` in chain order; sums to `total_us`
    /// exactly.
    pub stages: Vec<(&'static str, u64)>,
}

/// Aggregated re-executions for one recorded cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReexecTotals {
    /// `reexecuted` trace events with this cause.
    pub events: u64,
    /// Total pending ops replayed across those events.
    pub ops: u64,
}

/// The full lag-attribution report for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WaterfallReport {
    /// Per-op decompositions, in `(machine, seq)` order.
    pub ops: Vec<OpWaterfall>,
    /// Committed ops excluded because their issue was untimed (instance
    /// creation before the cluster clock is meaningful): lag from issue
    /// is undefined for them.
    pub excluded_untimed: u64,
    /// Re-executions grouped by recorded cause.
    pub reexec: BTreeMap<String, ReexecTotals>,
    /// Per-machine guess-divergence window: total virtual microseconds
    /// the machine had at least one own op issued-but-uncommitted (its
    /// `sg` speculatively ahead of `sc`).
    pub divergence_us: BTreeMap<u32, u64>,
}

impl WaterfallReport {
    /// Re-verifies the exact-sum invariant independently of how the
    /// report was built: every op's stages must sum to its total.
    pub fn verify_exact_sum(&self) -> bool {
        self.ops
            .iter()
            .all(|op| op.stages.iter().map(|(_, us)| *us).sum::<u64>() == op.total_us)
    }
}

/// Builds the lag-attribution report from a trace and its spans.
pub fn build(lines: &[TraceLine], spans: &[SpanLine]) -> WaterfallReport {
    // Round boundaries (first occurrence wins) and the round's master.
    let mut round_started: HashMap<u64, u64> = HashMap::new();
    let mut begin_apply: HashMap<u64, u64> = HashMap::new();
    let mut round_master: HashMap<u64, u32> = HashMap::new();
    // Stage-1 flush broadcasts: (src, send time) → stamp; and receipts
    // of those stamps: (origin, stamp) → per-receiver earliest time.
    let mut ops_sent: HashMap<(u32, u64), u64> = HashMap::new();
    let mut ops_received: HashMap<(u32, u64), Vec<(u32, u64)>> = HashMap::new();
    let mut reexec: BTreeMap<String, ReexecTotals> = BTreeMap::new();
    for l in lines {
        match l.event.as_str() {
            "round_started" => {
                if let Some(r) = l.round {
                    round_started.entry(r).or_insert(l.at_us);
                    round_master.entry(r).or_insert(l.src);
                }
            }
            "begin_apply" => {
                if let Some(r) = l.round {
                    begin_apply.entry(r).or_insert(l.at_us);
                }
            }
            "msg_sent" if l.kind.as_deref() == Some("ops") => {
                if let Some(stamp) = l.stamp {
                    ops_sent.entry((l.src, l.at_us)).or_insert(stamp);
                }
            }
            "msg_received" if l.kind.as_deref() == Some("ops") => {
                if let (Some(origin), Some(stamp)) = (l.origin, l.stamp) {
                    ops_received
                        .entry((origin, stamp))
                        .or_default()
                        .push((l.src, l.at_us));
                }
            }
            "reexecuted" => {
                let cause = l.cause.clone().unwrap_or_else(|| "unknown".to_owned());
                let t = reexec.entry(cause).or_default();
                t.events += 1;
                t.ops += l.pending.unwrap_or(0);
            }
            _ => {}
        }
    }

    let mut report = WaterfallReport {
        reexec,
        ..WaterfallReport::default()
    };
    let mut divergence: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    for s in spans {
        let Some(committed) = s.committed_us else {
            continue;
        };
        let Some(issued) = s.issued_us else {
            report.excluded_untimed += 1;
            continue;
        };
        divergence
            .entry(s.machine)
            .or_default()
            .push((issued, committed.max(issued)));

        // The clamped monotone boundary chain: each boundary is at least
        // the previous one, so every stage is the non-negative gap to its
        // predecessor and the stages telescope to `last - issued`.
        let mut prev = issued;
        let mut stages: Vec<(&'static str, u64)> = Vec::with_capacity(6);
        let mut stage = |name, boundary: Option<u64>, prev: &mut u64| {
            let b = boundary.unwrap_or(*prev).max(*prev);
            stages.push((name, b - *prev));
            *prev = b;
        };
        if s.is_async {
            stage("async_commit", Some(committed), &mut prev);
            stage("completion", s.completed_us, &mut prev);
        } else {
            let r = s.round;
            stage(
                "round_wait",
                r.and_then(|r| round_started.get(&r)).copied(),
                &mut prev,
            );
            stage("flush_wait", s.flushed_us, &mut prev);
            // The wire boundary: when the committing round's master
            // received the flush broadcast this op rode on (joined via
            // the send's causal stamp).
            let master = r.and_then(|r| round_master.get(&r)).copied();
            let arrival = s
                .flushed_us
                .and_then(|f| ops_sent.get(&(s.machine, f)))
                .and_then(|stamp| ops_received.get(&(s.machine, *stamp)))
                .and_then(|receipts| {
                    receipts
                        .iter()
                        .filter(|(rx, _)| master.is_none_or(|m| *rx == m))
                        .map(|(_, at)| *at)
                        .min()
                });
            stage("wire", arrival, &mut prev);
            stage(
                "gather",
                r.and_then(|r| begin_apply.get(&r)).copied(),
                &mut prev,
            );
            stage("apply", Some(committed), &mut prev);
            stage("completion", s.completed_us, &mut prev);
        }
        report.ops.push(OpWaterfall {
            machine: s.machine,
            seq: s.seq,
            path: if s.is_async { "async" } else { "serialized" },
            total_us: prev - issued,
            stages,
        });
    }
    report.ops.sort_by_key(|o| (o.machine, o.seq));
    report.divergence_us = divergence
        .into_iter()
        .map(|(m, intervals)| (m, union_len(intervals)))
        .collect();
    report
}

/// Total length of the union of half-open intervals.
fn union_len(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut total = 0;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in intervals {
        match &mut cur {
            Some((_, e)) if a <= *e => *e = (*e).max(b),
            _ => {
                if let Some((s, e)) = cur.take() {
                    total += e - s;
                }
                cur = Some((a, b));
            }
        }
    }
    if let Some((s, e)) = cur {
        total += e - s;
    }
    total
}

/// Renders the report as a fixed-width text summary: mean/max per stage
/// and path, the re-execution attribution table, and the divergence
/// windows.
pub fn render(report: &WaterfallReport) -> String {
    let mut s = String::new();
    for path in ["serialized", "async"] {
        let ops: Vec<&OpWaterfall> = report.ops.iter().filter(|o| o.path == path).collect();
        let _ = writeln!(s, "lag waterfall — {path} path ({} ops)", ops.len());
        if ops.is_empty() {
            continue;
        }
        let total: u64 = ops.iter().map(|o| o.total_us).sum();
        let mut order: Vec<&'static str> = Vec::new();
        let mut sums: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for o in &ops {
            for (name, us) in &o.stages {
                if !sums.contains_key(name) {
                    order.push(name);
                }
                let e = sums.entry(name).or_insert((0, 0));
                e.0 += us;
                e.1 = e.1.max(*us);
            }
        }
        let _ = writeln!(
            s,
            "{:>12} {:>10} {:>10} {:>7}",
            "stage", "mean_ms", "max_ms", "share"
        );
        for name in order {
            let (sum, max) = sums[name];
            let _ = writeln!(
                s,
                "{:>12} {:>10.3} {:>10.3} {:>6.1}%",
                name,
                sum as f64 / ops.len() as f64 / 1000.0,
                max as f64 / 1000.0,
                if total == 0 {
                    0.0
                } else {
                    100.0 * sum as f64 / total as f64
                },
            );
        }
    }
    let _ = writeln!(s, "re-execution attribution");
    let _ = writeln!(s, "{:>18} {:>7} {:>7}", "cause", "events", "ops");
    for (cause, t) in &report.reexec {
        let _ = writeln!(s, "{:>18} {:>7} {:>7}", cause, t.events, t.ops);
    }
    let _ = writeln!(s, "guess-divergence windows");
    for (m, us) in &report.divergence_us {
        let _ = writeln!(s, "  machine-{m}: {:.3} ms", *us as f64 / 1000.0);
    }
    if report.excluded_untimed > 0 {
        let _ = writeln!(
            s,
            "({} committed ops untimed at issue — excluded from lag attribution)",
            report.excluded_untimed
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(at_us: u64, src: u32, event: &str) -> TraceLine {
        TraceLine {
            at_us,
            src,
            event: event.to_owned(),
            round: None,
            stamp: None,
            origin: None,
            kind: None,
            pending: None,
            cause: None,
        }
    }

    fn span(machine: u32, seq: u64) -> SpanLine {
        SpanLine {
            machine,
            seq,
            issued_us: None,
            flushed_us: None,
            committed_us: None,
            completed_us: None,
            round: None,
            is_async: false,
            exec_count: 1,
            lost: false,
        }
    }

    #[test]
    fn serialized_chain_sums_exactly_with_full_boundaries() {
        let mut rs = tl(1_000, 0, "round_started");
        rs.round = Some(3);
        let mut ba = tl(5_000, 0, "begin_apply");
        ba.round = Some(3);
        let mut sent = tl(2_000, 1, "msg_sent");
        sent.stamp = Some(9);
        sent.kind = Some("ops".to_owned());
        let mut recv = tl(3_500, 0, "msg_received");
        recv.origin = Some(1);
        recv.stamp = Some(9);
        recv.kind = Some("ops".to_owned());
        let lines = vec![rs, sent, recv, ba];

        let mut s = span(1, 0);
        s.issued_us = Some(500);
        s.flushed_us = Some(2_000);
        s.committed_us = Some(6_000);
        s.completed_us = Some(6_500);
        s.round = Some(3);
        let report = build(&lines, &[s]);
        assert_eq!(report.ops.len(), 1);
        let op = &report.ops[0];
        assert_eq!(op.total_us, 6_000);
        assert_eq!(
            op.stages,
            vec![
                ("round_wait", 500),
                ("flush_wait", 1_000),
                ("wire", 1_500),
                ("gather", 1_500),
                ("apply", 1_000),
                ("completion", 500),
            ]
        );
        assert!(report.verify_exact_sum());
    }

    #[test]
    fn missing_boundaries_clamp_to_zero_stages_and_still_sum() {
        // No round events, no message join: everything collapses into
        // `apply`, but the partition stays exact.
        let mut s = span(2, 1);
        s.issued_us = Some(100);
        s.committed_us = Some(900);
        s.round = Some(7);
        let report = build(&[], &[s]);
        let op = &report.ops[0];
        assert_eq!(op.total_us, 800);
        assert_eq!(op.stages.iter().map(|(_, u)| u).sum::<u64>(), 800);
        assert_eq!(
            op.stages.iter().find(|(n, _)| *n == "apply").unwrap().1,
            800
        );
        assert!(report.verify_exact_sum());
    }

    #[test]
    fn async_path_attributes_commit_and_completion() {
        let mut s = span(0, 4);
        s.issued_us = Some(100);
        s.committed_us = Some(100);
        s.completed_us = Some(400);
        s.is_async = true;
        let report = build(&[], &[s]);
        let op = &report.ops[0];
        assert_eq!(op.path, "async");
        assert_eq!(op.stages, vec![("async_commit", 0), ("completion", 300)]);
        assert_eq!(op.total_us, 300);
    }

    #[test]
    fn untimed_and_uncommitted_spans_are_excluded() {
        let mut untimed = span(0, 0);
        untimed.committed_us = Some(50);
        let uncommitted = span(0, 1);
        let report = build(&[], &[untimed, uncommitted]);
        assert!(report.ops.is_empty());
        assert_eq!(report.excluded_untimed, 1);
    }

    #[test]
    fn reexec_attribution_groups_by_cause() {
        let mut a = tl(1, 0, "reexecuted");
        a.cause = Some("foreign_conflict".to_owned());
        a.pending = Some(2);
        let mut b = tl(2, 1, "reexecuted");
        b.cause = Some("foreign_conflict".to_owned());
        b.pending = Some(1);
        let mut c = tl(3, 1, "reexecuted");
        c.cause = Some("async_patch".to_owned());
        c.pending = Some(4);
        let report = build(&[a, b, c], &[]);
        assert_eq!(
            report.reexec["foreign_conflict"],
            ReexecTotals { events: 2, ops: 3 }
        );
        assert_eq!(
            report.reexec["async_patch"],
            ReexecTotals { events: 1, ops: 4 }
        );
    }

    #[test]
    fn divergence_merges_overlapping_windows() {
        let mk = |issued, committed| {
            let mut s = span(1, issued);
            s.issued_us = Some(issued);
            s.committed_us = Some(committed);
            s
        };
        // [10,50) ∪ [30,60) ∪ [100,110) = 40 + 10 + 10 = 60.
        let report = build(&[], &[mk(10, 50), mk(30, 60), mk(100, 110)]);
        assert_eq!(report.divergence_us[&1], 60);
    }

    #[test]
    fn render_mentions_every_section() {
        let mut s = span(0, 0);
        s.issued_us = Some(0);
        s.committed_us = Some(10);
        let text = render(&build(&[], &[s]));
        assert!(text.contains("lag waterfall — serialized path (1 ops)"));
        assert!(text.contains("re-execution attribution"));
        assert!(text.contains("guess-divergence windows"));
    }
}
