//! Happens-before correctness of merged causal timelines across all three
//! network drivers.
//!
//! Every driver allocates one origin `(machine, stamp)` per send *action*
//! and records the receive edge before the handler runs, so a merged
//! timeline must satisfy: every receive matches a strictly-earlier send,
//! no origin reuses a stamp, and dropped envelopes surface as unreceived
//! sends — never as violations. These tests pin that contract under:
//!
//! 1. the deterministic sim driver running the real protocol over a lossy
//!    network (dropped envelopes force recovery re-flushes, which must get
//!    fresh stamps);
//! 2. the real-thread driver (wall-clock latencies, cross-thread delivery);
//! 3. the controlled scheduler, where we explicitly drop and re-send
//!    envelopes and check the dropped/re-sent accounting.

use std::sync::Arc;

use guesstimate_core::{args, GState, MachineId, OpRegistry, RestoreError, SharedOp, Value};
use guesstimate_net::{
    Actor, Channel, Ctx, FaultPlan, LatencyModel, NetConfig, RecordingTracer, SchedNet, SimTime,
    StallWindow, ThreadedNet, TraceRecord,
};
use guesstimate_obs::{check_happens_before, merge, record_to_json, TraceLine};
use guesstimate_runtime::{run_until_cohort, sim_cluster_traced, Machine, MachineConfig};

/// Renders driver records to JSONL and back, exactly as the report binary
/// consumes them, then merges into one cluster timeline.
fn timeline(records: &[TraceRecord]) -> Vec<TraceLine> {
    let lines = records
        .iter()
        .map(|r| TraceLine::parse(&record_to_json(r)).expect("driver emits parseable lines"))
        .collect();
    merge(lines)
}

/// Minimal counter app (the runtime's `testutil` is test-gated and
/// invisible here).
#[derive(Clone, Default, Debug, PartialEq)]
struct Counter {
    n: i64,
}

impl GState for Counter {
    const TYPE_NAME: &'static str = "Counter";
    fn snapshot(&self) -> Value {
        Value::from(self.n)
    }
    fn restore(&mut self, v: &Value) -> Result<(), RestoreError> {
        self.n = v.as_i64().ok_or_else(|| RestoreError::shape("i64"))?;
        Ok(())
    }
}

fn counter_registry() -> OpRegistry {
    let mut r = OpRegistry::new();
    r.register_type::<Counter>();
    r.register_method::<Counter>("add", |c, a| {
        let Some(d) = a.i64(0) else { return false };
        c.n += d;
        true
    });
    r
}

/// Real protocol, lossy sim network: 2% message loss plus a stalled
/// machine force both kinds of re-flush (recovery resends and restart
/// rejoin), and the merged timeline must stay causally consistent with
/// the drops showing up as unreceived sends.
#[test]
fn sim_protocol_timeline_is_causally_consistent_under_loss() {
    let cfg = MachineConfig::default()
        .with_sync_period(SimTime::from_millis(100))
        .with_stall_timeout(SimTime::from_millis(800));
    let faults = FaultPlan::new()
        .with_drop_prob(0.02)
        .with_stall(StallWindow::new(
            MachineId::new(2),
            SimTime::from_secs(6),
            SimTime::from_secs(12),
        ));
    let netcfg = NetConfig::lan(29)
        .with_latency(LatencyModel::constant_ms(10))
        .with_faults(faults);
    let tracer = Arc::new(RecordingTracer::new());
    let mut net = sim_cluster_traced(4, counter_registry(), cfg, netcfg, Some(tracer.clone()));
    assert!(run_until_cohort(&mut net, SimTime::from_secs(10)));

    let board = net
        .actor_mut(MachineId::new(0))
        .unwrap()
        .create_instance(Counter::default());
    for k in 0..24u64 {
        let t = net.now() + SimTime::from_millis(200 + 150 * k);
        let user = MachineId::new((k % 4) as u32);
        net.schedule_call(t, user, move |m: &mut Machine, _ctx| {
            let _ = m.issue(SharedOp::primitive(board, "add", args![1]));
        });
    }
    net.run_until(net.now() + SimTime::from_secs(20));

    let records = tracer.take();
    let lines = timeline(&records);
    let hb = check_happens_before(&lines, true);
    assert!(hb.ok(), "strict happens-before must hold: {hb:?}");
    assert!(hb.matched > 100, "a real session delivers plenty: {hb:?}");
    assert!(
        hb.unreceived > 0,
        "2% loss over 20s must drop at least one envelope: {hb:?}"
    );
    // The stall forces recovery; the re-flushed envelopes got fresh stamps
    // (stamp reuse would have been flagged as a violation above), and the
    // round eventually commits on every surviving machine.
    assert!(
        records
            .iter()
            .any(|r| r.event.name() == "resend" || r.event.name() == "restarted"),
        "the stall exercises the recovery/re-flush path"
    );
}

/// Real protocol on the real-thread driver: cross-thread wall-clock
/// delivery must preserve the same discipline (receives strictly after
/// sends even though each thread timestamps independently).
#[test]
fn threaded_protocol_timeline_is_causally_consistent() {
    let tracer = Arc::new(RecordingTracer::new());
    let registry = Arc::new(counter_registry());
    let net: ThreadedNet<Machine> = ThreadedNet::new(LatencyModel::constant_ms(1), 17);
    net.set_tracer(tracer.clone());
    let mut handles = Vec::new();
    for i in 0..3u32 {
        let id = MachineId::new(i);
        let m = if i == 0 {
            Machine::new_master(id, registry.clone(), MachineConfig::default())
        } else {
            Machine::new_member(id, registry.clone(), MachineConfig::default())
        };
        handles.push(net.add_machine(id, m));
    }
    // Wait for the cohort, then issue a few ops from two machines.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        let all_in = handles
            .iter()
            .all(|h| h.read(Machine::in_cohort).unwrap_or(false));
        if all_in {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let board = handles[0]
        .with(|m, _| m.create_instance(Counter::default()))
        .unwrap();
    for k in 0..6 {
        let h = &handles[k % handles.len()];
        h.with(|m, _| {
            let _ = m.issue(SharedOp::primitive(board, "add", args![1]));
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
    }
    std::thread::sleep(std::time::Duration::from_millis(300));

    let lines = timeline(&tracer.take());
    let hb = check_happens_before(&lines, true);
    assert!(hb.ok(), "strict happens-before must hold: {hb:?}");
    assert!(hb.matched > 0, "messages flowed: {hb:?}");
}

/// Toy ping-pong actor for the controlled-scheduler test: broadcast on
/// start, reply to anything below a bound.
struct Ping;

impl Actor for Ping {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        ctx.broadcast(Channel::Operations, 0);
    }

    fn on_message(&mut self, from: MachineId, _ch: Channel, msg: u32, ctx: &mut Ctx<'_, u32>) {
        if msg < 2 {
            ctx.send(from, Channel::Operations, msg + 1);
        }
    }
}

/// Controlled scheduler: explicitly dropped envelopes count as
/// unreceived (never as violations), an explicit re-send after a drop
/// gets a fresh stamp, and the merged timeline stays strictly
/// consistent throughout.
#[test]
fn sched_drops_and_resends_keep_timeline_consistent() {
    let tracer = Arc::new(RecordingTracer::new());
    let mut net: SchedNet<Ping> = SchedNet::new();
    net.set_tracer(tracer.clone());
    for i in 0..3u32 {
        net.add_machine(MachineId::new(i), Ping);
    }

    // Deliver one leg of machine 0's startup broadcast, drop another, and
    // let the rest play out; every pending envelope is either delivered
    // or dropped explicitly.
    let mut dropped = 0u64;
    let mut toggle = false;
    loop {
        let pending = net.pending_msgs();
        let Some(&seq) = pending.first() else { break };
        if toggle {
            assert!(net.drop_msg(seq));
            dropped += 1;
        } else {
            assert!(net.deliver(seq));
        }
        toggle = !toggle;
    }
    // "Re-flush": the sender re-broadcasts after its envelopes were
    // dropped; the new send action must allocate a fresh stamp.
    assert!(net.call(MachineId::new(0), |_a, ctx| {
        ctx.broadcast(Channel::Operations, 0);
    }));
    // Drain to quiescence: deliveries trigger replies, which must be
    // delivered too or they would read as in-flight (unreceived) sends.
    while let Some(&seq) = net.pending_msgs().first() {
        assert!(net.deliver(seq));
    }

    let lines = timeline(&tracer.take());
    let hb = check_happens_before(&lines, true);
    assert!(hb.ok(), "strict happens-before must hold: {hb:?}");
    assert!(hb.matched > 0, "delivered legs match their sends");
    // A broadcast's legs share one stamp, so a stamp only counts as
    // unreceived when *every* leg was dropped; with alternating
    // deliver/drop at least one broadcast leg always lands, so the bound
    // is per dropped point-to-point reply.
    assert!(dropped > 0, "the schedule dropped envelopes");
    assert!(
        hb.unreceived <= dropped,
        "drops can only produce unreceived sends: {hb:?}"
    );
}
