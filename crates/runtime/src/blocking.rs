//! Blocking issue: the Figure 4 pattern, packaged.
//!
//! §5 "Blocking operations": *"there are certain situations where we really
//! want to be sure that an operation commits before executing subsequent
//! operations ... We have been able to program such scenarios by blocking
//! the main thread on issuing the operation and waiting until the completion
//! routine unblocks it."* The paper's sample code (Figure 4) waits on a
//! semaphore released by the completion routine; here the calling thread
//! waits on a channel the completion routine sends into.
//!
//! Only meaningful on the threaded driver — under virtual time there is no
//! caller thread to block.

use std::time::Duration;

use crossbeam::channel::bounded;
use guesstimate_core::SharedOp;
use guesstimate_net::ThreadedHandle;

use crate::machine::Machine;

/// Outcome of a blocking issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingOutcome {
    /// The operation failed on the guesstimated state and was dropped
    /// (the paper's `if (!res) this.Close();` branch).
    Rejected,
    /// The operation committed; the payload is the commit-time boolean.
    Committed(bool),
    /// No commit within the timeout (e.g. the synchronizer is partitioned).
    TimedOut,
    /// The machine has left the mesh.
    Unavailable,
}

/// Issues `op` and blocks the calling thread until it commits (or fails at
/// issue, or `timeout` elapses).
///
/// # Examples
///
/// See `examples/event_planner.rs`, which uses this for sign-in, exactly as
/// the paper's event-planning application does.
pub fn issue_blocking(
    handle: &ThreadedHandle<Machine>,
    op: SharedOp,
    timeout: Duration,
) -> BlockingOutcome {
    let (tx, rx) = bounded::<bool>(1);
    let issued = handle.with(move |m, _| {
        m.issue_with_completion(
            op,
            Box::new(move |b| {
                let _ = tx.send(b);
            }),
        )
    });
    match issued {
        None => BlockingOutcome::Unavailable,
        Some(Err(_)) | Some(Ok(false)) => BlockingOutcome::Rejected,
        Some(Ok(true)) => match rx.recv_timeout(timeout) {
            Ok(b) => BlockingOutcome::Committed(b),
            Err(_) => BlockingOutcome::TimedOut,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::threaded_cluster;
    use crate::config::MachineConfig;
    use crate::testutil::{counter_registry, Counter};
    use guesstimate_core::args;
    use guesstimate_net::{LatencyModel, SimTime};
    use std::time::Instant;

    fn wait_for(pred: impl Fn() -> bool, ms: u64) -> bool {
        let deadline = Instant::now() + Duration::from_millis(ms);
        while Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        pred()
    }

    #[test]
    fn blocking_issue_commits_on_threaded_cluster() {
        let cfg = MachineConfig::default()
            .with_sync_period(SimTime::from_millis(30))
            .with_stall_timeout(SimTime::from_millis(2_000))
            .with_join_retry(SimTime::from_millis(100));
        let (_net, handles) =
            threaded_cluster(2, counter_registry(), cfg, LatencyModel::constant_ms(1), 5);
        // Wait for the member to enter the cohort.
        assert!(wait_for(
            || handles[1].read(|m| m.in_cohort()).unwrap_or(false),
            5_000
        ));
        let obj = handles[0]
            .with(|m, _| m.create_instance(Counter { n: 0 }))
            .unwrap();
        // Wait until the member sees the object.
        assert!(wait_for(
            || handles[1]
                .read(|m| m.object_type(obj).is_some())
                .unwrap_or(false),
            5_000
        ));
        let outcome = issue_blocking(
            &handles[1],
            SharedOp::primitive(obj, "add", args![5]),
            Duration::from_secs(5),
        );
        assert_eq!(outcome, BlockingOutcome::Committed(true));
        assert_eq!(
            handles[0].read(|m| m.read::<Counter, _>(obj, |c| c.n)),
            Some(Some(5))
        );
    }

    #[test]
    fn blocking_issue_rejects_failed_precondition() {
        let cfg = MachineConfig::default().with_sync_period(SimTime::from_millis(30));
        let (_net, handles) =
            threaded_cluster(1, counter_registry(), cfg, LatencyModel::constant_ms(1), 5);
        let obj = handles[0]
            .with(|m, _| m.create_instance(Counter { n: 0 }))
            .unwrap();
        let outcome = issue_blocking(
            &handles[0],
            SharedOp::primitive(obj, "add", args![-1]),
            Duration::from_secs(1),
        );
        assert_eq!(outcome, BlockingOutcome::Rejected);
    }
}
