//! Convenience constructors for whole clusters.

use std::sync::Arc;

use guesstimate_core::{MachineId, OpRegistry};
use guesstimate_net::{
    LatencyModel, NetConfig, SimNet, SimTime, ThreadedHandle, ThreadedNet, Tracer,
};
use guesstimate_telemetry::Telemetry;

use crate::config::MachineConfig;
use crate::machine::Machine;

/// Builds a simulated cluster of `n` machines (machine 0 is the master),
/// all sharing one operation registry.
///
/// Machines join through the real membership protocol, so run the returned
/// net for a second or two of virtual time before expecting all members to
/// participate (or call [`run_until_cohort`] to do that for you).
///
/// # Examples
///
/// ```
/// use guesstimate_core::OpRegistry;
/// use guesstimate_net::{LatencyModel, NetConfig};
/// use guesstimate_runtime::{sim_cluster, MachineConfig};
///
/// let registry = OpRegistry::new();
/// let net = sim_cluster(
///     3,
///     registry,
///     MachineConfig::default(),
///     NetConfig::lan(7).with_latency(LatencyModel::constant_ms(5)),
/// );
/// assert_eq!(net.members().len(), 3);
/// ```
pub fn sim_cluster(
    n: u32,
    registry: OpRegistry,
    cfg: MachineConfig,
    netcfg: NetConfig,
) -> SimNet<Machine> {
    sim_cluster_traced(n, registry, cfg, netcfg, None)
}

/// [`sim_cluster`] with a shared trace sink installed on every machine.
///
/// Each machine emits [`guesstimate_net::TraceEvent`]s to `tracer` as the
/// protocol progresses; pass a [`guesstimate_net::RecordingTracer`] (or any
/// custom sink) to observe per-stage protocol behaviour. `None` is
/// equivalent to [`sim_cluster`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use guesstimate_core::OpRegistry;
/// use guesstimate_net::{LatencyModel, NetConfig, RecordingTracer};
/// use guesstimate_runtime::{sim_cluster_traced, MachineConfig};
///
/// let tracer = Arc::new(RecordingTracer::new());
/// let net = sim_cluster_traced(
///     3,
///     OpRegistry::new(),
///     MachineConfig::default(),
///     NetConfig::lan(7).with_latency(LatencyModel::constant_ms(5)),
///     Some(tracer.clone()),
/// );
/// assert_eq!(net.members().len(), 3);
/// // Before the sim runs, only the join-request broadcasts (message sends
/// // stamped by the driver) have been traced — no protocol events yet.
/// assert!(tracer
///     .snapshot()
///     .iter()
///     .all(|r| matches!(r.event, guesstimate_net::TraceEvent::MsgSent { .. })));
/// ```
pub fn sim_cluster_traced(
    n: u32,
    registry: OpRegistry,
    cfg: MachineConfig,
    netcfg: NetConfig,
    tracer: Option<Arc<dyn Tracer>>,
) -> SimNet<Machine> {
    sim_cluster_instrumented(n, registry, cfg, netcfg, tracer, Telemetry::noop())
}

/// [`sim_cluster_traced`] with a shared [`Telemetry`] handle installed on
/// every machine.
///
/// All machines record into the same instrument set, so one
/// [`Telemetry::render_prometheus`] / [`Telemetry::render_json`] snapshot
/// after the run covers the whole cluster. Pass [`Telemetry::noop`] to get
/// exactly [`sim_cluster_traced`] (the hooks cost one branch each).
///
/// # Examples
///
/// ```
/// use guesstimate_core::OpRegistry;
/// use guesstimate_net::{LatencyModel, NetConfig};
/// use guesstimate_runtime::{sim_cluster_instrumented, MachineConfig};
/// use guesstimate_telemetry::Telemetry;
///
/// let telemetry = Telemetry::new();
/// let net = sim_cluster_instrumented(
///     3,
///     OpRegistry::new(),
///     MachineConfig::default(),
///     NetConfig::lan(7).with_latency(LatencyModel::constant_ms(5)),
///     None,
///     telemetry.clone(),
/// );
/// assert_eq!(net.members().len(), 3);
/// assert_eq!(telemetry.ops_committed(), 0, "nothing recorded before the sim runs");
/// ```
pub fn sim_cluster_instrumented(
    n: u32,
    registry: OpRegistry,
    cfg: MachineConfig,
    netcfg: NetConfig,
    tracer: Option<Arc<dyn Tracer>>,
    telemetry: Telemetry,
) -> SimNet<Machine> {
    let registry = Arc::new(registry);
    let mut net = SimNet::new(netcfg);
    if let Some(t) = &tracer {
        // Share the sink with the driver so message send/receive stamps land
        // in the same stream as the machines' protocol events.
        net.set_tracer(t.clone());
    }
    let machine = |i: u32| {
        let id = MachineId::new(i);
        let mut m = if i == 0 {
            Machine::new_master(id, registry.clone(), cfg.clone())
        } else {
            Machine::new_member(id, registry.clone(), cfg.clone())
        };
        if let Some(t) = &tracer {
            m.set_tracer(t.clone());
        }
        m.set_telemetry(telemetry.clone());
        m
    };
    for i in 0..n {
        net.add_machine(MachineId::new(i), machine(i));
    }
    net
}

/// Runs the simulation until every machine participates in rounds (or the
/// deadline passes). Returns `true` once the full cohort is active.
pub fn run_until_cohort(net: &mut SimNet<Machine>, deadline: SimTime) -> bool {
    let step = SimTime::from_millis(100);
    let mut t = net.now();
    loop {
        let all_in = net
            .members()
            .iter()
            .all(|&m| net.actor(m).map(Machine::in_cohort).unwrap_or(false));
        if all_in {
            return true;
        }
        if t >= deadline {
            return false;
        }
        t += step;
        net.run_until(t);
    }
}

/// Builds a threaded (wall-clock) cluster of `n` machines; returns the net
/// and one handle per machine (index 0 is the master).
pub fn threaded_cluster(
    n: u32,
    registry: OpRegistry,
    cfg: MachineConfig,
    latency: LatencyModel,
    seed: u64,
) -> (ThreadedNet<Machine>, Vec<ThreadedHandle<Machine>>) {
    threaded_cluster_instrumented(n, registry, cfg, latency, seed, Telemetry::noop())
}

/// [`threaded_cluster`] with a shared [`Telemetry`] handle installed on
/// every machine (see [`sim_cluster_instrumented`]).
pub fn threaded_cluster_instrumented(
    n: u32,
    registry: OpRegistry,
    cfg: MachineConfig,
    latency: LatencyModel,
    seed: u64,
    telemetry: Telemetry,
) -> (ThreadedNet<Machine>, Vec<ThreadedHandle<Machine>>) {
    let registry = Arc::new(registry);
    let net = ThreadedNet::new(latency, seed);
    let mut handles = Vec::with_capacity(n as usize);
    let machine = |i: u32| {
        let id = MachineId::new(i);
        let mut m = if i == 0 {
            Machine::new_master(id, registry.clone(), cfg.clone())
        } else {
            Machine::new_member(id, registry.clone(), cfg.clone())
        };
        m.set_telemetry(telemetry.clone());
        m
    };
    for i in 0..n {
        handles.push(net.add_machine(MachineId::new(i), machine(i)));
    }
    (net, handles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::counter_registry;

    #[test]
    fn sim_cluster_assembles_cohort() {
        let cfg = MachineConfig::default()
            .with_sync_period(SimTime::from_millis(100))
            .with_stall_timeout(SimTime::from_millis(500));
        let netcfg = NetConfig::lan(5).with_latency(LatencyModel::constant_ms(10));
        let mut net = sim_cluster(4, counter_registry(), cfg, netcfg);
        assert!(run_until_cohort(&mut net, SimTime::from_secs(5)));
        assert_eq!(
            net.actor(MachineId::new(0)).unwrap().members().len(),
            4,
            "master admitted everyone"
        );
    }

    #[test]
    fn run_until_cohort_times_out_when_blocked() {
        // Join messages always dropped: the cohort never assembles.
        let faults = guesstimate_net::FaultPlan::new().with_drop_prob(1.0);
        let netcfg = NetConfig::lan(5)
            .with_latency(LatencyModel::constant_ms(10))
            .with_faults(faults);
        let mut net = sim_cluster(2, counter_registry(), MachineConfig::default(), netcfg);
        assert!(!run_until_cohort(&mut net, SimTime::from_secs(3)));
    }
}
