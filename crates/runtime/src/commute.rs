//! Pairwise commutation judgments over wire operations.
//!
//! The replay-skip fast path ([`crate::MachineConfig::commute_skip`]) and
//! the schedule model checker (`guesstimate-mc`) both need the same
//! question answered: *do two wire operations provably commute?* The proof
//! cascade, strongest-first, mirrors `docs/ANALYSIS.md`:
//!
//! 1. **Object disjointness** — per-object state means operations on
//!    disjoint object sets always commute.
//! 2. **Validated matrix** — the offline analysis proved the method pair
//!    always-commuting (any argument, any state).
//! 3. **Argument-precise footprints** — the methods' declared
//!    [`guesstimate_core::EffectSpec`]s, instantiated at the operations' actual arguments,
//!    have disjoint read/write sets on every shared object.
//!
//! Any pair left unproven — including any operation whose method lacks a
//! declared effect — is conservatively treated as conflicting.
//!
//! Object types are resolved through a caller-supplied function, because
//! the catalog to consult differs per caller: a [`crate::Machine`] uses its
//! own catalog plus the round's fresh `Create`s, while the model checker
//! uses the scenario's object table plus the creations inside the two
//! batches under comparison.

use std::collections::{BTreeMap, BTreeSet};

use guesstimate_core::{ArgView, CommuteMatrix, Footprint, ObjectId, OpRegistry, SharedOp, ROOT};

use crate::message::WireOp;

/// Resolves an object id to its registered type name.
pub type TypeOf<'a> = &'a dyn Fn(ObjectId) -> Option<String>;

/// The set of objects a wire operation may touch.
pub fn wire_objects(op: &WireOp) -> BTreeSet<ObjectId> {
    match op {
        WireOp::Create { object, .. } => BTreeSet::from([*object]),
        WireOp::Shared(op) => op.objects_touched(),
        // A marker is a store no-op within its group; the payload executes
        // at the wrapper layer, outside this group's commit order.
        WireOp::CrossMarker { .. } => BTreeSet::new(),
    }
}

/// Matrix fast path: both operations are single primitives on the same
/// object whose method pair the offline analysis validated as
/// always-commuting (any argument, any state).
pub fn matrix_commutes(
    matrix: &CommuteMatrix,
    type_of: TypeOf<'_>,
    a: &WireOp,
    b: &WireOp,
) -> bool {
    let (
        WireOp::Shared(SharedOp::Primitive {
            object: oa,
            method: ma,
            ..
        }),
        WireOp::Shared(SharedOp::Primitive {
            object: ob,
            method: mb,
            ..
        }),
    ) = (a, b)
    else {
        return false;
    };
    if oa != ob {
        return false; // disjoint-object pairs are handled by the caller
    }
    let Some(ty) = type_of(*oa) else {
        return false;
    };
    matrix.commutes(&ty, ma, mb)
}

/// Per-object read/write footprints of one wire operation, or `None` when
/// any constituent method lacks a declared effect (the commutation
/// judgment is then impossible). `Create` writes its object's whole
/// snapshot, which the root footprint path expresses exactly.
pub fn wire_footprints(
    registry: &OpRegistry,
    type_of: TypeOf<'_>,
    op: &WireOp,
) -> Option<BTreeMap<ObjectId, Footprint>> {
    match op {
        WireOp::Create { object, .. } => {
            let mut m = BTreeMap::new();
            m.insert(*object, Footprint::new().writes([ROOT]));
            Some(m)
        }
        WireOp::Shared(op) => shared_footprints(registry, type_of, op),
        WireOp::CrossMarker { .. } => Some(BTreeMap::new()),
    }
}

/// Recursive footprint union over a [`SharedOp`] tree. `Atomic` unions its
/// components; `OrElse` unions both alternatives (either may run, so the
/// union over-approximates soundly).
fn shared_footprints(
    registry: &OpRegistry,
    type_of: TypeOf<'_>,
    op: &SharedOp,
) -> Option<BTreeMap<ObjectId, Footprint>> {
    fn merge(acc: &mut BTreeMap<ObjectId, Footprint>, id: ObjectId, fp: Footprint) {
        match acc.remove(&id) {
            Some(prev) => {
                acc.insert(id, prev.union(&fp));
            }
            None => {
                acc.insert(id, fp);
            }
        }
    }
    match op {
        SharedOp::Primitive {
            object,
            method,
            args,
        } => {
            let ty = type_of(*object)?;
            let eff = registry.effect_of(&ty, method)?;
            let mut m = BTreeMap::new();
            m.insert(*object, eff.footprint(ArgView::new(args)));
            Some(m)
        }
        SharedOp::Atomic(ops) => {
            let mut acc = BTreeMap::new();
            for op in ops {
                for (id, fp) in shared_footprints(registry, type_of, op)? {
                    merge(&mut acc, id, fp);
                }
            }
            Some(acc)
        }
        SharedOp::OrElse(a, b) => {
            let mut acc = shared_footprints(registry, type_of, a)?;
            for (id, fp) in shared_footprints(registry, type_of, b)? {
                merge(&mut acc, id, fp);
            }
            Some(acc)
        }
    }
}

/// The *universal commuters* of one type: methods the validated matrix
/// proves always-commuting with **every** registered method of the type,
/// including themselves (the diagonal pair). These are the methods
/// eligible for the hybrid async commit path
/// ([`crate::MachineConfig::async_commit`]): because they commute — in
/// both final state and results — with anything that may ever interleave,
/// applying them in arrival order instead of the round's total order is
/// observationally safe.
///
/// A method additionally needs a declared [`guesstimate_core::EffectSpec`]
/// (so footprint reasoning about it stays possible); methods without one
/// are excluded. Types absent from the matrix yield the empty set.
pub fn universal_commuters(
    registry: &OpRegistry,
    matrix: &CommuteMatrix,
    type_name: &str,
) -> BTreeSet<String> {
    let methods = registry.methods_of(type_name);
    methods
        .iter()
        .filter(|m| registry.effect_of(type_name, m).is_some())
        .filter(|m| {
            methods
                .iter()
                .all(|other| matrix.commutes(type_name, m, other))
        })
        .map(|m| (*m).to_owned())
        .collect()
}

/// Full cascade for one pair: do `a` and `b` provably commute?
///
/// Runs the three proofs in order — disjoint touched-object sets, the
/// analysis-validated matrix, argument-precise footprint disjointness on
/// every shared object. Returns `false` whenever no proof applies.
pub fn wire_ops_commute(
    registry: &OpRegistry,
    matrix: &CommuteMatrix,
    type_of: TypeOf<'_>,
    a: &WireOp,
    b: &WireOp,
) -> bool {
    let a_objs = wire_objects(a);
    let b_objs = wire_objects(b);
    if a_objs.is_disjoint(&b_objs) {
        return true;
    }
    if matrix_commutes(matrix, type_of, a, b) {
        return true;
    }
    let (Some(afp), Some(bfp)) = (
        wire_footprints(registry, type_of, a),
        wire_footprints(registry, type_of, b),
    ) else {
        return false;
    };
    a_objs
        .intersection(&b_objs)
        .all(|id| match (afp.get(id), bfp.get(id)) {
            (Some(x), Some(y)) => x.disjoint(y),
            _ => false,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::slots_registry;
    use guesstimate_core::{args, MachineId};

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(MachineId::new(0), n)
    }

    fn put(o: ObjectId, k: &str) -> WireOp {
        WireOp::Shared(SharedOp::primitive(o, "put", args![k, 1]))
    }

    #[test]
    fn disjoint_objects_commute_without_effects() {
        let reg = slots_registry();
        let resolve = |_: ObjectId| Some("Slots".to_owned());
        let a = WireOp::Shared(SharedOp::primitive(obj(0), "raw_put", args!["a", 1]));
        let b = WireOp::Shared(SharedOp::primitive(obj(1), "raw_put", args!["a", 1]));
        assert!(wire_ops_commute(
            &reg,
            &CommuteMatrix::new(),
            &resolve,
            &a,
            &b
        ));
    }

    #[test]
    fn footprints_decide_same_object_pairs() {
        let reg = slots_registry();
        let resolve = |_: ObjectId| Some("Slots".to_owned());
        let m = CommuteMatrix::new();
        assert!(wire_ops_commute(
            &reg,
            &m,
            &resolve,
            &put(obj(0), "a"),
            &put(obj(0), "b")
        ));
        assert!(!wire_ops_commute(
            &reg,
            &m,
            &resolve,
            &put(obj(0), "a"),
            &put(obj(0), "a")
        ));
    }

    #[test]
    fn matrix_vouches_for_undeclared_methods() {
        let reg = slots_registry();
        let resolve = |_: ObjectId| Some("Slots".to_owned());
        let a = WireOp::Shared(SharedOp::primitive(obj(0), "raw_put", args!["a", 1]));
        let b = WireOp::Shared(SharedOp::primitive(obj(0), "raw_put", args!["b", 2]));
        assert!(!wire_ops_commute(
            &reg,
            &CommuteMatrix::new(),
            &resolve,
            &a,
            &b
        ));
        let mut m = CommuteMatrix::new();
        m.insert("Slots", "raw_put", "raw_put");
        assert!(wire_ops_commute(&reg, &m, &resolve, &a, &b));
    }

    #[test]
    fn create_footprint_is_the_whole_object() {
        let reg = slots_registry();
        let resolve = |_: ObjectId| Some("Slots".to_owned());
        let create = WireOp::Create {
            object: obj(0),
            type_name: "Slots".to_owned(),
            init: guesstimate_core::Value::Map(Default::default()),
        };
        assert!(!wire_ops_commute(
            &reg,
            &CommuteMatrix::new(),
            &resolve,
            &create,
            &put(obj(0), "a")
        ));
    }

    #[test]
    fn universal_commuters_need_full_matrix_rows_and_effects() {
        let reg = slots_registry();
        // Partial row: `put` commutes with itself but its pair with
        // `raw_put` is unproven, so nothing is universal.
        let mut m = CommuteMatrix::new();
        m.insert("Slots", "put", "put");
        assert!(universal_commuters(&reg, &m, "Slots").is_empty());
        // Full rows: `put` qualifies; `raw_put` still does not because it
        // has no declared effect.
        m.insert("Slots", "put", "raw_put");
        m.insert("Slots", "raw_put", "raw_put");
        let u = universal_commuters(&reg, &m, "Slots");
        assert_eq!(u.into_iter().collect::<Vec<_>>(), vec!["put".to_owned()]);
        // Unknown types yield the empty set.
        assert!(universal_commuters(&reg, &m, "NoSuchType").is_empty());
    }

    #[test]
    fn unresolvable_type_is_conservative() {
        let reg = slots_registry();
        let resolve = |_: ObjectId| None;
        assert!(!wire_ops_commute(
            &reg,
            &CommuteMatrix::new(),
            &resolve,
            &put(obj(0), "a"),
            &put(obj(0), "b")
        ));
    }
}
